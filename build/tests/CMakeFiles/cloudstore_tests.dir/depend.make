# Empty dependencies file for cloudstore_tests.
# This may be replaced when dependencies are built.
