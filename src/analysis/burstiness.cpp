#include "analysis/burstiness.hpp"

namespace u1 {
namespace {

PowerLawFit fit_central(const std::vector<double>& gaps, double cap_s) {
  std::vector<double> central;
  central.reserve(gaps.size());
  for (const double g : gaps)
    if (g <= cap_s) central.push_back(g);
  return fit_power_law(central);
}

}  // namespace

PowerLawFit BurstinessAnalyzer::upload_fit(double cap_s) const {
  return fit_central(upload_gaps_, cap_s);
}

PowerLawFit BurstinessAnalyzer::unlink_fit(double cap_s) const {
  return fit_central(unlink_gaps_, cap_s);
}

void BurstinessAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorage || r.failed || r.t < 0) return;
  if (r.api_op == ApiOp::kPutContent) {
    LastSeen& seen = last_[r.user];
    if (seen.upload >= 0 && r.t > seen.upload)
      upload_gaps_.push_back(to_seconds(r.t - seen.upload));
    seen.upload = r.t;
  } else if (r.api_op == ApiOp::kUnlink) {
    LastSeen& seen = last_[r.user];
    if (seen.unlink >= 0 && r.t > seen.unlink)
      unlink_gaps_.push_back(to_seconds(r.t - seen.unlink));
    seen.unlink = r.t;
  }
}

}  // namespace u1
