// DDoS forensics (paper §5.4): injects the storage-leeching attacks into
// a simulated week, then plays incident responder — detect the anomaly,
// identify the abused account, and verify the (manual) countermeasure
// collapses the attack within the hour.
#include <cstdio>
#include <map>

#include "analysis/ddos_detect.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace u1;

  SimulationConfig cfg;
  cfg.users = 3000;
  cfg.days = 7;  // covers Jan 15 + Jan 16
  cfg.enable_ddos = true;
  const SimTime horizon = cfg.days * kDay;

  DdosAnalyzer detector(0, horizon);
  InMemorySink full_trace;
  MultiSink fanout;
  fanout.add(&detector);
  fanout.add(&full_trace);

  std::printf("simulating one week with the paper's Jan 15/16 attacks "
              "injected...\n\n");
  Simulation sim(cfg, fanout);
  sim.run();

  std::printf("=== detection ===\n");
  const auto attacks = detector.detect();
  for (const auto& attack : attacks) {
    const SimTime start =
        detector.session_per_hour().bin_start(attack.first_hour);
    std::printf("anomaly: %s, %zuh long, session/auth %.1fx baseline, "
                "API %.1fx\n",
                format_timestamp(start).c_str(),
                attack.last_hour - attack.first_hour + 1,
                attack.peak_multiplier, attack.api_multiplier);

    // Forensics: who is behind the spike? Count session requests per user
    // in the attack window.
    std::map<std::uint64_t, std::uint64_t> suspects;
    const SimTime end =
        detector.session_per_hour().bin_start(attack.last_hour) + kHour;
    for (const auto& r : full_trace.records()) {
      if (r.type != RecordType::kSession || r.t < start || r.t >= end)
        continue;
      if (r.session_event == SessionEvent::kAuthRequest)
        suspects[r.user.value]++;
    }
    std::uint64_t worst_user = 0, worst_count = 0;
    std::uint64_t total = 0;
    for (const auto& [user, count] : suspects) {
      total += count;
      if (count > worst_count) {
        worst_count = count;
        worst_user = user;
      }
    }
    std::printf("  -> user %llu made %llu of %llu auth requests "
                "(%.0f%%) — shared-credential leeching\n",
                static_cast<unsigned long long>(worst_user),
                static_cast<unsigned long long>(worst_count),
                static_cast<unsigned long long>(total),
                100.0 * static_cast<double>(worst_count) /
                    static_cast<double>(total));
  }

  std::printf("\n=== response decay ===\n");
  std::printf("session requests per hour around the Jan 16 attack "
              "(09:00 start, response ~11:00):\n");
  const auto& sessions = detector.session_per_hour();
  for (std::size_t h = 5 * 24 + 6; h <= 5 * 24 + 16 && h < sessions.bins();
       ++h) {
    const double v = sessions.value(h);
    std::printf("  %s  %6.0f  %s\n",
                format_timestamp(sessions.bin_start(h)).c_str(), v,
                std::string(static_cast<std::size_t>(v / 200), '#').c_str());
  }
  std::printf("\npaper: engineers deleted the fraudulent account and its "
              "content; activity decays\nwithin one hour of the response "
              "— the same cliff visible above.\n");
  return 0;
}
