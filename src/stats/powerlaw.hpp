// Power-law (Pareto) tail fitting. Fig. 9(b) approximates user
// inter-operation times with P(X >= x) ~ x^-alpha for x > theta,
// reporting (alpha=1.54, theta=41.37) for Upload and (alpha=1.44,
// theta=19.51) for Unlink. We implement the standard Clauset-Shalizi-
// Newman procedure: Hill MLE for alpha at a candidate x_min, and x_min
// selection by minimizing the Kolmogorov-Smirnov distance.
#pragma once

#include <span>
#include <vector>

namespace u1 {

struct PowerLawFit {
  double alpha = 0;    // tail exponent of the CCDF, P(X >= x) ~ x^-alpha
  double x_min = 0;    // theta: where the power-law region starts
  double ks = 0;       // KS distance of the fit over the tail
  std::size_t tail_n = 0;  // number of samples in the fitted tail
};

/// Hill maximum-likelihood estimate of alpha for the tail x >= x_min.
/// (continuous MLE: alpha = n / sum(ln(x_i / x_min)) ).
/// Throws if fewer than 2 samples are >= x_min.
double hill_alpha(std::span<const double> sample, double x_min);

/// KS distance between the empirical tail distribution (x >= x_min) and
/// the fitted Pareto CCDF.
double ks_distance(std::span<const double> sample, double x_min,
                   double alpha);

/// Full fit: scans candidate x_min values over the sample's distinct
/// values (subsampled to at most `max_candidates`) and returns the fit
/// minimizing the KS distance. Throws std::invalid_argument if the sample
/// has fewer than 10 positive values.
PowerLawFit fit_power_law(std::span<const double> sample,
                          std::size_t max_candidates = 200);

/// Squared coefficient of variation — the burstiness indicator. Poisson
/// arrivals give CV^2 = 1; the paper's bursty, power-law inter-op times
/// give CV^2 >> 1.
double cv_squared(std::span<const double> sample);

}  // namespace u1
