file(REMOVE_RECURSE
  "libu1_server.a"
)
