# Empty compiler generated dependencies file for u1trace_cli.
# This may be replaced when dependencies are built.
