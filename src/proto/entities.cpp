#include "proto/entities.hpp"

namespace u1 {

std::string_view to_string(NodeKind k) noexcept {
  return k == NodeKind::kFile ? "file" : "dir";
}

std::string_view to_string(VolumeKind k) noexcept {
  switch (k) {
    case VolumeKind::kRoot: return "root";
    case VolumeKind::kUdf: return "udf";
    case VolumeKind::kShared: return "shared";
  }
  return "unknown";
}

}  // namespace u1
