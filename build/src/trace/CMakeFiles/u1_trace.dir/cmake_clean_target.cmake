file(REMOVE_RECURSE
  "libu1_trace.a"
)
