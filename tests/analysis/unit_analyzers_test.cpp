// Unit tests with hand-crafted records: exact semantics of the streaming
// analyzers (dependency classification, lifetime cascades, dedup math,
// transition graph bookkeeping).
#include <gtest/gtest.h>

#include "analysis/dedup.hpp"
#include "analysis/file_dependencies.hpp"
#include "analysis/node_lifetime.hpp"
#include "analysis/op_mix.hpp"
#include "analysis/transition_graph.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

Rng g_rng(42);

TraceRecord storage_done(ApiOp op, SimTime t, NodeId node,
                         std::uint64_t session = 1) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kStorageDone;
  r.api_op = op;
  r.node = node;
  r.user = UserId{1};
  r.session = SessionId{session};
  r.machine = MachineId{1};
  r.process = ProcessId{1};
  return r;
}

TEST(FileDependencyAnalyzer, ClassifiesAllSixDependencies) {
  FileDependencyAnalyzer a;
  const NodeId n1 = Uuid::v4(g_rng);
  const NodeId n2 = Uuid::v4(g_rng);
  // n1: write @1h, write @2h (WAW), read @3h (RAW), read @4h (RAR),
  //     write @5h (WAR), unlink @6h (DAW, since last op was a write).
  a.append(storage_done(ApiOp::kPutContent, 1 * kHour, n1));
  a.append(storage_done(ApiOp::kPutContent, 2 * kHour, n1));
  a.append(storage_done(ApiOp::kGetContent, 3 * kHour, n1));
  a.append(storage_done(ApiOp::kGetContent, 4 * kHour, n1));
  a.append(storage_done(ApiOp::kPutContent, 5 * kHour, n1));
  a.append(storage_done(ApiOp::kUnlink, 6 * kHour, n1));
  // n2: write @1h, read @2h (RAW), unlink @3h (DAR).
  a.append(storage_done(ApiOp::kPutContent, 1 * kHour, n2));
  a.append(storage_done(ApiOp::kGetContent, 2 * kHour, n2));
  a.append(storage_done(ApiOp::kUnlink, 3 * kHour, n2));

  EXPECT_EQ(a.count(FileDependency::kWAW), 1u);
  EXPECT_EQ(a.count(FileDependency::kRAW), 2u);
  EXPECT_EQ(a.count(FileDependency::kRAR), 1u);
  EXPECT_EQ(a.count(FileDependency::kWAR), 1u);
  EXPECT_EQ(a.count(FileDependency::kDAW), 1u);
  EXPECT_EQ(a.count(FileDependency::kDAR), 1u);
  // Inter-op gaps are one hour each.
  EXPECT_DOUBLE_EQ(a.times(FileDependency::kWAW)[0], 3600.0);
  EXPECT_DOUBLE_EQ(a.times(FileDependency::kDAR)[0], 3600.0);
}

TEST(FileDependencyAnalyzer, FamilySharesSumToOne) {
  FileDependencyAnalyzer a;
  const NodeId n = Uuid::v4(g_rng);
  a.append(storage_done(ApiOp::kPutContent, kHour, n));
  a.append(storage_done(ApiOp::kPutContent, 2 * kHour, n));
  a.append(storage_done(ApiOp::kGetContent, 3 * kHour, n));
  const double waw = a.family_share(FileDependency::kWAW);
  const double raw = a.family_share(FileDependency::kRAW);
  const double daw = a.family_share(FileDependency::kDAW);
  EXPECT_NEAR(waw + raw + daw, 1.0, 1e-12);
}

TEST(FileDependencyAnalyzer, DyingFilesDetected) {
  FileDependencyAnalyzer a;
  const NodeId fresh = Uuid::v4(g_rng);
  const NodeId stale = Uuid::v4(g_rng);
  a.append(storage_done(ApiOp::kPutContent, 0, fresh));
  a.append(storage_done(ApiOp::kUnlink, kHour, fresh));  // used recently
  a.append(storage_done(ApiOp::kPutContent, 0, stale));
  a.append(storage_done(ApiOp::kUnlink, 3 * kDay, stale));  // idle > 1 day
  EXPECT_EQ(a.deleted_files(), 2u);
  EXPECT_EQ(a.dying_files(kDay), 1u);
}

TEST(FileDependencyAnalyzer, DownloadsPerFileTracked) {
  FileDependencyAnalyzer a;
  const NodeId hot = Uuid::v4(g_rng);
  const NodeId cold = Uuid::v4(g_rng);
  a.append(storage_done(ApiOp::kPutContent, 0, hot));
  for (int i = 1; i <= 5; ++i)
    a.append(storage_done(ApiOp::kGetContent, i * kHour, hot));
  a.append(storage_done(ApiOp::kPutContent, 0, cold));
  const auto downloads = a.downloads_per_file();
  ASSERT_EQ(downloads.size(), 1u);  // only files with >= 1 download
  EXPECT_DOUBLE_EQ(downloads[0], 5.0);
}

TEST(FileDependencyAnalyzer, IgnoresDirsFailuresAndBootstrap) {
  FileDependencyAnalyzer a;
  const NodeId n = Uuid::v4(g_rng);
  TraceRecord dir = storage_done(ApiOp::kPutContent, kHour, n);
  dir.is_dir = true;
  a.append(dir);
  TraceRecord failed = storage_done(ApiOp::kPutContent, kHour, n);
  failed.failed = true;
  a.append(failed);
  a.append(storage_done(ApiOp::kPutContent, -kHour, n));  // bootstrap
  a.append(storage_done(ApiOp::kPutContent, 2 * kHour, n));
  EXPECT_EQ(a.count(FileDependency::kWAW), 0u);
}

TraceRecord make_record(SimTime t, NodeId node, NodeId parent, VolumeId vol,
                        bool is_dir) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kStorageDone;
  r.api_op = ApiOp::kMake;
  r.node = node;
  r.parent = parent;
  r.volume = vol;
  r.is_dir = is_dir;
  r.user = UserId{1};
  r.session = SessionId{1};
  return r;
}

TEST(NodeLifetimeAnalyzer, DirectLifetime) {
  NodeLifetimeAnalyzer a;
  Rng rng(1);
  const VolumeId vol = Uuid::v4(rng);
  const NodeId root = Uuid::v4(rng);
  const NodeId f = Uuid::v4(rng);
  a.append(make_record(kHour, f, root, vol, false));
  a.append(storage_done(ApiOp::kUnlink, 5 * kHour, f));
  ASSERT_EQ(a.file_lifetimes().size(), 1u);
  EXPECT_DOUBLE_EQ(a.file_lifetimes()[0], 4 * 3600.0);
  EXPECT_EQ(a.files_created(), 1u);
}

TEST(NodeLifetimeAnalyzer, DirectoryUnlinkCascades) {
  NodeLifetimeAnalyzer a;
  Rng rng(2);
  const VolumeId vol = Uuid::v4(rng);
  const NodeId root = Uuid::v4(rng);
  const NodeId dir = Uuid::v4(rng);
  const NodeId sub = Uuid::v4(rng);
  const NodeId f1 = Uuid::v4(rng);
  const NodeId f2 = Uuid::v4(rng);
  a.append(make_record(kHour, dir, root, vol, true));
  a.append(make_record(kHour, sub, dir, vol, true));
  a.append(make_record(2 * kHour, f1, dir, vol, false));
  a.append(make_record(2 * kHour, f2, sub, vol, false));
  TraceRecord unlink = storage_done(ApiOp::kUnlink, 10 * kHour, dir);
  unlink.is_dir = true;
  a.append(unlink);
  EXPECT_EQ(a.dir_lifetimes().size(), 2u);   // dir + sub
  EXPECT_EQ(a.file_lifetimes().size(), 2u);  // f1 + f2
  EXPECT_DOUBLE_EQ(a.file_lifetimes()[0], 8 * 3600.0);
}

TEST(NodeLifetimeAnalyzer, DeleteVolumeKillsAllNodes) {
  NodeLifetimeAnalyzer a;
  Rng rng(3);
  const VolumeId vol = Uuid::v4(rng);
  const NodeId root = Uuid::v4(rng);
  const NodeId f1 = Uuid::v4(rng);
  const NodeId f2 = Uuid::v4(rng);
  a.append(make_record(kHour, f1, root, vol, false));
  a.append(make_record(2 * kHour, f2, root, vol, false));
  TraceRecord del;
  del.t = kDay;
  del.type = RecordType::kStorageDone;
  del.api_op = ApiOp::kDeleteVolume;
  del.volume = vol;
  del.user = UserId{1};
  del.session = SessionId{1};
  a.append(del);
  EXPECT_EQ(a.file_lifetimes().size(), 2u);
}

TEST(NodeLifetimeAnalyzer, DeletedFractions) {
  NodeLifetimeAnalyzer a;
  Rng rng(4);
  const VolumeId vol = Uuid::v4(rng);
  const NodeId root = Uuid::v4(rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(Uuid::v4(rng));
    a.append(make_record(0, nodes.back(), root, vol, false));
  }
  // Delete 3 within 8h, 2 more within a month.
  for (int i = 0; i < 3; ++i)
    a.append(storage_done(ApiOp::kUnlink, 4 * kHour, nodes[static_cast<std::size_t>(i)]));
  for (int i = 3; i < 5; ++i)
    a.append(storage_done(ApiOp::kUnlink, 20 * kDay, nodes[static_cast<std::size_t>(i)]));
  EXPECT_DOUBLE_EQ(a.file_deleted_fraction(8 * kHour), 0.3);
  EXPECT_DOUBLE_EQ(a.file_deleted_fraction(30 * kDay), 0.5);
}

TraceRecord upload_record(SimTime t, NodeId node, const ContentId& c,
                          std::uint64_t size, bool dedup) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kStorageDone;
  r.api_op = ApiOp::kPutContent;
  r.node = node;
  r.content = c;
  r.size_bytes = size;
  r.transferred_bytes = dedup ? 0 : size;
  r.deduplicated = dedup;
  r.user = UserId{1};
  r.session = SessionId{1};
  return r;
}

TEST(DedupAnalyzer, RatioAndCopies) {
  DedupAnalyzer a;
  Rng rng(5);
  const ContentId popular = Sha1::of("popular");
  const ContentId unique = Sha1::of("unique");
  a.append(upload_record(1, Uuid::v4(rng), popular, 1000, false));
  a.append(upload_record(2, Uuid::v4(rng), popular, 1000, true));
  a.append(upload_record(3, Uuid::v4(rng), popular, 1000, true));
  a.append(upload_record(4, Uuid::v4(rng), unique, 1000, false));
  // D_unique = 2000, D_total = 4000 -> dr = 0.5.
  EXPECT_DOUBLE_EQ(a.dedup_ratio(), 0.5);
  EXPECT_EQ(a.distinct_hashes(), 2u);
  EXPECT_EQ(a.dedup_hits_seen(), 2u);
  EXPECT_DOUBLE_EQ(a.unique_fraction(), 0.5);
  auto copies = a.copies_per_hash();
  std::sort(copies.begin(), copies.end());
  EXPECT_DOUBLE_EQ(copies[0], 1.0);
  EXPECT_DOUBLE_EQ(copies[1], 3.0);
}

TEST(DedupAnalyzer, EmptyIsZero) {
  DedupAnalyzer a;
  EXPECT_DOUBLE_EQ(a.dedup_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(a.unique_fraction(), 0.0);
}

TEST(OpMixAnalyzer, CountsAndRanking) {
  OpMixAnalyzer a;
  Rng rng(6);
  const NodeId n = Uuid::v4(rng);
  for (int i = 0; i < 5; ++i)
    a.append(storage_done(ApiOp::kGetContent, i, n));
  for (int i = 0; i < 3; ++i)
    a.append(storage_done(ApiOp::kPutContent, i, n));
  a.append(storage_done(ApiOp::kListVolumes, 1, n));
  EXPECT_EQ(a.count(ApiOp::kGetContent), 5u);
  EXPECT_EQ(a.total_api_ops(), 9u);
  const auto ranked = a.ranked();
  ASSERT_GE(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, ApiOp::kGetContent);
  EXPECT_TRUE(a.data_ops_dominate());
}

TEST(OpMixAnalyzer, SessionEventsCounted) {
  OpMixAnalyzer a;
  TraceRecord open;
  open.type = RecordType::kSession;
  open.session_event = SessionEvent::kOpen;
  open.t = 1;
  a.append(open);
  open.session_event = SessionEvent::kClose;
  a.append(open);
  a.append(open);
  EXPECT_EQ(a.open_sessions(), 1u);
  EXPECT_EQ(a.close_sessions(), 2u);
}

TEST(TransitionGraphAnalyzer, TracksPerSessionChains) {
  TransitionGraphAnalyzer a;
  Rng rng(7);
  const NodeId n = Uuid::v4(rng);
  auto storage = [&](ApiOp op, std::uint64_t session, SimTime t) {
    TraceRecord r;
    r.t = t;
    r.type = RecordType::kStorage;
    r.api_op = op;
    r.node = n;
    r.session = SessionId{session};
    r.user = UserId{session};
    return r;
  };
  // Session 1: Upload -> Upload -> Download.
  a.append(storage(ApiOp::kPutContent, 1, 1));
  a.append(storage(ApiOp::kPutContent, 1, 2));
  a.append(storage(ApiOp::kGetContent, 1, 3));
  // Session 2: Download -> Download. Interleaved in time.
  a.append(storage(ApiOp::kGetContent, 2, 2));
  a.append(storage(ApiOp::kGetContent, 2, 4));
  EXPECT_EQ(a.total_transitions(), 3u);
  EXPECT_DOUBLE_EQ(a.conditional(ApiOp::kPutContent, ApiOp::kPutContent),
                   0.5);
  EXPECT_DOUBLE_EQ(a.conditional(ApiOp::kPutContent, ApiOp::kGetContent),
                   0.5);
  EXPECT_DOUBLE_EQ(a.self_loop(ApiOp::kGetContent), 1.0);
  const auto edges = a.edges();
  ASSERT_FALSE(edges.empty());
  double total_prob = 0;
  for (const auto& e : edges) total_prob += e.global_probability;
  EXPECT_NEAR(total_prob, 1.0, 1e-12);
}

TEST(TransitionGraphAnalyzer, SessionCloseResetsChain) {
  TransitionGraphAnalyzer a;
  TraceRecord s;
  s.type = RecordType::kStorage;
  s.api_op = ApiOp::kPutContent;
  s.session = SessionId{1};
  s.t = 1;
  a.append(s);
  TraceRecord close;
  close.type = RecordType::kSession;
  close.session_event = SessionEvent::kClose;
  close.session = SessionId{1};
  close.t = 2;
  a.append(close);
  s.t = 3;
  a.append(s);  // same session id reused: no transition across the close
  EXPECT_EQ(a.total_transitions(), 0u);
}

}  // namespace
}  // namespace u1
