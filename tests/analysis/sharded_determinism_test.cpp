// Determinism oracle for the in-worker analyzer fan-out: every figure
// output of every ported analyzer must be bit-identical across worker
// thread counts (shards consume per-group streams whose content and
// order depend only on the config, and merge in group-index order), the
// sharded results must agree with the exact merged-stream pass (exactly
// for counters, within the sketch bounds for distributions), and the
// flush ring must auto-shrink to depth 1 on the analysis-only path.
//
// Runs under TSan via the shared recipe:
//   cmake -B build-tsan -DU1SIM_SANITIZE=thread && ctest -L determinism
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "analysis/file_types.hpp"
#include "analysis/rpc_perf.hpp"
#include "analysis/sessions.hpp"
#include "analysis/sharded.hpp"
#include "analysis/traffic.hpp"
#include "analysis/users.hpp"
#include "sim/parallel.hpp"
#include "stats/ecdf.hpp"
#include "trace/sink.hpp"
#include "util/sim_time.hpp"

namespace u1 {
namespace {

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.users = 350;
  cfg.days = 2;
  cfg.seed = 20140111;
  cfg.enable_ddos = true;
  return cfg;
}

/// Every figure quantity the five analyzers expose, flattened into
/// plain vectors so EXPECT_EQ compares bit-for-bit.
struct Snapshot {
  // rpc_perf
  std::vector<std::uint64_t> rpc_counts;
  std::vector<std::vector<double>> rpc_times;
  // traffic
  std::vector<double> up_hourly, down_hourly, rw_ratios;
  double update_ops = 0, update_bytes = 0;
  std::uint64_t up_ops = 0, down_ops = 0, up_bytes = 0;
  // users
  std::vector<double> online_hourly, active_hourly;
  std::vector<double> up_per_user, down_per_user;
  double up_gini = 0, top1_share = 0;
  std::size_t users_seen = 0;
  // sessions
  std::vector<double> lengths, active_lengths, ops_active;
  double active_frac = 0, short_frac = 0, top_ops = 0, auth_fail = 0;
  std::uint64_t closed = 0;
  // file types
  std::vector<double> sizes;
  double below_1mb = 0;
  std::vector<std::string> popular;
  std::uint64_t files = 0;

  bool operator==(const Snapshot&) const = default;
};

struct Analyzers {
  explicit Analyzers(SimTime end)
      : traffic(0, end), users(0, end), sessions(0, end) {}
  RpcPerfAnalyzer rpcs;
  TrafficAnalyzer traffic;
  UserActivityAnalyzer users;
  SessionAnalyzer sessions;
  FileTypeAnalyzer types;
};

Snapshot snapshot_of(const Analyzers& a) {
  Snapshot s;
  for (const RpcOp op : all_rpc_ops()) {
    s.rpc_counts.push_back(a.rpcs.count(op));
    s.rpc_times.push_back(a.rpcs.service_times(op));
  }
  s.up_hourly = a.traffic.upload_bytes_hourly().values();
  s.down_hourly = a.traffic.download_bytes_hourly().values();
  s.rw_ratios = a.traffic.rw_ratios_hourly();
  s.update_ops = a.traffic.update_op_fraction();
  s.update_bytes = a.traffic.update_traffic_fraction();
  s.up_ops = a.traffic.upload_ops();
  s.down_ops = a.traffic.download_ops();
  s.up_bytes = a.traffic.upload_bytes();
  s.online_hourly = a.users.online_users_hourly();
  s.active_hourly = a.users.active_users_hourly();
  s.up_per_user = a.users.upload_bytes_per_user();
  s.down_per_user = a.users.download_bytes_per_user();
  s.up_gini = a.users.upload_lorenz().gini;
  s.top1_share = a.users.top_traffic_share(0.01);
  s.users_seen = a.users.users_seen();
  s.lengths = a.sessions.session_lengths();
  s.active_lengths = a.sessions.active_session_lengths();
  s.ops_active = a.sessions.ops_per_active_session();
  s.active_frac = a.sessions.active_session_fraction();
  s.short_frac = a.sessions.fraction_shorter_than(kMinute);
  s.top_ops = a.sessions.top_sessions_op_share(0.01);
  s.auth_fail = a.sessions.auth_failure_fraction();
  s.closed = a.sessions.sessions_closed();
  s.sizes = a.types.all_sizes();
  s.below_1mb = a.types.fraction_below(1024.0 * 1024.0);
  s.popular = a.types.popular_extensions(10);
  s.files = a.types.distinct_files();
  return s;
}

Snapshot run_sharded(std::size_t threads) {
  const SimulationConfig cfg = small_config();
  Analyzers a(static_cast<SimTime>(cfg.days) * kDay);
  NullSink null;
  ParallelSimulation sim(cfg, null, threads);
  sim.attach_analyzer(a.rpcs);
  sim.attach_analyzer(a.traffic);
  sim.attach_analyzer(a.users);
  sim.attach_analyzer(a.sessions);
  sim.attach_analyzer(a.types);
  sim.run();
  return snapshot_of(a);
}

TEST(ShardedDeterminism, FigureOutputsBitIdenticalAcrossThreadCounts) {
  const Snapshot at1 = run_sharded(1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const Snapshot at_n = run_sharded(threads);
    EXPECT_EQ(at_n, at1) << "diverged at threads=" << threads;
  }
}

// Tie-aware rank distance of estimate x from quantile q of the exact
// sorted stream (see bench_analysis: ties make point-CDF comparisons
// unfairly strict).
double rank_distance(const std::vector<double>& sorted, double x, double q) {
  const double n = static_cast<double>(sorted.size());
  const double lo =
      static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(), x) -
                          sorted.begin()) /
      n;
  const double hi =
      static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), x) -
                          sorted.begin()) /
      n;
  return q < lo ? lo - q : (q > hi ? q - hi : 0.0);
}

TEST(ShardedDeterminism, MatchesMergedOracleWithinBounds) {
  const SimulationConfig cfg = small_config();
  const SimTime horizon = static_cast<SimTime>(cfg.days) * kDay;

  Analyzers sharded(horizon);
  {
    NullSink null;
    ParallelSimulation sim(cfg, null, 2);
    sim.attach_analyzer(sharded.rpcs);
    sim.attach_analyzer(sharded.traffic);
    sim.attach_analyzer(sharded.users);
    sim.attach_analyzer(sharded.sessions);
    sim.attach_analyzer(sharded.types);
    sim.run();
  }
  Analyzers merged(horizon);
  {
    MultiSink fan;
    fan.add(&merged.rpcs);
    fan.add(&merged.traffic);
    fan.add(&merged.users);
    fan.add(&merged.sessions);
    fan.add(&merged.types);
    ParallelSimulation sim(cfg, fan, 2);
    sim.run();
    merged.users.finalize();
  }

  // Counter-backed quantities are exact on both paths: equal, not close.
  EXPECT_EQ(sharded.traffic.upload_ops(), merged.traffic.upload_ops());
  EXPECT_EQ(sharded.traffic.upload_bytes(), merged.traffic.upload_bytes());
  EXPECT_EQ(sharded.traffic.update_op_fraction(),
            merged.traffic.update_op_fraction());
  EXPECT_EQ(sharded.traffic.upload_bytes_hourly().values(),
            merged.traffic.upload_bytes_hourly().values());
  EXPECT_EQ(sharded.users.users_seen(), merged.users.users_seen());
  EXPECT_EQ(sharded.users.online_users_hourly(),
            merged.users.online_users_hourly());
  EXPECT_EQ(sharded.sessions.sessions_closed(),
            merged.sessions.sessions_closed());
  EXPECT_EQ(sharded.sessions.active_session_fraction(),
            merged.sessions.active_session_fraction());
  EXPECT_EQ(sharded.sessions.auth_failure_fraction(),
            merged.sessions.auth_failure_fraction());
  EXPECT_EQ(sharded.types.distinct_files(), merged.types.distinct_files());
  EXPECT_EQ(sharded.types.popular_extensions(10),
            merged.types.popular_extensions(10));

  // Per-user totals: same multiset, possibly different order (merged
  // inserts in stream order, sharded in group-merge order).
  auto up_s = sharded.users.upload_bytes_per_user();
  auto up_m = merged.users.upload_bytes_per_user();
  std::sort(up_s.begin(), up_s.end());
  std::sort(up_m.begin(), up_m.end());
  EXPECT_EQ(up_s, up_m);

  // Sketch-backed quantities carry the documented bounds.
  for (const RpcOp op : all_rpc_ops()) {
    if (merged.rpcs.count(op) < 500) continue;
    ASSERT_EQ(sharded.rpcs.count(op), merged.rpcs.count(op));
    std::vector<double> exact = merged.rpcs.service_times(op);
    std::sort(exact.begin(), exact.end());
    for (const double q : {0.5, 0.9, 0.99})
      EXPECT_LE(rank_distance(exact, sharded.rpcs.quantile_s(op, q), q),
                0.01);
  }
  std::vector<double> exact_lengths = merged.sessions.session_lengths();
  if (exact_lengths.size() >= 500) {
    std::sort(exact_lengths.begin(), exact_lengths.end());
    const Ecdf grid = Ecdf::from_sorted(sharded.sessions.session_lengths());
    for (const double q : {0.5, 0.9})
      EXPECT_LE(rank_distance(exact_lengths, grid.quantile(q), q), 0.01);
  }
  EXPECT_NEAR(sharded.sessions.top_sessions_op_share(0.01),
              merged.sessions.top_sessions_op_share(0.01), 0.01);
  EXPECT_NEAR(sharded.types.fraction_below(1024.0 * 1024.0),
              merged.types.fraction_below(1024.0 * 1024.0), 0.01);
}

TEST(ShardedDeterminism, AnalysisOnlyPathShrinksFlushRing) {
  const SimulationConfig cfg = small_config();
  {
    NullSink null;
    ParallelSimulation sim(cfg, null, 2);
    EXPECT_TRUE(sim.analysis_only());
    EXPECT_EQ(sim.flush_depth(), 1u);
    // An explicit override still wins over the auto-shrink.
    sim.set_flush_depth(4);
    EXPECT_EQ(sim.flush_depth(), 4u);
  }
  {
    CountingSink counting;
    ParallelSimulation sim(cfg, counting, 2);
    EXPECT_FALSE(sim.analysis_only());
    EXPECT_GE(sim.flush_depth(), 2u);
  }
}

TEST(ShardedDeterminism, AttachAfterRunThrows) {
  const SimulationConfig cfg = small_config();
  NullSink null;
  RpcPerfAnalyzer rpcs;
  ParallelSimulation sim(cfg, null, 1);
  sim.run();
  EXPECT_THROW(sim.attach_analyzer(rpcs), std::logic_error);
}

}  // namespace
}  // namespace u1
