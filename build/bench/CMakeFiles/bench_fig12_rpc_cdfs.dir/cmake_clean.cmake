file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_rpc_cdfs.dir/bench_fig12_rpc_cdfs.cpp.o"
  "CMakeFiles/bench_fig12_rpc_cdfs.dir/bench_fig12_rpc_cdfs.cpp.o.d"
  "bench_fig12_rpc_cdfs"
  "bench_fig12_rpc_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_rpc_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
