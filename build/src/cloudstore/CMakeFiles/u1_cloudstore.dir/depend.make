# Empty dependencies file for u1_cloudstore.
# This may be replaced when dependencies are built.
