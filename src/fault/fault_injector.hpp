// Per-backend fault delivery. The injector holds the (shared, immutable)
// FaultSchedule plus its own RNG stream for the probabilistic draws made
// inside fault windows. Window membership is a pure time lookup; RNG is
// consumed ONLY while a matching window is active, so a faults-off run —
// or any instant outside every window — draws nothing and the fault
// subsystem is invisible to the simulation's random streams.
//
// Parallel engine: each shard group owns one injector seeded from its
// group-mixed fault seed, pointing at the one schedule materialized at
// setup. Because the schedule is static and each group replays every
// fault event from its own queue, no runtime cross-group traffic is
// needed and the merged trace is thread-count independent.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace u1 {

class FaultInjector {
 public:
  FaultInjector(const FaultSchedule& schedule, std::uint64_t seed);

  const FaultSchedule& schedule() const noexcept { return *schedule_; }

  // --- window lookups (const, no RNG) --------------------------------------
  double s3_error_rate(SimTime now) const noexcept;
  double s3_latency_multiplier(SimTime now) const noexcept;
  double auth_error_rate(SimTime now) const noexcept;
  double mq_drop_prob(SimTime now) const noexcept;
  double shard_service_multiplier(std::uint64_t shard,
                                  SimTime now) const noexcept;
  double shard_reject_prob(std::uint64_t shard, SimTime now) const noexcept;

  // --- probabilistic draws (consume RNG only inside a window) ---------------
  bool s3_request_fails(SimTime now);
  bool auth_brownout_fails(SimTime now);
  bool mq_drops(SimTime now);
  bool shard_write_rejected(std::uint64_t shard, SimTime now);

  /// Earliest begin event in (from, until] that kills `machine` (process
  /// crash or machine outage): the moment a transfer on that machine is
  /// cut. Process crashes only count once their victim process is known
  /// to be the session's — the caller filters via `process_matters`.
  struct Cut {
    SimTime at = 0;
    const FaultEvent* event = nullptr;
  };
  Cut next_machine_cut(std::uint64_t machine, SimTime from,
                       SimTime until) const noexcept;

 private:
  /// max of `value` over active begin-windows matching `pred`.
  template <typename Pred, typename Get>
  double window_max(SimTime now, double base, Pred pred, Get get) const;

  const FaultSchedule* schedule_;
  Rng rng_;
};

}  // namespace u1
