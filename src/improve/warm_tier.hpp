// Warm/cold storage tiering (paper §5.2/§9, after Amazon Glacier and
// Facebook's f4): "around 12.5M files in U1 were completely unused for
// more than 1 day before their deletion ... warm and/or cold data exists
// in a Personal Cloud". The tier manager tracks last-access times per
// content and periodically demotes idle blobs to a cheaper tier;
// accessing a cold blob promotes it back at a retrieval latency penalty.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "proto/ids.hpp"
#include "util/sim_time.hpp"

namespace u1 {

enum class StorageTier : std::uint8_t { kHot, kCold };

struct WarmTierConfig {
  /// Demote content untouched for this long.
  SimTime demote_after = 14 * kDay;
  /// Monthly $/GB per tier (2014 list prices: S3 ~0.03, Glacier ~0.01).
  double hot_usd_per_gb_month = 0.030;
  double cold_usd_per_gb_month = 0.010;
  /// Latency penalty when reading from the cold tier.
  SimTime cold_read_penalty = 4 * kSecond;
};

class WarmTierManager {
 public:
  explicit WarmTierManager(const WarmTierConfig& config = {});

  /// New blob lands hot.
  void on_store(const ContentId& id, std::uint64_t size_bytes, SimTime now);
  /// Read access: returns the latency penalty (0 when hot) and promotes
  /// cold blobs back to the hot tier.
  SimTime on_read(const ContentId& id, SimTime now);
  /// Blob deleted.
  void on_delete(const ContentId& id);

  /// Periodic sweep: demotes blobs idle beyond the threshold. Returns how
  /// many were demoted.
  std::size_t sweep(SimTime now);

  StorageTier tier_of(const ContentId& id) const;
  std::uint64_t hot_bytes() const noexcept { return hot_bytes_; }
  std::uint64_t cold_bytes() const noexcept { return cold_bytes_; }
  std::uint64_t cold_reads() const noexcept { return cold_reads_; }
  std::size_t tracked() const noexcept { return blobs_.size(); }

  /// Monthly bill under tiering vs everything-hot.
  double monthly_bill_usd() const noexcept;
  double monthly_bill_all_hot_usd() const noexcept;

 private:
  struct Blob {
    std::uint64_t size = 0;
    SimTime last_access = 0;
    StorageTier tier = StorageTier::kHot;
  };

  WarmTierConfig config_;
  std::unordered_map<ContentId, Blob> blobs_;
  std::uint64_t hot_bytes_ = 0;
  std::uint64_t cold_bytes_ = 0;
  std::uint64_t cold_reads_ = 0;
};

}  // namespace u1
