#include "analysis/load_balance.hpp"

namespace u1 {

LoadBalanceAnalyzer::LoadBalanceAnalyzer(SimTime start, SimTime end,
                                         std::size_t machines,
                                         std::size_t shards) {
  api_.reserve(machines);
  for (std::size_t m = 0; m < machines; ++m)
    api_.emplace_back(start, end, kHour);
  shard_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shard_.emplace_back(start, end, kMinute);
}

void LoadBalanceAnalyzer::append(const TraceRecord& r) {
  if (r.t < 0) return;
  // API machine load: every request an API server handles (storage ops
  // and session management).
  if (r.type == RecordType::kStorage || r.type == RecordType::kSession) {
    if (r.machine.value >= 1 && r.machine.value <= api_.size())
      api_[r.machine.value - 1].add(r.t);
  } else if (r.type == RecordType::kRpc) {
    if (r.shard.value >= 1 && r.shard.value <= shard_.size())
      shard_[r.shard.value - 1].add(r.t);
  }
}

std::vector<LoadBalanceAnalyzer::BinLoad> LoadBalanceAnalyzer::bin_loads(
    const std::vector<TimeBinSeries>& series) const {
  std::vector<BinLoad> out;
  if (series.empty()) return out;
  const std::size_t bins = series.front().bins();
  out.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    RunningStats rs;
    for (const TimeBinSeries& s : series) rs.add(s.value(b));
    out.push_back(BinLoad{rs.mean(), rs.stddev()});
  }
  return out;
}

std::vector<LoadBalanceAnalyzer::BinLoad>
LoadBalanceAnalyzer::api_load_hourly() const {
  return bin_loads(api_);
}

std::vector<LoadBalanceAnalyzer::BinLoad>
LoadBalanceAnalyzer::shard_load_minutely() const {
  return bin_loads(shard_);
}

double LoadBalanceAnalyzer::short_term_cv(
    const std::vector<TimeBinSeries>& series) const {
  RunningStats cvs;
  for (const BinLoad& bin : bin_loads(series)) {
    if (bin.mean > 0) cvs.add(bin.stddev / bin.mean);
  }
  return cvs.mean();
}

double LoadBalanceAnalyzer::long_term_cv(
    const std::vector<TimeBinSeries>& series) const {
  RunningStats totals;
  for (const TimeBinSeries& s : series) {
    double total = 0;
    for (std::size_t b = 0; b < s.bins(); ++b) total += s.value(b);
    totals.add(total);
  }
  return totals.mean() > 0 ? totals.stddev() / totals.mean() : 0.0;
}

double LoadBalanceAnalyzer::api_short_term_cv() const {
  return short_term_cv(api_);
}

double LoadBalanceAnalyzer::shard_short_term_cv() const {
  return short_term_cv(shard_);
}

double LoadBalanceAnalyzer::shard_long_term_cv() const {
  return long_term_cv(shard_);
}

double LoadBalanceAnalyzer::api_long_term_cv() const {
  return long_term_cv(api_);
}

}  // namespace u1
