#include "improve/anomaly_guard.hpp"

#include <stdexcept>

namespace u1 {

AnomalyGuard::AnomalyGuard(const AnomalyGuardConfig& config)
    : config_(config) {
  if (config.window <= 0 || config.rate_threshold <= 1.0 ||
      config.concentration_threshold <= 0 ||
      config.concentration_threshold > 1 || config.baseline_alpha <= 0 ||
      config.baseline_alpha > 1)
    throw std::invalid_argument("AnomalyGuardConfig: invalid");
}

void AnomalyGuard::roll_window(SimTime now) {
  while (!window_.empty() && window_.front().first <= now - config_.window) {
    const UserId user = window_.front().second;
    const auto it = per_user_.find(user);
    if (it != per_user_.end()) {
      if (--it->second == 0) per_user_.erase(it);
    }
    window_.pop_front();
  }
  // Fold completed windows into the baseline EWMA.
  if (last_roll_ == 0) {
    last_roll_ = now;
    return;
  }
  while (now - last_roll_ >= config_.window) {
    const double current = static_cast<double>(window_.size());
    // Anomalous windows must not poison the baseline: an attacker who is
    // allowed to run for a while would otherwise teach the detector that
    // the flood is normal.
    const bool anomalous =
        baseline_ > 0 && current > config_.rate_threshold * baseline_;
    if (!anomalous) {
      baseline_ = (1.0 - config_.baseline_alpha) * baseline_ +
                  config_.baseline_alpha * current;
    }
    last_roll_ += config_.window;
  }
}

std::optional<UserId> AnomalyGuard::observe(const TraceRecord& record) {
  if (record.type != RecordType::kSession) return std::nullopt;
  if (record.session_event != SessionEvent::kAuthRequest &&
      record.session_event != SessionEvent::kOpen)
    return std::nullopt;

  roll_window(record.t);
  window_.emplace_back(record.t, record.user);
  ++per_user_[record.user];

  if (window_.size() < config_.min_requests) return std::nullopt;
  if (baseline_ <= 0) return std::nullopt;
  if (static_cast<double>(window_.size()) <
      config_.rate_threshold * baseline_)
    return std::nullopt;

  // Rate anomaly: look for the concentrating account.
  const double total = static_cast<double>(window_.size());
  for (const auto& [user, count] : per_user_) {
    if (static_cast<double>(count) / total <
        config_.concentration_threshold)
      continue;
    // Debounce: one alert per user per hour.
    const auto flagged = recently_flagged_.find(user);
    if (flagged != recently_flagged_.end() &&
        record.t - flagged->second < kHour)
      return std::nullopt;
    recently_flagged_[user] = record.t;
    ++alerts_;
    return user;
  }
  return std::nullopt;
}

}  // namespace u1
