// Deterministic shard-parallel simulation engine.
//
// The sequential Simulation runs every client against one global event
// queue; at 10k+ users the queue and the single timeline are the
// bottleneck. ParallelSimulation partitions the population into G shard
// groups (G = backend.shards, same user-id hash the metadata router
// uses), gives each group its own complete back-end, event queue, forked
// RNG stream and trace buffer, and advances all groups over bounded time
// epochs of one simulated hour:
//
//   epoch e:  workers claim groups and run their queues up to (e+1)*1h
//   barrier:  (sequential) merge dedup op logs in group order,
//             absorb content-pool views, merge + emit trace chunks,
//             feed the anomaly guard, deliver cross-group commands
//
// Everything a worker touches during an epoch is group-private or frozen
// (models are const and take the caller's RNG; the shared dedup registry
// and content pool are epoch-frozen behind per-group overlays). The merge
// at each barrier is a deterministic function of the per-group streams —
// replayed in fixed group order — so the emitted trace and the final
// report are byte-identical for ANY worker-thread count, including one.
// The single-threaded run (threads <= 1 executes groups inline, in order)
// is therefore the correctness oracle for every parallel run.
//
// Cross-group traffic and its cost:
//  - share grants (~1.8% of users): resolved at setup by ghost-registering
//    the owner in the recipient's group back-end (sequential, pre-trace);
//  - global dedup: bounded staleness — a blob first seen by group A in
//    epoch e dedups for other groups from e+1 (at most 1 simulated hour);
//  - DDoS bot fleets: an attack's abused account pins the whole attack
//    (launch, bots, manual response) to one group — single-account traffic
//    is single-shard by construction;
//  - AnomalyGuard purges: detected on the merged stream at the barrier,
//    delivered through a per-group mailbox at the next epoch boundary.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "improve/anomaly_guard.hpp"
#include "server/backend.hpp"
#include "sim/client_agent.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "store/dedup_overlay.hpp"
#include "trace/sink.hpp"
#include "workload/ddos.hpp"

namespace u1 {

class ParallelSimulation {
 public:
  /// threads == 0 resolves to std::thread::hardware_concurrency().
  /// threads <= 1 runs the same epoch/merge machinery inline — the
  /// deterministic oracle every multi-threaded run must match.
  ParallelSimulation(const SimulationConfig& config, TraceSink& sink,
                     std::size_t threads = 0);
  ~ParallelSimulation();

  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  /// Runs to completion and returns the report. Call once.
  SimulationReport run();

  std::size_t group_count() const noexcept { return groups_.size(); }
  std::size_t threads() const noexcept { return threads_; }

  /// Per-group back-end (post-run introspection).
  const U1Backend& backend(std::size_t group) const;
  /// All per-group metadata stores; analysis overloads aggregate these.
  std::vector<const MetadataStore*> stores() const;
  /// The merged global dedup registry (what contents() was on Simulation).
  const ContentRegistry& contents() const noexcept;
  /// Blobs whose last references were dropped by different groups within
  /// one epoch (GC'd at the merge, invisible to any single group).
  std::uint64_t cross_group_dead_blobs() const noexcept {
    return cross_group_dead_blobs_;
  }

 private:
  struct Bot {
    std::size_t attack = 0;  // global attack index
    SessionId session;
    bool connected = false;
    int failures = 0;
  };

  struct AttackRuntime {
    DdosAttackSpec spec;
    UserId account;
    NodeId payload_node;
    std::size_t group = 0;
    bool purged = false;
  };

  struct Ev {
    enum class Kind : std::uint8_t {
      kAgent,        // index: group-local agent
      kBot,          // index: group-local bot
      kMaintenance,  // hourly housekeeping on this group's back-end
      kDdosStart,    // index: global attack
      kDdosResponse, // index: global attack (manual response path)
      kFault,        // index: into fault_schedule_ (delivered to EVERY group)
    };
    Kind kind;
    std::size_t index = 0;
  };

  struct Group {
    std::unique_ptr<U1Backend> backend;
    std::unique_ptr<ContentPoolView> pool_view;
    /// Per-group fault stream, forked from the schedule seed so the
    /// in-window probabilistic draws are group-local (thread-invariant).
    std::unique_ptr<FaultInjector> injector;
    std::vector<std::unique_ptr<ClientAgent>> agents;
    std::vector<Bot> bots;
    EventQueue<Ev> queue;
    Rng rng;
    InMemorySink trace;
    /// Cross-group commands delivered at the epoch boundary (currently:
    /// anomaly-guard purges of accounts homed in this group).
    std::vector<UserId> purge_mailbox;
    std::uint64_t agent_wakeups = 0;
    std::uint64_t ddos_attacks = 0;
  };

  std::size_t group_of(UserId user) const noexcept;
  void build_groups();
  void register_population();
  void grant_shares();
  void bootstrap_phase();
  void schedule_population_start();
  void run_group_epoch(std::size_t group, SimTime limit);

  // Persistent worker pool (threads_ >= 2): workers park on the start
  // barrier between epochs, claim groups via an atomic counter during an
  // epoch, and meet the coordinator on the done barrier — the epoch
  // barrier of the design.
  void start_workers(std::size_t n);
  void stop_workers();
  void worker_loop();
  void run_epoch_pooled(SimTime limit);
  /// Sequential barrier work: dedup/pool/trace merge, guard, mailboxes.
  void merge_epoch(SimTime epoch_end);
  /// Concatenates the per-group trace chunks in group order, stable-sorts
  /// by timestamp (ties resolve to group order, then emission order) and
  /// streams the result to the user's sink.
  void flush_traces();

  SimTime bot_wake(Group& grp, std::size_t bot_index, SimTime now);
  void launch_attack(Group& grp, std::size_t attack_index, SimTime now);
  void respond_to_attack(std::size_t attack_index, SimTime now);

  SimulationConfig config_;
  TraceSink* sink_;
  std::size_t threads_;
  Rng rng_;  // master stream: sequential setup only

  // Shared, frozen-during-epoch workload machinery.
  FileModel file_model_;
  std::unique_ptr<ContentPool> content_pool_;
  UserModel user_model_;
  TransitionModel transition_model_;
  DiurnalModel diurnal_;
  BurstProcess bursts_;

  /// One schedule, shared by all groups; every group applies every event
  /// to its own back-end (group 0 alone emits the kFault trace records).
  FaultSchedule fault_schedule_;

  std::unique_ptr<SharedDedup> shared_dedup_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<AttackRuntime> attacks_;
  std::unique_ptr<AnomalyGuard> guard_;
  std::vector<TraceRecord> merge_scratch_;

  /// Where each uid lives: (group, group-local agent index), uid-1 keyed.
  struct HomeRef {
    std::size_t group = 0;
    std::size_t index = 0;
  };
  std::vector<HomeRef> home_;
  std::vector<VolumeId> root_volume_;  // uid-1 keyed, for share grants

  // Worker pool state.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> epoch_start_;
  std::unique_ptr<std::barrier<>> epoch_done_;
  std::atomic<std::size_t> next_group_{0};
  std::atomic<bool> stop_{false};
  SimTime epoch_limit_ = 0;
  std::exception_ptr worker_error_;
  std::mutex worker_error_mu_;

  SimulationReport report_;
  std::uint64_t cross_group_dead_blobs_ = 0;
  bool ran_ = false;
};

}  // namespace u1
