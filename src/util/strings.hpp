// Small string helpers shared by the CSV layer, trace parser and reports.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace u1 {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Strict integer / double parsing; std::nullopt on any trailing garbage.
std::optional<std::int64_t> parse_i64(std::string_view text);
std::optional<double> parse_double(std::string_view text);

/// "12.3 MB", "980 KB", "1.2 GB" — used in reports; 1 KB = 1024 bytes.
std::string format_bytes(double bytes);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view text);

}  // namespace u1
