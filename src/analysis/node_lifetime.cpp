#include "analysis/node_lifetime.hpp"

#include <algorithm>

namespace u1 {

void NodeLifetimeAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;

  if (r.api_op == ApiOp::kMake) {
    Born born;
    born.at = r.t;
    born.parent = r.parent;
    born.volume = r.volume;
    born.is_dir = r.is_dir;
    alive_[r.node] = born;
    by_volume_[r.volume].push_back(r.node);
    if (!r.parent.is_nil()) children_[r.parent].push_back(r.node);
    if (r.is_dir) {
      ++dirs_created_;
    } else {
      ++files_created_;
    }
    return;
  }

  if (r.api_op == ApiOp::kUnlink) {
    if (r.is_dir) {
      kill_subtree(r.node, r.t);
    } else {
      kill_node(r.node, r.t);
    }
    return;
  }

  if (r.api_op == ApiOp::kDeleteVolume) {
    const auto it = by_volume_.find(r.volume);
    if (it == by_volume_.end()) return;
    // Copy: kill_node mutates by_volume_ bookkeeping indirectly.
    const std::vector<NodeId> doomed = it->second;
    for (const NodeId& n : doomed) kill_node(n, r.t);
    by_volume_.erase(r.volume);
  }
}

void NodeLifetimeAnalyzer::kill_node(NodeId node, SimTime at) {
  const auto it = alive_.find(node);
  if (it == alive_.end()) return;
  const double life = to_seconds(at - it->second.at);
  if (it->second.is_dir) {
    dir_lifetimes_.push_back(life);
  } else {
    file_lifetimes_.push_back(life);
  }
  alive_.erase(it);
}

void NodeLifetimeAnalyzer::kill_subtree(NodeId dir, SimTime at) {
  kill_node(dir, at);
  const auto it = children_.find(dir);
  if (it == children_.end()) return;
  const std::vector<NodeId> kids = it->second;
  children_.erase(it);
  for (const NodeId& child : kids) kill_subtree(child, at);
}

double NodeLifetimeAnalyzer::file_deleted_fraction(SimTime within) const {
  if (files_created_ == 0) return 0.0;
  const double cutoff = to_seconds(within);
  const auto n = std::count_if(file_lifetimes_.begin(), file_lifetimes_.end(),
                               [&](double l) { return l <= cutoff; });
  return static_cast<double>(n) / static_cast<double>(files_created_);
}

double NodeLifetimeAnalyzer::dir_deleted_fraction(SimTime within) const {
  if (dirs_created_ == 0) return 0.0;
  const double cutoff = to_seconds(within);
  const auto n = std::count_if(dir_lifetimes_.begin(), dir_lifetimes_.end(),
                               [&](double l) { return l <= cutoff; });
  return static_cast<double>(n) / static_cast<double>(dirs_created_);
}

}  // namespace u1
