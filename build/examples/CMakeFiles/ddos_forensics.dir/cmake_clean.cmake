file(REMOVE_RECURSE
  "CMakeFiles/ddos_forensics.dir/ddos_forensics.cpp.o"
  "CMakeFiles/ddos_forensics.dir/ddos_forensics.cpp.o.d"
  "ddos_forensics"
  "ddos_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
