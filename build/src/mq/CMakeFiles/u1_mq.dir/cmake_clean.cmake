file(REMOVE_RECURSE
  "CMakeFiles/u1_mq.dir/message_queue.cpp.o"
  "CMakeFiles/u1_mq.dir/message_queue.cpp.o.d"
  "libu1_mq.a"
  "libu1_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
