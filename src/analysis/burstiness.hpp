// Burstiness of user operations (paper §6.2, Fig. 9): per-user
// inter-operation times for Upload and Unlink, their time-series, the
// power-law approximation P(x) ~ x^-alpha for x > theta (paper: Upload
// alpha=1.54 theta=41.37; Unlink alpha=1.44 theta=19.51) and the CV^2
// burstiness indicator vs the Poisson hypothesis.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/powerlaw.hpp"
#include "trace/sink.hpp"

namespace u1 {

class BurstinessAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  /// Inter-op times (seconds), in arrival order (the Fig. 9a series).
  const std::vector<double>& upload_gaps() const noexcept {
    return upload_gaps_;
  }
  const std::vector<double>& unlink_gaps() const noexcept {
    return unlink_gaps_;
  }

  /// Power-law fit over the central region of the distribution, as the
  /// paper does ("can be only approximated ... for a central region of
  /// the domain"): gaps beyond `cap_s` (reconnect cycles spanning days)
  /// are excluded before fitting.
  PowerLawFit upload_fit(double cap_s = 4.0 * 3600.0) const;
  PowerLawFit unlink_fit(double cap_s = 4.0 * 3600.0) const;

  double upload_cv2() const { return cv_squared(upload_gaps_); }
  double unlink_cv2() const { return cv_squared(unlink_gaps_); }

 private:
  struct LastSeen {
    SimTime upload = -1;
    SimTime unlink = -1;
  };
  std::unordered_map<UserId, LastSeen> last_;
  std::vector<double> upload_gaps_;
  std::vector<double> unlink_gaps_;
};

}  // namespace u1
