file(REMOVE_RECURSE
  "CMakeFiles/server_tests.dir/server/backend_test.cpp.o"
  "CMakeFiles/server_tests.dir/server/backend_test.cpp.o.d"
  "CMakeFiles/server_tests.dir/server/fleet_test.cpp.o"
  "CMakeFiles/server_tests.dir/server/fleet_test.cpp.o.d"
  "server_tests"
  "server_tests.pdb"
  "server_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
