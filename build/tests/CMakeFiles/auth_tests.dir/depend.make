# Empty dependencies file for auth_tests.
# This may be replaced when dependencies are built.
