#include "proto/control.hpp"

#include <bit>
#include <cassert>

#include "proto/wire.hpp"

namespace u1 {
namespace {

using wire::Cursor;
using wire::get_le16;
using wire::get_le32;
using wire::put_le16;
using wire::put_le32;
using wire::put_raw;
using wire::put_varint;
using wire::unzigzag;
using wire::zigzag;

/// Sanity cap on element counts so a hostile varint cannot drive a
/// multi-gigabyte reserve before the bounds checks catch up. Every list
/// element costs at least one payload byte, so the frame cap is a valid
/// bound too; this one is simply tighter for the group-indexed lists.
constexpr std::uint64_t kMaxGroups = 1u << 16;

void put_blob(std::vector<std::uint8_t>& out,
              const std::vector<std::uint8_t>& blob) {
  put_varint(out, blob.size());
  put_raw(out, blob.data(), blob.size());
}

bool get_blob(Cursor& c, std::vector<std::uint8_t>& out) {
  const std::uint64_t n = c.varint();
  if (!c.ok || n > static_cast<std::uint64_t>(c.end - c.p)) {
    c.ok = false;
    return false;
  }
  const std::uint8_t* p = c.take(static_cast<std::size_t>(n));
  if (!p) return false;
  out.assign(p, p + n);
  return true;
}

bool get_blob_list(Cursor& c, std::vector<std::vector<std::uint8_t>>& out) {
  const std::uint64_t n = c.varint();
  if (!c.ok || n > kMaxGroups) {
    c.ok = false;
    return false;
  }
  out.clear();
  out.resize(static_cast<std::size_t>(n));
  for (auto& blob : out)
    if (!get_blob(c, blob)) return false;
  return true;
}

void put_blob_list(std::vector<std::uint8_t>& out,
                   const std::vector<std::vector<std::uint8_t>>& blobs) {
  put_varint(out, blobs.size());
  for (const auto& blob : blobs) put_blob(out, blob);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

bool get_f64(Cursor& c, double& out) {
  const std::uint8_t* p = c.take(8);
  if (!p) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  out = std::bit_cast<double>(bits);
  return true;
}

/// Shared decoder tail: every field consumed cleanly, no slack allowed.
Status finish(const Cursor& c) {
  if (!c.ok) return Status::kBadFrame;
  if (c.p != c.end) return Status::kSlackPayload;
  return Status::kOk;
}

}  // namespace

void append_control_frame(std::vector<std::uint8_t>& out, ProtoOp op,
                          const std::vector<std::uint8_t>& payload) {
  assert(is_control_op(op));
  const std::uint32_t len =
      static_cast<std::uint32_t>(2 + 1 + payload.size());
  put_le32(out, len);
  put_le16(out, kProtoVersion);
  out.push_back(static_cast<std::uint8_t>(op));
  put_raw(out, payload.data(), payload.size());
}

FrameDecode split_control_frame(const std::uint8_t* data, std::size_t n,
                                ProtoOp& op,
                                std::span<const std::uint8_t>& payload) {
  FrameDecode result;
  if (n < 4) {
    result.need_more = true;
    return result;
  }
  const std::uint32_t len = get_le32(data);
  if (len > kMaxControlFrameBytes) {
    // Unrecoverable: no later length prefix can be trusted. consumed
    // stays 0 — drop the connection.
    result.status = Status::kOversizedFrame;
    return result;
  }
  if (n < 4u + len) {
    result.need_more = true;
    return result;
  }
  result.consumed = 4u + len;
  if (len < 3) {
    result.status = Status::kBadFrame;
    return result;
  }
  if (get_le16(data + 4) != kProtoVersion) {
    result.status = Status::kVersionMismatch;
    return result;
  }
  const auto decoded = control_op_from_wire(data[6]);
  if (!decoded) {
    result.status = Status::kUnknownOp;
    return result;
  }
  op = *decoded;
  payload = {data + 7, len - 3u};
  return result;
}

// --- EpochBegin ------------------------------------------------------------

std::vector<std::uint8_t> encode_epoch_begin(const EpochBeginMsg& m) {
  std::vector<std::uint8_t> out;
  put_varint(out, m.seq);
  out.push_back(m.tail ? 1 : 0);
  put_blob_list(out, m.dedup_logs);
  put_blob_list(out, m.pool_deltas);
  return out;
}

Status decode_epoch_begin(std::span<const std::uint8_t> payload,
                          EpochBeginMsg& out) {
  out = EpochBeginMsg{};
  Cursor c{payload.data(), payload.data() + payload.size()};
  out.seq = c.varint();
  const std::uint8_t tail = c.u8();
  if (tail > 1) return Status::kBadFrame;
  out.tail = tail != 0;
  if (!get_blob_list(c, out.dedup_logs)) return Status::kBadFrame;
  if (!get_blob_list(c, out.pool_deltas)) return Status::kBadFrame;
  if (out.dedup_logs.size() != out.pool_deltas.size())
    return Status::kBadFrame;
  return finish(c);
}

// --- MailboxBatch ----------------------------------------------------------

std::vector<std::uint8_t> encode_mailbox_batch(const MailboxBatchMsg& m) {
  std::vector<std::uint8_t> out;
  put_varint(out, m.seq);
  put_varint(out, m.entries.size());
  for (const MailboxEntry& e : m.entries) {
    put_varint(out, e.lane);
    put_varint(out, e.value);
  }
  return out;
}

Status decode_mailbox_batch(std::span<const std::uint8_t> payload,
                            MailboxBatchMsg& out) {
  out = MailboxBatchMsg{};
  Cursor c{payload.data(), payload.data() + payload.size()};
  out.seq = c.varint();
  const std::uint64_t n = c.varint();
  // Two varints per entry, one byte each minimum: bound the reserve by
  // what the payload could possibly hold.
  if (!c.ok || n > static_cast<std::uint64_t>(c.end - c.p))
    return Status::kBadFrame;
  out.entries.resize(static_cast<std::size_t>(n));
  for (MailboxEntry& e : out.entries) {
    const std::uint64_t lane = c.varint();
    if (lane > kMaxGroups) return Status::kBadFrame;
    e.lane = static_cast<std::uint32_t>(lane);
    e.value = c.varint();
  }
  return finish(c);
}

// --- EpochDone -------------------------------------------------------------

std::vector<std::uint8_t> encode_epoch_done(const EpochDoneMsg& m) {
  std::vector<std::uint8_t> out;
  put_varint(out, m.seq);
  out.push_back(m.tail ? 1 : 0);
  put_varint(out, m.first_group);
  put_blob_list(out, m.dedup_logs);
  put_blob_list(out, m.pool_deltas);
  put_varint(out, m.feed.size());
  for (const GuardFeedEntry& e : m.feed) {
    put_varint(out, zigzag(e.t));
    put_varint(out, e.user);
    out.push_back(e.session_event);
  }
  return out;
}

Status decode_epoch_done(std::span<const std::uint8_t> payload,
                         EpochDoneMsg& out) {
  out = EpochDoneMsg{};
  Cursor c{payload.data(), payload.data() + payload.size()};
  out.seq = c.varint();
  const std::uint8_t tail = c.u8();
  if (tail > 1) return Status::kBadFrame;
  out.tail = tail != 0;
  const std::uint64_t first = c.varint();
  if (!c.ok || first > kMaxGroups) return Status::kBadFrame;
  out.first_group = static_cast<std::uint32_t>(first);
  if (!get_blob_list(c, out.dedup_logs)) return Status::kBadFrame;
  if (!get_blob_list(c, out.pool_deltas)) return Status::kBadFrame;
  if (out.dedup_logs.size() != out.pool_deltas.size())
    return Status::kBadFrame;
  const std::uint64_t n = c.varint();
  // >= 3 bytes per feed entry; the remaining-payload bound caps the
  // resize before a hostile count can allocate.
  if (!c.ok || n > static_cast<std::uint64_t>(c.end - c.p))
    return Status::kBadFrame;
  out.feed.resize(static_cast<std::size_t>(n));
  for (GuardFeedEntry& e : out.feed) {
    e.t = unzigzag(c.varint());
    e.user = c.varint();
    e.session_event = c.u8();
  }
  return finish(c);
}

// --- ChunkMeta -------------------------------------------------------------

std::vector<std::uint8_t> encode_chunk_meta(const ChunkMetaMsg& m) {
  std::vector<std::uint8_t> out;
  put_varint(out, m.seq);
  put_varint(out, m.counters.size());
  for (const std::uint64_t v : m.counters) put_varint(out, v);
  put_varint(out, m.timings.size());
  for (const double v : m.timings) put_f64(out, v);
  return out;
}

Status decode_chunk_meta(std::span<const std::uint8_t> payload,
                         ChunkMetaMsg& out) {
  out = ChunkMetaMsg{};
  Cursor c{payload.data(), payload.data() + payload.size()};
  out.seq = c.varint();
  const std::uint64_t nc = c.varint();
  if (!c.ok || nc > static_cast<std::uint64_t>(c.end - c.p))
    return Status::kBadFrame;
  out.counters.resize(static_cast<std::size_t>(nc));
  for (std::uint64_t& v : out.counters) v = c.varint();
  const std::uint64_t nt = c.varint();
  if (!c.ok || nt > static_cast<std::uint64_t>(c.end - c.p) / 8)
    return Status::kBadFrame;
  out.timings.resize(static_cast<std::size_t>(nt));
  for (double& v : out.timings)
    if (!get_f64(c, v)) return Status::kBadFrame;
  return finish(c);
}

// --- Shutdown --------------------------------------------------------------

std::vector<std::uint8_t> encode_shutdown(const ShutdownMsg& m) {
  std::vector<std::uint8_t> out;
  put_varint(out, m.code);
  put_varint(out, m.message.size());
  put_raw(out, reinterpret_cast<const std::uint8_t*>(m.message.data()),
          m.message.size());
  return out;
}

Status decode_shutdown(std::span<const std::uint8_t> payload,
                       ShutdownMsg& out) {
  out = ShutdownMsg{};
  Cursor c{payload.data(), payload.data() + payload.size()};
  const std::uint64_t code = c.varint();
  if (!c.ok || code > 0xffffffffull) return Status::kBadFrame;
  out.code = static_cast<std::uint32_t>(code);
  const std::uint64_t n = c.varint();
  if (!c.ok || n > static_cast<std::uint64_t>(c.end - c.p))
    return Status::kBadFrame;
  const std::uint8_t* p = c.take(static_cast<std::size_t>(n));
  if (!p) return Status::kBadFrame;
  out.message.assign(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
  return finish(c);
}

}  // namespace u1
