// Indirection seam in front of the content-dedup registry. The metadata
// store talks to its dedup index exclusively through this interface so an
// execution engine can substitute a different implementation — notably the
// shard-parallel engine, which gives every shard group an epoch-consistent
// overlay over one shared global registry (see store/dedup_overlay.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "proto/ids.hpp"

namespace u1 {

struct ContentInfo;

class DedupProxy {
 public:
  virtual ~DedupProxy() = default;

  /// dal.get_reusable_content: is this (hash, size) already stored?
  virtual std::optional<ContentInfo> lookup(const ContentId& id,
                                            std::uint64_t size_bytes) const = 0;
  /// Registers new content; false if it already existed.
  virtual bool insert(const ContentId& id, std::uint64_t size_bytes,
                      std::string s3_key) = 0;
  /// Adds one node reference.
  virtual void link(const ContentId& id) = 0;
  /// Drops one reference; returns the blob when the count hits zero.
  virtual std::optional<ContentInfo> unlink(const ContentId& id) = 0;
  /// Physically removes a zero-refcount entry (post data-store delete).
  virtual void erase(const ContentId& id) = 0;
};

}  // namespace u1
