// Binary columnar logfile format: round-trip fidelity, mixed-format
// directory merging, and hostile-input rejection (every corruption is
// counted in ReadStats, never UB — this file is the ASan/UBSan probe for
// the bounds-checked decoder).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/binlog.hpp"
#include "trace/logfile.hpp"
#include "trace/sink.hpp"

namespace u1 {
namespace {

/// A record exercising every column the given type carries.
TraceRecord sample(std::size_t i, RecordType type, std::uint64_t machine = 1,
                   std::uint64_t process = 7) {
  TraceRecord r;
  r.t = static_cast<SimTime>(i + 1) * kMinute;
  r.type = type;
  r.machine = MachineId{machine};
  r.process = ProcessId{process};
  r.user = UserId{100 + i};
  r.session = SessionId{200 + i};
  switch (type) {
    case RecordType::kSession:
      r.session_event = SessionEvent::kOpen;
      r.duration = static_cast<SimTime>(1000 + i);
      break;
    case RecordType::kStorage:
    case RecordType::kStorageDone:
      r.api_op = ApiOp::kPutContent;
      r.node.bytes[0] = static_cast<std::uint8_t>(i + 1);
      r.node.bytes[15] = 0xaa;
      r.parent.bytes[3] = static_cast<std::uint8_t>(i + 2);
      r.volume.bytes[7] = 0x42;
      r.content.bytes[0] = static_cast<std::uint8_t>(i + 3);
      r.content.bytes[19] = 0x7f;
      r.size_bytes = 1000 + 13 * i;
      r.transferred_bytes = type == RecordType::kStorageDone ? 1000 + 13 * i
                                                             : 0;
      r.set_extension(i % 2 == 0 ? "jpg" : "pdf");
      r.is_update = (i % 2) != 0;
      r.is_dir = false;
      r.deduplicated = (i % 3) == 0;
      r.failed = (i % 5) == 0;
      if (type == RecordType::kStorageDone)
        r.duration = static_cast<SimTime>(5000 + i);
      break;
    case RecordType::kRpc:
      r.rpc_op = RpcOp::kMakeContent;
      r.shard = ShardId{i % 10};
      r.service_time = static_cast<std::uint32_t>(300 + i);
      break;
    case RecordType::kFault:
      r.set_fault("outage#3:begin");
      r.shard = ShardId{2};
      r.duration = 2 * kMinute;
      break;
  }
  return r;
}

std::string csv_of(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const TraceRecord& r : records) r.append_csv_row(out);
  return out;
}

class BinlogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("u1sim_binlogtest_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path only_file(std::string_view ext) const {
    for (const auto& e : std::filesystem::directory_iterator(dir_))
      if (e.path().extension() == ext) return e.path();
    ADD_FAILURE() << "no " << ext << " file in " << dir_;
    return {};
  }

  /// Writes one multi-record file covering every record type; returns
  /// the records in write order.
  std::vector<TraceRecord> write_sample_file(std::size_t stripe_records = 64) {
    std::vector<TraceRecord> records;
    for (std::size_t i = 0; i < 10; ++i)
      records.push_back(
          sample(i, static_cast<RecordType>(i % kRecordTypeCount)));
    BinaryLogfileWriter writer(dir_);
    writer.set_stripe_records(stripe_records);
    writer.append_batch(records.data(), records.size());
    EXPECT_EQ(writer.files_written(), 1u);
    writer.close();
    EXPECT_EQ(writer.files_written(), 0u);
    EXPECT_EQ(writer.records_written(), records.size());
    EXPECT_GT(writer.bytes_written(), 0u);
    return records;
  }

  std::filesystem::path dir_;
};

TEST_F(BinlogTest, RoundTripsEveryRecordType) {
  const auto records = write_sample_file();
  std::vector<TraceRecord> decoded;
  const ReadStats stats = read_binary_logfile(only_file(".u1b"), decoded);
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.files_binary, 1u);
  EXPECT_EQ(stats.rows, records.size());
  EXPECT_EQ(stats.parsed, records.size());
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
  // Field-for-field equality, including the original interleaved order,
  // via the canonical CSV serialization (TraceRecord has no operator==).
  EXPECT_EQ(csv_of(decoded), csv_of(records));
}

TEST_F(BinlogTest, MultiStripeFilesPreserveOrder) {
  const auto records = write_sample_file(/*stripe_records=*/3);
  std::vector<TraceRecord> decoded;
  const ReadStats stats = read_binary_logfile(only_file(".u1b"), decoded);
  EXPECT_EQ(stats.parsed, records.size());
  EXPECT_EQ(csv_of(decoded), csv_of(records));
}

TEST_F(BinlogTest, ShardsByMachineProcessDayLikeCsv) {
  BinaryLogfileWriter writer(dir_);
  writer.append(sample(0, RecordType::kStorage, 1, 1));
  writer.append(sample(1, RecordType::kStorage, 1, 1));  // same file
  writer.append(sample(0, RecordType::kStorage, 1, 2));  // other process
  writer.append(sample(0, RecordType::kStorage, 2, 1));  // other machine
  TraceRecord next_day = sample(0, RecordType::kStorage, 1, 1);
  next_day.t += kDay;
  writer.append(next_day);
  EXPECT_EQ(writer.files_written(), 4u);
  writer.close();
  std::size_t logs = 0, sidecars = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    EXPECT_TRUE(e.path().filename().string().starts_with("production-"));
    if (e.path().extension() == ".u1b") ++logs;
    if (e.path().extension() == ".u1s") ++sidecars;
  }
  EXPECT_EQ(logs, 4u);
  EXPECT_EQ(sidecars, 4u);
}

TEST_F(BinlogTest, PreTraceRecordsShareTheEpochFile) {
  // trace_date() maps every t < 0 to the epoch date, so the writer must
  // not open a second file (clobbering the first) for bootstrap records.
  BinaryLogfileWriter writer(dir_);
  TraceRecord pre = sample(0, RecordType::kStorage);
  pre.t = -3 * kDay;
  writer.append(pre);
  writer.append(sample(1, RecordType::kStorage));
  EXPECT_EQ(writer.files_written(), 1u);
  writer.close();
  std::vector<TraceRecord> decoded;
  const ReadStats stats = read_binary_logfile(only_file(".u1b"), decoded);
  EXPECT_EQ(stats.parsed, 2u);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].t, -3 * kDay);
}

TEST_F(BinlogTest, MixedFormatDirectoryMergesInTimestampOrder) {
  {
    LogfileWriter csv(dir_);
    csv.append(sample(2, RecordType::kStorage, 1, 1));  // t = 3 min
    BinaryLogfileWriter bin(dir_);
    bin.append(sample(0, RecordType::kStorage, 2, 1));  // t = 1 min
    bin.append(sample(4, RecordType::kStorage, 2, 1));  // t = 5 min
  }
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir_, sink);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.files_binary, 1u);
  EXPECT_EQ(stats.parsed, 3u);
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(sink.records().size(), 3u);
  EXPECT_EQ(sink.records()[0].t, 1 * kMinute);
  EXPECT_EQ(sink.records()[1].t, 3 * kMinute);
  EXPECT_EQ(sink.records()[2].t, 5 * kMinute);
  EXPECT_EQ(sink.records()[0].machine.value, 2u);
  EXPECT_EQ(sink.records()[1].machine.value, 1u);
}

TEST_F(BinlogTest, MergedReadDropsPreTraceRecordsForCsvParity) {
  // The CSV text format prints t unsigned, so t < 0 records never
  // survive the text parse; the merged read drops binary-decoded ones
  // too (as malformed) so analyzers see the same stream per format.
  {
    BinaryLogfileWriter writer(dir_);
    TraceRecord pre = sample(0, RecordType::kStorage);
    pre.t = -kDay;
    writer.append(pre);
    writer.append(sample(1, RecordType::kStorage));
  }
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir_, sink);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_GT(sink.records()[0].t, 0);
  // Raw per-file access still delivers everything (convert depends on
  // this for byte-faithful transcoding).
  std::vector<TraceRecord> raw;
  EXPECT_EQ(read_binary_logfile(only_file(".u1b"), raw).parsed, 2u);
}

TEST_F(BinlogTest, BadMagicRejected) {
  std::filesystem::create_directories(dir_);
  const auto path = dir_ / "production-bogus-1-20140111.u1b";
  std::ofstream(path, std::ios::binary) << "this is not a u1b file at all";
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(path, out);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.parsed, 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(BinlogTest, TruncatedHeaderRejected) {
  write_sample_file();
  const auto path = only_file(".u1b");
  std::filesystem::resize_file(path, 8);  // magic only
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(path, out);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_TRUE(out.empty());
}

TEST_F(BinlogTest, UnsupportedVersionRejected) {
  write_sample_file();
  const auto path = only_file(".u1b");
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);  // version field
  const char v99 = 99;
  f.write(&v99, 1);
  f.close();
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(path, out);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_TRUE(out.empty());
}

TEST_F(BinlogTest, TruncatedTailLosesOnlyOverlappedStripes) {
  const auto records = write_sample_file(/*stripe_records=*/4);  // 4+4+2
  const auto path = only_file(".u1b");
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);  // cut into last stripe
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(path, out);
  EXPECT_EQ(stats.rows, records.size());
  EXPECT_EQ(stats.parsed, 8u);  // the two intact stripes
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(stats.checksum_failures, 0u);  // truncation, not corruption
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(csv_of(out),
            csv_of({records.begin(), records.begin() + 8}));
}

TEST_F(BinlogTest, CorruptedChecksumRejectsWholeFile) {
  const auto records = write_sample_file();
  const auto path = only_file(".u1b");
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(64 + 30);  // somewhere in the payload
  const char junk = '\x5a';
  f.write(&junk, 1);
  f.close();
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(path, out);
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.malformed, records.size());
  EXPECT_EQ(stats.parsed, 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(BinlogTest, MissingSidecarRejectsWholeFile) {
  const auto records = write_sample_file();
  std::filesystem::remove(only_file(".u1s"));
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(only_file(".u1b"), out);
  EXPECT_EQ(stats.malformed, records.size());
  EXPECT_EQ(stats.parsed, 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(BinlogTest, CorruptedSidecarRejectsWholeFile) {
  const auto records = write_sample_file();
  const auto sidecar = only_file(".u1s");
  std::fstream f(sidecar, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(48);  // first payload byte (a symbol length prefix)
  const char junk = '\xff';
  f.write(&junk, 1);
  f.close();
  std::vector<TraceRecord> out;
  const ReadStats stats = read_binary_logfile(only_file(".u1b"), out);
  EXPECT_EQ(stats.malformed, records.size());
  EXPECT_EQ(stats.parsed, 0u);
}

TEST_F(BinlogTest, CorruptFileDoesNotPoisonTheDirectory) {
  // One good CSV file plus one corrupt binary file: the merge keeps the
  // good records and counts the bad file's in stats.
  {
    LogfileWriter csv(dir_);
    csv.append(sample(0, RecordType::kStorage, 1, 1));
    BinaryLogfileWriter bin(dir_);
    bin.append(sample(1, RecordType::kStorage, 2, 1));
  }
  const auto path = only_file(".u1b");
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(70);
  const char junk = '\x13';
  f.write(&junk, 1);
  f.close();
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir_, sink);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].machine.value, 1u);
}

TEST_F(BinlogTest, ReadLogfileSniffsMagic) {
  // read_logfile dispatches on leading bytes, not extension.
  const auto records = write_sample_file();
  std::vector<TraceRecord> out;
  const ReadStats stats = read_logfile(only_file(".u1b"), out);
  EXPECT_EQ(stats.files_binary, 1u);
  EXPECT_EQ(stats.parsed, records.size());
}

TEST_F(BinlogTest, FormatSelection) {
  EXPECT_EQ(trace_format_from_string("csv"), TraceFormat::kCsv);
  EXPECT_EQ(trace_format_from_string("bin"), TraceFormat::kBinary);
  EXPECT_EQ(trace_format_from_string("binary"), TraceFormat::kBinary);
  EXPECT_EQ(trace_format_from_string("parquet"), std::nullopt);
  EXPECT_EQ(to_string(TraceFormat::kCsv), "csv");
  EXPECT_EQ(to_string(TraceFormat::kBinary), "bin");
  const auto csv = make_logfile_writer(dir_, TraceFormat::kCsv);
  const auto bin = make_logfile_writer(dir_, TraceFormat::kBinary);
  EXPECT_NE(dynamic_cast<LogfileWriter*>(csv.get()), nullptr);
  EXPECT_NE(dynamic_cast<BinaryLogfileWriter*>(bin.get()), nullptr);
}

}  // namespace
}  // namespace u1
