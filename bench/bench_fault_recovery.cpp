// Fault injection + recovery acceptance bench.
//
// Runs the standard fault plan (one auth brownout, process crash, S3
// brownout, shard failover, MQ drop storm and machine outage inside one
// week) against a 2,000-user population under the shard-parallel engine
// at 1, 2, 4 and 8 worker threads. The 1-thread run is the determinism
// oracle: the merged trace must stay byte-identical with faults ON at
// every thread count. The trace is simultaneously fed to the
// FaultRecoveryAnalyzer, and the availability / retry-amplification /
// time-to-recover picture is written to BENCH_fault.json at the repo
// root.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/fault_recovery.hpp"
#include "bench/bench_util.hpp"
#include "sim/parallel.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace {

struct RunResult {
  std::size_t threads = 0;
  double wall_seconds = 0;
  std::uint64_t records = 0;
  std::string trace_sha1;
  u1::SimulationReport report;
  u1::FaultRecoveryAnalyzer recovery;
};

std::unique_ptr<RunResult> run_once(const u1::SimulationConfig& cfg,
                                    std::size_t threads) {
  auto out = std::make_unique<RunResult>();
  u1::Sha1 hasher;
  u1::CallbackSink sink([&](const u1::TraceRecord& r) {
    ++out->records;
    for (const std::string& field : r.to_csv()) {
      hasher.update(field);
      hasher.update(",");
    }
    hasher.update("\n");
    out->recovery.append(r);
  });

  out->threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  u1::ParallelSimulation sim(cfg, sink, threads);
  out->report = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  out->wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out->trace_sha1 = hasher.finish().hex();
  return out;
}

}  // namespace

int main() {
  using namespace u1;
  using namespace u1::bench;
  auto cfg = standard_config(env_users(2000), env_days(7));
  if (cfg.faults.empty()) cfg.faults = standard_fault_plan();

  header("Fault recovery", "Standard fault plan: availability & recovery");
  std::printf("  users=%zu days=%d seed=%llu fault_specs=%zu\n", cfg.users,
              cfg.days, static_cast<unsigned long long>(cfg.seed),
              cfg.faults.specs.size());

  std::vector<std::unique_ptr<RunResult>> runs;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    runs.push_back(run_once(cfg, threads));
    const RunResult& r = *runs.back();
    std::printf("  threads=%zu  wall=%8.2fs  records=%llu  sha1=%s\n",
                r.threads, r.wall_seconds,
                static_cast<unsigned long long>(r.records),
                r.trace_sha1.c_str());
  }

  bool identical = true;
  for (const auto& r : runs) {
    if (r->trace_sha1 != runs.front()->trace_sha1 ||
        r->records != runs.front()->records)
      identical = false;
  }
  std::printf("  faulted trace byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  const RunResult& r = *runs.front();  // the 1-thread oracle
  const FaultRecoveryAnalyzer& fr = r.recovery;
  std::printf("  fault edges applied: %llu (scheduled: %llu)\n",
              static_cast<unsigned long long>(fr.fault_edges()),
              static_cast<unsigned long long>(r.report.fault_events));
  std::printf("  availability=%.4f  retry_amplification=%.3f\n",
              fr.availability(), fr.retry_amplification());
  std::printf("  sessions dropped=%llu  load-shed connects=%llu  "
              "interrupted uploads=%llu  resumed=%llu\n",
              static_cast<unsigned long long>(fr.sessions_dropped()),
              static_cast<unsigned long long>(fr.shed_connects()),
              static_cast<unsigned long long>(
                  r.report.backend.interrupted_uploads),
              static_cast<unsigned long long>(
                  r.report.backend.resumed_uploads));
  for (const FaultWindowStats& w : fr.windows()) {
    std::printf("  %-24s begin=%7.0fs dur=%6.0fs failed_ops=%6llu "
                "recover=%+.1fs\n",
                w.label.c_str(), to_seconds(w.begin),
                to_seconds(w.end - w.begin),
                static_cast<unsigned long long>(w.failed_ops_during),
                w.time_to_recover < 0 ? -1.0 : to_seconds(w.time_to_recover));
  }

#ifdef U1SIM_REPO_ROOT
  const std::string path = std::string(U1SIM_REPO_ROOT) + "/BENCH_fault.json";
#else
  const std::string path = "BENCH_fault.json";
#endif
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault_recovery\",\n");
    std::fprintf(f, "  \"users\": %zu,\n", cfg.users);
    std::fprintf(f, "  \"days\": %d,\n", cfg.days);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(f, "  \"fault_specs\": %zu,\n", cfg.faults.specs.size());
    std::fprintf(f, "  \"trace_byte_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"fault_edges\": %llu,\n",
                 static_cast<unsigned long long>(fr.fault_edges()));
    std::fprintf(f, "  \"availability\": %.6f,\n", fr.availability());
    std::fprintf(f, "  \"retry_amplification\": %.4f,\n",
                 fr.retry_amplification());
    std::fprintf(f, "  \"sessions_dropped\": %llu,\n",
                 static_cast<unsigned long long>(fr.sessions_dropped()));
    std::fprintf(f, "  \"shed_connects\": %llu,\n",
                 static_cast<unsigned long long>(fr.shed_connects()));
    std::fprintf(f, "  \"interrupted_uploads\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.report.backend.interrupted_uploads));
    std::fprintf(f, "  \"resumed_uploads\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.report.backend.resumed_uploads));
    std::fprintf(f, "  \"windows\": [\n");
    const auto& windows = fr.windows();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const FaultWindowStats& w = windows[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"begin_s\": %.0f, "
                   "\"duration_s\": %.0f, \"failed_ops\": %llu, "
                   "\"time_to_recover_s\": %.3f}%s\n",
                   w.label.c_str(), to_seconds(w.begin),
                   to_seconds(w.end - w.begin),
                   static_cast<unsigned long long>(w.failed_ops_during),
                   w.time_to_recover < 0 ? -1.0
                                         : to_seconds(w.time_to_recover),
                   i + 1 < windows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& rr = *runs[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"wall_seconds\": %.3f, "
                   "\"records\": %llu, \"trace_sha1\": \"%s\"}%s\n",
                   rr.threads, rr.wall_seconds,
                   static_cast<unsigned long long>(rr.records),
                   rr.trace_sha1.c_str(), i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", path.c_str());
  } else {
    std::printf("  could not open %s for writing\n", path.c_str());
  }
  return identical ? 0 : 1;
}
