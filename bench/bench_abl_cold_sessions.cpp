// Ablation (§7.3): cold sessions hold TCP connections without doing any
// storage work. Quantifies the connection-time the push model wastes and
// what an adaptive push/pull policy (Deolasee et al.) would reclaim.
#include "analysis/sessions.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(5000), env_days(14));
  SessionAnalyzer sessions(0, cfg.days * kDay);
  auto sim = run_into(sessions, cfg);

  header("Ablation", "Cold sessions and connection waste");
  const auto& all = sessions.session_lengths();
  const auto& active = sessions.active_session_lengths();
  double total_hours = 0, active_hours = 0;
  for (const double s : all) total_hours += s / 3600.0;
  for (const double s : active) active_hours += s / 3600.0;

  row("active share of sessions", 0.0557,
      sessions.active_session_fraction());
  std::printf("  connection-time held:  all=%.0f h   active=%.0f h   "
              "cold=%.0f h\n",
              total_hours, active_hours, total_hours - active_hours);
  row("connection-time wasted on cold sessions", 0.9,
      total_hours > 0 ? (total_hours - active_hours) / total_hours : 0.0);
  std::printf("\n  adaptive policy estimate: moving cold sessions to pull "
              "(poll every 30 min)\n  keeps push latency for the %.1f%% "
              "active sessions while dropping ~%.0f%% of\n  concurrently "
              "open TCP connections.\n",
              sessions.active_session_fraction() * 100,
              100.0 * (total_hours - active_hours) /
                  std::max(total_hours, 1.0));
  note("paper: only 5.57% of connections are active; a provider may "
       "decide push vs pull per session to limit open TCP connections");
  return 0;
}
