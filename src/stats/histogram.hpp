// Histograms: fixed-width, logarithmic and categorical. The size-category
// breakdown of Fig. 2(b) and the duplicates-per-hash CDF of Fig. 4(a) are
// histogram reductions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace u1 {

/// Fixed-width histogram over [lo, hi); samples outside are clamped into
/// the first/last bin (under/overflow counts are tracked separately).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  /// Element-wise addition over the identical binning (throws
  /// std::invalid_argument otherwise).
  void merge(const Histogram& other);

  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const;
  double total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Histogram over explicit bin edges (e.g. the paper's file-size categories
/// <0.5MB, 0.5-1MB, 1-5MB, 5-25MB, >25MB). Edges define bins
/// (-inf, e0], (e0, e1], ..., (eN-1, +inf): edges.size()+1 bins.
class EdgeHistogram {
 public:
  explicit EdgeHistogram(std::vector<double> edges);

  void add(double x, double weight = 1.0) noexcept;
  std::size_t bin_of(double x) const noexcept;

  /// Element-wise addition over identical edges (throws
  /// std::invalid_argument otherwise).
  void merge(const EdgeHistogram& other);

  std::size_t bins() const noexcept { return counts_.size(); }
  double count(std::size_t i) const;
  double total() const noexcept { return total_; }
  /// Fraction of the total weight in bin i (0 if total is 0).
  double fraction(std::size_t i) const;
  /// Label such as "x<0.5", "0.5<x<1", "25<x" matching the paper's axes.
  std::string label(std::size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double total_ = 0;
};

}  // namespace u1
