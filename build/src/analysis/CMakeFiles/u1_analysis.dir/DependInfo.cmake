
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/ddos_detect.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/ddos_detect.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/ddos_detect.cpp.o.d"
  "/root/repo/src/analysis/dedup.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/dedup.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/dedup.cpp.o.d"
  "/root/repo/src/analysis/file_dependencies.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/file_dependencies.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/file_dependencies.cpp.o.d"
  "/root/repo/src/analysis/file_types.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/file_types.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/file_types.cpp.o.d"
  "/root/repo/src/analysis/findings.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/findings.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/findings.cpp.o.d"
  "/root/repo/src/analysis/load_balance.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/load_balance.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/load_balance.cpp.o.d"
  "/root/repo/src/analysis/node_lifetime.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/node_lifetime.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/node_lifetime.cpp.o.d"
  "/root/repo/src/analysis/op_mix.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/op_mix.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/op_mix.cpp.o.d"
  "/root/repo/src/analysis/rpc_perf.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/rpc_perf.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/rpc_perf.cpp.o.d"
  "/root/repo/src/analysis/sessions.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/sessions.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/sessions.cpp.o.d"
  "/root/repo/src/analysis/trace_summary.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/trace_summary.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/trace_summary.cpp.o.d"
  "/root/repo/src/analysis/traffic.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/traffic.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/traffic.cpp.o.d"
  "/root/repo/src/analysis/transition_graph.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/transition_graph.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/transition_graph.cpp.o.d"
  "/root/repo/src/analysis/users.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/users.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/users.cpp.o.d"
  "/root/repo/src/analysis/volumes.cpp" "src/analysis/CMakeFiles/u1_analysis.dir/volumes.cpp.o" "gcc" "src/analysis/CMakeFiles/u1_analysis.dir/volumes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/u1_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/u1_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/u1_store.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/u1_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/u1_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
