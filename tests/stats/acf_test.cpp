#include "stats/acf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace u1 {
namespace {

TEST(Acf, LagZeroIsOne) {
  const std::vector<double> v = {1, 3, 2, 5, 4, 6, 2, 8};
  const auto r = autocorrelation(v, 3);
  EXPECT_DOUBLE_EQ(r.acf[0], 1.0);
}

TEST(Acf, WhiteNoiseMostlyInsideBand) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng.uniform());
  const auto r = autocorrelation(v, 50);
  // For iid noise ~5% of lags may exceed the 95% band; allow some slack.
  EXPECT_LE(r.significant_lags, 8u);
  EXPECT_NEAR(r.confidence_bound, 2.0 / std::sqrt(2000.0), 1e-12);
}

TEST(Acf, PeriodicSignalShowsPeriodicAcf) {
  // 24-sample period, like the diurnal R/W ratio pattern of Fig. 2(c).
  std::vector<double> v;
  for (int i = 0; i < 24 * 30; ++i)
    v.push_back(std::sin(2 * M_PI * i / 24.0));
  const auto r = autocorrelation(v, 48);
  EXPECT_GT(r.acf[24], 0.9);       // in phase after one period
  EXPECT_LT(r.acf[12], -0.9);      // anti-phase at half period
  EXPECT_GT(r.significant_lags, 30u);
}

TEST(Acf, ConstantSeries) {
  const std::vector<double> v(100, 3.0);
  const auto r = autocorrelation(v, 10);
  EXPECT_DOUBLE_EQ(r.acf[0], 1.0);
  for (std::size_t k = 1; k <= 10; ++k) EXPECT_DOUBLE_EQ(r.acf[k], 0.0);
  EXPECT_EQ(r.significant_lags, 0u);
}

TEST(Acf, RejectsDegenerateInputs) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(autocorrelation(one, 0), std::invalid_argument);
  const std::vector<double> v = {1, 2, 3};
  EXPECT_THROW(autocorrelation(v, 3), std::invalid_argument);
}

TEST(Acf, StrongPositiveCorrelationAtLagOne) {
  // Random walk increments are correlated; use a slowly-varying series.
  Rng rng(3);
  std::vector<double> v;
  double x = 0;
  for (int i = 0; i < 1000; ++i) {
    x = 0.95 * x + rng.uniform(-1, 1);
    v.push_back(x);
  }
  const auto r = autocorrelation(v, 5);
  EXPECT_GT(r.acf[1], 0.8);
  EXPECT_GT(r.acf[1], r.acf[5]);
}

}  // namespace
}  // namespace u1
