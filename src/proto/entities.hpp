// Protocol entities of §3.1.1: nodes (files/directories), volumes
// (root / user-defined / shared) and sessions. These are the value types
// exchanged between clients, servers and the metadata store.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "proto/ids.hpp"
#include "util/sim_time.hpp"

namespace u1 {

enum class NodeKind : std::uint8_t { kFile, kDirectory };

std::string_view to_string(NodeKind k) noexcept;

/// A file or directory entry. `generation` is the volume generation at
/// which the node last changed — clients use generations to compute deltas
/// on reconnect (§3.4.2 "generation point").
struct Node {
  NodeId id;
  VolumeId volume;
  NodeId parent;       // nil for a volume root directory
  NodeKind kind = NodeKind::kFile;
  UserId owner;
  /// Anonymized name: the trace carries hashed file names; we keep the
  /// extension (needed for Fig. 4) and a hash of the rest.
  std::string name_hash;
  std::string extension;  // lowercase, without dot; empty for dirs
  ContentId content;      // nil-ish (all-zero) until first upload
  std::uint64_t size_bytes = 0;
  std::uint64_t generation = 0;
  SimTime created_at = 0;
  bool is_dir() const noexcept { return kind == NodeKind::kDirectory; }
};

enum class VolumeKind : std::uint8_t {
  kRoot,    // the predefined ~/Ubuntu One volume, id 0 on the client
  kUdf,     // user-defined folder
  kShared,  // a sub-volume of another user this user was granted
};

std::string_view to_string(VolumeKind k) noexcept;

struct Volume {
  VolumeId id;
  UserId owner;
  VolumeKind kind = VolumeKind::kRoot;
  NodeId root_dir;
  /// Monotonic change counter; every node mutation bumps it.
  std::uint64_t generation = 0;
  SimTime created_at = 0;
  /// For kShared: the user the volume was shared *to* (owner is shared_by).
  UserId shared_to;
};

/// One desktop-client connection (§3.1.1): born on a successful
/// Authenticate, pinned to an API server machine, ended by disconnect.
struct Session {
  SessionId id;
  UserId user;
  MachineId api_machine;   // where the load balancer placed it
  ProcessId api_process;
  SimTime started_at = 0;
  SimTime ended_at = 0;    // 0 while open
  std::uint64_t storage_ops = 0;  // data-management ops issued in-session

  bool open() const noexcept { return ended_at == 0; }
  SimTime length() const noexcept {
    return open() ? 0 : ended_at - started_at;
  }
  /// The paper distinguishes *active* sessions (issued at least one
  /// storage operation) from *cold* ones (§7.3).
  bool active() const noexcept { return storage_ops > 0; }
};

/// Account-level record for a user.
struct User {
  UserId id;
  SimTime registered_at = 0;
};

}  // namespace u1
