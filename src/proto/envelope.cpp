#include "proto/envelope.hpp"

#include <array>

#include "proto/wire.hpp"

namespace u1 {
namespace {

// Little-endian / varint helpers (the binlog.cpp idioms) live in
// proto/wire.hpp since PR 10 — the distributed control plane
// (control.cpp) shares them.
using wire::Cursor;
using wire::get_le16;
using wire::get_le32;
using wire::put_le16;
using wire::put_le32;
using wire::put_raw;
using wire::put_short_string;
using wire::put_varint;
using wire::unzigzag;
using wire::zigzag;

// --- payload codecs --------------------------------------------------------

void encode_request_payload(std::vector<std::uint8_t>& out,
                            const Request& q) {
  out.push_back(q.flags);
  put_short_string(out, q.name_hash_view());
  put_short_string(out, q.extension_view());
  put_varint(out, q.user.value);
  put_varint(out, q.peer.value);
  put_varint(out, q.session.value);
  put_raw(out, q.volume.bytes.data(), q.volume.bytes.size());
  put_raw(out, q.node.bytes.data(), q.node.bytes.size());
  put_raw(out, q.parent.bytes.data(), q.parent.bytes.size());
  put_raw(out, q.content.bytes.data(), q.content.bytes.size());
  put_raw(out, q.job.bytes.data(), q.job.bytes.size());
  put_varint(out, q.size_bytes);
  put_varint(out, q.since_generation);
  put_varint(out, zigzag(q.now));
}

bool decode_request_payload(Cursor& c, ProtoOp op, Request& out) {
  out = Request{};
  out.op = op;
  out.flags = c.u8();
  const std::size_t name_len = c.u8();
  if (name_len > sizeof out.name_hash) return false;
  if (const std::uint8_t* p = c.take(name_len))
    std::memcpy(out.name_hash, p, name_len);
  const std::size_t ext_len = c.u8();
  if (ext_len > sizeof out.extension) return false;
  if (const std::uint8_t* p = c.take(ext_len))
    std::memcpy(out.extension, p, ext_len);
  out.user.value = c.varint();
  out.peer.value = c.varint();
  out.session.value = c.varint();
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.volume.bytes.data(), p, 16);
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.node.bytes.data(), p, 16);
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.parent.bytes.data(), p, 16);
  if (const std::uint8_t* p = c.take(20))
    std::memcpy(out.content.bytes.data(), p, 20);
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.job.bytes.data(), p, 16);
  out.size_bytes = c.varint();
  out.since_generation = c.varint();
  out.now = unzigzag(c.varint());
  return c.ok;
}

void encode_response_payload(std::vector<std::uint8_t>& out,
                             const Response& r) {
  out.push_back(static_cast<std::uint8_t>(r.status));
  out.push_back(r.flags);
  put_varint(out, zigzag(r.end));
  put_varint(out, r.user.value);
  put_varint(out, r.session.value);
  put_raw(out, r.volume.bytes.data(), r.volume.bytes.size());
  put_raw(out, r.node.bytes.data(), r.node.bytes.size());
  put_raw(out, r.root_dir.bytes.data(), r.root_dir.bytes.size());
  put_raw(out, r.job.bytes.data(), r.job.bytes.size());
  put_varint(out, r.transferred_bytes);
  put_varint(out, r.committed_bytes);
}

bool decode_response_payload(Cursor& c, ProtoOp op, Response& out) {
  out = Response{};
  out.op = op;
  const auto status = status_from_wire(c.u8());
  if (!status) return false;
  out.status = *status;
  out.flags = c.u8();
  out.end = unzigzag(c.varint());
  out.user.value = c.varint();
  out.session.value = c.varint();
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.volume.bytes.data(), p, 16);
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.node.bytes.data(), p, 16);
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.root_dir.bytes.data(), p, 16);
  if (const std::uint8_t* p = c.take(16))
    std::memcpy(out.job.bytes.data(), p, 16);
  out.transferred_bytes = c.varint();
  out.committed_bytes = c.varint();
  return c.ok;
}

// --- framing ---------------------------------------------------------------

void append_frame(std::vector<std::uint8_t>& out, ProtoOp op,
                  const std::vector<std::uint8_t>& payload) {
  const std::uint32_t len =
      static_cast<std::uint32_t>(2 + 1 + payload.size());
  put_le32(out, len);
  put_le16(out, kProtoVersion);
  out.push_back(static_cast<std::uint8_t>(op));
  put_raw(out, payload.data(), payload.size());
}

/// Common frame-header walk for both directions. Returns kOk with the
/// payload span when a whole well-versed frame is present.
struct FrameHeader {
  FrameDecode result;
  std::uint8_t op_byte = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
};

FrameHeader split_frame(const std::uint8_t* data, std::size_t n) {
  FrameHeader h;
  if (n < 4) {
    h.result.need_more = true;
    return h;
  }
  const std::uint32_t len = get_le32(data);
  if (len > kMaxFrameBytes) {
    // The stream is unrecoverable: we cannot trust any later length
    // prefix. consumed stays 0 — drop the connection.
    h.result.status = Status::kOversizedFrame;
    return h;
  }
  if (n < 4u + len) {
    h.result.need_more = true;
    return h;
  }
  h.result.consumed = 4u + len;
  if (len < 3) {
    h.result.status = Status::kBadFrame;
    return h;
  }
  if (get_le16(data + 4) != kProtoVersion) {
    h.result.status = Status::kVersionMismatch;
    return h;
  }
  h.op_byte = data[6];
  h.payload = data + 7;
  h.payload_len = len - 3;
  return h;
}

}  // namespace

// --- enum tables -----------------------------------------------------------

std::string_view to_string(ProtoOp op) noexcept {
  switch (op) {
    case ProtoOp::kConnect: return "Connect";
    case ProtoOp::kDisconnect: return "Disconnect";
    case ProtoOp::kListVolumes: return "ListVolumes";
    case ProtoOp::kListShares: return "ListShares";
    case ProtoOp::kQuerySetCaps: return "QuerySetCaps";
    case ProtoOp::kGetDelta: return "GetDelta";
    case ProtoOp::kRescanFromScratch: return "RescanFromScratch";
    case ProtoOp::kMakeFile: return "MakeFile";
    case ProtoOp::kMakeDir: return "MakeDir";
    case ProtoOp::kUnlink: return "Unlink";
    case ProtoOp::kMove: return "Move";
    case ProtoOp::kCreateUDF: return "CreateUDF";
    case ProtoOp::kDeleteVolume: return "DeleteVolume";
    case ProtoOp::kUpload: return "Upload";
    case ProtoOp::kResumeUpload: return "ResumeUpload";
    case ProtoOp::kDownload: return "Download";
    case ProtoOp::kRegisterUser: return "RegisterUser";
    case ProtoOp::kShareVolume: return "ShareVolume";
    case ProtoOp::kEpochBegin: return "EpochBegin";
    case ProtoOp::kMailboxBatch: return "MailboxBatch";
    case ProtoOp::kEpochDone: return "EpochDone";
    case ProtoOp::kChunkMeta: return "ChunkMeta";
    case ProtoOp::kShutdown: return "Shutdown";
  }
  return "UnknownOp";
}

std::span<const ProtoOp> all_proto_ops() noexcept {
  static constexpr std::array<ProtoOp, kProtoOpCount> kAll = {
      ProtoOp::kConnect,       ProtoOp::kDisconnect,
      ProtoOp::kListVolumes,   ProtoOp::kListShares,
      ProtoOp::kQuerySetCaps,  ProtoOp::kGetDelta,
      ProtoOp::kRescanFromScratch, ProtoOp::kMakeFile,
      ProtoOp::kMakeDir,       ProtoOp::kUnlink,
      ProtoOp::kMove,          ProtoOp::kCreateUDF,
      ProtoOp::kDeleteVolume,  ProtoOp::kUpload,
      ProtoOp::kResumeUpload,  ProtoOp::kDownload,
      ProtoOp::kRegisterUser,  ProtoOp::kShareVolume,
  };
  return kAll;
}

std::span<const ProtoOp> all_control_ops() noexcept {
  static constexpr std::array<ProtoOp, kControlOpCount> kAll = {
      ProtoOp::kEpochBegin, ProtoOp::kMailboxBatch, ProtoOp::kEpochDone,
      ProtoOp::kChunkMeta,  ProtoOp::kShutdown,
  };
  return kAll;
}

std::optional<ProtoOp> proto_op_from_string(std::string_view name) noexcept {
  for (const ProtoOp op : all_proto_ops()) {
    if (to_string(op) == name) return op;
  }
  for (const ProtoOp op : all_control_ops()) {
    if (to_string(op) == name) return op;
  }
  return std::nullopt;
}

std::optional<ProtoOp> proto_op_from_wire(std::uint8_t value) noexcept {
  if (value >= kProtoOpCount) return std::nullopt;
  return static_cast<ProtoOp>(value);
}

std::optional<ProtoOp> control_op_from_wire(std::uint8_t value) noexcept {
  if (value < kControlOpBase || value >= kControlOpBase + kControlOpCount)
    return std::nullopt;
  return static_cast<ProtoOp>(value);
}

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kTryAgain: return "try_again";
    case Status::kInterrupted: return "interrupted";
    case Status::kBadFrame: return "bad_frame";
    case Status::kVersionMismatch: return "version_mismatch";
    case Status::kUnknownOp: return "unknown_op";
    case Status::kOversizedFrame: return "oversized_frame";
    case Status::kSlackPayload: return "slack_payload";
  }
  return "unknown_status";
}

std::span<const Status> all_statuses() noexcept {
  static constexpr std::array<Status, kStatusCount> kAll = {
      Status::kOk,           Status::kError,
      Status::kTryAgain,     Status::kInterrupted,
      Status::kBadFrame,     Status::kVersionMismatch,
      Status::kUnknownOp,    Status::kOversizedFrame,
      Status::kSlackPayload,
  };
  return kAll;
}

std::optional<Status> status_from_string(std::string_view name) noexcept {
  for (const Status s : all_statuses()) {
    if (to_string(s) == name) return s;
  }
  return std::nullopt;
}

std::optional<Status> status_from_wire(std::uint8_t value) noexcept {
  for (const Status s : all_statuses()) {
    if (static_cast<std::uint8_t>(s) == value) return s;
  }
  return std::nullopt;
}

// --- public framing API ----------------------------------------------------

void append_request_frame(std::vector<std::uint8_t>& out, const Request& q) {
  std::vector<std::uint8_t> payload;
  payload.reserve(192);
  encode_request_payload(payload, q);
  append_frame(out, q.op, payload);
}

void append_response_frame(std::vector<std::uint8_t>& out,
                           const Response& r) {
  std::vector<std::uint8_t> payload;
  payload.reserve(160);
  encode_response_payload(payload, r);
  append_frame(out, r.op, payload);
}

std::vector<std::uint8_t> encode_request_frame(const Request& q) {
  std::vector<std::uint8_t> out;
  append_request_frame(out, q);
  return out;
}

std::vector<std::uint8_t> encode_response_frame(const Response& r) {
  std::vector<std::uint8_t> out;
  append_response_frame(out, r);
  return out;
}

FrameDecode decode_request_frame(const std::uint8_t* data, std::size_t n,
                                 Request& out) {
  const FrameHeader h = split_frame(data, n);
  if (h.result.status != Status::kOk || h.result.need_more) return h.result;
  FrameDecode result = h.result;
  const auto op = proto_op_from_wire(h.op_byte);
  if (!op) {
    result.status = Status::kUnknownOp;
    return result;
  }
  Cursor c{h.payload, h.payload + h.payload_len};
  if (!decode_request_payload(c, *op, out)) {
    result.status = Status::kBadFrame;
    return result;
  }
  if (c.p != c.end) {
    result.status = Status::kSlackPayload;
    return result;
  }
  return result;
}

FrameDecode decode_response_frame(const std::uint8_t* data, std::size_t n,
                                  Response& out) {
  const FrameHeader h = split_frame(data, n);
  if (h.result.status != Status::kOk || h.result.need_more) return h.result;
  FrameDecode result = h.result;
  const auto op = proto_op_from_wire(h.op_byte);
  if (!op) {
    result.status = Status::kUnknownOp;
    return result;
  }
  Cursor c{h.payload, h.payload + h.payload_len};
  if (!decode_response_payload(c, *op, out)) {
    result.status = Status::kBadFrame;
    return result;
  }
  if (c.p != c.end) {
    result.status = Status::kSlackPayload;
    return result;
  }
  return result;
}

}  // namespace u1
