// Minimal blocking client for the u1d wire protocol: one TCP connection,
// synchronous call() (send a Request frame, read one Response frame).
// Used by the closed-loop load generator and the loopback tests; the
// raw send_bytes() escape hatch lets hostile-input tests push malformed
// frames at a live server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "proto/envelope.hpp"

namespace u1 {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connects to 127.0.0.1:port. False on failure. A positive
  /// recv_buffer_bytes shrinks SO_RCVBUF before connecting (set-then-
  /// connect so the window scale honors it) — the backpressure tests
  /// use a tiny window to make the server's writes back up for real.
  bool connect_loopback(std::uint16_t port, int recv_buffer_bytes = 0);
  bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Sends one framed request and blocks for its response. nullopt when
  /// the connection died mid-exchange.
  std::optional<Response> call(const Request& request);

  /// Raw bytes onto the socket (hostile-input tests).
  bool send_bytes(const void* data, std::size_t n);
  /// Blocks until one complete response frame decodes (or the peer
  /// closes / sends an undecodable stream).
  std::optional<Response> recv_response();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
};

}  // namespace u1
