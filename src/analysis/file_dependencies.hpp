// File operation dependencies (paper §5.2, Fig. 3a/3b): for every file we
// track the last read/write and classify each operation pair as
// WAW / RAW / DAW (after a write) or WAR / RAR / DAR (after a read),
// collecting the inter-operation time distributions. Also derives the
// downloads-per-file tail (Fig. 3b inner plot) and the "files unused for
// more than a day before deletion" statistic.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/sink.hpp"

namespace u1 {

enum class FileDependency : std::uint8_t {
  kWAW,  // write after write
  kRAW,  // read after write
  kDAW,  // delete after write
  kWAR,  // write after read
  kRAR,  // read after read
  kDAR,  // delete after read
};
inline constexpr std::size_t kFileDependencyCount = 6;

std::string_view to_string(FileDependency d) noexcept;

class FileDependencyAnalyzer final : public TraceSink {
 public:
  FileDependencyAnalyzer() = default;

  void append(const TraceRecord& record) override;

  /// Inter-operation times (seconds) for one dependency class.
  const std::vector<double>& times(FileDependency dep) const noexcept {
    return times_[static_cast<std::size_t>(dep)];
  }
  std::uint64_t count(FileDependency dep) const noexcept {
    return times_[static_cast<std::size_t>(dep)].size();
  }

  /// Share of a dependency within its family (X-after-Write or
  /// X-after-Read), e.g. WAW was 44% of after-write transitions.
  double family_share(FileDependency dep) const;

  /// Downloads-per-file sample (files with at least one download).
  std::vector<double> downloads_per_file() const;

  /// Files that sat unused for longer than `idle` before being deleted
  /// (paper: 12.5M files / 9.1% with idle = 1 day).
  std::uint64_t dying_files(SimTime idle = kDay) const noexcept {
    return idle >= kDay ? dying_day_ : dying_8h_;
  }
  std::uint64_t deleted_files() const noexcept { return deleted_files_; }

 private:
  struct NodeState {
    SimTime last_write = 0;
    SimTime last_read = 0;
    std::uint32_t downloads = 0;
    bool has_write = false;
    bool has_read = false;
  };

  void record_dep(FileDependency dep, SimTime gap);

  std::unordered_map<NodeId, NodeState> nodes_;
  std::vector<double> times_[kFileDependencyCount];
  std::vector<std::uint32_t> downloads_of_deleted_;
  std::uint64_t deleted_files_ = 0;
  std::uint64_t dying_day_ = 0;
  std::uint64_t dying_8h_ = 0;
};

}  // namespace u1
