# Empty dependencies file for bench_fig07a_op_mix.
# This may be replaced when dependencies are built.
