#include "util/uuid.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {
namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool Uuid::is_nil() const noexcept {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::string Uuid::str() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0xF]);
  }
  return out;
}

std::uint64_t Uuid::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

Uuid Uuid::v4(Rng& rng) noexcept {
  Uuid u;
  const std::uint64_t hi = rng.next();
  const std::uint64_t lo = rng.next();
  for (int i = 0; i < 8; ++i) {
    u.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    u.bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  u.bytes[6] = static_cast<std::uint8_t>((u.bytes[6] & 0x0F) | 0x40);  // v4
  u.bytes[8] = static_cast<std::uint8_t>((u.bytes[8] & 0x3F) | 0x80);  // RFC
  return u;
}

Uuid Uuid::parse(const std::string& text) {
  if (text.size() != 36)
    throw std::invalid_argument("Uuid::parse: bad length");
  Uuid u;
  std::size_t bi = 0;
  for (std::size_t i = 0; i < 36;) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (text[i] != '-')
        throw std::invalid_argument("Uuid::parse: missing dash");
      ++i;
      continue;
    }
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0)
      throw std::invalid_argument("Uuid::parse: bad hex digit");
    u.bytes[bi++] = static_cast<std::uint8_t>((hi << 4) | lo);
    i += 2;
  }
  return u;
}

}  // namespace u1
