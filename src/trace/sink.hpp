// Trace sinks. The back-end writes one record at a time; sinks decide what
// happens to it: keep in memory (tests, small runs), stream to analyzers
// (the production path — the real dataset is 758GB and must be reduced on
// the fly), fan out, count, or drop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/record.hpp"

namespace u1 {

/// Interface all record consumers implement.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void append(const TraceRecord& record) = 0;

  /// Delivers `count` consecutive records. Semantically identical to
  /// calling append() in order; exists so bulk producers (the parallel
  /// engine's stage-B writer hands over whole same-group runs of the
  /// merge permutation, read_logfiles hands over the merged vector) pay
  /// one virtual dispatch per run instead of one per record. Sinks with
  /// a cheaper bulk path may override.
  virtual void append_batch(const TraceRecord* records, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) append(records[i]);
  }
};

/// Keeps everything; for tests and small simulations.
class InMemorySink final : public TraceSink {
 public:
  void append(const TraceRecord& record) override {
    records_.push_back(record);
  }
  void append_batch(const TraceRecord* records, std::size_t count) override {
    records_.insert(records_.end(), records, records + count);
  }
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept { records_.clear(); }
  /// Exchanges the backing store with `other` — the double-buffer hook
  /// the parallel engine's pipelined flusher uses to freeze an epoch's
  /// records while the next epoch keeps appending (both vectors keep
  /// their capacity, so steady state allocates nothing).
  void swap_records(std::vector<TraceRecord>& other) noexcept {
    records_.swap(other);
  }

 private:
  std::vector<TraceRecord> records_;
};

/// Fans a record out to several sinks (none owned).
class MultiSink final : public TraceSink {
 public:
  void add(TraceSink* sink);
  void append(const TraceRecord& record) override;
  std::size_t sink_count() const noexcept { return sinks_.size(); }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Counts per record type; cheap sanity probe.
class CountingSink final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count(RecordType type) const noexcept;

 private:
  std::uint64_t total_ = 0;
  // Sized from the enum: a literal here once lost kFault its slot and
  // sent its counts past the end of the array.
  std::uint64_t by_type_[kRecordTypeCount] = {};
};

/// Adapts a lambda to the sink interface.
class CallbackSink final : public TraceSink {
 public:
  explicit CallbackSink(std::function<void(const TraceRecord&)> fn);
  void append(const TraceRecord& record) override { fn_(record); }

 private:
  std::function<void(const TraceRecord&)> fn_;
};

/// Drops everything.
class NullSink final : public TraceSink {
 public:
  void append(const TraceRecord&) override {}
};

}  // namespace u1
