// Parameterized round-trip properties of the trace layer: any record of
// any type must survive CSV serialization bit-for-bit, and any trace must
// survive the logfile write/merge cycle.
#include <gtest/gtest.h>

#include <filesystem>

#include "stats/reservoir.hpp"
#include "trace/logfile.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

TraceRecord random_record(Rng& rng, RecordType type) {
  TraceRecord r;
  r.t = static_cast<SimTime>(rng.below(30ull * kDay));
  r.type = type;
  r.machine = MachineId{rng.below(6) + 1};
  r.process = ProcessId{rng.below(72) + 1};
  r.user = UserId{rng.below(100000) + 1};
  r.session = SessionId{rng.below(1000000) + 1};
  switch (type) {
    case RecordType::kSession:
      r.session_event = static_cast<SessionEvent>(1 + rng.below(5));
      r.duration = static_cast<SimTime>(rng.below(8ull * kHour));
      break;
    case RecordType::kStorage:
    case RecordType::kStorageDone: {
      const auto ops = all_api_ops();
      r.api_op = ops[rng.below(ops.size())];
      r.node = Uuid::v4(rng);
      if (rng.chance(0.5)) r.parent = Uuid::v4(rng);
      r.volume = Uuid::v4(rng);
      r.size_bytes = rng.below(1ull << 31);
      r.transferred_bytes = rng.chance(0.8) ? r.size_bytes : 0;
      if (rng.chance(0.7))
        r.content = Sha1::of("c" + std::to_string(rng.next()));
      if (rng.chance(0.5)) r.set_extension("mp3");
      r.is_update = rng.chance(0.2);
      r.is_dir = rng.chance(0.1);
      r.deduplicated = rng.chance(0.15);
      r.failed = rng.chance(0.02);
      if (type == RecordType::kStorageDone)
        r.duration = static_cast<SimTime>(rng.below(60ull * kSecond)) + 1;
      break;
    }
    case RecordType::kRpc: {
      const auto ops = all_rpc_ops();
      r.rpc_op = ops[rng.below(ops.size())];
      r.shard = ShardId{rng.below(10) + 1};
      r.service_time = static_cast<std::uint32_t>(rng.below(1000000)) + 1;
      break;
    }
    case RecordType::kFault:
      r.user = UserId{};
      r.session = SessionId{};
      r.set_fault("fault#" + std::to_string(rng.below(8)) + ":" +
                  (rng.chance(0.5) ? "begin" : "end"));
      break;
  }
  return r;
}

class RecordRoundTrip : public ::testing::TestWithParam<RecordType> {};

TEST_P(RecordRoundTrip, CsvIsLossless) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  for (int i = 0; i < 500; ++i) {
    const TraceRecord r = random_record(rng, GetParam());
    const auto parsed = TraceRecord::from_csv(r.to_csv());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->t, r.t);
    EXPECT_EQ(parsed->type, r.type);
    EXPECT_EQ(parsed->machine, r.machine);
    EXPECT_EQ(parsed->process, r.process);
    EXPECT_EQ(parsed->user, r.user);
    EXPECT_EQ(parsed->session, r.session);
    EXPECT_EQ(parsed->session_event, r.session_event);
    if (r.type == RecordType::kStorage ||
        r.type == RecordType::kStorageDone) {
      EXPECT_EQ(parsed->api_op, r.api_op);
      EXPECT_EQ(parsed->node, r.node);
      EXPECT_EQ(parsed->parent, r.parent);
      EXPECT_EQ(parsed->volume, r.volume);
      EXPECT_EQ(parsed->size_bytes, r.size_bytes);
      EXPECT_EQ(parsed->transferred_bytes, r.transferred_bytes);
      EXPECT_EQ(parsed->content, r.content);
      EXPECT_EQ(parsed->extension(), r.extension());
      EXPECT_EQ(parsed->is_update, r.is_update);
      EXPECT_EQ(parsed->is_dir, r.is_dir);
      EXPECT_EQ(parsed->deduplicated, r.deduplicated);
      EXPECT_EQ(parsed->failed, r.failed);
    }
    if (r.type == RecordType::kRpc) {
      EXPECT_EQ(parsed->rpc_op, r.rpc_op);
      EXPECT_EQ(parsed->shard, r.shard);
      EXPECT_EQ(parsed->service_time, r.service_time);
    }
    if (r.type == RecordType::kFault) EXPECT_EQ(parsed->fault(), r.fault());
    EXPECT_EQ(parsed->duration, r.duration);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, RecordRoundTrip,
                         ::testing::Values(RecordType::kSession,
                                           RecordType::kStorage,
                                           RecordType::kStorageDone,
                                           RecordType::kRpc,
                                           RecordType::kFault),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

class LogfileRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LogfileRoundTrip, MergePreservesEveryRecordInOrder) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("u1_prop_" + std::to_string(::getpid()) + "_" +
                    std::to_string(GetParam()));
  std::filesystem::remove_all(dir);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 2000;
  {
    LogfileWriter writer(dir);
    for (int i = 0; i < n; ++i) {
      const auto type = static_cast<RecordType>(rng.below(kRecordTypeCount));
      writer.append(random_record(rng, type));
    }
  }
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir, sink);
  EXPECT_EQ(stats.parsed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(sink.records().size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < sink.records().size(); ++i) {
    EXPECT_LE(sink.records()[i - 1].t, sink.records()[i].t);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogfileRoundTrip, ::testing::Values(1, 2, 3));

// Reservoir sampling keeps a uniform subsample whatever the stream size.
class ReservoirProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReservoirProperty, MeanPreserved) {
  const std::size_t stream = GetParam();
  ReservoirSampler sampler(500, 42);
  Rng rng(7);
  double true_sum = 0;
  for (std::size_t i = 0; i < stream; ++i) {
    const double x = rng.uniform(0, 100);
    true_sum += x;
    sampler.add(x);
  }
  EXPECT_EQ(sampler.seen(), stream);
  EXPECT_EQ(sampler.size(), std::min<std::size_t>(500, stream));
  double sample_sum = 0;
  for (const double x : sampler.sample()) sample_sum += x;
  const double true_mean = true_sum / static_cast<double>(stream);
  const double sample_mean =
      sample_sum / static_cast<double>(sampler.size());
  EXPECT_NEAR(sample_mean, true_mean, 6.0);
}

INSTANTIATE_TEST_SUITE_P(StreamSizes, ReservoirProperty,
                         ::testing::Values(10u, 500u, 5000u, 200000u));

}  // namespace
}  // namespace u1
