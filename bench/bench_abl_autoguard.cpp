// Ablation (§5.4/§9 future work): manual vs automatic DDoS response.
// U1 engineers detected and purged the abusive accounts by hand, hours
// after each attack started. The AnomalyGuard watches the session/auth
// stream and purges as soon as one account concentrates an abnormal rate.
#include "analysis/ddos_detect.hpp"
#include "bench/bench_util.hpp"

namespace {

struct Outcome {
  double response_minutes;     // time from attack start to purge
  double attack_downloads;     // leech ops that got through
  double attack_bytes;
  std::size_t attack_days;
};

Outcome run(bool automatic, std::size_t users) {
  using namespace u1;
  using namespace u1::bench;
  SimulationConfig cfg = standard_config(users, 7);  // Jan 15 + 16
  cfg.auto_countermeasures = automatic;
  DdosAnalyzer detector(0, cfg.days * kDay);
  std::uint64_t leeches = 0, leech_bytes = 0;
  CallbackSink leech_meter([&](const TraceRecord& r) {
    detector.append(r);
    if (r.type == RecordType::kStorageDone && !r.failed &&
        r.api_op == ApiOp::kGetContent && r.user.value >= 1000000) {
      ++leeches;
      leech_bytes += r.transferred_bytes;
    }
  });
  Simulation sim(cfg, leech_meter);
  const SimulationReport report = sim.run();
  Outcome o;
  o.response_minutes =
      automatic ? to_seconds(report.first_auto_response_delay) / 60.0
                : 3.0 * 60.0;  // the Jan 15 manual delay
  o.attack_downloads = static_cast<double>(leeches);
  o.attack_bytes = static_cast<double>(leech_bytes);
  o.attack_days = detector.attack_days();
  return o;
}

}  // namespace

int main() {
  using namespace u1;
  using namespace u1::bench;
  const std::size_t users = env_users(5000);

  const Outcome manual = run(false, users);
  const Outcome automatic = run(true, users);

  header("Ablation", "Manual operator response vs AnomalyGuard auto-purge");
  std::printf("  %-32s %14s %14s\n", "metric", "manual (U1)", "auto-guard");
  std::printf("  %-32s %11.0f min %11.1f min\n", "response time",
              manual.response_minutes, automatic.response_minutes);
  std::printf("  %-32s %14.0f %14.0f\n", "leech downloads served",
              manual.attack_downloads, automatic.attack_downloads);
  std::printf("  %-32s %11.2f GB %11.2f GB\n", "leech traffic",
              manual.attack_bytes / 1e9, automatic.attack_bytes / 1e9);
  std::printf("  %-32s %14zu %14zu\n", "attack days still detectable",
              manual.attack_days, automatic.attack_days);
  row("leech traffic eliminated", 0.9,
      manual.attack_bytes > 0
          ? 1.0 - automatic.attack_bytes / manual.attack_bytes
          : 0.0);
  note("paper: 'the reaction to these attacks was not automatic ... "
       "further research is needed to build automatic countermeasures' — "
       "this is that countermeasure");
  return 0;
}
