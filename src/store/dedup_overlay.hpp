// Epoch-consistent shared dedup for the shard-parallel engine.
//
// U1's content registry is the one genuinely cross-shard structure: any
// user's upload may dedup against a blob first stored by a user on a
// different shard (§3.3 is explicit that dedup is cross-user and global).
// A naive shared registry would make parallel runs schedule-dependent —
// whether shard group A's insert lands before group B's lookup would
// depend on thread timing.
//
// SharedDedup instead freezes the global registry for the duration of one
// simulated epoch. Each shard group works through its own DedupOverlay: a
// copy-on-read view that sees (frozen global state) + (the group's own
// writes this epoch) and records an op log. At the epoch barrier the
// engine replays the logs into the global registry in fixed group order —
// a deterministic function of the per-group streams, so the outcome is
// bit-identical for any worker-thread count, including one.
//
// The price is bounded staleness: a blob first uploaded by group A in
// epoch e becomes visible to other groups' dedup checks at e+1 (at most
// one simulated hour later). Within a group there is no lag at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/content_registry.hpp"
#include "store/dedup_proxy.hpp"

namespace u1 {

class SharedDedup;

/// One shard group's epoch-scoped view of the shared registry. Exact
/// ContentRegistry semantics (including the throwing contracts) against
/// frozen-global + own-writes state.
class DedupOverlay final : public DedupProxy {
 public:
  std::optional<ContentInfo> lookup(const ContentId& id,
                                    std::uint64_t size_bytes) const override;
  bool insert(const ContentId& id, std::uint64_t size_bytes,
              std::string s3_key) override;
  void link(const ContentId& id) override;
  std::optional<ContentInfo> unlink(const ContentId& id) override;
  void erase(const ContentId& id) override;

  std::size_t pending_ops() const noexcept { return log_.size(); }

 private:
  friend class SharedDedup;

  enum class OpKind : std::uint8_t { kInsert, kLink, kUnlink, kErase };
  struct Op {
    OpKind kind;
    ContentId id;
    std::uint64_t size_bytes = 0;
    std::string s3_key;
  };
  /// Lazily materialized view of one content id (frozen global + deltas).
  struct View {
    bool present = false;
    std::uint64_t refcount = 0;
    std::uint64_t size_bytes = 0;
    std::string s3_key;
  };

  explicit DedupOverlay(const ContentRegistry* global) : global_(global) {}
  View& view_of(const ContentId& id) const;

  const ContentRegistry* global_;
  mutable std::unordered_map<ContentId, View> views_;
  std::vector<Op> log_;
};

class SharedDedup {
 public:
  /// Called with every blob that dies during an epoch merge (its last
  /// references were dropped by different groups, so no group saw the
  /// refcount reach zero in-line). The engine deletes the S3 object.
  using DeadBlobFn = std::function<void(const ContentInfo&)>;

  explicit SharedDedup(std::size_t groups);

  /// The live global registry. Mutable access is only sound between
  /// epochs (setup / merge); workers must go through their overlay.
  ContentRegistry& global() noexcept { return global_; }
  const ContentRegistry& global() const noexcept { return global_; }

  DedupOverlay& overlay(std::size_t group) { return *overlays_[group]; }
  std::size_t group_count() const noexcept { return overlays_.size(); }

  /// Replays every group's op log into the global registry in group
  /// order, then clears the overlays for the next epoch. Sequential —
  /// call only at an epoch barrier.
  void merge_epoch(const DeadBlobFn& on_dead_blob = {});

  /// Distributed barrier support (DESIGN.md §12): serializes one
  /// overlay's epoch op log and clears the overlay — the worker-side
  /// half of merge_epoch. Wire format: varint op count, then per op
  /// kind:u8, id:20B raw, size:varint, s3_key:varint-length + bytes.
  std::vector<std::uint8_t> extract_log(std::size_t group);
  /// Replays one serialized op log into the global registry with
  /// merge_epoch's tolerant cross-group semantics. Every process applies
  /// every group's blob in group order, so the replicas stay identical.
  /// The channel is trusted (same-binary workers over a socketpair);
  /// throws std::runtime_error on a malformed blob.
  void apply_log(std::span<const std::uint8_t> bytes,
                 const DeadBlobFn& on_dead_blob = {});

 private:
  void replay_op(DedupOverlay::OpKind kind, const ContentId& id,
                 std::uint64_t size_bytes, std::string s3_key,
                 const DeadBlobFn& on_dead_blob);

  ContentRegistry global_;
  std::vector<std::unique_ptr<DedupOverlay>> overlays_;
};

}  // namespace u1
