#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace u1 {
namespace {

TEST(SimTime, UnitRelations) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kWeek, 7 * kDay);
}

TEST(SimTime, DayIndexAndHour) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kDay - 1), 0);
  EXPECT_EQ(day_index(kDay), 1);
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(13 * kHour + 30 * kMinute), 13);
  EXPECT_EQ(hour_of_day(kDay + 5 * kHour), 5);
}

TEST(SimTime, FracHour) {
  EXPECT_DOUBLE_EQ(frac_hour_of_day(90 * kMinute), 1.5);
}

TEST(SimTime, EpochIsSaturday) {
  // 2014-01-11 was a Saturday (weekday 5 with Monday=0).
  EXPECT_EQ(weekday(0), 5);
  EXPECT_TRUE(is_weekend(0));
  EXPECT_TRUE(is_weekend(kDay));       // Sunday Jan 12
  EXPECT_FALSE(is_weekend(2 * kDay));  // Monday Jan 13
  EXPECT_EQ(weekday(2 * kDay), 0);
}

TEST(SimTime, TraceDateStartsAtJan11) {
  EXPECT_EQ(trace_date(0), "20140111");
  EXPECT_EQ(trace_date(kDay), "20140112");
}

TEST(SimTime, TraceDateCrossesIntoFebruary) {
  // Jan 11 + 21 days = Feb 1.
  EXPECT_EQ(trace_date(21 * kDay), "20140201");
  // Day 30 of the trace (index 29) is Feb 9; the paper window ends Feb 10.
  EXPECT_EQ(trace_date(29 * kDay), "20140209");
  EXPECT_EQ(trace_date(30 * kDay), "20140210");
}

TEST(SimTime, TraceDateHandlesNonLeapFebruary) {
  // 2014 is not a leap year: Feb has 28 days. Jan 11 + 49 days = Mar 1.
  EXPECT_EQ(trace_date(49 * kDay), "20140301");
}

TEST(SimTime, FormatTimestamp) {
  EXPECT_EQ(format_timestamp(0), "2014-01-11 00:00:00.000");
  EXPECT_EQ(format_timestamp(kDay + 3 * kHour + 4 * kMinute + 5 * kSecond +
                             6 * kMillisecond),
            "2014-01-12 03:04:05.006");
}

TEST(SimTime, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(250 * kMillisecond), "250ms");
  EXPECT_EQ(format_duration(90 * kSecond), "90.0s");
  EXPECT_EQ(format_duration(30 * kMinute), "30.0m");
  EXPECT_EQ(format_duration(10 * kHour), "10.0h");
  EXPECT_EQ(format_duration(3 * kDay), "3.0d");
}

TEST(SimTime, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(12.5)), 12.5);
  EXPECT_EQ(from_seconds(1.0), kSecond);
}

}  // namespace
}  // namespace u1
