file(REMOVE_RECURSE
  "CMakeFiles/cloudstore_tests.dir/cloudstore/object_store_test.cpp.o"
  "CMakeFiles/cloudstore_tests.dir/cloudstore/object_store_test.cpp.o.d"
  "cloudstore_tests"
  "cloudstore_tests.pdb"
  "cloudstore_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudstore_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
