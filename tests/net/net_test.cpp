// Loopback tests for the u1d network core: a live U1dServer on an
// ephemeral port, driven by real BlockingClient sockets. Covers the
// ISSUE acceptance bar (64 concurrent connections, zero protocol
// errors), the hostile-input contract at the socket boundary (typed
// error responses, the connection survives everything except an
// oversized length prefix), and virtual-time fault arming.
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fault/scenarios.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "proto/envelope.hpp"
#include "server/backend.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

/// Backend + server on an ephemeral loopback port, run() on its own
/// thread. stop() then join happens in the destructor, so stats reads in
/// test bodies go through stopped(), which synchronizes first.
class LiveServer {
 public:
  explicit LiveServer(BackendConfig cfg = {}, NetServerConfig net = {})
      : backend_(cfg, sink_) {
    net.port = 0;
    server_ = std::make_unique<U1dServer>(backend_, net);
    EXPECT_TRUE(server_->start());
    thread_ = std::thread([this] { server_->run(); });
  }

  ~LiveServer() { stop(); }

  std::uint16_t port() const { return server_->port(); }
  U1dServer& server() { return *server_; }
  U1Backend& backend() { return backend_; }

  /// Stops the serve loop and joins; after this, stats() is safe.
  const NetServerStats& stop() {
    if (thread_.joinable()) {
      server_->stop();
      thread_.join();
    }
    return server_->stats();
  }

 private:
  NullSink sink_;
  U1Backend backend_;
  std::unique_ptr<U1dServer> server_;
  std::thread thread_;
};

Request make_request(ProtoOp op, SimTime now) {
  Request q;
  q.op = op;
  q.now = now;
  return q;
}

/// Table-2 handshake: RegisterUser then Connect. Returns the session and
/// leaves volume/root in the out-params.
std::optional<SessionId> handshake(BlockingClient& client, std::uint64_t uid,
                                   VolumeId& volume, NodeId& root,
                                   SimTime& vnow) {
  Request reg = make_request(ProtoOp::kRegisterUser, vnow);
  reg.user.value = uid;
  const auto acc = client.call(reg);
  if (!acc || !acc->ok()) return std::nullopt;
  volume = acc->volume;
  root = acc->root_dir;

  // Legal non-ok outcomes under a thundering herd: kTryAgain (balancer
  // load-shed) and kError (the modeled ~2% auth-service failure rate).
  // Real clients retry with backoff, so the handshake does too.
  for (int attempt = 0; attempt < 32; ++attempt) {
    Request conn = make_request(ProtoOp::kConnect, vnow);
    conn.user.value = uid;
    const auto sess = client.call(conn);
    if (!sess || is_protocol_error(sess->status)) return std::nullopt;
    vnow = sess->end + kSecond;
    if (sess->ok()) return sess->session;
  }
  return std::nullopt;
}

TEST(U1dServer, StartsOnEphemeralPortAndStops) {
  LiveServer live;
  EXPECT_GT(live.port(), 0);
  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(U1dServer, SingleClientFullStorageFlow) {
  LiveServer live;
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));

  SimTime vnow = kHour;
  VolumeId volume;
  NodeId root;
  const auto session = handshake(client, 4242, volume, root, vnow);
  ASSERT_TRUE(session.has_value());

  Request mk = make_request(ProtoOp::kMakeFile, vnow);
  mk.session = *session;
  mk.volume = volume;
  mk.parent = root;
  mk.set_name_hash("deadbeef");
  mk.set_extension("pdf");
  const auto mkr = client.call(mk);
  ASSERT_TRUE(mkr.has_value());
  ASSERT_TRUE(mkr->ok());
  EXPECT_EQ(mkr->op, ProtoOp::kMakeFile);
  vnow = mkr->end;

  Request up = make_request(ProtoOp::kUpload, vnow);
  up.session = *session;
  up.node = mkr->node;
  up.content = Sha1::of("net-test-blob");
  up.size_bytes = 128 * 1024;
  const auto upr = client.call(up);
  ASSERT_TRUE(upr.has_value());
  ASSERT_TRUE(upr->ok());
  EXPECT_GT(upr->end, vnow);  // transfer takes virtual time
  EXPECT_EQ(upr->committed_bytes, up.size_bytes);  // first copy: no dedup
  vnow = upr->end;

  Request down = make_request(ProtoOp::kDownload, vnow);
  down.session = *session;
  down.node = mkr->node;
  const auto dr = client.call(down);
  ASSERT_TRUE(dr.has_value());
  ASSERT_TRUE(dr->ok());
  EXPECT_EQ(dr->transferred_bytes, up.size_bytes);
  vnow = dr->end;

  Request delta = make_request(ProtoOp::kGetDelta, vnow);
  delta.session = *session;
  delta.volume = volume;
  const auto gr = client.call(delta);
  ASSERT_TRUE(gr.has_value());
  EXPECT_TRUE(gr->ok());
  vnow = gr->end;

  Request disc = make_request(ProtoOp::kDisconnect, vnow);
  disc.session = *session;
  const auto dc = client.call(disc);
  ASSERT_TRUE(dc.has_value());
  EXPECT_TRUE(dc->ok());

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_GE(stats.requests, 7u);
  EXPECT_EQ(live.backend().stats().uploads, 1u);
  EXPECT_EQ(live.backend().stats().downloads, 1u);
}

TEST(U1dServer, SixtyFourConcurrentConnectionsZeroProtocolErrors) {
  // The ISSUE acceptance bar, as a unit test: 64 live sockets doing the
  // full handshake + a burst of storage ops each, concurrently.
  constexpr std::size_t kConns = 64;
  constexpr std::size_t kOpsPerConn = 8;
  LiveServer live;

  std::vector<std::thread> workers;
  std::vector<int> failures(kConns, 0);
  workers.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    workers.emplace_back([&live, &failures, i] {
      BlockingClient client;
      if (!client.connect_loopback(live.port())) {
        failures[i] = 1;
        return;
      }
      SimTime vnow = kHour;
      VolumeId volume;
      NodeId root;
      const auto session =
          handshake(client, 10000 + i, volume, root, vnow);
      if (!session) {
        failures[i] = 2;
        return;
      }
      for (std::size_t op = 0; op < kOpsPerConn; ++op) {
        Request mk = make_request(ProtoOp::kMakeFile, vnow);
        mk.session = *session;
        mk.volume = volume;
        mk.parent = root;
        char name[16];
        std::snprintf(name, sizeof name, "%02zx%06zx", i, op);
        mk.set_name_hash(name);
        mk.set_extension("txt");
        const auto mkr = client.call(mk);
        if (!mkr || is_protocol_error(mkr->status)) {
          failures[i] = 3;
          return;
        }
        vnow = mkr->end;
        if (!mkr->ok()) continue;  // load-shed etc.: legal outcomes
        Request up = make_request(ProtoOp::kUpload, vnow);
        up.session = *session;
        up.node = mkr->node;
        up.content = Sha1::of(std::string("conn-") + name);
        up.size_bytes = 4096 + 512 * op;
        const auto upr = client.call(up);
        if (!upr || is_protocol_error(upr->status)) {
          failures[i] = 4;
          return;
        }
        vnow = upr->end;
      }
      Request disc = make_request(ProtoOp::kDisconnect, vnow);
      disc.session = *session;
      client.call(disc);
    });
  }
  for (auto& t : workers) t.join();

  for (std::size_t i = 0; i < kConns; ++i)
    EXPECT_EQ(failures[i], 0) << "connection " << i;
  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.accepted, kConns);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_GE(stats.requests, kConns * (2 + kOpsPerConn));
}

TEST(U1dServer, RuntFrameGetsTypedErrorAndConnectionSurvives) {
  LiveServer live;
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));

  // len=2 < 3: cannot hold version+op.
  const std::uint8_t runt[] = {2, 0, 0, 0, 0xaa, 0xbb};
  ASSERT_TRUE(client.send_bytes(runt, sizeof runt));
  const auto err = client.recv_response();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->status, Status::kBadFrame);

  // The same connection must still serve real traffic.
  Request reg = make_request(ProtoOp::kRegisterUser, kHour);
  reg.user.value = 777;
  const auto acc = client.call(reg);
  ASSERT_TRUE(acc.has_value());
  EXPECT_TRUE(acc->ok());

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.closed, 0u);  // nothing was dropped server-side
}

TEST(U1dServer, VersionMismatchRejectedPerFrameOpEchoed) {
  LiveServer live;
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));

  Request q = make_request(ProtoOp::kGetDelta, kHour);
  auto frame = encode_request_frame(q);
  frame[4] = 0x63;  // bogus version
  frame[5] = 0x00;
  ASSERT_TRUE(client.send_bytes(frame.data(), frame.size()));
  const auto err = client.recv_response();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->status, Status::kVersionMismatch);
  EXPECT_EQ(err->op, ProtoOp::kGetDelta);  // op echoed for correlation

  const auto acc = client.call(make_request(ProtoOp::kListVolumes, kHour));
  ASSERT_TRUE(acc.has_value());  // connection survived

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST(U1dServer, UnknownOpByteGetsTypedError) {
  LiveServer live;
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));

  auto frame = encode_request_frame(make_request(ProtoOp::kConnect, 0));
  frame[6] = 0xf0;  // op byte outside the enum
  ASSERT_TRUE(client.send_bytes(frame.data(), frame.size()));
  const auto err = client.recv_response();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->status, Status::kUnknownOp);

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST(U1dServer, OversizedLengthPrefixClosesConnectionAfterTypedError) {
  LiveServer live;
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));

  std::vector<std::uint8_t> frame(64, 0xcc);
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::memcpy(frame.data(), &len, sizeof len);
  ASSERT_TRUE(client.send_bytes(frame.data(), frame.size()));

  // The typed rejection is flushed first, then the socket closes.
  const auto err = client.recv_response();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->status, Status::kOversizedFrame);
  EXPECT_FALSE(client.recv_response().has_value());  // peer hung up

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.closed, 1u);
}

TEST(U1dServer, GarbageStreamNeverKillsTheServer) {
  LiveServer live;
  {
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect_loopback(live.port()));
    // Deterministic garbage with small plausible length prefixes, so the
    // server chews through many rejected frames on one connection.
    std::vector<std::uint8_t> stream;
    std::uint64_t x = 1234567;
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint32_t len = 3 + static_cast<std::uint32_t>(x % 32);
      for (int b = 0; b < 4; ++b)
        stream.push_back(static_cast<std::uint8_t>(len >> (8 * b)));
      for (std::uint32_t b = 0; b < len; ++b)
        stream.push_back(static_cast<std::uint8_t>(x >> (b % 8)));
    }
    ASSERT_TRUE(hostile.send_bytes(stream.data(), stream.size()));
    // Drain at least one typed rejection to know the server processed us.
    const auto first = hostile.recv_response();
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(is_protocol_error(first->status) || first->status == Status::kOk);
  }

  // A fresh well-behaved client still gets service.
  BlockingClient good;
  ASSERT_TRUE(good.connect_loopback(live.port()));
  Request reg = make_request(ProtoOp::kRegisterUser, kHour);
  reg.user.value = 99;
  const auto acc = good.call(reg);
  ASSERT_TRUE(acc.has_value());
  EXPECT_TRUE(acc->ok());

  const NetServerStats& stats = live.stop();
  EXPECT_GT(stats.protocol_errors, 0u);
}

TEST(U1dServer, ArmedFaultEdgesFireOnVirtualTime) {
  // One machine outage window scheduled at +2h. Client requests carry
  // virtual now; once the high-water mark passes the edge, the server
  // must apply it to the backend.
  LiveServer live;
  FaultSchedule schedule;
  FaultEvent begin;
  begin.id = 1;
  begin.kind = FaultKind::kMachineOutage;
  begin.begin = true;
  begin.at = 2 * kHour;
  begin.duration = kHour;
  begin.machine = 1;
  FaultEvent end = begin;
  end.begin = false;
  end.at = 3 * kHour;
  schedule.push_back(begin);
  schedule.push_back(end);
  live.server().arm_faults(&schedule);

  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));
  Request reg = make_request(ProtoOp::kRegisterUser, kHour);
  reg.user.value = 5;
  ASSERT_TRUE(client.call(reg).has_value());  // now=1h: nothing fires

  Request late = make_request(ProtoOp::kListVolumes, 4 * kHour);
  ASSERT_TRUE(client.call(late).has_value());  // now=4h: both edges pass

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.faults_applied, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(U1dServer, ScenarioScheduleFiresEveryEdgeLive) {
  // Armed-edge parity for the canned incident scenarios: the DAG
  // schedule is a pure function of (plan, horizon, fleet, shards, seed),
  // so the live server must fire exactly the edges any engine would
  // materialize — begin and end of every window, cascades included —
  // once virtual time passes the horizon.
  for (const IncidentScenario& sc : incident_scenarios()) {
    const std::string name(sc.name);
    BackendConfig cfg;
    cfg.fleet.slow_start = sc.slow_start;
    cfg.session_cap_per_process = sc.session_cap;
    LiveServer live(cfg);
    const FaultSchedule schedule = build_fault_schedule(
        incident_plan(sc.name), 3 * kDay, cfg.fleet.machines, cfg.shards, 7);
    ASSERT_FALSE(schedule.empty()) << name;
    live.server().arm_faults(&schedule);

    BlockingClient client;
    ASSERT_TRUE(client.connect_loopback(live.port())) << name;
    // Walk virtual time in two hops: half the horizon, then past it.
    // The server's high-water mark must sweep every edge exactly once.
    for (const SimTime now : {SimTime(3 * kDay) / 2, SimTime(3 * kDay)}) {
      Request q = make_request(ProtoOp::kListVolumes, now);
      ASSERT_TRUE(client.call(q).has_value()) << name;
    }
    const NetServerStats& stats = live.stop();
    EXPECT_EQ(stats.faults_applied, schedule.size()) << name;
    EXPECT_EQ(stats.protocol_errors, 0u) << name;
  }
}

TEST(U1dServer, PipelinedFramesInOneWriteAllAnswered) {
  // Two requests in a single send: the serve loop must peel both frames
  // and answer in order.
  LiveServer live;
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port()));

  Request a = make_request(ProtoOp::kRegisterUser, kHour);
  a.user.value = 11;
  Request b = make_request(ProtoOp::kConnect, kHour);
  b.user.value = 11;
  std::vector<std::uint8_t> burst;
  append_request_frame(burst, a);
  append_request_frame(burst, b);
  ASSERT_TRUE(client.send_bytes(burst.data(), burst.size()));

  const auto ra = client.recv_response();
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->op, ProtoOp::kRegisterUser);
  EXPECT_TRUE(ra->ok());
  const auto rb = client.recv_response();
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(rb->op, ProtoOp::kConnect);
  EXPECT_TRUE(rb->ok());

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(U1dServer, SlowReaderBackpressureDrainsWithoutDrop) {
  // A reader that stops consuming while thousands of responses are
  // owed: with both kernel buffers pinned tiny, the server's flush()
  // hits EAGAIN almost immediately and the whole reply stream has to
  // ride the per-connection backlog through POLLOUT-driven partial
  // sends. Every response must still arrive, in order, on the same
  // connection — a slow reader is backpressure, not an error. (EINTR
  // and the write()==0 stale-errno case in flush() share this exit
  // path: any mishandling shows up here as a dropped connection.)
  constexpr std::size_t kRequests = 3000;
  NetServerConfig net;
  net.send_buffer_bytes = 4096;  // kernel clamps to its floor, stays tiny
  LiveServer live({}, net);
  BlockingClient client;
  ASSERT_TRUE(client.connect_loopback(live.port(), /*recv_buffer_bytes=*/4096));

  // Pipeline every request up front, reading nothing: the server drains
  // the inbound stream unboundedly, so this send cannot deadlock, and
  // the owed responses pile up server-side.
  std::vector<std::uint8_t> burst;
  for (std::size_t i = 0; i < kRequests; ++i) {
    Request q = make_request(ProtoOp::kRegisterUser, kHour);
    q.user.value = 100000 + i;
    append_request_frame(burst, q);
  }
  ASSERT_TRUE(client.send_bytes(burst.data(), burst.size()));

  // Now drain. Responses must come back complete and in request order.
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value()) << "stream died at response " << i;
    EXPECT_EQ(resp->op, ProtoOp::kRegisterUser);
    EXPECT_TRUE(resp->ok()) << "response " << i;
  }

  const NetServerStats& stats = live.stop();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.responses, kRequests);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.closed, 0u);  // the slow reader was never dropped
}

}  // namespace
}  // namespace u1
