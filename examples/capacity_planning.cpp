// Capacity planning: the paper's takeaway that a 20-node / 10-shard
// database cluster served 1.29M users without congestion. This example
// sweeps the population against a fixed cluster and watches the two
// health signals the paper analyzes: RPC tail latency (Fig. 12) and
// shard load balance (Fig. 14).
#include <cstdio>

#include "analysis/load_balance.hpp"
#include "analysis/rpc_perf.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace u1;
  std::printf("fixed cluster: 10 shards, 6 API machines — population "
              "sweep (7 simulated days)\n\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "users", "write p50(ms)",
              "write p99(ms)", "shard cv(min)", "shard cv(month)");

  for (const std::size_t users : {500u, 2000u, 8000u, 20000u}) {
    SimulationConfig cfg;
    cfg.users = users;
    cfg.days = 7;
    cfg.enable_ddos = false;
    const SimTime horizon = cfg.days * kDay;

    RpcPerfAnalyzer rpcs;
    LoadBalanceAnalyzer load(0, horizon, cfg.backend.fleet.machines,
                             cfg.backend.shards);
    MultiSink fanout;
    fanout.add(&rpcs);
    fanout.add(&load);
    Simulation sim(cfg, fanout);
    sim.run();

    const auto times = rpcs.service_times(RpcOp::kMakeFile);
    double p50 = 0, p99 = 0;
    if (times.size() > 100) {
      std::vector<double> sorted(times);
      std::sort(sorted.begin(), sorted.end());
      p50 = sorted[sorted.size() / 2] * 1e3;
      p99 = sorted[sorted.size() * 99 / 100] * 1e3;
    }
    std::printf("%-8zu %14.2f %14.2f %14.3f %14.3f\n", users, p50, p99,
                load.shard_short_term_cv(), load.shard_long_term_cv());
  }

  std::printf("\nreading the table:\n");
  std::printf("  - service times stay flat with population: the "
              "user-per-shard model scales\n    out (the paper saw no "
              "congestion at 1.29M users on this cluster);\n");
  std::printf("  - the short-window shard cv stays high at every scale "
              "(bursty users,\n    asymmetric ops) while the long-term cv "
              "falls with population — the paper's\n    4.9%% at 1.29M "
              "users.\n");
  return 0;
}
