#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace u1 {
namespace {

TEST(CsvWriter, PlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesDelimiterAndQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(CsvWriter, EmptyFieldsPreserved) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"", "x", ""});
  EXPECT_EQ(out.str(), ",x,\n");
}

TEST(ParseCsvLine, Simple) {
  std::vector<std::string> f;
  ASSERT_TRUE(parse_csv_line("a,b,c", ',', f));
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(ParseCsvLine, QuotedWithEmbeddedDelimiter) {
  std::vector<std::string> f;
  ASSERT_TRUE(parse_csv_line("\"a,b\",c", ',', f));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
}

TEST(ParseCsvLine, EscapedQuote) {
  std::vector<std::string> f;
  ASSERT_TRUE(parse_csv_line("\"say \"\"hi\"\"\"", ',', f));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(ParseCsvLine, UnterminatedQuoteFails) {
  std::vector<std::string> f;
  EXPECT_FALSE(parse_csv_line("\"oops,b", ',', f));
}

TEST(ParseCsvLine, EmptyLineYieldsOneEmptyField) {
  std::vector<std::string> f;
  ASSERT_TRUE(parse_csv_line("", ',', f));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "");
}

TEST(ParseCsvLine, TrailingDelimiterYieldsTrailingEmpty) {
  std::vector<std::string> f;
  ASSERT_TRUE(parse_csv_line("a,b,", ',', f));
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "");
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> original = {"x,y", "\"q\"", "", "line\nbreak",
                                             "plain"};
  w.write_row(original);
  // Note: the embedded newline means the "line" spans two physical lines;
  // the round-trip contract here is tested without newlines.
  std::ostringstream out2;
  CsvWriter w2(out2);
  const std::vector<std::string> simple = {"x,y", "\"q\"", "", "plain"};
  w2.write_row(simple);
  std::string line = out2.str();
  line.pop_back();  // strip '\n'
  std::vector<std::string> parsed;
  ASSERT_TRUE(parse_csv_line(line, ',', parsed));
  EXPECT_EQ(parsed, simple);
}

TEST(CsvReader, ReadsRowsAndCountsErrors) {
  std::istringstream in("a,b\n\"bad\nx,y\r\n");
  CsvReader r(in);
  std::vector<std::string> f;
  ASSERT_TRUE(r.next(f));
  EXPECT_EQ(f[0], "a");
  // The malformed quoted line is skipped; next valid row is x,y with CRLF.
  ASSERT_TRUE(r.next(f));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "x");
  EXPECT_EQ(f[1], "y");
  EXPECT_FALSE(r.next(f));
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.row_count(), 3u);
}

}  // namespace
}  // namespace u1
