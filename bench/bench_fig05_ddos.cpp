// Fig. 5: the three DDoS attacks — requests per hour by type around the
// attack windows, detected attack days and spike multipliers.
#include "analysis/ddos_detect.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  DdosAnalyzer ddos(0, cfg.days * kDay);
  auto sim = run_into(ddos, cfg);

  header("Fig 5", "DDoS attacks detected in the trace");
  const auto attacks = ddos.detect();
  row("attacks detected (days)", 3, static_cast<double>(ddos.attack_days()));
  std::printf("\n  detected attack windows:\n");
  for (const auto& a : attacks) {
    const SimTime start = ddos.session_per_hour().bin_start(a.first_hour);
    std::printf("    %s .. +%zuh  session/auth spike %.1fx, API activity "
                "%.1fx\n",
                format_timestamp(start).c_str(),
                a.last_hour - a.first_hour + 1, a.peak_multiplier,
                a.api_multiplier);
  }
  std::printf("\n  paper: attacks on Jan 15, Jan 16 and Feb 6; auth "
              "activity 5-15x usual;\n  API activity 4.6x / 245x / 6.7x; "
              "manual response decays the attack\n  within ~1 hour.\n");

  std::printf("\n  request-per-hour series around the Jan 16 attack "
              "(day 5):\n");
  std::printf("  %-22s %9s %9s %9s %9s\n", "time", "rpc", "session", "auth",
              "storage");
  const auto& rpc = ddos.rpc_per_hour();
  for (std::size_t i = 0; i < rpc.bins(); ++i) {
    const SimTime t = rpc.bin_start(i);
    if (day_index(t) < 4 || day_index(t) > 6) continue;
    if (hour_of_day(t) % 2 != 0) continue;
    std::printf("  %-22s %9.0f %9.0f %9.0f %9.0f\n",
                format_timestamp(t).c_str(), rpc.value(i),
                ddos.session_per_hour().value(i),
                ddos.auth_per_hour().value(i),
                ddos.storage_per_hour().value(i));
  }
  return 0;
}
