#include "tools/u1trace_cli.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "fault/fault_plan.hpp"
#include "fault/scenarios.hpp"

#include "analysis/ddos_detect.hpp"
#include "analysis/dedup.hpp"
#include "analysis/op_mix.hpp"
#include "analysis/sessions.hpp"
#include "analysis/trace_summary.hpp"
#include "analysis/traffic.hpp"
#include "analysis/users.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/binlog.hpp"
#include "trace/logfile.hpp"
#include "util/strings.hpp"

namespace u1::cli {
namespace {

constexpr const char* kUsage =
    "usage: u1trace <command> [options]\n"
    "  generate  --out DIR [--users N] [--days D] [--seed S]\n"
    "            [--threads T] [--no-ddos] [--format csv|bin]\n"
    "            [--fault-plan standard|@SCENARIO|FILE] [--fault-seed S]\n"
    "  convert   SRC --out DIR [--to csv|bin]\n"
    "  summarize DIR\n"
    "  analyze   DIR --figure {traffic|dedup|sessions|ddos|users|ops}\n"
    "  validate  DIR\n";

/// Reads every logfile into memory, time-ordered; prints parse stats.
std::vector<TraceRecord> load(const std::string& dir, std::ostream& out,
                              ReadStats* stats_out = nullptr) {
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir, sink);
  out << "# read " << stats.parsed << " records from " << stats.files
      << " logfiles (" << stats.files_binary << " binary, "
      << stats.bytes_read << " bytes, " << stats.malformed
      << " malformed rows, " << stats.checksum_failures
      << " checksum failures)\n";
  if (stats_out != nullptr) *stats_out = stats;
  return sink.records();
}

SimTime horizon_of(const std::vector<TraceRecord>& records) {
  SimTime max_t = kDay;
  for (const TraceRecord& r : records) max_t = std::max(max_t, r.t);
  return max_t + 1;
}

}  // namespace

Args Args::parse(const std::vector<std::string>& argv,
                 const std::vector<std::string>& known_flags,
                 const std::vector<std::string>& known_switches) {
  Args out;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& token = argv[i];
    if (!starts_with(token, "--")) {
      out.positionals_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    if (std::find(known_switches.begin(), known_switches.end(), name) !=
        known_switches.end()) {
      out.switches_.push_back(name);
      continue;
    }
    if (std::find(known_flags.begin(), known_flags.end(), name) !=
        known_flags.end()) {
      if (i + 1 >= argv.size()) {
        out.errors_.push_back("--" + name + " needs a value");
        continue;
      }
      out.flags_[name] = argv[++i];
      continue;
    }
    out.errors_.push_back("unknown option --" + name);
  }
  return out;
}

std::optional<std::string> Args::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Args::int_flag(const std::string& name) const {
  const auto value = flag(name);
  if (!value) return std::nullopt;
  return parse_i64(*value);
}

bool Args::has_switch(const std::string& name) const {
  return std::find(switches_.begin(), switches_.end(), name) !=
         switches_.end();
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto dir = args.flag("out");
  if (!dir) {
    err << "generate: --out DIR is required\n";
    return 2;
  }
  SimulationConfig cfg;
  cfg.users = static_cast<std::size_t>(args.int_flag("users").value_or(2000));
  cfg.days = static_cast<int>(args.int_flag("days").value_or(7));
  cfg.seed =
      static_cast<std::uint64_t>(args.int_flag("seed").value_or(20140111));
  cfg.enable_ddos = !args.has_switch("no-ddos");
  if (const auto plan = args.flag("fault-plan")) {
    if (*plan == "standard") {
      cfg.faults = standard_fault_plan();
    } else if (!plan->empty() && plan->front() == '@') {
      // Canned incident scenario: its plan plus the backend posture
      // (slow-start ramp, per-process session cap) it assumes.
      const IncidentScenario* sc =
          find_incident_scenario(std::string_view(*plan).substr(1));
      if (sc == nullptr) {
        err << "generate: --fault-plan: unknown scenario '" << *plan
            << "' (known:";
        for (const IncidentScenario& s : incident_scenarios())
          err << " @" << s.name;
        err << ")\n";
        return 2;
      }
      cfg.faults = parse_fault_plan(sc->plan_text);
      cfg.backend.fleet.slow_start = sc->slow_start;
      cfg.backend.session_cap_per_process = sc->session_cap;
    } else {
      std::ifstream in(*plan);
      if (!in) {
        err << "generate: --fault-plan: cannot open '" << *plan << "'\n";
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      try {
        cfg.faults = parse_fault_plan(text.str());
      } catch (const std::invalid_argument& e) {
        err << "generate: --fault-plan: " << e.what() << "\n";
        return 2;
      }
    }
  }
  cfg.fault_seed =
      static_cast<std::uint64_t>(args.int_flag("fault-seed").value_or(0));
  const auto threads =
      static_cast<std::size_t>(args.int_flag("threads").value_or(1));
  // --format wins; otherwise U1SIM_TRACE_FORMAT; otherwise CSV.
  TraceFormat format = trace_format_from_env();
  if (const auto f = args.flag("format")) {
    const auto parsed = trace_format_from_string(*f);
    if (!parsed) {
      err << "generate: --format must be csv or bin\n";
      return 2;
    }
    format = *parsed;
  }
  out << "# generating: users=" << cfg.users << " days=" << cfg.days
      << " seed=" << cfg.seed << " ddos=" << (cfg.enable_ddos ? "on" : "off")
      << " faults=" << (cfg.faults.empty() ? "off" : "on")
      << " threads=" << (threads == 0 ? std::size_t{1} : threads)
      << " engine=" << (threads > 1 ? "shard-parallel" : "sequential")
      << " format=" << to_string(format) << "\n";
  const std::unique_ptr<LogfileSink> writer = make_logfile_writer(*dir, format);
  SimulationReport report;
  if (threads > 1) {
    // Shard-parallel engine: same trace bytes as sequential, any T.
    ParallelSimulation sim(cfg, *writer, threads);
    report = sim.run();
  } else {
    Simulation sim(cfg, *writer);
    report = sim.run();
  }
  writer->close();
  out << "# done: " << report.backend.sessions_opened << " sessions, "
      << report.backend.uploads << " uploads, " << report.backend.downloads
      << " downloads -> " << *dir << "\n";
  return 0;
}

int cmd_convert(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().empty()) {
    err << "convert: source trace directory required\n";
    return 2;
  }
  const auto dst = args.flag("out");
  if (!dst) {
    err << "convert: --out DIR is required\n";
    return 2;
  }
  const std::string to = args.flag("to").value_or("csv");
  const auto format = trace_format_from_string(to);
  if (!format) {
    err << "convert: --to must be csv or bin\n";
    return 2;
  }
  const std::filesystem::path src = args.positionals()[0];
  if (!std::filesystem::is_directory(src)) {
    err << "convert: '" << src.string() << "' is not a directory\n";
    return 2;
  }
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("production-")) continue;
    if (entry.path().extension() == kSymbolSidecarExt) continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  // One source logfile maps to exactly one target logfile (both formats
  // shard by (machine, process, day)), so converting file-by-file keeps
  // each file's record order — the converted bytes match what direct
  // generation in the target format would have produced.
  const std::unique_ptr<LogfileSink> writer = make_logfile_writer(*dst, *format);
  ReadStats stats;
  std::vector<TraceRecord> records;
  for (const auto& path : paths) {
    records.clear();
    stats.add(read_logfile(path, records));
    writer->append_batch(records.data(), records.size());
  }
  writer->close();
  out << "# converted " << stats.parsed << " records from " << stats.files
      << " logfiles to " << to_string(*format) << " -> " << *dst << " ("
      << stats.malformed << " malformed rows dropped)\n";
  return 0;
}

int cmd_summarize(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().empty()) {
    err << "summarize: trace directory required\n";
    return 2;
  }
  const auto records = load(args.positionals()[0], out);
  TraceSummaryAnalyzer summary;
  for (const TraceRecord& r : records) summary.append(r);
  const auto s = summary.summary();
  out << "trace duration:   " << s.days << " days\n";
  out << "unique users:     " << s.unique_users << "\n";
  out << "unique files:     " << s.unique_files << "\n";
  out << "user sessions:    " << s.sessions << "\n";
  out << "transfer ops:     " << s.transfer_ops << "\n";
  out << "upload traffic:   "
      << format_bytes(static_cast<double>(s.upload_bytes)) << "\n";
  out << "download traffic: "
      << format_bytes(static_cast<double>(s.download_bytes)) << "\n";
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().empty()) {
    err << "analyze: trace directory required\n";
    return 2;
  }
  const std::string figure = args.flag("figure").value_or("traffic");
  const auto records = load(args.positionals()[0], out);
  if (records.empty()) {
    err << "analyze: no records\n";
    return 1;
  }
  const SimTime horizon = horizon_of(records);

  if (figure == "traffic") {
    TrafficAnalyzer traffic(0, horizon);
    for (const TraceRecord& r : records) traffic.append(r);
    out << "upload:   " << traffic.upload_ops() << " ops, "
        << format_bytes(static_cast<double>(traffic.upload_bytes())) << "\n";
    out << "download: " << traffic.download_ops() << " ops, "
        << format_bytes(static_cast<double>(traffic.download_bytes()))
        << "\n";
    out << "R/W ratio median: " << traffic.rw_boxplot().median << "\n";
    out << "update ops share: " << traffic.update_op_fraction() << "\n";
    out << "update traffic share: " << traffic.update_traffic_fraction()
        << "\n";
    return 0;
  }
  if (figure == "dedup") {
    DedupAnalyzer dedup;
    for (const TraceRecord& r : records) dedup.append(r);
    out << "dedup ratio:     " << dedup.dedup_ratio() << "\n";
    out << "distinct hashes: " << dedup.distinct_hashes() << "\n";
    out << "unique fraction: " << dedup.unique_fraction() << "\n";
    return 0;
  }
  if (figure == "sessions") {
    SessionAnalyzer sessions(0, horizon);
    for (const TraceRecord& r : records) sessions.append(r);
    out << "sessions closed:  " << sessions.sessions_closed() << "\n";
    out << "under 1 second:   " << sessions.fraction_shorter_than(kSecond)
        << "\n";
    out << "under 8 hours:    "
        << sessions.fraction_shorter_than(8 * kHour) << "\n";
    out << "active fraction:  " << sessions.active_session_fraction()
        << "\n";
    out << "auth failures:    " << sessions.auth_failure_fraction() << "\n";
    return 0;
  }
  if (figure == "ddos") {
    DdosAnalyzer ddos(0, horizon);
    for (const TraceRecord& r : records) ddos.append(r);
    const auto attacks = ddos.detect();
    out << "attack windows: " << attacks.size() << " over "
        << ddos.attack_days() << " days\n";
    for (const auto& a : attacks) {
      out << "  " << format_timestamp(
                         ddos.session_per_hour().bin_start(a.first_hour))
          << "  " << (a.last_hour - a.first_hour + 1) << "h  session spike "
          << a.peak_multiplier << "x\n";
    }
    return 0;
  }
  if (figure == "users") {
    UserActivityAnalyzer users(0, horizon);
    for (const TraceRecord& r : records) users.append(r);
    users.finalize();
    const auto classes = users.classify_users();
    out << "users seen:     " << users.users_seen() << "\n";
    out << "occasional:     " << classes.occasional << "\n";
    out << "upload-only:    " << classes.upload_only << "\n";
    out << "download-only:  " << classes.download_only << "\n";
    out << "heavy:          " << classes.heavy << "\n";
    out << "upload Gini:    " << users.upload_lorenz().gini << "\n";
    out << "top 1% share:   " << users.top_traffic_share(0.01) << "\n";
    return 0;
  }
  if (figure == "ops") {
    OpMixAnalyzer mix;
    for (const TraceRecord& r : records) mix.append(r);
    for (const auto& [op, count] : mix.ranked()) {
      out << "  " << to_string(op) << ": " << count << "\n";
    }
    out << "  OpenSession: " << mix.open_sessions() << "\n";
    out << "  CloseSession: " << mix.close_sessions() << "\n";
    return 0;
  }
  err << "analyze: unknown figure '" << figure << "'\n";
  return 2;
}

int cmd_validate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().empty()) {
    err << "validate: trace directory required\n";
    return 2;
  }
  ReadStats stats;
  const auto records = load(args.positionals()[0], out, &stats);

  std::uint64_t storage = 0, done = 0, violations = 0;
  std::unordered_map<std::uint64_t, SimTime> last_per_session;
  std::unordered_set<std::uint64_t> open;
  std::uint64_t opens = 0, closes = 0;
  for (const TraceRecord& r : records) {
    if (r.session.valid()) {
      const auto [it, fresh] =
          last_per_session.try_emplace(r.session.value, r.t);
      if (!fresh) {
        if (it->second > r.t) ++violations;
        it->second = r.t;
      }
    }
    if (r.type == RecordType::kStorage) ++storage;
    if (r.type == RecordType::kStorageDone) ++done;
    if (r.type == RecordType::kSession) {
      if (r.session_event == SessionEvent::kOpen) {
        ++opens;
        open.insert(r.session.value);
      }
      if (r.session_event == SessionEvent::kClose) {
        ++closes;
        open.erase(r.session.value);
      }
    }
  }
  const double malformed_share =
      stats.rows > 0
          ? static_cast<double>(stats.malformed) /
                static_cast<double>(stats.rows)
          : 0.0;
  out << "records:               " << records.size() << "\n";
  out << "malformed row share:   " << malformed_share << "\n";
  out << "storage/done pairing:  " << storage << " / " << done << "\n";
  out << "sessions open/closed:  " << opens << " / " << closes << " ("
      << open.size() << " still open at trace end)\n";
  out << "per-session order violations: " << violations << "\n";
  const bool sound = storage == done && violations == 0;
  out << (sound ? "TRACE SOUND\n" : "TRACE UNSOUND\n");
  if (!sound) err << "validate: structural problems found\n";
  return sound ? 0 : 1;
}

int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err) {
  if (argv.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string command = argv[0];
  const std::vector<std::string> rest(argv.begin() + 1, argv.end());

  if (command == "generate") {
    const Args args = Args::parse(
        rest, {"out", "users", "days", "seed", "threads", "fault-plan",
               "fault-seed", "format"},
        {"no-ddos"});
    if (!args.ok()) {
      for (const auto& e : args.errors()) err << "generate: " << e << "\n";
      return 2;
    }
    return cmd_generate(args, out, err);
  }
  if (command == "convert") {
    const Args args = Args::parse(rest, {"out", "to"}, {});
    if (!args.ok()) {
      for (const auto& e : args.errors()) err << "convert: " << e << "\n";
      return 2;
    }
    return cmd_convert(args, out, err);
  }
  if (command == "summarize" || command == "analyze" ||
      command == "validate") {
    const Args args = Args::parse(rest, {"figure"}, {});
    if (!args.ok()) {
      for (const auto& e : args.errors()) err << command << ": " << e << "\n";
      return 2;
    }
    if (command == "summarize") return cmd_summarize(args, out, err);
    if (command == "analyze") return cmd_analyze(args, out, err);
    return cmd_validate(args, out, err);
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace u1::cli
