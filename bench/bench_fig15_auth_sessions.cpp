// Fig. 15: authentication and session management activity time-series,
// the 2.76% auth failure rate and the Monday/weekend pattern.
#include "analysis/sessions.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  SessionAnalyzer sessions(0, cfg.days * kDay);
  auto sim = run_into(sessions, cfg);

  header("Fig 15", "Authentication activity and session requests");
  std::printf("  requests per hour (first week, every 6h):\n");
  std::printf("  %-22s %12s %12s\n", "time", "auth req", "session req");
  const auto& auth = sessions.auth_requests_hourly();
  const auto& sess = sessions.session_requests_hourly();
  for (std::size_t i = 0; i < auth.bins() && i < 7 * 24; i += 6) {
    std::printf("  %-22s %12.0f %12.0f\n",
                format_timestamp(auth.bin_start(i)).c_str(), auth.value(i),
                sess.value(i));
  }
  std::printf("\n");
  row("auth requests failing", 0.0276, sessions.auth_failure_fraction());
  row("Monday peak / weekend peak", 1.15,
      sessions.monday_weekend_peak_ratio());
  note("paper: authentication activity is 50-60% higher in central day "
       "hours and ~15% higher on Mondays than weekends; the inner plot "
       "shows session requests spiking under DDoS (see bench_fig05)");
  return 0;
}
