#include "trace/record.hpp"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <vector>

#include "util/sha1.hpp"

namespace u1 {
namespace {

TraceRecord sample_storage_record() {
  Rng rng(1);
  TraceRecord r;
  r.t = 3 * kDay + 7 * kHour + 123 * kMillisecond;
  r.type = RecordType::kStorageDone;
  r.machine = MachineId{2};
  r.process = ProcessId{23};
  r.user = UserId{99};
  r.session = SessionId{1234};
  r.api_op = ApiOp::kPutContent;
  r.node = Uuid::v4(rng);
  r.parent = Uuid::v4(rng);
  r.volume = Uuid::v4(rng);
  r.size_bytes = 123456;
  r.transferred_bytes = 123456;
  r.content = Sha1::of("content");
  r.set_extension("mp3");
  r.is_update = true;
  r.duration = 2 * kSecond;
  return r;
}

std::vector<std::string> csv_with(std::size_t index, std::string value) {
  auto fields = sample_storage_record().to_csv();
  fields[index] = std::move(value);
  return fields;
}

TEST(TraceRecord, CsvRoundTripStorage) {
  const TraceRecord r = sample_storage_record();
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->t, r.t);
  EXPECT_EQ(parsed->type, r.type);
  EXPECT_EQ(parsed->machine, r.machine);
  EXPECT_EQ(parsed->process, r.process);
  EXPECT_EQ(parsed->user, r.user);
  EXPECT_EQ(parsed->session, r.session);
  EXPECT_EQ(parsed->api_op, r.api_op);
  EXPECT_EQ(parsed->node, r.node);
  EXPECT_EQ(parsed->parent, r.parent);
  EXPECT_EQ(parsed->volume, r.volume);
  EXPECT_EQ(parsed->size_bytes, r.size_bytes);
  EXPECT_EQ(parsed->transferred_bytes, r.transferred_bytes);
  EXPECT_EQ(parsed->content, r.content);
  EXPECT_EQ(parsed->extension(), r.extension());
  EXPECT_EQ(parsed->is_update, r.is_update);
  EXPECT_EQ(parsed->duration, r.duration);
}

TEST(TraceRecord, PodLayout) {
  // The flush pipeline sorts/merges records by memcpy-able moves; both
  // properties are also enforced at compile time in record.hpp.
  EXPECT_TRUE(std::is_trivially_copyable_v<TraceRecord>);
  EXPECT_LE(sizeof(TraceRecord), 128u);
}

TEST(TraceRecord, ExtensionIsInternedSymbol) {
  TraceRecord a, b;
  a.type = RecordType::kStorage;
  b.type = RecordType::kStorageDone;
  a.set_extension("odt");
  b.set_extension("odt");
  EXPECT_NE(a.label, kEmptySymbol);
  EXPECT_EQ(a.label, b.label);  // same string, same global symbol
  EXPECT_EQ(a.extension(), "odt");
  a.set_extension("");
  EXPECT_EQ(a.label, kEmptySymbol);
  EXPECT_EQ(a.extension(), "");
}

TEST(TraceRecord, CsvRoundTripFault) {
  TraceRecord r;
  r.t = 5 * kHour;
  r.type = RecordType::kFault;
  r.machine = MachineId{4};
  r.process = ProcessId{2};
  r.set_fault("switch_outage#1:begin");
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RecordType::kFault);
  EXPECT_EQ(parsed->fault(), "switch_outage#1:begin");
  // The label is type-gated: a fault record has no extension and a
  // storage record has no fault string, even though both share `label`.
  EXPECT_EQ(parsed->extension(), "");
  const TraceRecord storage = sample_storage_record();
  EXPECT_EQ(storage.fault(), "");
}

TEST(TraceRecord, CsvRoundTripRpc) {
  TraceRecord r;
  r.t = kHour;
  r.type = RecordType::kRpc;
  r.machine = MachineId{1};
  r.process = ProcessId{5};
  r.user = UserId{7};
  r.session = SessionId{8};
  r.rpc_op = RpcOp::kMakeContent;
  r.shard = ShardId{4};
  r.service_time = 8 * kMillisecond;
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rpc_op, r.rpc_op);
  EXPECT_EQ(parsed->shard, r.shard);
  EXPECT_EQ(parsed->service_time, r.service_time);
}

TEST(TraceRecord, CsvRoundTripSession) {
  TraceRecord r;
  r.t = 2 * kHour;
  r.type = RecordType::kSession;
  r.machine = MachineId{3};
  r.process = ProcessId{9};
  r.user = UserId{11};
  r.session = SessionId{12};
  r.session_event = SessionEvent::kClose;
  r.duration = 45 * kMinute;
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->session_event, SessionEvent::kClose);
  EXPECT_EQ(parsed->duration, 45 * kMinute);
}

TEST(TraceRecord, FromCsvRejectsMalformed) {
  EXPECT_FALSE(TraceRecord::from_csv({}).has_value());
  EXPECT_FALSE(TraceRecord::from_csv({"only", "two"}).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(0, "not-a-number")).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(1, "bogus_type")).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(13, "nothex")).has_value());
}

TEST(TraceRecord, FromCsvRejectsOverflowingIds) {
  // The packed record stores narrow ids; values a valid writer can never
  // emit (the fleet has 19 machines, 8 workers, 32-bit users/sessions)
  // are malformed input, not silent truncations.
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(2, "256")).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(3, "65536")).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(4, "4294967296")).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(5, "4294967296")).has_value());
  EXPECT_FALSE(TraceRecord::from_csv(csv_with(2, "-1")).has_value());
  // In-range values still parse.
  EXPECT_TRUE(TraceRecord::from_csv(csv_with(2, "255")).has_value());
}

TEST(TraceRecord, FromCsvRejectsLabelOnWrongType) {
  // extension and fault share one symbol slot, gated by the record type:
  // a row carrying both, or carrying the wrong one, is malformed.
  const auto both = csv_with(23, "power#0:begin");  // storage row + fault col
  EXPECT_FALSE(TraceRecord::from_csv(both).has_value());
  TraceRecord f;
  f.t = kHour;
  f.type = RecordType::kFault;
  f.set_fault("power#0:begin");
  auto fields = f.to_csv();
  fields[14] = "mp3";  // extension on a fault row
  fields[23] = "";
  EXPECT_FALSE(TraceRecord::from_csv(fields).has_value());
}

TEST(TraceRecord, AppendCsvRowMatchesToCsv) {
  // The hashing/serialization fast path must produce exactly the bytes
  // the historical per-field loop produced: every to_csv field followed
  // by ',', then '\n'. The trace SHA-1 baseline depends on this.
  std::vector<TraceRecord> samples;
  samples.push_back(sample_storage_record());
  TraceRecord boot = sample_storage_record();
  boot.t = -3 * kDay;  // bootstrap records carry negative timestamps
  samples.push_back(boot);
  TraceRecord fault;
  fault.t = kHour;
  fault.type = RecordType::kFault;
  fault.machine = MachineId{3};
  fault.set_fault("db_failover#2:end");
  samples.push_back(fault);
  for (const TraceRecord& r : samples) {
    std::string expected;
    for (const std::string& field : r.to_csv()) {
      expected += field;
      expected += ',';
    }
    expected += '\n';
    std::string actual;
    r.append_csv_row(actual);
    EXPECT_EQ(actual, expected);
  }
}

TEST(TraceRecord, HeaderMatchesColumnCount) {
  const TraceRecord r = sample_storage_record();
  EXPECT_EQ(r.to_csv().size(), TraceRecord::csv_header().size());
}

TEST(TraceRecord, LognameFormat) {
  TraceRecord r;
  r.t = 17 * kDay;  // 2014-01-28
  r.machine = MachineId{1};
  r.process = ProcessId{23};
  EXPECT_EQ(r.logname(), "production-whitecurrant-23-20140128");
}

TEST(TraceRecord, MachineNamesStable) {
  EXPECT_EQ(machine_name(MachineId{1}), "whitecurrant");
  EXPECT_EQ(machine_name(MachineId{2}), "blackcurrant");
  EXPECT_EQ(machine_name(MachineId{0}), "unassigned");
}

TEST(RecordType, StringRoundTrip) {
  for (const RecordType t :
       {RecordType::kSession, RecordType::kStorage, RecordType::kStorageDone,
        RecordType::kRpc, RecordType::kFault}) {
    const auto back = record_type_from_string(to_string(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(record_type_from_string("nope").has_value());
}

TEST(SessionEvent, StringRoundTrip) {
  for (const SessionEvent e :
       {SessionEvent::kNone, SessionEvent::kAuthRequest,
        SessionEvent::kAuthOk, SessionEvent::kAuthFail, SessionEvent::kOpen,
        SessionEvent::kClose}) {
    const auto back = session_event_from_string(to_string(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
  EXPECT_FALSE(session_event_from_string("garbage").has_value());
}

}  // namespace
}  // namespace u1
