#include "trace/record.hpp"

#include <array>
#include <charconv>
#include <cstring>

#include "util/strings.hpp"

namespace u1 {
namespace {

constexpr std::array<std::string_view, 8> kMachineNames = {
    "whitecurrant", "blackcurrant", "redcurrant", "gooseberry",
    "elderberry",   "cloudberry",   "mulberry",   "boysenberry",
};

const std::vector<std::string> kCsvHeader = {
    "t_us",     "type",    "machine", "process",  "user",
    "session",  "event",   "op",      "node",     "parent",
    "volume",
    "size",     "wire",    "hash",    "ext",      "update",
    "dir",      "dedup",   "failed",  "dur_us",   "rpc",
    "shard",    "svc_us",  "fault",
};

std::string u64s(std::uint64_t v) { return std::to_string(v); }

std::string uuid_or_empty(const Uuid& u) {
  return u.is_nil() ? std::string{} : u.str();
}

std::string hash_or_empty(const ContentId& c) {
  return c == ContentId{} ? std::string{} : c.hex();
}

constexpr char kHexDigits[] = "0123456789abcdef";

// --- allocation-free appenders for append_csv_row ---------------------------

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_hex_bytes(std::string& out, const std::uint8_t* bytes,
                      std::size_t n) {
  char buf[40];
  for (std::size_t i = 0; i < n; ++i) {
    buf[2 * i] = kHexDigits[bytes[i] >> 4];
    buf[2 * i + 1] = kHexDigits[bytes[i] & 0xf];
  }
  out.append(buf, 2 * n);
}

/// Canonical 8-4-4-4-12 form, byte-identical to Uuid::str().
void append_uuid(std::string& out, const Uuid& u) {
  append_hex_bytes(out, u.bytes.data(), 4);
  out.push_back('-');
  append_hex_bytes(out, u.bytes.data() + 4, 2);
  out.push_back('-');
  append_hex_bytes(out, u.bytes.data() + 6, 2);
  out.push_back('-');
  append_hex_bytes(out, u.bytes.data() + 8, 2);
  out.push_back('-');
  append_hex_bytes(out, u.bytes.data() + 10, 6);
}

}  // namespace

std::string_view to_string(RecordType t) noexcept {
  switch (t) {
    case RecordType::kSession: return "session";
    case RecordType::kStorage: return "storage";
    case RecordType::kStorageDone: return "storage_done";
    case RecordType::kRpc: return "rpc";
    case RecordType::kFault: return "fault";
  }
  return "unknown";
}

std::optional<RecordType> record_type_from_string(
    std::string_view s) noexcept {
  if (s == "session") return RecordType::kSession;
  if (s == "storage") return RecordType::kStorage;
  if (s == "storage_done") return RecordType::kStorageDone;
  if (s == "rpc") return RecordType::kRpc;
  if (s == "fault") return RecordType::kFault;
  return std::nullopt;
}

std::string_view to_string(SessionEvent e) noexcept {
  switch (e) {
    case SessionEvent::kNone: return "";
    case SessionEvent::kAuthRequest: return "auth_request";
    case SessionEvent::kAuthOk: return "auth_ok";
    case SessionEvent::kAuthFail: return "auth_fail";
    case SessionEvent::kOpen: return "open";
    case SessionEvent::kClose: return "close";
    case SessionEvent::kDropped: return "dropped";
    case SessionEvent::kTryAgain: return "try_again";
  }
  return "";
}

std::optional<SessionEvent> session_event_from_string(
    std::string_view s) noexcept {
  if (s.empty()) return SessionEvent::kNone;
  if (s == "auth_request") return SessionEvent::kAuthRequest;
  if (s == "auth_ok") return SessionEvent::kAuthOk;
  if (s == "auth_fail") return SessionEvent::kAuthFail;
  if (s == "open") return SessionEvent::kOpen;
  if (s == "close") return SessionEvent::kClose;
  if (s == "dropped") return SessionEvent::kDropped;
  if (s == "try_again") return SessionEvent::kTryAgain;
  return std::nullopt;
}

std::string_view machine_name(MachineId id) noexcept {
  if (id.value == 0) return "unassigned";
  return kMachineNames[(id.value - 1) % kMachineNames.size()];
}

std::string TraceRecord::logname() const {
  std::string out = "production-";
  out += machine_name(machine);
  out += '-';
  out += std::to_string(process.value);
  out += '-';
  out += trace_date(t);
  return out;
}

const std::vector<std::string>& TraceRecord::csv_header() {
  return kCsvHeader;
}

std::vector<std::string> TraceRecord::to_csv() const {
  std::vector<std::string> f;
  f.reserve(kCsvHeader.size());
  f.push_back(u64s(static_cast<std::uint64_t>(t)));
  f.emplace_back(to_string(type));
  f.push_back(u64s(machine.value));
  f.push_back(u64s(process.value));
  f.push_back(u64s(user.value));
  f.push_back(u64s(session.value));
  f.emplace_back(to_string(session_event));
  if (type == RecordType::kStorage || type == RecordType::kStorageDone) {
    f.emplace_back(to_string(api_op));
  } else {
    f.emplace_back();
  }
  f.push_back(uuid_or_empty(node));
  f.push_back(uuid_or_empty(parent));
  f.push_back(uuid_or_empty(volume));
  f.push_back(size_bytes > 0 ? u64s(size_bytes) : std::string{});
  f.push_back(transferred_bytes > 0 ? u64s(transferred_bytes)
                                    : std::string{});
  f.push_back(hash_or_empty(content));
  f.emplace_back(extension());
  f.emplace_back(is_update ? "1" : "");
  f.emplace_back(is_dir ? "1" : "");
  f.emplace_back(deduplicated ? "1" : "");
  f.emplace_back(failed ? "1" : "");
  f.push_back(duration > 0 ? u64s(static_cast<std::uint64_t>(duration))
                           : std::string{});
  if (type == RecordType::kRpc) {
    f.emplace_back(to_string(rpc_op));
  } else {
    f.emplace_back();
  }
  f.push_back(shard.value > 0 ? u64s(shard.value) : std::string{});
  f.push_back(service_time > 0 ? u64s(service_time) : std::string{});
  f.emplace_back(fault());
  return f;
}

void TraceRecord::append_csv_row(std::string& out) const {
  // Field order and formatting mirror to_csv() exactly; every field is
  // followed by ',' and the row by '\n' (the historical hashing format —
  // note the trailing comma before the newline).
  append_u64(out, static_cast<std::uint64_t>(t));
  out.push_back(',');
  out.append(to_string(type));
  out.push_back(',');
  append_u64(out, machine.value);
  out.push_back(',');
  append_u64(out, process.value);
  out.push_back(',');
  append_u64(out, user.value);
  out.push_back(',');
  append_u64(out, session.value);
  out.push_back(',');
  out.append(to_string(session_event));
  out.push_back(',');
  if (type == RecordType::kStorage || type == RecordType::kStorageDone)
    out.append(to_string(api_op));
  out.push_back(',');
  if (!node.is_nil()) append_uuid(out, node);
  out.push_back(',');
  if (!parent.is_nil()) append_uuid(out, parent);
  out.push_back(',');
  if (!volume.is_nil()) append_uuid(out, volume);
  out.push_back(',');
  if (size_bytes > 0) append_u64(out, size_bytes);
  out.push_back(',');
  if (transferred_bytes > 0) append_u64(out, transferred_bytes);
  out.push_back(',');
  if (!(content == ContentId{}))
    append_hex_bytes(out, content.bytes.data(), content.bytes.size());
  out.push_back(',');
  out.append(extension());
  out.push_back(',');
  if (is_update) out.push_back('1');
  out.push_back(',');
  if (is_dir) out.push_back('1');
  out.push_back(',');
  if (deduplicated) out.push_back('1');
  out.push_back(',');
  if (failed) out.push_back('1');
  out.push_back(',');
  if (duration > 0) append_u64(out, static_cast<std::uint64_t>(duration));
  out.push_back(',');
  if (type == RecordType::kRpc) out.append(to_string(rpc_op));
  out.push_back(',');
  if (shard.value > 0) append_u64(out, shard.value);
  out.push_back(',');
  if (service_time > 0) append_u64(out, service_time);
  out.push_back(',');
  out.append(fault());
  out.push_back(',');
  out.push_back('\n');
}

std::optional<TraceRecord> TraceRecord::from_csv(
    const std::vector<std::string>& f) {
  if (f.size() != kCsvHeader.size()) return std::nullopt;
  TraceRecord r;
  const auto t_us = parse_i64(f[0]);
  if (!t_us) return std::nullopt;
  r.t = *t_us;
  const auto type = record_type_from_string(f[1]);
  if (!type) return std::nullopt;
  r.type = *type;
  const auto machine = parse_i64(f[2]);
  const auto process = parse_i64(f[3]);
  const auto user = parse_i64(f[4]);
  const auto session = parse_i64(f[5]);
  if (!machine || !process || !user || !session) return std::nullopt;
  // Ids overflowing their packed in-record width are malformed, not
  // silently truncated.
  const auto fits = [](std::int64_t v, std::uint64_t max) {
    return v >= 0 && static_cast<std::uint64_t>(v) <= max;
  };
  if (!fits(*machine, 0xff) || !fits(*process, 0xffff) ||
      !fits(*user, 0xffffffff) || !fits(*session, 0xffffffff))
    return std::nullopt;
  r.machine = MachineId{static_cast<std::uint64_t>(*machine)};
  r.process = ProcessId{static_cast<std::uint64_t>(*process)};
  r.user = UserId{static_cast<std::uint64_t>(*user)};
  r.session = SessionId{static_cast<std::uint64_t>(*session)};
  const auto event = session_event_from_string(f[6]);
  if (!event) return std::nullopt;
  r.session_event = *event;
  if (r.type == RecordType::kStorage || r.type == RecordType::kStorageDone) {
    const auto op = api_op_from_string(f[7]);
    if (!op) return std::nullopt;
    r.api_op = *op;
  }
  try {
    if (!f[8].empty()) r.node = Uuid::parse(f[8]);
    if (!f[9].empty()) r.parent = Uuid::parse(f[9]);
    if (!f[10].empty()) r.volume = Uuid::parse(f[10]);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (!f[11].empty()) {
    const auto v = parse_i64(f[11]);
    if (!v) return std::nullopt;
    r.size_bytes = static_cast<std::uint64_t>(*v);
  }
  if (!f[12].empty()) {
    const auto v = parse_i64(f[12]);
    if (!v) return std::nullopt;
    r.transferred_bytes = static_cast<std::uint64_t>(*v);
  }
  if (!f[13].empty()) {
    if (f[13].size() != 40) return std::nullopt;
    for (std::size_t i = 0; i < 20; ++i) {
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nibble(f[13][2 * i]);
      const int lo = nibble(f[13][2 * i + 1]);
      if (hi < 0 || lo < 0) return std::nullopt;
      r.content.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
  }
  if (!f[19].empty()) {
    const auto v = parse_i64(f[19]);
    if (!v) return std::nullopt;
    r.duration = *v;
  }
  if (r.type == RecordType::kRpc) {
    const auto op = rpc_op_from_string(f[20]);
    if (!op) return std::nullopt;
    r.rpc_op = *op;
  }
  if (!f[21].empty()) {
    const auto v = parse_i64(f[21]);
    if (!v) return std::nullopt;
    if (!fits(*v, 0xffff)) return std::nullopt;
    r.shard = ShardId{static_cast<std::uint64_t>(*v)};
  }
  if (!f[22].empty()) {
    const auto v = parse_i64(f[22]);
    if (!v) return std::nullopt;
    if (!fits(*v, 0xffffffff)) return std::nullopt;
    r.service_time = static_cast<std::uint32_t>(*v);
  }
  // ext and fault share the interned label slot; a row claiming both is
  // internally inconsistent (no record type carries both columns).
  if (!f[14].empty() && !f[23].empty()) return std::nullopt;
  if (!f[14].empty()) {
    if (r.type == RecordType::kFault) return std::nullopt;
    r.set_extension(f[14]);
  }
  if (!f[23].empty()) {
    if (r.type != RecordType::kFault) return std::nullopt;
    r.set_fault(f[23]);
  }
  r.is_update = f[15] == "1";
  r.is_dir = f[16] == "1";
  r.deduplicated = f[17] == "1";
  r.failed = f[18] == "1";
  return r;
}

}  // namespace u1
