// Discrete-event core: a time-ordered queue with deterministic FIFO
// tie-breaking (events at equal timestamps pop in insertion order, so a
// simulation is reproducible bit-for-bit given a seed).
//
// Implemented over a raw std::vector binary heap rather than
// std::priority_queue: top() of the adaptor is const, forcing pop() to
// copy the element out. With the raw heap, pop_heap moves the minimum to
// the back and we move it out — no copy on the hottest loop of the
// simulator — and the backing vector can be reserve()d up front.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"

namespace u1 {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Payload payload;
  };

  /// Pre-sizes the backing vector (e.g. one slot per scheduled agent).
  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(SimTime t, Payload payload) {
    heap_.push_back(Event{t, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  std::size_t capacity() const noexcept { return heap_.capacity(); }

  /// Timestamp of the next event; only valid when !empty().
  SimTime next_time() const { return heap_.front().t; }

  /// Pops the earliest event (moved out of the heap, never copied).
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace u1
