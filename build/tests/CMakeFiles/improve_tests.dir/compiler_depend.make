# Empty compiler generated dependencies file for improve_tests.
# This may be replaced when dependencies are built.
