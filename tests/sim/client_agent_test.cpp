// Direct tests of the desktop-client agent against a real backend:
// handshake sequence, session lifecycle, bootstrap, namespace mirroring.
#include "sim/client_agent.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/sink.hpp"

namespace u1 {
namespace {

class ClientAgentTest : public ::testing::Test {
 protected:
  ClientAgentTest()
      : pool_(0.2, 0.9, 1),
        backend_cfg_(make_backend_cfg()),
        backend_(backend_cfg_, sink_) {
    ctx_.files = &files_;
    ctx_.contents = &pool_;
    ctx_.users = &users_;
    ctx_.transitions = &transitions_;
    ctx_.diurnal = &diurnal_;
    ctx_.bursts = &bursts_;
  }

  static BackendConfig make_backend_cfg() {
    BackendConfig cfg;
    cfg.auth_failure_rate = 0.0;
    cfg.seed = 9;
    return cfg;
  }

  ClientAgent make_agent(std::uint64_t uid, UserProfile profile) {
    const UserAccount acc = backend_.register_user(UserId{uid}, 0);
    return ClientAgent(UserId{uid}, profile, acc, ctx_, Rng(uid * 7 + 1));
  }

  static UserProfile heavy_profile() {
    UserProfile p;
    p.user_class = UserClass::kHeavy;
    p.activity = 4.0;
    p.sessions_per_day = 3.0;
    p.active_session_prob = 0.9;  // make sessions reliably active
    p.udf_volumes = 2;
    return p;
  }

  FileModel files_;
  ContentPool pool_;
  UserModel users_;
  TransitionModel transitions_;
  DiurnalModel diurnal_;
  BurstProcess bursts_;
  WorkloadContext ctx_;
  InMemorySink sink_;
  BackendConfig backend_cfg_;
  U1Backend backend_;
};

TEST_F(ClientAgentTest, BootstrapSeedsNamespaceBeforeTraceStart) {
  ClientAgent agent = make_agent(1, heavy_profile());
  agent.bootstrap(backend_, -3 * kDay, 25);
  EXPECT_GE(agent.file_count(), 25u);
  EXPECT_FALSE(agent.connected());
  // All records strictly before the trace window.
  for (const TraceRecord& r : sink_.records()) EXPECT_LT(r.t, 0);
  // The store saw the files.
  EXPECT_GE(backend_.store().total_nodes(), 25u);
}

TEST_F(ClientAgentTest, WakeConnectsAndRunsHandshake) {
  ClientAgent agent = make_agent(1, heavy_profile());
  const SimTime next = agent.on_wake(backend_, kHour);
  EXPECT_TRUE(agent.connected());
  EXPECT_GT(next, kHour);
  // Handshake emitted the Fig. 8 start flow: caps + ListVolumes.
  bool saw_caps = false, saw_list = false, saw_open = false;
  for (const TraceRecord& r : sink_.records()) {
    if (r.type == RecordType::kSession &&
        r.session_event == SessionEvent::kOpen)
      saw_open = true;
    if (r.type == RecordType::kStorageDone) {
      saw_caps |= r.api_op == ApiOp::kQuerySetCaps;
      saw_list |= r.api_op == ApiOp::kListVolumes;
    }
  }
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(saw_caps);
  EXPECT_TRUE(saw_list);
}

TEST_F(ClientAgentTest, DrivenAgentEventuallyDisconnects) {
  ClientAgent agent = make_agent(1, heavy_profile());
  agent.bootstrap(backend_, -2 * kDay, 10);
  SimTime t = kHour;
  bool was_connected = false;
  for (int i = 0; i < 10000 && t < 30 * kDay; ++i) {
    t = agent.on_wake(backend_, t);
    was_connected |= agent.connected();
    if (was_connected && !agent.connected()) break;
  }
  EXPECT_TRUE(was_connected);
  EXPECT_FALSE(agent.connected());
  // The close record exists and sessions balance.
  std::uint64_t opens = 0, closes = 0;
  for (const TraceRecord& r : sink_.records()) {
    if (r.type != RecordType::kSession) continue;
    if (r.session_event == SessionEvent::kOpen) ++opens;
    if (r.session_event == SessionEvent::kClose) ++closes;
  }
  EXPECT_GE(opens, 1u);
  EXPECT_EQ(opens, closes);
}

TEST_F(ClientAgentTest, ActiveAgentPerformsStorageOps) {
  ClientAgent agent = make_agent(1, heavy_profile());
  agent.bootstrap(backend_, -2 * kDay, 10);
  SimTime t = kHour;
  for (int i = 0; i < 3000 && t < 20 * kDay; ++i) t = agent.on_wake(backend_, t);
  std::uint64_t storage_ops = 0;
  for (const TraceRecord& r : sink_.records()) {
    if (r.t >= 0 && r.type == RecordType::kStorageDone &&
        is_storage_op(r.api_op))
      ++storage_ops;
  }
  EXPECT_GT(storage_ops, 10u);
}

TEST_F(ClientAgentTest, AuthFailureTriggersBackoff) {
  BackendConfig cfg = make_backend_cfg();
  cfg.auth_failure_rate = 0.999;
  InMemorySink sink;
  U1Backend failing(cfg, sink);
  const UserAccount acc = failing.register_user(UserId{5}, 0);
  ClientAgent agent(UserId{5}, heavy_profile(), acc, ctx_, Rng(3));
  const SimTime t1 = agent.on_wake(failing, kHour);
  EXPECT_FALSE(agent.connected());
  EXPECT_GT(t1, kHour + 20 * kSecond);  // backoff applied
  const SimTime t2 = agent.on_wake(failing, t1);
  EXPECT_GT(t2 - t1, (t1 - kHour) / 2);  // grows (roughly) exponentially
}

TEST_F(ClientAgentTest, ColdProfileMostlyIdles) {
  UserProfile cold;
  cold.user_class = UserClass::kOccasional;
  cold.activity = 1.0;
  cold.sessions_per_day = 1.0;
  cold.active_session_prob = 0.0;  // never active
  ClientAgent agent = make_agent(2, cold);
  SimTime t = kHour;
  for (int i = 0; i < 500 && t < 20 * kDay; ++i) t = agent.on_wake(backend_, t);
  for (const TraceRecord& r : sink_.records()) {
    if (r.type == RecordType::kStorageDone) {
      EXPECT_FALSE(is_storage_op(r.api_op))
          << to_string(r.api_op) << " from a never-active profile";
    }
  }
}

TEST_F(ClientAgentTest, MirrorsServerNamespace) {
  // After a long run, every file the agent believes in must exist in the
  // metadata store (the agent's local mirror never drifts).
  ClientAgent agent = make_agent(3, heavy_profile());
  agent.bootstrap(backend_, -2 * kDay, 15);
  SimTime t = kHour;
  for (int i = 0; i < 2000 && t < 20 * kDay; ++i) t = agent.on_wake(backend_, t);
  const auto& store = backend_.store();
  const auto& shard = store.shard(store.shard_of(UserId{3}));
  // node_count counts volume roots too; the mirror only tracks files/dirs.
  EXPECT_GE(shard.node_count(), agent.file_count());
}

}  // namespace
}  // namespace u1
