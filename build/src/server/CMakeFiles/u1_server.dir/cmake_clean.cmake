file(REMOVE_RECURSE
  "CMakeFiles/u1_server.dir/backend.cpp.o"
  "CMakeFiles/u1_server.dir/backend.cpp.o.d"
  "CMakeFiles/u1_server.dir/fleet.cpp.o"
  "CMakeFiles/u1_server.dir/fleet.cpp.o.d"
  "libu1_server.a"
  "libu1_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
