# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/proto_tests[1]_include.cmake")
include("/root/repo/build/tests/store_tests[1]_include.cmake")
include("/root/repo/build/tests/cloudstore_tests[1]_include.cmake")
include("/root/repo/build/tests/auth_tests[1]_include.cmake")
include("/root/repo/build/tests/mq_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/server_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/improve_tests[1]_include.cmake")
include("/root/repo/build/tests/tools_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
