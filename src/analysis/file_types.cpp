#include "analysis/file_types.hpp"

#include <algorithm>

namespace u1 {

std::uint16_t FileTypeAnalyzer::intern(Symbol label,
                                       std::string_view extension) {
  const auto hit = label_index_.find(label);
  if (hit != label_index_.end()) return hit->second;
  // First sighting of this symbol: fall back to the string key (distinct
  // symbols resolving to one string cannot happen within a process, but
  // the string map also serves sizes_of()).
  const std::string key(extension);
  std::uint16_t idx;
  const auto it = ext_index_.find(key);
  if (it != ext_index_.end()) {
    idx = it->second;
  } else {
    idx = static_cast<std::uint16_t>(extensions_.size());
    extensions_.push_back(key);
    ext_index_.emplace(key, idx);
  }
  label_index_.emplace(label, idx);
  return idx;
}

void FileTypeAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
  if (r.api_op != ApiOp::kPutContent || r.size_bytes == 0) return;
  FileInfo& info = files_[r.node];
  info.size = r.size_bytes;  // updates keep the latest size
  info.ext_index = intern(r.label, r.extension());
}

std::vector<double> FileTypeAnalyzer::all_sizes() const {
  std::vector<double> out;
  out.reserve(files_.size());
  for (const auto& [id, info] : files_)
    out.push_back(static_cast<double>(info.size));
  return out;
}

std::vector<double> FileTypeAnalyzer::sizes_of(
    const std::string& extension) const {
  std::vector<double> out;
  const auto it = ext_index_.find(extension);
  if (it == ext_index_.end()) return out;
  for (const auto& [id, info] : files_) {
    if (info.ext_index == it->second)
      out.push_back(static_cast<double>(info.size));
  }
  return out;
}

double FileTypeAnalyzer::fraction_below(double bytes) const {
  if (files_.empty()) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [id, info] : files_)
    if (static_cast<double>(info.size) < bytes) ++below;
  return static_cast<double>(below) / static_cast<double>(files_.size());
}

std::vector<FileTypeAnalyzer::CategoryShare>
FileTypeAnalyzer::category_shares() const {
  std::array<double, kFileCategoryCount> count{};
  std::array<double, kFileCategoryCount> bytes{};
  double total_count = 0, total_bytes = 0;
  for (const auto& [id, info] : files_) {
    const auto cat =
        static_cast<std::size_t>(category_of(extensions_[info.ext_index]));
    count[cat] += 1;
    bytes[cat] += static_cast<double>(info.size);
    total_count += 1;
    total_bytes += static_cast<double>(info.size);
  }
  std::vector<CategoryShare> out;
  for (std::size_t c = 0; c < kFileCategoryCount; ++c) {
    if (count[c] == 0) continue;
    CategoryShare share;
    share.category = static_cast<FileCategory>(c);
    share.file_share = total_count > 0 ? count[c] / total_count : 0;
    share.storage_share = total_bytes > 0 ? bytes[c] / total_bytes : 0;
    out.push_back(share);
  }
  return out;
}

std::vector<std::string> FileTypeAnalyzer::popular_extensions(
    std::size_t top_n) const {
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  counts.reserve(extensions_.size());
  for (const auto& ext : extensions_) counts.emplace_back(ext, 0);
  for (const auto& [id, info] : files_) ++counts[info.ext_index].second;
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < std::min(top_n, counts.size()); ++i)
    out.push_back(counts[i].first);
  return out;
}

}  // namespace u1
