// Wire-envelope contract tests (DESIGN.md §9): stable enum wire values,
// string round trips, bit-identical encode/decode for every op in both
// directions, and the hostile-input battery — truncation at every prefix
// length, oversized length prefixes, unknown ops, version mismatches and
// slack payload bytes must all earn a typed error, never a crash.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proto/envelope.hpp"

namespace u1 {
namespace {

Uuid test_uuid(std::uint8_t seed) {
  Uuid u;
  for (std::size_t i = 0; i < u.bytes.size(); ++i)
    u.bytes[i] = static_cast<std::uint8_t>(seed + i * 7);
  return u;
}

Sha1Digest test_sha1(std::uint8_t seed) {
  Sha1Digest d;
  for (std::size_t i = 0; i < d.bytes.size(); ++i)
    d.bytes[i] = static_cast<std::uint8_t>(seed ^ (i * 13));
  return d;
}

/// A request with every field populated, varied per op so round trips
/// can't pass by accident on shared zeroes.
Request full_request(ProtoOp op) {
  Request q;
  q.op = op;
  q.set_is_update(static_cast<std::uint8_t>(op) % 2 == 1);
  q.set_name_hash("a1b2c3d4");
  q.set_extension("jpeg");
  q.user.value = 1000 + static_cast<std::uint64_t>(op);
  q.peer.value = 2000 + static_cast<std::uint64_t>(op);
  q.session.value = 3000 + static_cast<std::uint64_t>(op);
  q.volume = test_uuid(static_cast<std::uint8_t>(op));
  q.node = test_uuid(static_cast<std::uint8_t>(op) + 1);
  q.parent = test_uuid(static_cast<std::uint8_t>(op) + 2);
  q.content = test_sha1(static_cast<std::uint8_t>(op) + 3);
  q.job = test_uuid(static_cast<std::uint8_t>(op) + 4);
  q.size_bytes = 123456789ull * (1 + static_cast<std::uint64_t>(op));
  q.since_generation = 42 + static_cast<std::uint64_t>(op);
  q.now = -3 * kDay + static_cast<SimTime>(op) * kHour;  // negative: pre-trace
  return q;
}

Response full_response(ProtoOp op, Status status) {
  Response r;
  r.op = op;
  r.status = status;
  r.flags = kResponseDeduplicated;
  r.end = 17 * kDay + static_cast<SimTime>(op) * kMinute;
  r.user.value = 7000 + static_cast<std::uint64_t>(op);
  r.session.value = 8000 + static_cast<std::uint64_t>(op);
  r.volume = test_uuid(static_cast<std::uint8_t>(op) + 5);
  r.node = test_uuid(static_cast<std::uint8_t>(op) + 6);
  r.root_dir = test_uuid(static_cast<std::uint8_t>(op) + 7);
  r.job = test_uuid(static_cast<std::uint8_t>(op) + 8);
  r.transferred_bytes = 5555 + static_cast<std::uint64_t>(op);
  r.committed_bytes = 6666 + static_cast<std::uint64_t>(op);
  return r;
}

// --- stable wire values (satellite: append-only enums) --------------------

TEST(Envelope, ProtoOpWireValuesAreStable) {
  // These values are on the wire; renumbering breaks deployed peers.
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kConnect), 0);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kDisconnect), 1);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kListVolumes), 2);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kListShares), 3);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kQuerySetCaps), 4);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kGetDelta), 5);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kRescanFromScratch), 6);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kMakeFile), 7);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kMakeDir), 8);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kUnlink), 9);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kMove), 10);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kCreateUDF), 11);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kDeleteVolume), 12);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kUpload), 13);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kResumeUpload), 14);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kDownload), 15);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kRegisterUser), 16);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kShareVolume), 17);
  EXPECT_EQ(all_proto_ops().size(), kProtoOpCount);
}

TEST(Envelope, StatusWireValuesAreStable) {
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kOk), 0);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kError), 1);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kTryAgain), 2);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kInterrupted), 3);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kBadFrame), 16);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kVersionMismatch), 17);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kUnknownOp), 18);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kOversizedFrame), 19);
  EXPECT_EQ(static_cast<std::uint8_t>(Status::kSlackPayload), 20);
  EXPECT_EQ(all_statuses().size(), kStatusCount);
}

TEST(Envelope, ProtocolErrorPredicate) {
  EXPECT_FALSE(is_protocol_error(Status::kOk));
  EXPECT_FALSE(is_protocol_error(Status::kError));
  EXPECT_FALSE(is_protocol_error(Status::kTryAgain));
  EXPECT_FALSE(is_protocol_error(Status::kInterrupted));
  EXPECT_TRUE(is_protocol_error(Status::kBadFrame));
  EXPECT_TRUE(is_protocol_error(Status::kVersionMismatch));
  EXPECT_TRUE(is_protocol_error(Status::kUnknownOp));
  EXPECT_TRUE(is_protocol_error(Status::kOversizedFrame));
  EXPECT_TRUE(is_protocol_error(Status::kSlackPayload));
}

// --- string round trips ----------------------------------------------------

TEST(Envelope, ProtoOpStringRoundTrip) {
  for (const ProtoOp op : all_proto_ops()) {
    const auto back = proto_op_from_string(to_string(op));
    ASSERT_TRUE(back.has_value()) << to_string(op);
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(proto_op_from_string("NotAnOp").has_value());
  EXPECT_FALSE(proto_op_from_string("").has_value());
}

TEST(Envelope, StatusStringRoundTrip) {
  for (const Status s : all_statuses()) {
    const auto back = status_from_string(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(status_from_string("not_a_status").has_value());
}

TEST(Envelope, WireDecodersAreRangeChecked) {
  for (const ProtoOp op : all_proto_ops()) {
    const auto back = proto_op_from_wire(static_cast<std::uint8_t>(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  for (int v = static_cast<int>(kProtoOpCount); v < 256; ++v)
    EXPECT_FALSE(proto_op_from_wire(static_cast<std::uint8_t>(v)).has_value())
        << v;

  for (const Status s : all_statuses()) {
    const auto back = status_from_wire(static_cast<std::uint8_t>(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  // Every byte that is not an enumerated status must be rejected,
  // including the 4..15 gap reserved for future operation outcomes.
  for (int v = 0; v < 256; ++v) {
    const bool enumerated = (v <= 3) || (v >= 16 && v <= 20);
    EXPECT_EQ(status_from_wire(static_cast<std::uint8_t>(v)).has_value(),
              enumerated)
        << v;
  }
}

// --- bit-identical round trips for every op --------------------------------

TEST(Envelope, RequestRoundTripEveryOp) {
  for (const ProtoOp op : all_proto_ops()) {
    const Request q = full_request(op);
    const std::vector<std::uint8_t> frame = encode_request_frame(q);
    Request back;
    const FrameDecode d = decode_request_frame(frame.data(), frame.size(),
                                               back);
    ASSERT_EQ(d.status, Status::kOk) << to_string(op);
    EXPECT_FALSE(d.need_more);
    EXPECT_EQ(d.consumed, frame.size()) << to_string(op);
    EXPECT_EQ(back, q) << "field divergence for " << to_string(op);
    // Re-encoding the decoded struct must reproduce the exact bytes.
    EXPECT_EQ(encode_request_frame(back), frame) << to_string(op);
  }
}

TEST(Envelope, ResponseRoundTripEveryOpAndStatus) {
  for (const ProtoOp op : all_proto_ops()) {
    for (const Status s : all_statuses()) {
      const Response r = full_response(op, s);
      const std::vector<std::uint8_t> frame = encode_response_frame(r);
      Response back;
      const FrameDecode d = decode_response_frame(frame.data(), frame.size(),
                                                  back);
      ASSERT_EQ(d.status, Status::kOk)
          << to_string(op) << "/" << to_string(s);
      EXPECT_EQ(d.consumed, frame.size());
      EXPECT_EQ(back, r) << to_string(op) << "/" << to_string(s);
      EXPECT_EQ(encode_response_frame(back), frame);
    }
  }
}

TEST(Envelope, DefaultConstructedRoundTrip) {
  // All-zero messages (nil uuids, empty strings, t=0) are valid frames.
  const Request q;
  Request qb;
  const auto qf = encode_request_frame(q);
  EXPECT_EQ(decode_request_frame(qf.data(), qf.size(), qb).status,
            Status::kOk);
  EXPECT_EQ(qb, q);

  const Response r;
  Response rb;
  const auto rf = encode_response_frame(r);
  EXPECT_EQ(decode_response_frame(rf.data(), rf.size(), rb).status,
            Status::kOk);
  EXPECT_EQ(rb, r);
}

TEST(Envelope, NegativeTimesSurviveZigzag) {
  Request q = full_request(ProtoOp::kConnect);
  q.now = -37 * kDay - 1;
  const auto frame = encode_request_frame(q);
  Request back;
  ASSERT_EQ(decode_request_frame(frame.data(), frame.size(), back).status,
            Status::kOk);
  EXPECT_EQ(back.now, q.now);
}

TEST(Envelope, TruncatingSettersNeverOverrun) {
  Request q;
  q.set_name_hash(std::string(100, 'x'));  // > capacity: truncates
  q.set_extension(std::string(100, 'y'));
  EXPECT_EQ(q.name_hash_view().size(), sizeof q.name_hash);
  EXPECT_EQ(q.extension_view().size(), sizeof q.extension);
  const auto frame = encode_request_frame(q);
  Request back;
  EXPECT_EQ(decode_request_frame(frame.data(), frame.size(), back).status,
            Status::kOk);
  EXPECT_EQ(back.name_hash_view(), q.name_hash_view());
}

// --- hostile input ---------------------------------------------------------

TEST(Envelope, TruncatedAtEveryPrefixLengthWantsMoreBytes) {
  // A prefix of a valid frame is simply an incomplete frame: the decoder
  // must report need_more (consume nothing) and never read past n.
  const Request q = full_request(ProtoOp::kUpload);
  const auto frame = encode_request_frame(q);
  for (std::size_t n = 0; n < frame.size(); ++n) {
    Request out;
    const FrameDecode d = decode_request_frame(frame.data(), n, out);
    EXPECT_TRUE(d.need_more) << "prefix length " << n;
    EXPECT_EQ(d.status, Status::kOk) << "prefix length " << n;
    EXPECT_EQ(d.consumed, 0u) << "prefix length " << n;
  }
}

TEST(Envelope, PayloadCutShortInsideDeclaredLengthIsBadFrame) {
  // A frame whose length field claims more payload than the fields need
  // to be *present* but whose payload bytes run out mid-field: complete
  // by length, corrupt by content.
  auto frame = encode_request_frame(full_request(ProtoOp::kMakeFile));
  // Chop 10 payload bytes and patch the length prefix to match, so the
  // frame is "complete" but its field list is truncated.
  frame.resize(frame.size() - 10);
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size() - 4);
  std::memcpy(frame.data(), &len, sizeof len);
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kBadFrame);
  EXPECT_FALSE(d.need_more);
  EXPECT_EQ(d.consumed, frame.size());  // recoverable: skip this frame
}

TEST(Envelope, OversizedLengthPrefixIsUnrecoverable) {
  std::vector<std::uint8_t> frame(16, 0);
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::memcpy(frame.data(), &len, sizeof len);
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kOversizedFrame);
  EXPECT_EQ(d.consumed, 0u);  // stream boundary unknowable: drop the conn
}

TEST(Envelope, RuntFrameIsBadFrame) {
  // len < 3 cannot even hold version+op.
  std::vector<std::uint8_t> frame = {2, 0, 0, 0, 0xaa, 0xbb};
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kBadFrame);
  EXPECT_EQ(d.consumed, frame.size());
}

TEST(Envelope, UnknownOpByteIsTypedError) {
  auto frame = encode_request_frame(full_request(ProtoOp::kConnect));
  frame[6] = 0xee;  // op byte far outside the enum
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kUnknownOp);
  EXPECT_EQ(d.consumed, frame.size());
}

TEST(Envelope, VersionMismatchIsTypedErrorAndRecoverable) {
  auto frame = encode_request_frame(full_request(ProtoOp::kConnect));
  frame[4] = 0x02;  // version 2 instead of kProtoVersion=1
  frame[5] = 0x00;
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kVersionMismatch);
  EXPECT_EQ(d.consumed, frame.size());  // skip it; the connection survives
}

TEST(Envelope, SlackPayloadBytesAreRefused) {
  auto frame = encode_request_frame(full_request(ProtoOp::kDownload));
  frame.push_back(0x00);  // one trailing byte after all fields
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size() - 4);
  std::memcpy(frame.data(), &len, sizeof len);
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kSlackPayload);
  EXPECT_EQ(d.consumed, frame.size());
}

TEST(Envelope, OverlongNameLengthInsidePayloadIsBadFrame) {
  // name_hash length byte larger than the struct capacity must be
  // rejected before any memcpy.
  auto frame = encode_request_frame(Request{});
  frame[7 + 1] = 0xff;  // payload starts at 7: [flags][name_len]...
  Request out;
  const FrameDecode d = decode_request_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(d.status, Status::kBadFrame);
}

TEST(Envelope, OutOfRangeStatusByteIsBadFrame) {
  auto frame = encode_response_frame(full_response(ProtoOp::kConnect,
                                                   Status::kOk));
  frame[7] = 9;  // status byte in the reserved 4..15 gap
  Response out;
  const FrameDecode d = decode_response_frame(frame.data(), frame.size(),
                                              out);
  EXPECT_EQ(d.status, Status::kBadFrame);
}

TEST(Envelope, RandomGarbageNeverCrashesDecoder) {
  // Deterministic xorshift garbage, framed with plausible lengths: the
  // decoder must return *something* typed for every buffer.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> buf(8 + next() % 200);
    for (auto& b : buf) b = static_cast<std::uint8_t>(next());
    // Half the rounds: patch in a believable length so we exercise the
    // payload decoders, not just the header check.
    if (round % 2 == 0) {
      const std::uint32_t len = static_cast<std::uint32_t>(buf.size() - 4);
      std::memcpy(buf.data(), &len, sizeof len);
    }
    Request q;
    Response r;
    const FrameDecode dq = decode_request_frame(buf.data(), buf.size(), q);
    const FrameDecode dr = decode_response_frame(buf.data(), buf.size(), r);
    // No assertion on the exact code — only that it is a typed outcome.
    EXPECT_TRUE(dq.need_more || dq.status == Status::kOk ||
                is_protocol_error(dq.status));
    EXPECT_TRUE(dr.need_more || dr.status == Status::kOk ||
                is_protocol_error(dr.status));
  }
}

TEST(Envelope, BackToBackFramesDecodeInSequence) {
  // Stream reassembly: two frames in one buffer, decoded by advancing
  // `consumed` — exactly the server's read loop.
  const Request a = full_request(ProtoOp::kMakeDir);
  const Request b = full_request(ProtoOp::kUnlink);
  std::vector<std::uint8_t> stream;
  append_request_frame(stream, a);
  append_request_frame(stream, b);

  Request out;
  const FrameDecode d1 = decode_request_frame(stream.data(), stream.size(),
                                              out);
  ASSERT_EQ(d1.status, Status::kOk);
  EXPECT_EQ(out, a);
  const FrameDecode d2 = decode_request_frame(stream.data() + d1.consumed,
                                              stream.size() - d1.consumed,
                                              out);
  ASSERT_EQ(d2.status, Status::kOk);
  EXPECT_EQ(out, b);
  EXPECT_EQ(d1.consumed + d2.consumed, stream.size());
}

}  // namespace
}  // namespace u1
