file(REMOVE_RECURSE
  "CMakeFiles/u1_proto.dir/entities.cpp.o"
  "CMakeFiles/u1_proto.dir/entities.cpp.o.d"
  "CMakeFiles/u1_proto.dir/operations.cpp.o"
  "CMakeFiles/u1_proto.dir/operations.cpp.o.d"
  "libu1_proto.a"
  "libu1_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
