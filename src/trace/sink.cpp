#include "trace/sink.hpp"

#include <stdexcept>

namespace u1 {

void MultiSink::add(TraceSink* sink) {
  if (sink == nullptr) throw std::invalid_argument("MultiSink::add: null");
  sinks_.push_back(sink);
}

void MultiSink::append(const TraceRecord& record) {
  for (TraceSink* sink : sinks_) sink->append(record);
}

void CountingSink::append(const TraceRecord& record) {
  ++total_;
  ++by_type_[static_cast<std::size_t>(record.type)];
}

std::uint64_t CountingSink::count(RecordType type) const noexcept {
  return by_type_[static_cast<std::size_t>(type)];
}

CallbackSink::CallbackSink(std::function<void(const TraceRecord&)> fn)
    : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("CallbackSink: empty function");
}

}  // namespace u1
