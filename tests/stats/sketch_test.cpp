// Error-bound and mergeability tests for the streaming-sketch substrate
// (stats/sketch.hpp): the sharded analyzers are only as trustworthy as
// these guarantees, so every one the header states is asserted here —
// quantile rank error on adversarial stream orders, count-min's
// never-underestimate and eps*N overestimate bounds, and exact (or
// bounded, for the quantile sketch) merge associativity/commutativity.
#include "stats/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/ecdf.hpp"
#include "stats/gini.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {
namespace {

// Tie-aware rank distance: a value x occupies the whole rank interval
// [P(X < x), P(X <= x)] of the exact stream, so the error of reading
// quantile q as x is the distance from q to that interval.
double rank_distance(const std::vector<double>& sorted, double x, double q) {
  const double n = static_cast<double>(sorted.size());
  const double lo =
      static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(), x) -
                          sorted.begin()) /
      n;
  const double hi =
      static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), x) -
                          sorted.begin()) /
      n;
  return q < lo ? lo - q : (q > hi ? q - hi : 0.0);
}

double max_rank_error(const QuantileSketch& sk, std::vector<double> data) {
  std::sort(data.begin(), data.end());
  double worst = 0;
  for (int i = 1; i < 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    worst = std::max(worst, rank_distance(data, sk.quantile(q), q));
  }
  return worst;
}

// The four adversarial stream orders of one underlying population: a
// power-law (the paper's per-user distributions), fed sorted ascending,
// sorted descending, shuffled, and with heavy ties (values quantized to
// a handful of levels).
std::vector<double> powerlaw_population(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(std::pow(1.0 - rng.uniform(), -1.0 / 1.5));  // Pareto a=1.5
  return v;
}

QuantileSketch sketch_of(const std::vector<double>& v, std::size_t k = 512) {
  QuantileSketch sk(k);
  for (const double x : v) sk.add(x);
  return sk;
}

TEST(QuantileSketch, RankErrorWithinBoundOnAdversarialOrders) {
  const std::size_t n = 200000;
  std::vector<double> base = powerlaw_population(n, 7);

  std::vector<double> sorted = base;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());
  std::vector<double> ties = base;
  for (double& x : ties) x = std::floor(std::log2(x) * 2.0);  // ~12 levels

  for (const auto* stream : {&base, &sorted, &reversed, &ties}) {
    const QuantileSketch sk = sketch_of(*stream);
    EXPECT_EQ(sk.count(), n);
    const double bound = sk.error_bound();
    EXPECT_LT(bound, 0.05);
    EXPECT_LE(max_rank_error(sk, *stream), bound);
    // Observed error should be far below the worst case (the
    // alternating-parity compactor cancels consecutive errors) and
    // inside the 1% acceptance budget the benches assert.
    EXPECT_LE(max_rank_error(sk, *stream), 0.01);
  }
}

TEST(QuantileSketch, MinMaxAndEndpointQuantilesAreExact) {
  const std::vector<double> v = powerlaw_population(5000, 11);
  const QuantileSketch sk = sketch_of(v);
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  EXPECT_EQ(sk.min(), *lo);
  EXPECT_EQ(sk.max(), *hi);
  EXPECT_EQ(sk.quantile(0.0), *lo);
  EXPECT_EQ(sk.quantile(1.0), *hi);
}

TEST(QuantileSketch, RankIsMonotoneAndBounded) {
  const std::vector<double> v = powerlaw_population(50000, 13);
  const QuantileSketch sk = sketch_of(v);
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  double prev = 0;
  for (int i = 0; i <= 40; ++i) {
    const double x =
        sorted.front() +
        (sorted.back() - sorted.front()) * static_cast<double>(i) / 40.0;
    const double r = sk.rank(x);
    EXPECT_GE(r, prev);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    const double exact =
        static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(),
                                             x) -
                            sorted.begin()) /
        static_cast<double>(sorted.size());
    EXPECT_NEAR(r, exact, sk.error_bound() + 1e-12);
    prev = r;
  }
}

TEST(QuantileSketch, MemoryStaysPolylog) {
  QuantileSketch sk(512);
  for (std::size_t i = 0; i < 1000000; ++i)
    sk.add(static_cast<double>(i % 9973));
  // <= k items per level, levels ~ log2(2n/k): a million inserts must
  // not hold more than a few thousand samples.
  EXPECT_LE(sk.stored_items(), 512 * 16);
}

TEST(QuantileSketch, MergeOfDisjointShardsStaysWithinBound) {
  const std::size_t n = 120000;
  const std::vector<double> all = powerlaw_population(n, 17);
  // 8 shards, round-robin split (each shard sees a representative
  // substream, like per-group analyzer shards do).
  std::vector<QuantileSketch> shards(8, QuantileSketch(512));
  for (std::size_t i = 0; i < n; ++i) shards[i % 8].add(all[i]);

  QuantileSketch merged(512);
  for (const QuantileSketch& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), n);
  EXPECT_LE(max_rank_error(merged, all), merged.error_bound());
  EXPECT_LE(max_rank_error(merged, all), 0.01);
}

TEST(QuantileSketch, MergeIsDeterministicAndOrderInsensitiveWithinBound) {
  const std::size_t n = 60000;
  const std::vector<double> all = powerlaw_population(n, 23);
  std::vector<QuantileSketch> shards(4, QuantileSketch(256));
  for (std::size_t i = 0; i < n; ++i) shards[i % 4].add(all[i]);

  // Same operand order twice -> bit-identical results (the determinism
  // oracle depends on this).
  QuantileSketch a(256), b(256);
  for (const auto& s : shards) a.merge(s);
  for (const auto& s : shards) b.merge(s);
  EXPECT_EQ(a.sorted_sample(257), b.sorted_sample(257));

  // Permuted operand orders and association trees are *not* required to
  // be bit-identical, but every one must respect the rank-error bound.
  QuantileSketch rev(256);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) rev.merge(*it);
  QuantileSketch tree01(256), tree23(256);
  tree01.merge(shards[0]);
  tree01.merge(shards[1]);
  tree23.merge(shards[2]);
  tree23.merge(shards[3]);
  tree01.merge(tree23);
  for (const QuantileSketch* m : {&rev, &tree01}) {
    EXPECT_EQ(m->count(), n);
    EXPECT_LE(max_rank_error(*m, all), m->error_bound());
  }
}

TEST(QuantileSketch, SortedSampleFeedsEcdfFromSorted) {
  const std::vector<double> v = powerlaw_population(80000, 29);
  const QuantileSketch sk = sketch_of(v);
  const std::vector<double> grid = sk.sorted_sample(1001);
  ASSERT_EQ(grid.size(), 1001u);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  const Ecdf cdf = Ecdf::from_sorted(grid);
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_LE(rank_distance(sorted, cdf.quantile(q), q),
              sk.error_bound() + 1.0 / 1000.0);
}

TEST(CountMinSketch, NeverUnderestimatesAndRespectsEpsN) {
  Rng rng(31);
  CountMinSketch cms(1024, 4, 0xfeed);
  std::vector<std::uint64_t> truth(400, 0);
  // Zipf-ish key popularity, 200k increments.
  for (std::size_t i = 0; i < 200000; ++i) {
    const auto key = static_cast<std::uint64_t>(
        std::min<double>(399.0, std::pow(1.0 - rng.uniform(), -0.7) - 1.0));
    cms.add(key);
    ++truth[key];
  }
  const auto slack =
      static_cast<std::uint64_t>(cms.epsilon() * static_cast<double>(
                                                     cms.total()));
  for (std::uint64_t key = 0; key < truth.size(); ++key) {
    EXPECT_GE(cms.estimate(key), truth[key]);
    EXPECT_LE(cms.estimate(key), truth[key] + slack);
  }
}

TEST(CountMinSketch, MergeIsExactAssociativeAndCommutative) {
  const auto fill = [](CountMinSketch& cms, std::uint64_t lo,
                       std::uint64_t hi) {
    for (std::uint64_t k = lo; k < hi; ++k) cms.add(k, k + 1);
  };
  CountMinSketch whole(512, 4, 1), a(512, 4, 1), b(512, 4, 1), c(512, 4, 1);
  fill(whole, 0, 300);
  fill(a, 0, 100);
  fill(b, 100, 200);
  fill(c, 200, 300);

  CountMinSketch ab = a, bc = b, abc1 = a, cba = c;
  ab.merge(b);
  bc.merge(c);
  abc1 = a;
  abc1.merge(bc);              // a + (b + c)
  CountMinSketch abc2 = ab;
  abc2.merge(c);               // (a + b) + c
  cba.merge(b);
  cba.merge(a);                // reversed order
  for (std::uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(abc1.estimate(k), whole.estimate(k));
    EXPECT_EQ(abc2.estimate(k), whole.estimate(k));
    EXPECT_EQ(cba.estimate(k), whole.estimate(k));
  }
  EXPECT_EQ(abc1.total(), whole.total());

  CountMinSketch other_seed(512, 4, 2);
  EXPECT_THROW(other_seed.merge(a), std::invalid_argument);
  CountMinSketch other_dims(256, 4, 1);
  EXPECT_THROW(other_dims.merge(a), std::invalid_argument);
}

TEST(LogHistogram, QuantileInvertsFractionBelow) {
  Rng rng(37);
  const LogNormalDist sizes(10.0, 2.0);
  LogHistogram h(1.0, 16, 1024);
  for (int i = 0; i < 50000; ++i) h.add(sizes.sample(rng));
  for (int i = 1; i < 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_NEAR(h.fraction_below(h.quantile(q)), q, 1e-9);
  }
}

TEST(LogHistogram, QuantileRankErrorBoundedByBinResolution) {
  Rng rng(41);
  const LogNormalDist sizes(10.0, 2.0);
  std::vector<double> v;
  LogHistogram h(1.0, 16, 1024);
  for (int i = 0; i < 50000; ++i) {
    v.push_back(sizes.sample(rng));
    h.add(v.back());
  }
  std::sort(v.begin(), v.end());
  // Within-bin interpolation keeps the rank error well below one bin's
  // weight; for this smooth population every centile lands inside 1%.
  for (int i = 1; i < 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_LE(rank_distance(v, h.quantile(q), q), 0.01);
  }
}

TEST(LogHistogram, MergeIsExactAndChecksLayout) {
  Rng rng(43);
  const LogNormalDist sizes(8.0, 3.0);
  LogHistogram whole(1.0, 8, 640), a(1.0, 8, 640), b(1.0, 8, 640);
  for (int i = 0; i < 20000; ++i) {
    const double x = sizes.sample(rng);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  ASSERT_EQ(a.total(), whole.total());
  for (std::size_t i = 0; i < whole.bins(); ++i)
    EXPECT_EQ(a.count(i), whole.count(i));
  LogHistogram layout(2.0, 8, 640);
  EXPECT_THROW(layout.merge(whole), std::invalid_argument);
}

TEST(BinnedLorenz, GiniAndTopShareTrackExactWithinPercent) {
  Rng rng(47);
  std::vector<double> totals;
  BinnedLorenz bl(1.0, 16, 1024);
  for (int i = 0; i < 30000; ++i) {
    // Mixed population with a zero bucket, like per-user traffic.
    const double t =
        i % 10 == 0 ? 0.0 : std::pow(1.0 - rng.uniform(), -1.0 / 1.2);
    totals.push_back(t);
    bl.add(t);
  }
  const LorenzCurve exact = lorenz(totals);
  EXPECT_NEAR(bl.gini(), exact.gini, 0.01);
  EXPECT_NEAR(bl.top_share(0.01), exact.top_share(0.01), 0.01);
  EXPECT_NEAR(bl.top_share(0.10), exact.top_share(0.10), 0.01);
}

TEST(BinnedLorenz, MergeMatchesWholeStream) {
  Rng rng(53);
  BinnedLorenz whole(1.0, 16, 1024), a(1.0, 16, 1024), b(1.0, 16, 1024);
  for (int i = 0; i < 20000; ++i) {
    const double t = i % 7 == 0 ? 0.0 : std::pow(1.0 - rng.uniform(), -0.9);
    whole.add(t);
    (i % 2 == 0 ? a : b).add(t);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  // Bin sums are doubles accumulated in different orders (interleaved
  // split vs stream order), so agreement is to rounding, not bitwise.
  EXPECT_NEAR(a.total(), whole.total(), 1e-9 * whole.total());
  EXPECT_NEAR(a.gini(), whole.gini(), 1e-12);
  EXPECT_NEAR(a.top_share(0.01), whole.top_share(0.01), 1e-12);
}

TEST(MergeableAccumulators, TimeBinSeriesAndHistogramsMergeExactly) {
  Rng rng(59);
  TimeBinSeries whole(0, 24 * kHour, kHour), a(0, 24 * kHour, kHour),
      b(0, 24 * kHour, kHour);
  Histogram hw(0, 100, 20), ha(0, 100, 20), hb(0, 100, 20);
  EdgeHistogram ew({0.5, 1, 5, 25}), ea({0.5, 1, 5, 25}),
      eb({0.5, 1, 5, 25});
  for (int i = 0; i < 10000; ++i) {
    const auto t = static_cast<SimTime>(rng.uniform() * 24.0 * kHour);
    // Integer-valued weights keep double summation order-independent,
    // so the merged series must match the whole-stream series exactly.
    const double x = std::floor(rng.uniform() * 120.0 - 10.0);
    whole.add(t, x);
    hw.add(x);
    ew.add(x / 4.0);
    (i % 2 == 0 ? a : b).add(t, x);
    (i % 2 == 0 ? ha : hb).add(x);
    (i % 2 == 0 ? ea : eb).add(x / 4.0);
  }
  a.merge(b);
  ha.merge(hb);
  ea.merge(eb);
  EXPECT_EQ(a.values(), whole.values());
  for (std::size_t i = 0; i < hw.bins(); ++i)
    EXPECT_EQ(ha.count(i), hw.count(i));
  EXPECT_EQ(ha.underflow(), hw.underflow());
  EXPECT_EQ(ha.overflow(), hw.overflow());
  for (std::size_t i = 0; i < ew.bins(); ++i)
    EXPECT_EQ(ea.count(i), ew.count(i));

  TimeBinSeries other(0, 12 * kHour, kHour);
  EXPECT_THROW(other.merge(whole), std::invalid_argument);
  Histogram hother(0, 50, 20);
  EXPECT_THROW(hother.merge(hw), std::invalid_argument);
  EdgeHistogram eother({1.0, 2.0});
  EXPECT_THROW(eother.merge(ew), std::invalid_argument);
}

TEST(Ecdf, FromSortedMatchesSortingConstructor) {
  Rng rng(61);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.uniform(-15.0, 15.0));
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  const Ecdf via_sort{std::vector<double>(v)};
  const Ecdf via_sorted = Ecdf::from_sorted(sorted);
  for (const double q : {0.0, 0.01, 0.5, 0.9, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(via_sorted.quantile(q), via_sort.quantile(q));
  for (const double x : {-12.0, -1.0, 0.0, 3.0, 14.0})
    EXPECT_DOUBLE_EQ(via_sorted.at(x), via_sort.at(x));
}

// ---------------------------------------------------------------------------
// Serialization: the distributed engine ships sketch states across
// processes, so deserialize(serialize(s)) must reproduce the state
// bit-for-bit (asserted through every public read surface), states must
// nest (the span is consumed from the front), and malformed bytes must
// throw std::invalid_argument instead of constructing garbage.

TEST(SketchSerialization, QuantileSketchRoundTripsBitExact) {
  QuantileSketch sk(128);
  for (const double x : powerlaw_population(5000, 99)) sk.add(x);
  std::vector<std::uint8_t> bytes;
  sk.serialize(bytes);
  std::span<const std::uint8_t> view(bytes);
  const QuantileSketch back = QuantileSketch::deserialize(view);
  EXPECT_TRUE(view.empty());  // the whole snapshot was consumed
  EXPECT_EQ(back.count(), sk.count());
  EXPECT_EQ(back.stored_items(), sk.stored_items());
  for (int i = 1; i < 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_DOUBLE_EQ(back.quantile(q), sk.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(back.sorted_sample(64), sk.sorted_sample(64));
}

TEST(SketchSerialization, CountMinRoundTripsBitExact) {
  CountMinSketch sk(512, 4, 7);
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) sk.add(rng.below(300), 1 + rng.below(5));
  std::vector<std::uint8_t> bytes;
  sk.serialize(bytes);
  std::span<const std::uint8_t> view(bytes);
  const CountMinSketch back = CountMinSketch::deserialize(view);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(back.total(), sk.total());
  for (std::uint64_t key = 0; key < 300; ++key)
    EXPECT_EQ(back.estimate(key), sk.estimate(key)) << "key=" << key;
}

TEST(SketchSerialization, LogHistogramAndLorenzRoundTripBitExact) {
  LogHistogram h(1.0, 1e9, 8);
  BinnedLorenz lz(1.0, 1e9, 8);
  for (const double x : powerlaw_population(3000, 17)) {
    h.add(x);
    lz.add(x);
  }
  std::vector<std::uint8_t> bytes;
  h.serialize(bytes);
  lz.serialize(bytes);  // nested back-to-back in one buffer
  std::span<const std::uint8_t> view(bytes);
  const LogHistogram h2 = LogHistogram::deserialize(view);
  const BinnedLorenz lz2 = BinnedLorenz::deserialize(view);
  EXPECT_TRUE(view.empty());
  EXPECT_DOUBLE_EQ(h2.total(), h.total());
  for (int i = 1; i < 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_DOUBLE_EQ(h2.quantile(q), h.quantile(q));
  }
  EXPECT_EQ(lz2.count(), lz.count());
  EXPECT_DOUBLE_EQ(lz2.total(), lz.total());
  EXPECT_DOUBLE_EQ(lz2.gini(), lz.gini());
  EXPECT_DOUBLE_EQ(lz2.top_share(0.01), lz.top_share(0.01));
}

TEST(SketchSerialization, EmptySketchesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  QuantileSketch{}.serialize(bytes);
  CountMinSketch{}.serialize(bytes);
  LogHistogram{}.serialize(bytes);
  BinnedLorenz{}.serialize(bytes);
  std::span<const std::uint8_t> view(bytes);
  EXPECT_EQ(QuantileSketch::deserialize(view).count(), 0u);
  EXPECT_EQ(CountMinSketch::deserialize(view).total(), 0u);
  EXPECT_DOUBLE_EQ(LogHistogram::deserialize(view).total(), 0.0);
  EXPECT_EQ(BinnedLorenz::deserialize(view).count(), 0u);
  EXPECT_TRUE(view.empty());
}

TEST(SketchSerialization, MalformedBytesThrowTyped) {
  // Empty input, and a valid snapshot truncated at every prefix: all
  // must throw std::invalid_argument, never construct a partial sketch.
  std::span<const std::uint8_t> none;
  EXPECT_THROW(QuantileSketch::deserialize(none), std::invalid_argument);
  EXPECT_THROW(CountMinSketch::deserialize(none), std::invalid_argument);
  EXPECT_THROW(LogHistogram::deserialize(none), std::invalid_argument);
  EXPECT_THROW(BinnedLorenz::deserialize(none), std::invalid_argument);

  QuantileSketch sk(64);
  for (int i = 0; i < 500; ++i) sk.add(static_cast<double>(i % 37));
  std::vector<std::uint8_t> bytes;
  sk.serialize(bytes);
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    std::span<const std::uint8_t> cut(bytes.data(), n);
    EXPECT_THROW(QuantileSketch::deserialize(cut), std::invalid_argument)
        << "prefix " << n;
  }
}

}  // namespace
}  // namespace u1
