#include "store/dedup_overlay.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "proto/wire.hpp"

namespace u1 {

DedupOverlay::View& DedupOverlay::view_of(const ContentId& id) const {
  const auto it = views_.find(id);
  if (it != views_.end()) return it->second;
  View v;
  if (const ContentInfo* info = global_->find(id)) {
    v.present = true;
    v.refcount = info->refcount;
    v.size_bytes = info->size_bytes;
    v.s3_key = info->s3_key;
  }
  return views_.emplace(id, std::move(v)).first->second;
}

std::optional<ContentInfo> DedupOverlay::lookup(
    const ContentId& id, std::uint64_t size_bytes) const {
  const View& v = view_of(id);
  if (!v.present || v.size_bytes != size_bytes) return std::nullopt;
  return ContentInfo{id, v.size_bytes, v.refcount, v.s3_key};
}

bool DedupOverlay::insert(const ContentId& id, std::uint64_t size_bytes,
                          std::string s3_key) {
  View& v = view_of(id);
  if (v.present) return false;
  v.present = true;
  v.refcount = 0;
  v.size_bytes = size_bytes;
  v.s3_key = s3_key;
  log_.push_back(Op{OpKind::kInsert, id, size_bytes, std::move(s3_key)});
  return true;
}

void DedupOverlay::link(const ContentId& id) {
  View& v = view_of(id);
  if (!v.present) throw std::out_of_range("DedupOverlay::link: unknown content");
  ++v.refcount;
  log_.push_back(Op{OpKind::kLink, id, v.size_bytes, v.s3_key});
}

std::optional<ContentInfo> DedupOverlay::unlink(const ContentId& id) {
  View& v = view_of(id);
  if (!v.present)
    throw std::out_of_range("DedupOverlay::unlink: unknown content");
  if (v.refcount == 0)
    throw std::logic_error("DedupOverlay::unlink: refcount already zero");
  --v.refcount;
  log_.push_back(Op{OpKind::kUnlink, id, v.size_bytes, v.s3_key});
  if (v.refcount == 0) return ContentInfo{id, v.size_bytes, 0, v.s3_key};
  return std::nullopt;
}

void DedupOverlay::erase(const ContentId& id) {
  View& v = view_of(id);
  if (!v.present) throw std::out_of_range("DedupOverlay::erase: unknown content");
  if (v.refcount != 0)
    throw std::logic_error("DedupOverlay::erase: still referenced");
  v.present = false;
  log_.push_back(Op{OpKind::kErase, id, v.size_bytes, v.s3_key});
}

SharedDedup::SharedDedup(std::size_t groups) {
  overlays_.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g)
    overlays_.push_back(
        std::unique_ptr<DedupOverlay>(new DedupOverlay(&global_)));
}

void SharedDedup::replay_op(DedupOverlay::OpKind kind, const ContentId& id,
                            std::uint64_t size_bytes, std::string s3_key,
                            const DeadBlobFn& on_dead_blob) {
  // The replay is tolerant of cross-group interleavings the overlays
  // could not see: two groups inserting the same blob, or jointly
  // dropping a blob's last references.
  switch (kind) {
    case DedupOverlay::OpKind::kInsert:
      global_.insert(id, size_bytes, std::move(s3_key));
      break;
    case DedupOverlay::OpKind::kLink:
      // Re-materialize if another group erased it this epoch (the
      // overlay validated the link against its own frozen view).
      if (global_.find(id) == nullptr)
        global_.insert(id, size_bytes, std::move(s3_key));
      global_.link(id);
      break;
    case DedupOverlay::OpKind::kUnlink: {
      const ContentInfo* info = global_.find(id);
      if (info == nullptr || info->refcount == 0) break;  // already dead
      if (auto dead = global_.unlink(id)) {
        // Nobody observed the death in-line (the final references
        // were spread over several groups): GC it here.
        global_.erase(id);
        if (on_dead_blob) on_dead_blob(*dead);
      }
      break;
    }
    case DedupOverlay::OpKind::kErase: {
      const ContentInfo* info = global_.find(id);
      if (info != nullptr && info->refcount == 0) global_.erase(id);
      break;
    }
  }
}

void SharedDedup::merge_epoch(const DeadBlobFn& on_dead_blob) {
  // Replay in fixed group order.
  for (auto& overlay : overlays_) {
    for (DedupOverlay::Op& op : overlay->log_)
      replay_op(op.kind, op.id, op.size_bytes, std::move(op.s3_key),
                on_dead_blob);
    overlay->log_.clear();
    overlay->views_.clear();
  }
}

std::vector<std::uint8_t> SharedDedup::extract_log(std::size_t group) {
  DedupOverlay& overlay = *overlays_[group];
  std::vector<std::uint8_t> out;
  out.reserve(16 + overlay.log_.size() * 32);
  wire::put_varint(out, overlay.log_.size());
  for (const DedupOverlay::Op& op : overlay.log_) {
    out.push_back(static_cast<std::uint8_t>(op.kind));
    wire::put_raw(out, op.id.bytes.data(), op.id.bytes.size());
    wire::put_varint(out, op.size_bytes);
    wire::put_varint(out, op.s3_key.size());
    wire::put_raw(out,
                  reinterpret_cast<const std::uint8_t*>(op.s3_key.data()),
                  op.s3_key.size());
  }
  overlay.log_.clear();
  overlay.views_.clear();
  return out;
}

void SharedDedup::apply_log(std::span<const std::uint8_t> bytes,
                            const DeadBlobFn& on_dead_blob) {
  wire::Cursor c{bytes.data(), bytes.data() + bytes.size()};
  const std::uint64_t n = c.varint();
  for (std::uint64_t i = 0; c.ok && i < n; ++i) {
    const std::uint8_t kind = c.u8();
    if (kind > static_cast<std::uint8_t>(DedupOverlay::OpKind::kErase)) {
      c.ok = false;
      break;
    }
    ContentId id;
    if (const std::uint8_t* p = c.take(id.bytes.size()))
      std::copy(p, p + id.bytes.size(), id.bytes.begin());
    const std::uint64_t size_bytes = c.varint();
    const std::uint64_t key_len = c.varint();
    if (!c.ok || key_len > static_cast<std::uint64_t>(c.end - c.p)) {
      c.ok = false;
      break;
    }
    const std::uint8_t* key = c.take(static_cast<std::size_t>(key_len));
    if (!c.ok) break;
    replay_op(static_cast<DedupOverlay::OpKind>(kind), id, size_bytes,
              std::string(reinterpret_cast<const char*>(key),
                          static_cast<std::size_t>(key_len)),
              on_dead_blob);
  }
  if (!c.ok || c.p != c.end)
    throw std::runtime_error("SharedDedup::apply_log: malformed op log");
}

}  // namespace u1
