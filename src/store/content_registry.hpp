// Content-addressed registry behind U1's file-based cross-user
// deduplication (§3.3): clients send the SHA-1 of a file before uploading;
// if the content already exists, the new file is logically linked to it and
// no data is transferred. Reference counts decide when the blob can be
// garbage-collected from the data store.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "proto/ids.hpp"
#include "store/dedup_proxy.hpp"

namespace u1 {

struct ContentInfo {
  ContentId id;
  std::uint64_t size_bytes = 0;
  /// Number of live file nodes pointing at this content.
  std::uint64_t refcount = 0;
  /// Object key in the (simulated) S3 bucket.
  std::string s3_key;
};

class ContentRegistry final : public DedupProxy {
 public:
  /// dal.get_reusable_content: is this (hash, size) already stored?
  /// Matching requires both hash and size to agree (a defensive check the
  /// real service performs against hash collisions / truncated uploads).
  std::optional<ContentInfo> lookup(const ContentId& id,
                                    std::uint64_t size_bytes) const override;

  /// Registers new content (refcount starts at 0; link() attaches nodes).
  /// Returns false if the content already existed (caller should link()
  /// instead of uploading).
  bool insert(const ContentId& id, std::uint64_t size_bytes,
              std::string s3_key) override;

  /// Adds one reference. Throws std::out_of_range for unknown content.
  void link(const ContentId& id) override;

  /// Drops one reference; returns the content's ContentInfo when the count
  /// hits zero (the caller must then delete the S3 object), nullopt
  /// otherwise. Throws std::out_of_range for unknown content and
  /// std::logic_error if the refcount is already zero.
  std::optional<ContentInfo> unlink(const ContentId& id) override;

  /// Physically removes an entry whose refcount is zero (post-S3-delete).
  /// Throws std::logic_error if still referenced.
  void erase(const ContentId& id) override;

  /// Refcount as stored (0 for unknown ids) — used by the epoch overlay.
  std::uint64_t refcount_of(const ContentId& id) const noexcept;

  /// Raw entry pointer (nullptr for unknown ids) — used by the epoch
  /// overlay to snapshot frozen state without the size check of lookup().
  const ContentInfo* find(const ContentId& id) const noexcept;

  std::size_t unique_contents() const noexcept { return table_.size(); }
  /// Bytes of unique data (the D_unique of the paper's dedup ratio).
  std::uint64_t unique_bytes() const noexcept { return unique_bytes_; }
  /// Bytes as-if stored without dedup (the D_total): sum over links.
  std::uint64_t logical_bytes() const noexcept { return logical_bytes_; }
  /// dr = 1 - D_unique / D_total (0 when empty).
  double dedup_ratio() const noexcept;

 private:
  std::unordered_map<ContentId, ContentInfo> table_;
  std::uint64_t unique_bytes_ = 0;
  std::uint64_t logical_bytes_ = 0;
};

}  // namespace u1
