file(REMOVE_RECURSE
  "CMakeFiles/u1_workload.dir/burst.cpp.o"
  "CMakeFiles/u1_workload.dir/burst.cpp.o.d"
  "CMakeFiles/u1_workload.dir/content_pool.cpp.o"
  "CMakeFiles/u1_workload.dir/content_pool.cpp.o.d"
  "CMakeFiles/u1_workload.dir/ddos.cpp.o"
  "CMakeFiles/u1_workload.dir/ddos.cpp.o.d"
  "CMakeFiles/u1_workload.dir/diurnal.cpp.o"
  "CMakeFiles/u1_workload.dir/diurnal.cpp.o.d"
  "CMakeFiles/u1_workload.dir/file_model.cpp.o"
  "CMakeFiles/u1_workload.dir/file_model.cpp.o.d"
  "CMakeFiles/u1_workload.dir/transitions.cpp.o"
  "CMakeFiles/u1_workload.dir/transitions.cpp.o.d"
  "CMakeFiles/u1_workload.dir/user_model.cpp.o"
  "CMakeFiles/u1_workload.dir/user_model.cpp.o.d"
  "libu1_workload.a"
  "libu1_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
