# Empty compiler generated dependencies file for bench_fig13_rpc_scatter.
# This may be replaced when dependencies are built.
