// Determinism oracle for the multi-process shard distribution: the
// merged trace, the report and every sharded-analyzer figure must be
// byte-identical to the in-process engine for ANY (procs, threads)
// split. The coordinator forks real worker processes and relays real
// control frames over socketpairs, so these tests cover the whole wire
// path: epoch-barrier replay, guard-feed merging, purge routing, the
// segment readback and the symbol-id replay that keeps Symbol-keyed
// sketches (analysis/file_types.cpp) identical across processes.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/file_types.hpp"
#include "analysis/sessions.hpp"
#include "analysis/traffic.hpp"
#include "sim/distributed.hpp"
#include "sim/mailbox.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"
#include "util/sim_time.hpp"

namespace u1 {
namespace {

SimulationConfig small_config(bool auto_guard = false) {
  SimulationConfig cfg;
  cfg.users = 200;
  cfg.days = 2;
  cfg.seed = 20140111;
  cfg.enable_ddos = true;
  cfg.auto_countermeasures = auto_guard;
  return cfg;
}

std::vector<std::string> lines_of(const InMemorySink& sink) {
  std::vector<std::string> lines;
  lines.reserve(sink.records().size());
  for (const TraceRecord& rec : sink.records()) {
    std::string line;
    for (const std::string& field : rec.to_csv()) {
      line += field;
      line += ',';
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<std::string> oracle_trace(const SimulationConfig& cfg,
                                      SimulationReport* report = nullptr) {
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, 1);
  const SimulationReport r = sim.run();
  if (report != nullptr) *report = r;
  return lines_of(sink);
}

std::vector<std::string> distributed_trace(const SimulationConfig& cfg,
                                           std::size_t procs,
                                           std::size_t threads,
                                           SimulationReport* report = nullptr) {
  InMemorySink sink;
  DistributedSimulation sim(cfg, sink, procs, threads);
  const SimulationReport r = sim.run();
  if (report != nullptr) *report = r;
  return lines_of(sink);
}

void expect_reports_equal(const SimulationReport& a,
                          const SimulationReport& b) {
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.agent_wakeups, b.agent_wakeups);
  EXPECT_EQ(a.bootstrap_files, b.bootstrap_files);
  EXPECT_EQ(a.ddos_attacks, b.ddos_attacks);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.auto_purges, b.auto_purges);
  EXPECT_EQ(a.first_auto_response_delay, b.first_auto_response_delay);
  EXPECT_EQ(a.backend.sessions_opened, b.backend.sessions_opened);
  EXPECT_EQ(a.backend.sessions_closed, b.backend.sessions_closed);
  EXPECT_EQ(a.backend.auth_failures, b.backend.auth_failures);
  EXPECT_EQ(a.backend.uploads, b.backend.uploads);
  EXPECT_EQ(a.backend.downloads, b.backend.downloads);
  EXPECT_EQ(a.backend.dedup_hits, b.backend.dedup_hits);
  EXPECT_EQ(a.backend.upload_bytes_logical, b.backend.upload_bytes_logical);
  EXPECT_EQ(a.backend.upload_bytes_wire, b.backend.upload_bytes_wire);
  EXPECT_EQ(a.backend.download_bytes, b.backend.download_bytes);
  EXPECT_EQ(a.backend.rpcs, b.backend.rpcs);
  EXPECT_EQ(a.backend.notifications, b.backend.notifications);
}

TEST(DistributedSim, TraceBitIdenticalAcrossProcessSplits) {
  const SimulationConfig cfg = small_config();
  SimulationReport oracle_rep;
  const std::vector<std::string> oracle = oracle_trace(cfg, &oracle_rep);
  ASSERT_FALSE(oracle.empty());

  const std::pair<std::size_t, std::size_t> splits[] = {
      {2, 1}, {2, 2}, {4, 1}, {3, 2}};
  for (const auto& [procs, threads] : splits) {
    SimulationReport rep;
    const std::vector<std::string> got =
        distributed_trace(cfg, procs, threads, &rep);
    ASSERT_EQ(got.size(), oracle.size())
        << "procs=" << procs << " threads=" << threads;
    EXPECT_EQ(got, oracle) << "procs=" << procs << " threads=" << threads;
    expect_reports_equal(rep, oracle_rep);
  }
}

TEST(DistributedSim, ReportAndCountersMatchOracle) {
  const SimulationConfig cfg = small_config();
  InMemorySink oracle_sink;
  ParallelSimulation oracle(cfg, oracle_sink, 1);
  const SimulationReport oracle_rep = oracle.run();

  InMemorySink sink;
  DistributedSimulation dist(cfg, sink, 4, 1);
  const SimulationReport rep = dist.run();
  expect_reports_equal(rep, oracle_rep);
  EXPECT_EQ(dist.records_flushed(), oracle.records_flushed());
  EXPECT_EQ(dist.cross_group_dead_blobs(), oracle.cross_group_dead_blobs());
  ASSERT_EQ(dist.worker_peak_rss_kb().size(), 4u);
  for (const std::uint64_t kb : dist.worker_peak_rss_kb()) EXPECT_GT(kb, 0u);
}

TEST(DistributedSim, GuardPurgesMatchOracleAcrossProcesses) {
  // The AnomalyGuard runs on the coordinator over the k-way-merged
  // observation feed; its detections, the purge routing and the purge
  // trace records must land exactly where the in-process scan puts them.
  SimulationConfig cfg = small_config(/*auto_guard=*/true);
  cfg.days = 6;  // covers the day-4 and day-5 paper attacks
  SimulationReport oracle_rep;
  const std::vector<std::string> oracle = oracle_trace(cfg, &oracle_rep);
  for (const std::size_t procs : {2u, 4u}) {
    SimulationReport rep;
    const std::vector<std::string> got =
        distributed_trace(cfg, procs, 1, &rep);
    EXPECT_EQ(got, oracle) << "procs=" << procs;
    expect_reports_equal(rep, oracle_rep);
  }
  EXPECT_GT(oracle_rep.auto_purges, 0u)
      << "guard config detected nothing; the purge path went unexercised";
}

TEST(DistributedSim, AnalyzerFiguresBitIdenticalToInProcessShards) {
  const SimulationConfig cfg = small_config();
  const SimTime horizon = static_cast<SimTime>(cfg.days) * kDay;

  TrafficAnalyzer in_traffic(0, horizon);
  SessionAnalyzer in_sessions(0, horizon);
  FileTypeAnalyzer in_types;
  {
    NullSink null;
    ParallelSimulation sim(cfg, null, 1);
    sim.attach_analyzer(in_traffic);
    sim.attach_analyzer(in_sessions);
    sim.attach_analyzer(in_types);
    sim.run();
  }

  TrafficAnalyzer d_traffic(0, horizon);
  SessionAnalyzer d_sessions(0, horizon);
  FileTypeAnalyzer d_types;
  {
    NullSink null;
    DistributedSimulation sim(cfg, null, 3, 1);
    sim.attach_analyzer(d_traffic);
    sim.attach_analyzer(d_sessions);
    sim.attach_analyzer(d_types);
    sim.run();
  }

  EXPECT_EQ(d_traffic.upload_ops(), in_traffic.upload_ops());
  EXPECT_EQ(d_traffic.upload_bytes(), in_traffic.upload_bytes());
  EXPECT_EQ(d_traffic.upload_bytes_hourly().values(),
            in_traffic.upload_bytes_hourly().values());
  EXPECT_EQ(d_traffic.rw_ratios_hourly(), in_traffic.rw_ratios_hourly());
  EXPECT_EQ(d_sessions.session_lengths(), in_sessions.session_lengths());
  EXPECT_EQ(d_sessions.sessions_closed(), in_sessions.sessions_closed());
  EXPECT_EQ(d_sessions.auth_failure_fraction(),
            in_sessions.auth_failure_fraction());
  // FileTypeAnalyzer keys a count-min sketch by raw Symbol id: equality
  // here proves the coordinator's symbol-interning replay reproduced the
  // oracle's global id assignment exactly.
  EXPECT_EQ(d_types.all_sizes(), in_types.all_sizes());
  EXPECT_EQ(d_types.distinct_files(), in_types.distinct_files());
  EXPECT_EQ(d_types.popular_extensions(10), in_types.popular_extensions(10));
}

TEST(DistributedSim, SingleProcessDelegatesToInProcessEngine) {
  const SimulationConfig cfg = small_config();
  const std::vector<std::string> oracle = oracle_trace(cfg);
  SimulationReport rep;
  const std::vector<std::string> got = distributed_trace(cfg, 1, 1, &rep);
  EXPECT_EQ(got, oracle);

  InMemorySink sink;
  DistributedSimulation sim(cfg, sink, 1, 1);
  sim.run();
  ASSERT_EQ(sim.worker_peak_rss_kb().size(), 1u);
}

// ---------------------------------------------------------------------------
// EpochMailbox <-> MailboxBatch wire bridge.

TEST(MailboxBridge, RoundTripPreservesDrainOrder) {
  EpochMailbox<UserId> mail(/*lanes=*/3, /*lane_capacity=*/4);
  // Lane 1 overflows its ring (4 slots) into the spill; drain order must
  // stay lane-ascending, ring before spill, production order within.
  std::vector<std::pair<std::size_t, std::uint64_t>> posted;
  for (std::uint64_t i = 0; i < 7; ++i) {
    mail.post(1, UserId{100 + i});
    posted.emplace_back(1, 100 + i);
  }
  mail.post(0, UserId{11});
  mail.post(2, UserId{33});
  mail.post(0, UserId{12});

  const MailboxBatchMsg batch = drain_to_batch(mail, /*seq=*/42);
  EXPECT_EQ(batch.seq, 42u);
  EXPECT_EQ(mail.pending(), 0u);
  ASSERT_EQ(batch.entries.size(), 10u);
  // Lane 0 first, its two posts in order; then lane 1's seven (ring
  // then spill keeps 100..106 contiguous); then lane 2.
  EXPECT_EQ(batch.entries[0], (MailboxEntry{0, 11}));
  EXPECT_EQ(batch.entries[1], (MailboxEntry{0, 12}));
  for (std::uint64_t i = 0; i < 7; ++i)
    EXPECT_EQ(batch.entries[2 + i], (MailboxEntry{1, 100 + i}));
  EXPECT_EQ(batch.entries[9], (MailboxEntry{2, 33}));

  // Posting the batch into a fresh mailbox and draining again must
  // reproduce the same sequence (the worker-side delivery order).
  EpochMailbox<UserId> replay(3, 4);
  post_batch(batch, replay);
  EXPECT_EQ(replay.pending(), batch.entries.size());
  const MailboxBatchMsg again = drain_to_batch(replay, 42);
  EXPECT_EQ(again.entries, batch.entries);
}

TEST(MailboxBridge, EmptyMailboxYieldsEmptyBatch) {
  EpochMailbox<UserId> mail(2, 4);
  const MailboxBatchMsg batch = drain_to_batch(mail, 7);
  EXPECT_TRUE(batch.entries.empty());
  post_batch(batch, mail);
  EXPECT_EQ(mail.pending(), 0u);
}

TEST(MailboxBridge, RingBoundaryExactFillStaysInRing) {
  EpochMailbox<UserId> mail(1, 4);
  for (std::uint64_t i = 0; i < 4; ++i) mail.post(0, UserId{i + 1});
  const MailboxBatchMsg batch = drain_to_batch(mail, 0);
  ASSERT_EQ(batch.entries.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(batch.entries[i], (MailboxEntry{0, i + 1}));
}

}  // namespace
}  // namespace u1
