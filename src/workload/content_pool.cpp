#include "workload/content_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "proto/wire.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

// Whale guard: content beyond ~256MB is personal footage/backups that
// does not circulate between users; letting it join the duplicate pool
// makes the byte-level dedup ratio a lottery on a handful of files.
constexpr std::uint64_t kCirculationCap = 256ull * 1024 * 1024;

}  // namespace

ContentPool::ContentPool(double duplicate_prob, double zipf_s,
                         std::uint64_t seed)
    : duplicate_prob_(duplicate_prob), zipf_s_(zipf_s), salt_(seed) {
  if (duplicate_prob < 0.0 || duplicate_prob >= 1.0)
    throw std::invalid_argument("ContentPool: duplicate_prob not in [0,1)");
  if (zipf_s <= 0.0 || zipf_s >= 1.0)
    throw std::invalid_argument("ContentPool: zipf_s must be in (0,1)");
}

ContentId ContentPool::fresh_id() {
  Sha1 h;
  h.update("u1sim-content");
  h.update(std::to_string(salt_));
  h.update(std::to_string(unique_seq_++));
  return h.finish();
}

double ContentPool::duplicate_prob_for(FileCategory category) const noexcept {
  // Calibrated to Fig. 4a: media/compressed/binary content circulates
  // widely (songs, releases, packages); code and documents are personal.
  double mult = 1.0;
  switch (category) {
    case FileCategory::kAudioVideo: mult = 1.8; break;
    case FileCategory::kCompressed: mult = 1.5; break;
    case FileCategory::kBinary: mult = 1.6; break;
    case FileCategory::kPics: mult = 0.9; break;
    case FileCategory::kDocs: mult = 0.6; break;
    case FileCategory::kCode: mult = 0.5; break;
    case FileCategory::kOther: mult = 0.6; break;
  }
  return std::min(0.95, duplicate_prob_ * mult);
}

ContentDraw ContentPool::draw(const FileSpec& spec, Rng& rng) {
  auto& pool = by_category_[static_cast<std::size_t>(spec.category)];
  const bool circulates = spec.size_bytes <= kCirculationCap;
  if (circulates && !pool.empty() &&
      rng.chance(duplicate_prob_for(spec.category))) {
    // Zipf-like rank over the circulating set: inverse-CDF of a bounded
    // Pareto over ranks, cheap and heavy-headed.
    const double u = rng.uniform();
    const double n = static_cast<double>(pool.size());
    const double rank = std::pow(u, 1.0 / (1.0 - zipf_s_)) * n;
    const std::size_t idx =
        std::min(pool.size() - 1, static_cast<std::size_t>(rank));
    ++duplicates_;
    return ContentDraw{pool[idx].id, pool[idx].size_bytes, true};
  }
  ContentDraw draw;
  draw.id = fresh_id();
  draw.size_bytes = spec.size_bytes;
  draw.duplicate = false;
  if (circulates) pool.push_back(Circulating{draw.id, draw.size_bytes});
  return draw;
}

ContentDraw ContentPool::draw_update(std::uint64_t new_size, Rng& /*rng*/) {
  ContentDraw draw;
  draw.id = fresh_id();
  draw.size_bytes = new_size;
  draw.duplicate = false;
  return draw;
}

std::size_t ContentPool::circulating(FileCategory category) const {
  return by_category_[static_cast<std::size_t>(category)].size();
}

void ContentPool::absorb(ContentPoolView& view) {
  for (std::size_t c = 0; c < kFileCategoryCount; ++c) {
    auto& pending = view.by_category_[c];
    auto& mine = by_category_[c];
    mine.insert(mine.end(), pending.begin(), pending.end());
    pending.clear();
  }
  absorbed_unique_ += view.unique_seq_ - view.reported_unique_;
  absorbed_duplicates_ += view.duplicates_ - view.reported_duplicates_;
  view.reported_unique_ = view.unique_seq_;
  view.reported_duplicates_ = view.duplicates_;
}

void ContentPool::absorb_delta(std::span<const std::uint8_t> bytes) {
  wire::Cursor c{bytes.data(), bytes.data() + bytes.size()};
  for (std::size_t cat = 0; cat < kFileCategoryCount; ++cat) {
    const std::uint64_t n = c.varint();
    auto& mine = by_category_[cat];
    for (std::uint64_t i = 0; c.ok && i < n; ++i) {
      Circulating entry{};
      if (const std::uint8_t* p = c.take(entry.id.bytes.size()))
        std::copy(p, p + entry.id.bytes.size(), entry.id.bytes.begin());
      entry.size_bytes = c.varint();
      if (c.ok) mine.push_back(entry);
    }
  }
  absorbed_unique_ += c.varint();
  absorbed_duplicates_ += c.varint();
  if (!c.ok || c.p != c.end)
    throw std::runtime_error("ContentPool::absorb_delta: malformed delta");
}

ContentPoolView::ContentPoolView(const ContentPool& global, std::uint64_t salt)
    : ContentPool(global.duplicate_prob_, global.zipf_s_, salt),
      global_(&global) {}

ContentDraw ContentPoolView::draw(const FileSpec& spec, Rng& rng) {
  if (live_ != nullptr) return live_->draw(spec, rng);
  const auto cat = static_cast<std::size_t>(spec.category);
  const auto& frozen = global_->by_category_[cat];
  auto& pending = by_category_[cat];
  const std::size_t n = frozen.size() + pending.size();
  const bool circulates = spec.size_bytes <= kCirculationCap;
  if (circulates && n > 0 && rng.chance(duplicate_prob_for(spec.category))) {
    // Same bounded-Pareto rank as the base pool, over the concatenation
    // (frozen-global entries first, then this epoch's own fresh entries):
    // the exact order the sequential merge produces.
    const double u = rng.uniform();
    const double rank = std::pow(u, 1.0 / (1.0 - zipf_s_)) * n;
    const std::size_t idx = std::min(n - 1, static_cast<std::size_t>(rank));
    const Circulating& hit =
        idx < frozen.size() ? frozen[idx] : pending[idx - frozen.size()];
    ++duplicates_;
    return ContentDraw{hit.id, hit.size_bytes, true};
  }
  ContentDraw draw;
  draw.id = fresh_id();
  draw.size_bytes = spec.size_bytes;
  draw.duplicate = false;
  if (circulates) pending.push_back(Circulating{draw.id, draw.size_bytes});
  return draw;
}

ContentDraw ContentPoolView::draw_update(std::uint64_t new_size, Rng& rng) {
  if (live_ != nullptr) return live_->draw_update(new_size, rng);
  return ContentPool::draw_update(new_size, rng);
}

std::vector<std::uint8_t> ContentPoolView::extract_delta() {
  std::vector<std::uint8_t> out;
  for (std::size_t cat = 0; cat < kFileCategoryCount; ++cat) {
    auto& pending = by_category_[cat];
    wire::put_varint(out, pending.size());
    for (const Circulating& entry : pending) {
      wire::put_raw(out, entry.id.bytes.data(), entry.id.bytes.size());
      wire::put_varint(out, entry.size_bytes);
    }
    pending.clear();
  }
  wire::put_varint(out, unique_seq_ - reported_unique_);
  wire::put_varint(out, duplicates_ - reported_duplicates_);
  reported_unique_ = unique_seq_;
  reported_duplicates_ = duplicates_;
  return out;
}

}  // namespace u1
