// Content popularity model behind the dedup analysis (Fig. 4a):
//  - the measured dedup ratio is 0.171;
//  - ~80% of unique contents have no duplicates at all;
//  - the duplicates-per-hash distribution has a long tail (popular songs
//    shared by thousands of logical files).
// When a simulated client "creates a file", the pool decides whether the
// content is globally fresh or a copy of something already in circulation
// (the same .mp3 uploaded by another user).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "proto/ids.hpp"
#include "util/rng.hpp"
#include "workload/file_model.hpp"

namespace u1 {

struct ContentDraw {
  ContentId id;
  std::uint64_t size_bytes = 0;
  bool duplicate = false;  // true when the pool reused circulating content
};

class ContentPool {
 public:
  /// duplicate_prob: baseline probability a new file's content is a copy
  /// of an already-circulating blob of the same category; per-category
  /// multipliers skew duplication toward media and packages (popular
  /// songs, shared archives), which is what makes the *byte-weighted*
  /// dedup ratio reach the paper's 0.171 while ~80% of hashes stay
  /// unique. zipf_s in (0,1) shapes how popularity concentrates on the
  /// head (bigger -> heavier).
  explicit ContentPool(double duplicate_prob = 0.20, double zipf_s = 0.9,
                       std::uint64_t seed = 0xc0de);

  /// Effective duplicate probability for a category.
  double duplicate_prob_for(FileCategory category) const noexcept;

  /// Draws content for a fresh file of the given spec.
  ContentDraw draw(const FileSpec& spec, Rng& rng);

  /// Draws content for an *update*: always fresh bytes (an edit produces
  /// a new hash), sized by the caller.
  ContentDraw draw_update(std::uint64_t new_size, Rng& rng);

  std::size_t circulating(FileCategory category) const;
  std::uint64_t unique_drawn() const noexcept { return unique_seq_; }
  std::uint64_t duplicates_drawn() const noexcept { return duplicates_; }

 private:
  struct Circulating {
    ContentId id;
    std::uint64_t size_bytes;
  };

  ContentId fresh_id();

  double duplicate_prob_;
  double zipf_s_;
  std::uint64_t salt_;
  std::uint64_t unique_seq_ = 0;
  std::uint64_t duplicates_ = 0;
  /// Per-category circulating contents, insertion-ordered; popularity is
  /// rank-based over this order (early contents accumulate more copies —
  /// preferential attachment, which yields the long tail of Fig. 4a).
  std::vector<Circulating> by_category_[kFileCategoryCount];
};

}  // namespace u1
