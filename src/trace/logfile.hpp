// Logfile persistence matching the paper's collection methodology (§4):
// "Each logfile corresponds to the entire activity of a single API/RPC
// process in a machine for a period of time ... there is one log file per
// server/service and day", named production-<machine>-<proc>-<date>.
// The writer shards records into such files; the reader merges a directory
// of them back into timestamp order, tolerating malformed lines (~1% in
// the real dataset).
//
// Two on-disk formats share the sharding rule and the reader API: the
// original CSV logfiles (this header) and the binary columnar `.u1b`
// format (trace/binlog.hpp). read_logfile sniffs the leading magic, so a
// directory may freely mix both; read_logfiles merges either kind into
// one timestamp-ordered stream.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace u1 {

/// Common interface of the per-(machine, process, day) logfile writers —
/// CSV LogfileWriter and binary BinaryLogfileWriter — so engines, tools
/// and benches select a trace format without caring which.
class LogfileSink : public TraceSink {
 public:
  /// Flushes and closes all open files; idempotent.
  virtual void close() = 0;
  /// Files currently open (0 after close()).
  virtual std::size_t files_written() const noexcept = 0;
};

/// Writes records into per-(machine, process, day) CSV logfiles under a
/// directory. Files carry a header row.
class LogfileWriter final : public LogfileSink {
 public:
  explicit LogfileWriter(std::filesystem::path directory);
  ~LogfileWriter() override;

  void append(const TraceRecord& record) override;
  /// Flushes and closes all open files.
  void close() override;

  std::size_t files_written() const noexcept override {
    return files_.size();
  }

 private:
  std::filesystem::path dir_;
  std::map<std::string, std::unique_ptr<std::ofstream>> files_;
};

struct ReadStats {
  std::uint64_t rows = 0;
  std::uint64_t parsed = 0;
  std::uint64_t malformed = 0;  // CSV/field failures, or binary records
                                // lost to integrity errors
  std::uint64_t files = 0;      // logfiles of either format
  std::uint64_t files_binary = 0;      // .u1b logfiles among `files`
  std::uint64_t bytes_read = 0;        // on-disk bytes, both formats
  std::uint64_t checksum_failures = 0; // binary files failing their digest

  void add(const ReadStats& other) noexcept {
    rows += other.rows;
    parsed += other.parsed;
    malformed += other.malformed;
    files += other.files;
    files_binary += other.files_binary;
    bytes_read += other.bytes_read;
    checksum_failures += other.checksum_failures;
  }
};

/// Reads every "production-*" logfile in a directory — CSV, binary, or a
/// mix (sniffed per file) — merges the records and delivers them to
/// `sink` in global timestamp order (files visited in name order, so the
/// merge is deterministic). Returns parsing statistics.
ReadStats read_logfiles(const std::filesystem::path& directory,
                        TraceSink& sink);

/// Reads a single logfile of either format (sniffed by leading magic),
/// appending to `out`.
ReadStats read_logfile(const std::filesystem::path& file,
                       std::vector<TraceRecord>& out);

}  // namespace u1
