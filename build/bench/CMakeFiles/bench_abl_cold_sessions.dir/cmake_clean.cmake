file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cold_sessions.dir/bench_abl_cold_sessions.cpp.o"
  "CMakeFiles/bench_abl_cold_sessions.dir/bench_abl_cold_sessions.cpp.o.d"
  "bench_abl_cold_sessions"
  "bench_abl_cold_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cold_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
