#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace u1 {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

U1dServer::U1dServer(U1Backend& backend, const NetServerConfig& config)
    : backend_(backend), config_(config) {}

U1dServer::~U1dServer() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

bool U1dServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, config_.backlog) != 0 ||
      !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(stop_pipe_) != 0) return false;
  set_nonblocking(stop_pipe_[0]);
  set_nonblocking(stop_pipe_[1]);
  return true;
}

void U1dServer::stop() noexcept {
  if (stop_pipe_[1] >= 0) {
    const char b = 1;
    // Signal-safe: a single write to a pipe.
    (void)!::write(stop_pipe_[1], &b, 1);
  }
}

void U1dServer::arm_faults(const FaultSchedule* schedule) {
  fault_schedule_ = schedule;
  next_fault_ = 0;
}

void U1dServer::advance_virtual_time(SimTime now) {
  if (now <= virtual_now_) return;
  virtual_now_ = now;
  if (fault_schedule_ == nullptr) return;
  // Fire every armed edge the fleet-wide virtual clock has passed. The
  // schedule is at-ordered, so a single cursor suffices.
  while (next_fault_ < fault_schedule_->size() &&
         (*fault_schedule_)[next_fault_].at <= now) {
    const FaultEvent& ev = (*fault_schedule_)[next_fault_];
    backend_.apply_fault(ev, ev.at, /*emit_record=*/true);
    ++stats_.faults_applied;
    ++next_fault_;
  }
}

void U1dServer::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN: drained the backlog
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (config_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.send_buffer_bytes,
                   sizeof config_.send_buffer_bytes);
    }
    conns_.emplace(fd, Conn{});
    ++stats_.accepted;
  }
}

bool U1dServer::read_from(int fd, Conn& conn) {
  for (;;) {
    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) return false;  // orderly shutdown
    if (errno == EINTR) continue;  // signal landed mid-read: retry, not close
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
}

void U1dServer::serve_frames(Conn& conn) {
  for (;;) {
    const std::uint8_t* data = conn.in.data() + conn.consumed;
    const std::size_t avail = conn.in.size() - conn.consumed;
    if (avail == 0) break;
    Request req;
    const FrameDecode fd = decode_request_frame(data, avail, req);
    if (fd.need_more) break;
    Response resp;
    if (fd.status == Status::kOk) {
      ++stats_.requests;
      advance_virtual_time(req.now);
      resp = backend_.call(req);
    } else {
      // Typed rejection. Echo the op byte when it names a real op so the
      // client can correlate; otherwise the default (kConnect) stands.
      ++stats_.protocol_errors;
      resp.status = fd.status;
      if (fd.consumed >= 7) {  // header survived: len+version+op readable
        if (const auto op = proto_op_from_wire(data[6])) resp.op = *op;
      }
      if (fd.consumed == 0) {
        // Oversized length prefix: the stream has no recoverable frame
        // boundary. Answer, flush, then drop the connection.
        conn.close_after_flush = true;
      }
    }
    append_response_frame(conn.out, resp);
    ++stats_.responses;
    if (conn.close_after_flush) break;
    conn.consumed += fd.consumed;
  }
  if (conn.consumed > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.consumed));
    conn.consumed = 0;
  }
}

bool U1dServer::flush(int fd, Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = ::write(fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
      continue;
    }
    // n == 0 leaves errno untouched; checking it would read a stale
    // value from an earlier syscall. No bytes moved and no error means
    // the socket is wedged — drop it rather than spin.
    if (n == 0) return false;
    if (errno == EINTR) continue;  // retry the partial send, keep the conn
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
  return true;
}

void U1dServer::close_conn(int fd) {
  ::close(fd);
  conns_.erase(fd);
  ++stats_.closed;
}

void U1dServer::run() {
  std::vector<pollfd> fds;
  std::vector<int> doomed;
  for (;;) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents & POLLIN) return;  // stop() fired
    if (fds[0].revents & POLLIN) accept_clients();

    doomed.clear();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool alive = true;
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = read_from(fd, conn);
        serve_frames(conn);
      }
      if (alive || !conn.out.empty()) {
        if (!flush(fd, conn)) alive = false;
      }
      if (!alive || (conn.close_after_flush && conn.out.empty())) {
        doomed.push_back(fd);
      }
    }
    for (const int fd : doomed) close_conn(fd);
  }
}

}  // namespace u1
