file(REMOVE_RECURSE
  "CMakeFiles/u1_trace.dir/logfile.cpp.o"
  "CMakeFiles/u1_trace.dir/logfile.cpp.o.d"
  "CMakeFiles/u1_trace.dir/record.cpp.o"
  "CMakeFiles/u1_trace.dir/record.cpp.o.d"
  "CMakeFiles/u1_trace.dir/sink.cpp.o"
  "CMakeFiles/u1_trace.dir/sink.cpp.o.d"
  "libu1_trace.a"
  "libu1_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
