#include <iostream>
#include <string>
#include <vector>

#include "tools/u1trace_cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return u1::cli::run(args, std::cout, std::cerr);
}
