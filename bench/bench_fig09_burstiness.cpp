// Fig. 9: burstiness of user operations — inter-operation time series and
// their power-law approximation (Upload: alpha=1.54, theta=41.37;
// Unlink: alpha=1.44, theta=19.51).
#include "analysis/burstiness.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  BurstinessAnalyzer bursts;
  auto sim = run_into(bursts, cfg);

  header("Fig 9", "Burstiness of user inter-operation times");
  const auto up_fit = bursts.upload_fit();
  const auto un_fit = bursts.unlink_fit();
  row("Upload power-law alpha", 1.54, up_fit.alpha);
  row("Upload power-law theta (s)", 41.37, up_fit.x_min);
  row("Unlink power-law alpha", 1.44, un_fit.alpha);
  row("Unlink power-law theta (s)", 19.51, un_fit.x_min);
  row("Upload CV^2 (Poisson would be 1)", 1.0, bursts.upload_cv2());
  row("Unlink CV^2 (Poisson would be 1)", 1.0, bursts.unlink_cv2());

  // CCDF series of the Fig. 9(b) log-log plot.
  Ecdf gaps{std::vector<double>(bursts.upload_gaps())};
  std::printf("\n  Upload inter-op CCDF P(X >= x):\n");
  for (const double x : {0.1, 1.0, 10.0, 100.0, 1000.0, 1e4, 1e5}) {
    std::printf("    x=%-8.4g : %.5f\n", x, 1.0 - gaps.at(x));
  }
  note("paper: operations arrive in bursts over six orders of magnitude "
       "of time scales; interactions are not Poisson");
  return 0;
}
