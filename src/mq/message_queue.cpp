#include "mq/message_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {

std::size_t MessageQueue::subscribe(ProcessId process, EventHandler handler) {
  if (!handler) throw std::invalid_argument("subscribe: empty handler");
  Subscriber sub;
  sub.handle = next_handle_++;
  sub.process = process;
  sub.handler = std::move(handler);
  sub.active = true;
  subscribers_.push_back(std::move(sub));
  return subscribers_.back().handle;
}

void MessageQueue::unsubscribe(std::size_t handle) {
  for (auto& sub : subscribers_) {
    if (sub.handle == handle) {
      sub.active = false;
      return;
    }
  }
  throw std::out_of_range("unsubscribe: unknown handle");
}

std::size_t MessageQueue::publish(const VolumeEvent& event) {
  ++published_;
  std::size_t deliveries = 0;
  for (const auto& sub : subscribers_) {
    if (!sub.active || sub.process == event.origin_process) continue;
    sub.handler(event);
    ++deliveries;
  }
  delivered_ += deliveries;
  return deliveries;
}

std::size_t MessageQueue::subscriber_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(subscribers_.begin(), subscribers_.end(),
                    [](const Subscriber& s) { return s.active; }));
}

}  // namespace u1
