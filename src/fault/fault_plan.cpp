#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace u1 {
namespace {

/// Parses "2d12h30m15s" (bare numbers are seconds) into SimTime.
SimTime parse_duration(const std::string& text) {
  SimTime total = 0;
  std::uint64_t acc = 0;
  bool have_digit = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
      have_digit = true;
      continue;
    }
    if (!have_digit) throw std::invalid_argument("bad duration: " + text);
    SimTime unit;
    switch (c) {
      case 'd': unit = kDay; break;
      case 'h': unit = kHour; break;
      case 'm': unit = kMinute; break;
      case 's': unit = kSecond; break;
      default: throw std::invalid_argument("bad duration unit: " + text);
    }
    total += static_cast<SimTime>(acc) * unit;
    acc = 0;
    have_digit = false;
  }
  if (have_digit) total += static_cast<SimTime>(acc) * kSecond;
  return total;
}

double parse_double(const std::string& text) {
  std::size_t pos = 0;
  const double v = std::stod(text, &pos);
  if (pos != text.size()) throw std::invalid_argument("bad number: " + text);
  return v;
}

std::uint64_t parse_u64(const std::string& text) {
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(text, &pos);
  if (pos != text.size()) throw std::invalid_argument("bad integer: " + text);
  return v;
}

/// Probability keys (p, error, reject, drop) must be actual
/// probabilities; an out-of-range value is a script bug, not a knob.
double parse_prob(const std::string& text) {
  const double v = parse_double(text);
  if (v < 0.0 || v > 1.0)
    throw std::invalid_argument("probability outside [0,1]: " + text);
  return v;
}

FaultSpec parse_spec_line(const std::string& line, std::size_t line_no) {
  std::istringstream in(line);
  std::string kind_word;
  in >> kind_word;
  const auto kind = fault_kind_from_string(kind_word);
  if (!kind) {
    throw std::invalid_argument("fault plan line " + std::to_string(line_no) +
                                ": unknown fault kind '" + kind_word + "'");
  }
  FaultSpec spec;
  spec.kind = *kind;
  spec.line = line_no;
  std::set<std::string> seen;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault plan line " +
                                  std::to_string(line_no) +
                                  ": expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    try {
      if (!seen.insert(key).second)
        throw std::invalid_argument("duplicate key '" + key + "'");
      if (key == "t") spec.at = parse_duration(val);
      else if (key == "dur") spec.duration = parse_duration(val);
      else if (key == "rate") spec.rate_per_day = parse_double(val);
      else if (key == "machine") spec.machine = parse_u64(val);
      else if (key == "shard") spec.shard = parse_u64(val);
      else if (key == "slot") spec.slot = parse_u64(val);
      else if (key == "error") spec.error_rate = parse_prob(val);
      else if (key == "slow") spec.slow_factor = parse_double(val);
      else if (key == "reject") spec.reject_prob = parse_prob(val);
      else if (key == "drop") spec.drop_prob = parse_prob(val);
      else if (key == "id") {
        if (val.empty()) throw std::invalid_argument("empty id=");
        spec.id = val;
      } else if (key == "after") {
        if (val.empty()) throw std::invalid_argument("empty after=");
        spec.after = val;
      } else if (key == "p") {
        spec.trigger_prob = parse_prob(val);
      } else if (key == "delay") {
        spec.trigger_delay = parse_duration(val);
      } else if (key == "on") {
        if (val == "begin") spec.after_end = false;
        else if (val == "end") spec.after_end = true;
        else throw std::invalid_argument("on= must be begin or end, got '" +
                                         val + "'");
      } else {
        throw std::invalid_argument("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("fault plan line " +
                                  std::to_string(line_no) + ": " + e.what());
    }
  }
  if (spec.duration <= 0) {
    throw std::invalid_argument("fault plan line " + std::to_string(line_no) +
                                ": dur= is required and must be > 0");
  }
  if (spec.after.empty()) {
    for (const char* key : {"p", "delay", "on"}) {
      if (seen.count(key) != 0)
        throw std::invalid_argument("fault plan line " +
                                    std::to_string(line_no) + ": " + key +
                                    "= requires after=");
    }
  }
  return spec;
}

/// "fault plan line 3" / "fault plan spec #2" (programmatic, line 0).
std::string spec_where(const FaultSpec& spec, std::size_t index) {
  if (spec.line != 0)
    return "fault plan line " + std::to_string(spec.line);
  return "fault plan spec #" + std::to_string(index + 1);
}

}  // namespace

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kProcessCrash: return "process_crash";
    case FaultKind::kMachineOutage: return "machine_outage";
    case FaultKind::kShardFailover: return "shard_failover";
    case FaultKind::kS3Brownout: return "s3_brownout";
    case FaultKind::kMqDrop: return "mq_drop";
    case FaultKind::kAuthBrownout: return "auth_brownout";
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view s) noexcept {
  if (s == "process_crash") return FaultKind::kProcessCrash;
  if (s == "machine_outage") return FaultKind::kMachineOutage;
  if (s == "shard_failover") return FaultKind::kShardFailover;
  if (s == "s3_brownout") return FaultKind::kS3Brownout;
  if (s == "mq_drop") return FaultKind::kMqDrop;
  if (s == "auth_brownout") return FaultKind::kAuthBrownout;
  return std::nullopt;
}

FaultPlan parse_fault_plan(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string line(text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;  // blank / comment-only
    plan.specs.push_back(parse_spec_line(line, line_no));
  }
  (void)fault_plan_parents(plan);  // reject bad ids / cycles at parse time
  return plan;
}

std::vector<std::size_t> fault_plan_parents(const FaultPlan& plan) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t n = plan.specs.size();
  std::unordered_map<std::string, std::size_t> by_id;
  for (std::size_t s = 0; s < n; ++s) {
    const FaultSpec& spec = plan.specs[s];
    if (spec.id.empty()) continue;
    if (!by_id.emplace(spec.id, s).second)
      throw std::invalid_argument(spec_where(spec, s) + ": duplicate id '" +
                                  spec.id + "'");
  }
  std::vector<std::size_t> parent(n, npos);
  for (std::size_t s = 0; s < n; ++s) {
    const FaultSpec& spec = plan.specs[s];
    if (spec.after.empty()) continue;
    if (spec.rate_per_day > 0)
      throw std::invalid_argument(spec_where(spec, s) +
                                  ": rate= cannot be combined with after=");
    const auto it = by_id.find(spec.after);
    if (it == by_id.end())
      throw std::invalid_argument(spec_where(spec, s) +
                                  ": after= references unknown id '" +
                                  spec.after + "'");
    if (it->second == s)
      throw std::invalid_argument(spec_where(spec, s) + ": id '" + spec.id +
                                  "' depends on itself");
    parent[s] = it->second;
  }
  // Cycle check: walk each parent chain; a chain longer than n specs must
  // have revisited one.
  for (std::size_t s = 0; s < n; ++s) {
    std::size_t hops = 0;
    for (std::size_t q = parent[s]; q != npos; q = parent[q]) {
      if (++hops > n)
        throw std::invalid_argument(spec_where(plan.specs[s], s) +
                                    ": dependency cycle through id '" +
                                    plan.specs[s].after + "'");
    }
  }
  return parent;
}

FaultPlan standard_fault_plan() {
  // One of everything inside a week, spaced so recovery windows do not
  // overlap: the acceptance plan for bench_fault_recovery.
  return parse_fault_plan(
      "auth_brownout  t=1d12h dur=45m error=0.5\n"
      "process_crash  t=2d    dur=2h  machine=3 slot=1\n"
      "s3_brownout    t=3d    dur=1h  error=0.25 slow=4\n"
      "shard_failover t=4d    dur=30m shard=4 slow=6 reject=0.35\n"
      "mq_drop        t=4d12h dur=2h  drop=0.75\n"
      "machine_outage t=5d    dur=40m machine=2\n");
}

FaultSchedule build_fault_schedule(const FaultPlan& plan, SimTime horizon,
                                   std::size_t machine_count,
                                   std::size_t shard_count,
                                   std::uint64_t seed) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t n = plan.specs.size();
  const std::vector<std::size_t> parent = fault_plan_parents(plan);

  // Parents must materialize before their children; Kahn's algorithm with
  // lowest-index-first selection keeps the pass deterministic. (Cycles
  // were rejected by fault_plan_parents.)
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  while (order.size() < n) {
    for (std::size_t s = 0; s < n; ++s) {
      if (placed[s] || (parent[s] != npos && !placed[parent[s]])) continue;
      placed[s] = 1;
      order.push_back(s);
    }
  }

  // Per-spec streams: adding or reordering specs never perturbs the
  // draws made for the others. Each stream is consumed in two phases —
  // window starts (Poisson arrivals / edge-trigger draws) first, then
  // per-occurrence target draws — so an edited p= or delay= can never
  // shift a sibling's arrivals.
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    rngs.emplace_back(seed ^ ((s + 1) * 0x9e3779b97f4a7c15ull));

  std::vector<std::vector<SimTime>> starts(n);
  for (const std::size_t s : order) {
    const FaultSpec& spec = plan.specs[s];
    Rng& rng = rngs[s];
    if (parent[s] != npos) {
      // One trigger draw per parent occurrence, fired or not, so the
      // schedule beyond an edge stays stable when p= is tuned.
      for (const SimTime pstart : starts[parent[s]]) {
        const double u = rng.uniform();
        if (u >= spec.trigger_prob) continue;
        const SimTime anchor =
            spec.after_end ? pstart + plan.specs[parent[s]].duration : pstart;
        const SimTime at = anchor + spec.trigger_delay;
        if (at >= horizon) continue;
        starts[s].push_back(at);
      }
    } else if (spec.rate_per_day > 0) {
      const double mean_gap_s = 86400.0 / spec.rate_per_day;
      double t_s = 0;
      for (;;) {
        t_s += -mean_gap_s * std::log(1.0 - rng.uniform());
        const SimTime at = from_seconds(t_s);
        if (at >= horizon) break;
        starts[s].push_back(at);
      }
    } else if (spec.at < horizon) {
      starts[s].push_back(spec.at);
    }
  }

  // Materialize in textual spec order so window ids (and the trace's
  // fault labels) are independent of the topological pass above.
  FaultSchedule schedule;
  std::size_t next_id = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const FaultSpec& spec = plan.specs[s];
    Rng& rng = rngs[s];
    for (const SimTime at : starts[s]) {
      FaultEvent ev;
      ev.id = next_id++;
      ev.kind = spec.kind;
      ev.at = at;
      ev.duration = spec.duration;
      // Targets are only meaningful (and only drawn) for kinds that
      // aim at a machine or shard; the rest keep 0 = "not applicable".
      if (spec.kind == FaultKind::kProcessCrash ||
          spec.kind == FaultKind::kMachineOutage) {
        ev.machine = spec.machine != 0 ? spec.machine
                                       : rng.below(machine_count) + 1;
      }
      if (spec.kind == FaultKind::kShardFailover) {
        ev.shard = spec.shard != 0 ? spec.shard : rng.below(shard_count) + 1;
      }
      ev.slot = spec.slot;
      ev.error_rate = spec.error_rate;
      ev.slow_factor = spec.slow_factor;
      ev.reject_prob = spec.reject_prob;
      ev.drop_prob = spec.drop_prob;
      ev.begin = true;
      schedule.push_back(ev);
      ev.begin = false;
      ev.at = at + spec.duration;
      schedule.push_back(ev);
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.id != b.id) return a.id < b.id;
              return a.begin && !b.begin;
            });
  return schedule;
}

std::string fault_label(const FaultEvent& ev) {
  std::string out(to_string(ev.kind));
  out += '#';
  out += std::to_string(ev.id);
  out += ev.begin ? ":begin" : ":end";
  return out;
}

}  // namespace u1
