// The trace record format (§4). The U1 dataset is a merge of per-process
// CSV logfiles with four request types:
//   session      — session management (auth request/ok/fail, open, close)
//   storage      — an API operation arriving at an API server
//   storage_done — its completion (carries the duration)
//   rpc          — the DAL call it translated into (carries shard + time)
// Our simulated back-end emits exactly this shape so that the analyzers
// are written as they would be for the real dataset.
//
// The in-memory representation is a fixed-size trivially-copyable struct
// (budget: 128 bytes — two cache lines) so the engine's hot path — epoch
// chunk sorts, the k-way merge, guard scans, sink hand-offs — moves plain
// bytes, never strings. The two string-valued columns (`ext`, `fault`)
// are interned into one `Symbol` (they are mutually exclusive: only
// kFault records carry a fault label, only storage records an extension)
// and resolved back through the global SymbolTable at the CSV
// serialization boundary, which keeps the emitted bytes — and therefore
// the trace SHA-1 — identical to the string-carrying layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "proto/entities.hpp"
#include "proto/ids.hpp"
#include "proto/operations.hpp"
#include "trace/symbols.hpp"
#include "util/sim_time.hpp"

namespace u1 {

enum class RecordType : std::uint8_t {
  kSession,
  kStorage,
  kStorageDone,
  kRpc,
  kFault,  // fault-injection window begin/end (operator's incident log)
};

/// Number of RecordType values — size per-type arrays from this, never
/// from a literal (CountingSink once had a 4-slot array and kFault wrote
/// past its end).
inline constexpr std::size_t kRecordTypeCount =
    static_cast<std::size_t>(RecordType::kFault) + 1;

std::string_view to_string(RecordType t) noexcept;
std::optional<RecordType> record_type_from_string(std::string_view s) noexcept;

enum class SessionEvent : std::uint8_t {
  kNone,
  kAuthRequest,  // API server asked the auth service to verify/issue
  kAuthOk,
  kAuthFail,
  kOpen,     // session established
  kClose,    // session ended by a client disconnect
  kDropped,  // session force-closed (process crash / machine outage)
  kTryAgain, // load-shed: balancer had no process with capacity
};

std::string_view to_string(SessionEvent e) noexcept;
std::optional<SessionEvent> session_event_from_string(
    std::string_view s) noexcept;

/// Narrow in-record storage for a StrongId. The trace never sees ids
/// that need 64 bits (machines: 6, processes: ~100, users/sessions:
/// millions), so records store the compact width and convert implicitly
/// at the boundaries — call sites keep writing `r.user` where a UserId
/// is expected. Widths are validated on the CSV parse path (overflow ==
/// malformed row), and emit paths only ever narrow ids they generated
/// within range.
template <typename Id, typename Raw>
struct PackedTraceId {
  Raw value = 0;

  constexpr PackedTraceId() = default;
  constexpr PackedTraceId(Id id) noexcept  // NOLINT: implicit by design
      : value(static_cast<Raw>(id.value)) {}
  constexpr operator Id() const noexcept { return Id{value}; }  // NOLINT

  constexpr bool valid() const noexcept { return value != 0; }

  friend constexpr bool operator==(PackedTraceId a, PackedTraceId b) noexcept {
    return a.value == b.value;
  }
  friend constexpr bool operator==(PackedTraceId a, Id b) noexcept {
    return a.value == b.value;
  }
  friend constexpr bool operator==(Id a, PackedTraceId b) noexcept {
    return a.value == b.value;
  }
};

/// One log line. Fields not applicable to the record type are left at
/// their zero values and serialize to empty CSV cells.
struct TraceRecord {
  SimTime t = 0;
  SimTime duration = 0;  // kStorageDone: end-to-end op time; kFault: window
  std::uint64_t size_bytes = 0;         // logical file size
  std::uint64_t transferred_bytes = 0;  // wire bytes (0 on dedup hit)

  // type == kStorage / kStorageDone
  NodeId node;
  NodeId parent;  // parent directory (set on Make records)
  VolumeId volume;
  ContentId content;  // SHA-1 (files only)

  // type == kRpc (microseconds; the DAL never served a >1h call)
  std::uint32_t service_time = 0;

  PackedTraceId<UserId, std::uint32_t> user;
  PackedTraceId<SessionId, std::uint32_t> session;

  /// Interned `ext` column (storage records) or `fault` column (kFault
  /// records: "<kind>#<window-id>:begin|end") — mutually exclusive by
  /// type, so one slot serves both. Emit through GroupSymbols/
  /// set_extension/set_fault; read through extension()/fault().
  Symbol label = kEmptySymbol;

  PackedTraceId<ProcessId, std::uint16_t> process;
  PackedTraceId<ShardId, std::uint16_t> shard;  // kRpc / kFault target
  PackedTraceId<MachineId, std::uint8_t> machine;

  RecordType type = RecordType::kStorage;
  SessionEvent session_event = SessionEvent::kNone;  // type == kSession
  ApiOp api_op = ApiOp::kListVolumes;   // kStorage / kStorageDone
  RpcOp rpc_op = RpcOp::kListVolumes;   // kRpc

  bool is_update : 1 = false;    // upload of an existing node w/ new content
  bool is_dir : 1 = false;
  bool deduplicated : 1 = false; // upload satisfied by get_reusable_content
  bool failed : 1 = false;

  /// Interns `ext` eagerly into the global table (tests, CSV parsing —
  /// engine emit paths intern through their group's GroupSymbols).
  void set_extension(std::string_view ext) {
    label = global_symbols().intern(ext);
  }
  void set_fault(std::string_view fault_text) {
    label = global_symbols().intern(fault_text);
  }

  /// Resolved `ext` column; empty for kFault records (whose label is the
  /// fault text). Only valid for global label ids — i.e. any record the
  /// engines hand to a sink; the parallel engine remaps group-local ids
  /// before records leave the flush pipeline.
  std::string_view extension() const noexcept {
    return type == RecordType::kFault ? std::string_view{}
                                      : global_symbols().resolve(label);
  }
  /// Resolved `fault` column; empty for non-fault records.
  std::string_view fault() const noexcept {
    return type == RecordType::kFault ? global_symbols().resolve(label)
                                      : std::string_view{};
  }

  /// The logfile this record belongs to, e.g.
  /// "production-whitecurrant-23-20140128" (paper §4).
  std::string logname() const;

  /// CSV row (fixed column order, see kCsvHeader).
  std::vector<std::string> to_csv() const;

  /// Appends the record's serialized form to `out` as
  ///   field0,field1,...,field23,\n
  /// — every field followed by a comma, then a newline. This is the byte
  /// stream the determinism oracles hash (historically: to_csv() fields
  /// each followed by ","), kept verbatim so trace SHA-1s are comparable
  /// across engine versions. No allocations beyond `out`'s growth.
  void append_csv_row(std::string& out) const;

  /// Parses a row; std::nullopt for malformed rows (the paper reports ~1%
  /// of trace lines failed to parse — the reader counts, not crashes).
  /// Malformed includes: id fields overflowing their packed widths, and
  /// a row carrying both a non-empty `ext` and a non-empty `fault` (the
  /// columns are mutually exclusive by record type).
  static std::optional<TraceRecord> from_csv(
      const std::vector<std::string>& fields);

  static const std::vector<std::string>& csv_header();
};

// The hot-path contract: records are raw bytes to the engine. The 128-
// byte budget (two cache lines) is load-bearing for flush throughput —
// if a new field pushes past it, shrink something else.
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "TraceRecord must stay POD: the engine memcpys it");
static_assert(sizeof(TraceRecord) <= 128,
              "TraceRecord exceeds its 128-byte (two cache line) budget");

/// Machine names used in lognames. The production fleet had 6 API/RPC
/// machines; we keep Canonical's fruit-flavored naming style.
std::string_view machine_name(MachineId id) noexcept;

}  // namespace u1
