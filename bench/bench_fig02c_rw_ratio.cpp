// Fig. 2(c): hourly R/W (download/upload) ratio — boxplot statistics and
// the autocorrelation evidence that the ratios are not independent.
#include "analysis/traffic.hpp"
#include <algorithm>
#include <vector>
#include "bench/bench_util.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  TrafficAnalyzer traffic(0, cfg.days * kDay);
  auto sim = run_into(traffic, cfg);

  header("Fig 2(c)", "R/W ratio analysis (1-hour bins)");
  const auto box = traffic.rw_boxplot();
  row("R/W ratio median", 1.14, box.median);
  row("R/W ratio mean", 1.17, box.mean);
  std::printf("  boxplot: min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f\n",
              box.min, box.q1, box.median, box.q3, box.max);
  // Within-day spread: median over days of the day's p90/p10 hourly ratio
  // (robust version of the paper's "differences of 8x within the same
  // day").
  {
    const auto ratios = traffic.rw_ratios_hourly();
    std::vector<double> day_swings;
    for (std::size_t d = 0; d * 24 + 23 < ratios.size(); ++d) {
      std::vector<double> day(ratios.begin() + static_cast<long>(d * 24),
                              ratios.begin() + static_cast<long>(d * 24 + 24));
      std::sort(day.begin(), day.end());
      const double lo = day[2];   // ~p10
      const double hi = day[21];  // ~p90
      if (lo > 0) day_swings.push_back(hi / lo);
    }
    row("within-day p90/p10 ratio swing (x)", 8.0,
        day_swings.empty() ? 0.0 : median_of(day_swings));
  }

  const auto acf = traffic.rw_acf(200);
  std::printf("\n  ACF (95%% confidence band = +/-%.3f):\n",
              acf.confidence_bound);
  for (const std::size_t lag : {1u, 6u, 12u, 24u, 48u, 72u, 168u}) {
    if (lag < acf.acf.size())
      std::printf("    lag %3zu: %+.3f%s\n", static_cast<std::size_t>(lag),
                  acf.acf[lag],
                  std::abs(acf.acf[lag]) > acf.confidence_bound
                      ? "  (significant)"
                      : "");
  }
  row("lags outside the 95% band (of 200)", 150,
      static_cast<double>(acf.significant_lags));
  note("paper: most lags outside the band -> R/W ratios follow a daily "
       "pattern, they are not random");
  return 0;
}
