#include "fault/fault_injector.hpp"

#include <algorithm>

namespace u1 {

FaultInjector::FaultInjector(const FaultSchedule& schedule,
                             std::uint64_t seed)
    : schedule_(&schedule), rng_(seed) {}

template <typename Pred, typename Get>
double FaultInjector::window_max(SimTime now, double base, Pred pred,
                                 Get get) const {
  // Schedules are tiny (a handful of windows); a linear scan over begin
  // events beats maintaining interval structures.
  double best = base;
  for (const FaultEvent& ev : *schedule_) {
    if (!ev.begin || now < ev.at || now >= ev.at + ev.duration) continue;
    if (!pred(ev)) continue;
    best = std::max(best, get(ev));
  }
  return best;
}

double FaultInjector::s3_error_rate(SimTime now) const noexcept {
  return window_max(
      now, 0.0,
      [](const FaultEvent& ev) { return ev.kind == FaultKind::kS3Brownout; },
      [](const FaultEvent& ev) { return ev.error_rate; });
}

double FaultInjector::s3_latency_multiplier(SimTime now) const noexcept {
  return window_max(
      now, 1.0,
      [](const FaultEvent& ev) { return ev.kind == FaultKind::kS3Brownout; },
      [](const FaultEvent& ev) { return ev.slow_factor; });
}

double FaultInjector::auth_error_rate(SimTime now) const noexcept {
  return window_max(
      now, 0.0,
      [](const FaultEvent& ev) {
        return ev.kind == FaultKind::kAuthBrownout;
      },
      [](const FaultEvent& ev) { return ev.error_rate; });
}

double FaultInjector::mq_drop_prob(SimTime now) const noexcept {
  return window_max(
      now, 0.0,
      [](const FaultEvent& ev) { return ev.kind == FaultKind::kMqDrop; },
      [](const FaultEvent& ev) { return ev.drop_prob; });
}

double FaultInjector::shard_service_multiplier(std::uint64_t shard,
                                               SimTime now) const noexcept {
  return window_max(
      now, 1.0,
      [shard](const FaultEvent& ev) {
        return ev.kind == FaultKind::kShardFailover && ev.shard == shard;
      },
      [](const FaultEvent& ev) { return ev.slow_factor; });
}

double FaultInjector::shard_reject_prob(std::uint64_t shard,
                                        SimTime now) const noexcept {
  return window_max(
      now, 0.0,
      [shard](const FaultEvent& ev) {
        return ev.kind == FaultKind::kShardFailover && ev.shard == shard;
      },
      [](const FaultEvent& ev) { return ev.reject_prob; });
}

bool FaultInjector::s3_request_fails(SimTime now) {
  const double p = s3_error_rate(now);
  return p > 0 && rng_.chance(p);
}

bool FaultInjector::auth_brownout_fails(SimTime now) {
  const double p = auth_error_rate(now);
  return p > 0 && rng_.chance(p);
}

bool FaultInjector::mq_drops(SimTime now) {
  const double p = mq_drop_prob(now);
  return p > 0 && rng_.chance(p);
}

bool FaultInjector::shard_write_rejected(std::uint64_t shard, SimTime now) {
  const double p = shard_reject_prob(shard, now);
  return p > 0 && rng_.chance(p);
}

FaultInjector::Cut FaultInjector::next_machine_cut(
    std::uint64_t machine, SimTime from, SimTime until) const noexcept {
  Cut cut;
  for (const FaultEvent& ev : *schedule_) {
    if (!ev.begin || ev.machine != machine) continue;
    if (ev.kind != FaultKind::kProcessCrash &&
        ev.kind != FaultKind::kMachineOutage)
      continue;
    if (ev.at <= from || ev.at > until) continue;
    if (cut.event == nullptr || ev.at < cut.at) {
      cut.at = ev.at;
      cut.event = &ev;
    }
  }
  return cut;
}

}  // namespace u1
