file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03a_after_write.dir/bench_fig03a_after_write.cpp.o"
  "CMakeFiles/bench_fig03a_after_write.dir/bench_fig03a_after_write.cpp.o.d"
  "bench_fig03a_after_write"
  "bench_fig03a_after_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03a_after_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
