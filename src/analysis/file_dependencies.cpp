#include "analysis/file_dependencies.hpp"

namespace u1 {

std::string_view to_string(FileDependency d) noexcept {
  switch (d) {
    case FileDependency::kWAW: return "WAW";
    case FileDependency::kRAW: return "RAW";
    case FileDependency::kDAW: return "DAW";
    case FileDependency::kWAR: return "WAR";
    case FileDependency::kRAR: return "RAR";
    case FileDependency::kDAR: return "DAR";
  }
  return "?";
}

void FileDependencyAnalyzer::record_dep(FileDependency dep, SimTime gap) {
  times_[static_cast<std::size_t>(dep)].push_back(to_seconds(gap));
}

void FileDependencyAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
  if (r.is_dir) return;  // node-level dependencies are for files

  switch (r.api_op) {
    case ApiOp::kPutContent: {
      NodeState& st = nodes_[r.node];
      // Classify against the most recent preceding operation.
      if (st.has_write && (!st.has_read || st.last_write >= st.last_read))
        record_dep(FileDependency::kWAW, r.t - st.last_write);
      else if (st.has_read)
        record_dep(FileDependency::kWAR, r.t - st.last_read);
      st.last_write = r.t;
      st.has_write = true;
      break;
    }
    case ApiOp::kGetContent: {
      NodeState& st = nodes_[r.node];
      if (st.has_write && (!st.has_read || st.last_write >= st.last_read))
        record_dep(FileDependency::kRAW, r.t - st.last_write);
      else if (st.has_read)
        record_dep(FileDependency::kRAR, r.t - st.last_read);
      st.last_read = r.t;
      st.has_read = true;
      ++st.downloads;
      break;
    }
    case ApiOp::kUnlink: {
      const auto it = nodes_.find(r.node);
      if (it == nodes_.end()) return;
      const NodeState& st = it->second;
      SimTime last_use = 0;
      bool used = false;
      if (st.has_write && (!st.has_read || st.last_write >= st.last_read)) {
        record_dep(FileDependency::kDAW, r.t - st.last_write);
        last_use = st.last_write;
        used = true;
      } else if (st.has_read) {
        record_dep(FileDependency::kDAR, r.t - st.last_read);
        last_use = st.last_read;
        used = true;
      }
      if (used) {
        ++deleted_files_;
        if (r.t - last_use > kDay) ++dying_day_;
        if (r.t - last_use > 8 * kHour) ++dying_8h_;
      }
      if (st.downloads > 0) downloads_of_deleted_.push_back(st.downloads);
      nodes_.erase(it);
      break;
    }
    default:
      break;
  }
}

double FileDependencyAnalyzer::family_share(FileDependency dep) const {
  const bool after_write = dep == FileDependency::kWAW ||
                           dep == FileDependency::kRAW ||
                           dep == FileDependency::kDAW;
  double family_total = 0;
  if (after_write) {
    family_total = static_cast<double>(count(FileDependency::kWAW) +
                                       count(FileDependency::kRAW) +
                                       count(FileDependency::kDAW));
  } else {
    family_total = static_cast<double>(count(FileDependency::kWAR) +
                                       count(FileDependency::kRAR) +
                                       count(FileDependency::kDAR));
  }
  if (family_total == 0) return 0.0;
  return static_cast<double>(count(dep)) / family_total;
}

std::vector<double> FileDependencyAnalyzer::downloads_per_file() const {
  std::vector<double> out;
  out.reserve(downloads_of_deleted_.size() + nodes_.size());
  for (const auto n : downloads_of_deleted_) out.push_back(n);
  for (const auto& [id, st] : nodes_) {
    if (st.downloads > 0) out.push_back(st.downloads);
  }
  return out;
}

}  // namespace u1
