#include "analysis/dedup.hpp"

namespace u1 {

void DedupAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
  if (r.api_op != ApiOp::kPutContent) return;
  if (r.content == ContentId{}) return;

  ++uploads_;
  if (r.deduplicated) ++hits_;
  logical_bytes_ += r.size_bytes;

  auto [it, inserted] = table_.try_emplace(r.content,
                                           HashInfo{r.size_bytes, 0});
  if (inserted) unique_bytes_ += r.size_bytes;
  ++it->second.copies;
}

double DedupAnalyzer::dedup_ratio() const {
  if (logical_bytes_ == 0) return 0.0;
  return 1.0 - static_cast<double>(unique_bytes_) /
                   static_cast<double>(logical_bytes_);
}

std::vector<double> DedupAnalyzer::copies_per_hash() const {
  std::vector<double> out;
  out.reserve(table_.size());
  for (const auto& [id, info] : table_)
    out.push_back(static_cast<double>(info.copies));
  return out;
}

double DedupAnalyzer::unique_fraction() const {
  if (table_.empty()) return 0.0;
  std::uint64_t singles = 0;
  for (const auto& [id, info] : table_)
    if (info.copies == 1) ++singles;
  return static_cast<double>(singles) / static_cast<double>(table_.size());
}

}  // namespace u1
