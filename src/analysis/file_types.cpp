#include "analysis/file_types.hpp"

#include <algorithm>

namespace u1 {

std::uint16_t FileTypeAnalyzer::intern(Symbol label,
                                       std::string_view extension) {
  const auto hit = label_index_.find(label);
  if (hit != label_index_.end()) return hit->second;
  // First sighting of this symbol: fall back to the string key (distinct
  // symbols resolving to one string cannot happen within a process, but
  // the string map also serves sizes_of()).
  const std::string key(extension);
  std::uint16_t idx;
  const auto it = ext_index_.find(key);
  if (it != ext_index_.end()) {
    idx = it->second;
  } else {
    idx = static_cast<std::uint16_t>(extensions_.size());
    extensions_.push_back(key);
    ext_index_.emplace(key, idx);
  }
  label_index_.emplace(label, idx);
  return idx;
}

void FileTypeAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
  if (r.api_op != ApiOp::kPutContent || r.size_bytes == 0) return;
  FileInfo& info = files_[r.node];
  info.size = r.size_bytes;  // updates keep the latest size
  info.ext_index = intern(r.label, r.extension());
}

// Per-group shard: the merged path's per-node latest-size map, restricted
// to this group's nodes (disjoint across groups by construction). The
// filter mirrors append() exactly — including updates, which overwrite
// in place — so the merged union is identical to what a serial pass over
// the merged stream would build.
class FileTypeAnalyzer::Shard final : public AnalyzerShard {
 public:
  struct Entry {
    std::uint64_t size = 0;
    Symbol label{};
  };

  void consume(const TraceRecord* records, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const TraceRecord& r = records[i];
      if (r.type != RecordType::kStorageDone || r.failed || r.t < 0)
        continue;
      if (r.api_op != ApiOp::kPutContent || r.size_bytes == 0) continue;
      Entry& e = files[r.node];
      e.size = r.size_bytes;
      e.label = r.label;
      ext_names.try_emplace(r.label, r.extension());
    }
  }

  std::unordered_map<NodeId, Entry> files;
  std::unordered_map<Symbol, std::string> ext_names;
};

std::unique_ptr<AnalyzerShard> FileTypeAnalyzer::make_shard() {
  return std::make_unique<Shard>();
}

void FileTypeAnalyzer::merge_shard(AnalyzerShard& shard) {
  auto& s = dynamic_cast<Shard&>(shard);
  sharded_ = true;
  for (const auto& [sym, name] : s.ext_names) ext_syms_.emplace(name, sym);
  files_.reserve(files_.size() + s.files.size());
  for (const auto& [node, e] : s.files) {
    FileInfo& info = files_[node];
    info.size = e.size;
    info.ext_index = intern(e.label, s.ext_names.at(e.label));
  }
}

void FileTypeAnalyzer::finish() {
  if (!sharded_) return;
  distinct_files_ = files_.size();
  // Derive the bounded-size query substrate from the exact map. The
  // empty sizes_hist_ doubles as the bin-layout prototype for the
  // per-extension histograms (copied before the first add lands in it).
  const LogHistogram proto = sizes_hist_;
  std::vector<Symbol> sym_of(extensions_.size());
  std::vector<FileCategory> cat_of(extensions_.size());
  for (const auto& [sym, idx] : label_index_) sym_of[idx] = sym;
  for (std::size_t i = 0; i < extensions_.size(); ++i)
    cat_of[i] = category_of(extensions_[i]);
  for (const auto& [id, info] : files_) {
    const auto size = static_cast<double>(info.size);
    const Symbol sym = sym_of[info.ext_index];
    sizes_hist_.add(size);
    const auto cat = static_cast<std::size_t>(cat_of[info.ext_index]);
    cat_count_[cat] += 1;
    cat_bytes_[cat] += size;
    ext_cms_.add(sym);
    auto it = ext_hists_.find(sym);
    if (it == ext_hists_.end()) it = ext_hists_.emplace(sym, proto).first;
    it->second.add(size);
  }
}

namespace {

std::vector<double> hist_grid(const LogHistogram& hist) {
  if (hist.total() <= 0) return {};
  const auto points = static_cast<std::size_t>(
      std::min(hist.total(), 4001.0));
  return hist.sorted_sample(points);
}

}  // namespace

std::vector<double> FileTypeAnalyzer::all_sizes() const {
  if (sharded_) return hist_grid(sizes_hist_);
  std::vector<double> out;
  out.reserve(files_.size());
  for (const auto& [id, info] : files_)
    out.push_back(static_cast<double>(info.size));
  return out;
}

std::vector<double> FileTypeAnalyzer::sizes_of(
    const std::string& extension) const {
  if (sharded_) {
    const auto sym = ext_syms_.find(extension);
    if (sym == ext_syms_.end()) return {};
    return hist_grid(ext_hists_.at(sym->second));
  }
  std::vector<double> out;
  const auto it = ext_index_.find(extension);
  if (it == ext_index_.end()) return out;
  for (const auto& [id, info] : files_) {
    if (info.ext_index == it->second)
      out.push_back(static_cast<double>(info.size));
  }
  return out;
}

double FileTypeAnalyzer::fraction_below(double bytes) const {
  if (sharded_) {
    return sizes_hist_.total() > 0 ? sizes_hist_.fraction_below(bytes)
                                   : 0.0;
  }
  if (files_.empty()) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [id, info] : files_)
    if (static_cast<double>(info.size) < bytes) ++below;
  return static_cast<double>(below) / static_cast<double>(files_.size());
}

std::vector<FileTypeAnalyzer::CategoryShare>
FileTypeAnalyzer::category_shares() const {
  std::array<double, kFileCategoryCount> count{};
  std::array<double, kFileCategoryCount> bytes{};
  double total_count = 0, total_bytes = 0;
  if (sharded_) {
    for (std::size_t c = 0; c < kFileCategoryCount; ++c) {
      count[c] = static_cast<double>(cat_count_[c]);
      bytes[c] = cat_bytes_[c];
      total_count += count[c];
      total_bytes += bytes[c];
    }
  } else {
    for (const auto& [id, info] : files_) {
      const auto cat = static_cast<std::size_t>(
          category_of(extensions_[info.ext_index]));
      count[cat] += 1;
      bytes[cat] += static_cast<double>(info.size);
      total_count += 1;
      total_bytes += static_cast<double>(info.size);
    }
  }
  std::vector<CategoryShare> out;
  for (std::size_t c = 0; c < kFileCategoryCount; ++c) {
    if (count[c] == 0) continue;
    CategoryShare share;
    share.category = static_cast<FileCategory>(c);
    share.file_share = total_count > 0 ? count[c] / total_count : 0;
    share.storage_share = total_bytes > 0 ? bytes[c] / total_bytes : 0;
    out.push_back(share);
  }
  return out;
}

std::vector<std::string> FileTypeAnalyzer::popular_extensions(
    std::size_t top_n) const {
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  if (sharded_) {
    counts.reserve(ext_syms_.size());
    for (const auto& [name, sym] : ext_syms_)
      counts.emplace_back(name, ext_cms_.estimate(sym));
  } else {
    counts.reserve(extensions_.size());
    for (const auto& ext : extensions_) counts.emplace_back(ext, 0);
    for (const auto& [id, info] : files_) ++counts[info.ext_index].second;
  }
  // Name tiebreak keeps the order deterministic when counts collide
  // (the merged path's interning order is not available when sharded).
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < std::min(top_n, counts.size()); ++i)
    out.push_back(counts[i].first);
  return out;
}

}  // namespace u1
