#include "util/sha1.hpp"

#include <cstring>

namespace u1 {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

std::string Sha1Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::uint64_t Sha1Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  length_bits_ = 0;
  buffered_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  length_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, buffered_);
  }
}

void Sha1::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t total_bits = length_bits_;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t rem = buffered_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update(std::span<const std::uint8_t>(kPad, pad_len));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(total_bits >> (56 - 8 * i));
  // update() also advances length_bits_, but we already captured the value.
  update(std::span<const std::uint8_t>(len_be, 8));

  Sha1Digest d;
  for (int i = 0; i < 5; ++i) {
    d.bytes[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    d.bytes[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    d.bytes[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    d.bytes[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return d;
}

Sha1Digest Sha1::of(std::string_view data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finish();
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t)
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace u1
