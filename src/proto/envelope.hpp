// The wire-ready protocol envelope (DESIGN.md §9): one uniform
// Request/Response surface for every Table-2 storage operation, shared by
// the in-process simulation engines and the `u1d` socket server.
//
// U1Backend used to expose six ad-hoc result structs across ~20 method
// signatures; everything now flows through a single tagged-union pair of
// trivially-copyable POD structs with a stable Status enum, so a call is
// the same object whether it crosses a function boundary or a TCP
// connection. Frames are length-prefixed binary, encoded with the same
// varint/fixed-width idioms as the `.u1b` trace format:
//
//   frame   := len:u32 version:u16 op:u8 payload
//   len     — bytes after the length field (version + op + payload),
//             little-endian, capped at kMaxFrameBytes
//   version — kProtoVersion; a mismatch is rejected per frame, the
//             connection survives (forward compatibility seam)
//   op      — ProtoOp (stable wire values)
//   payload — fixed field list per direction (see envelope.cpp); varint
//             for integer ids/sizes, zigzag varint for SimTime (can be
//             negative pre-trace), raw bytes for UUID/SHA-1 columns,
//             length-prefixed short strings for name/extension
//
// Decoding is strict: every field bounds-checked, unknown ops and
// out-of-range status codes rejected, slack payload bytes refused. A
// hostile peer can never crash the decoder — it gets a typed error.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "proto/ids.hpp"
#include "util/sim_time.hpp"

namespace u1 {

/// Protocol version carried in every frame.
inline constexpr std::uint16_t kProtoVersion = 1;
/// Upper bound on `len`; anything larger is a hostile or corrupt peer.
inline constexpr std::uint32_t kMaxFrameBytes = 64 * 1024;

/// Operation selector for the envelope (superset of Table 2: the storage
/// protocol plus the out-of-band provisioning/sharing calls the sim
/// needs). Wire values are stable — append only, never renumber.
enum class ProtoOp : std::uint8_t {
  kConnect = 0,
  kDisconnect = 1,
  kListVolumes = 2,
  kListShares = 3,
  kQuerySetCaps = 4,
  kGetDelta = 5,
  kRescanFromScratch = 6,
  kMakeFile = 7,
  kMakeDir = 8,
  kUnlink = 9,
  kMove = 10,
  kCreateUDF = 11,
  kDeleteVolume = 12,
  kUpload = 13,
  kResumeUpload = 14,
  kDownload = 15,
  kRegisterUser = 16,
  kShareVolume = 17,

  // Distributed control plane (DESIGN.md §12): epoch-barrier frames
  // between the multi-process coordinator and its workers. These ride
  // the same [len][version][op] framing but carry their own payload
  // codecs (proto/control.hpp) and a larger frame cap — the
  // request/response decoders below reject them with kUnknownOp, so a
  // storage client can never smuggle a control frame and vice versa.
  kEpochBegin = 18,    // coordinator -> worker: all groups' epoch deltas
  kMailboxBatch = 19,  // coordinator -> worker: routed EpochMailbox lanes
  kEpochDone = 20,     // worker -> coordinator: local deltas + guard feed
  kChunkMeta = 21,     // worker -> coordinator: end-of-run shard manifest
  kShutdown = 22,      // coordinator -> worker: drain and exit
};
/// Request-plane op count: the storage/provisioning calls a backend
/// dispatches. Control ops live above this range — proto_op_from_wire
/// (and thus decode_request_frame/decode_response_frame) rejects them.
inline constexpr std::size_t kProtoOpCount = 18;
/// Control-plane wire range: [kControlOpBase, kControlOpBase +
/// kControlOpCount). Append only, never renumber.
inline constexpr std::uint8_t kControlOpBase = 18;
inline constexpr std::size_t kControlOpCount = 5;

/// True for the distributed control-plane ops (kEpochBegin..kShutdown).
constexpr bool is_control_op(ProtoOp op) noexcept {
  const auto v = static_cast<std::uint8_t>(op);
  return v >= kControlOpBase && v < kControlOpBase + kControlOpCount;
}

std::string_view to_string(ProtoOp op) noexcept;
std::optional<ProtoOp> proto_op_from_string(std::string_view name) noexcept;
/// The request-plane ops (size == kProtoOpCount; control ops excluded).
std::span<const ProtoOp> all_proto_ops() noexcept;
/// The control-plane ops (size == kControlOpCount).
std::span<const ProtoOp> all_control_ops() noexcept;
/// Range-checked wire decode for the request plane; nullopt for any
/// byte outside [0, kProtoOpCount) — including control-plane bytes.
std::optional<ProtoOp> proto_op_from_wire(std::uint8_t value) noexcept;
/// Range-checked wire decode for the control plane; nullopt for any
/// byte outside [kControlOpBase, kControlOpBase + kControlOpCount).
std::optional<ProtoOp> control_op_from_wire(std::uint8_t value) noexcept;

/// Result/error status. Wire values are stable: 0–15 are operation
/// outcomes produced by the backend, 16+ are protocol-layer rejections
/// produced by the frame decoder (a backend never returns those).
enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,        // operation failed (bad session, missing node, ...)
  kTryAgain = 2,     // load-shed by the balancer: retry with backoff
  kInterrupted = 3,  // transfer cut mid-flight; job says if resumable

  kBadFrame = 16,        // truncated/corrupt payload
  kVersionMismatch = 17, // frame carried a different kProtoVersion
  kUnknownOp = 18,       // op byte outside the ProtoOp range
  kOversizedFrame = 19,  // length prefix beyond kMaxFrameBytes
  kSlackPayload = 20,    // payload had trailing bytes after all fields
};
inline constexpr std::size_t kStatusCount = 9;

std::string_view to_string(Status s) noexcept;
std::optional<Status> status_from_string(std::string_view name) noexcept;
std::span<const Status> all_statuses() noexcept;
/// Range-checked wire decode; nullopt for any byte outside the enum.
std::optional<Status> status_from_wire(std::uint8_t value) noexcept;
/// True for the protocol-layer rejection codes (16+).
constexpr bool is_protocol_error(Status s) noexcept {
  return static_cast<std::uint8_t>(s) >= 16;
}

/// Request flag bits.
inline constexpr std::uint8_t kRequestIsUpdate = 0x01;
/// Response flag bits.
inline constexpr std::uint8_t kResponseDeduplicated = 0x01;

/// One envelope request: a flat POD with op-gated fields (the TraceRecord
/// idiom — unused fields stay zero). Strings live in fixed NUL-padded
/// arrays sized for the workload's short name hashes and extensions.
struct Request {
  ProtoOp op = ProtoOp::kConnect;
  std::uint8_t flags = 0;   // kRequestIsUpdate
  char name_hash[22] = {};  // MakeFile/MakeDir
  char extension[8] = {};   // MakeFile
  UserId user;              // Connect/RegisterUser/ShareVolume owner
  UserId peer;              // ShareVolume recipient
  SessionId session;
  VolumeId volume;          // GetDelta/Rescan/Make*/DeleteVolume/Share
  NodeId node;              // Unlink/Move/Upload/Resume/Download
  NodeId parent;            // Make* parent; Move destination
  ContentId content;        // Upload/Resume SHA-1
  UploadJobId job;          // ResumeUpload
  std::uint64_t size_bytes = 0;
  std::uint64_t since_generation = 0;
  SimTime now = 0;

  bool is_update() const noexcept { return (flags & kRequestIsUpdate) != 0; }
  void set_is_update(bool v) noexcept {
    flags = v ? (flags | kRequestIsUpdate)
              : (flags & static_cast<std::uint8_t>(~kRequestIsUpdate));
  }

  std::string_view name_hash_view() const noexcept {
    return {name_hash, ::strnlen(name_hash, sizeof name_hash)};
  }
  std::string_view extension_view() const noexcept {
    return {extension, ::strnlen(extension, sizeof extension)};
  }
  /// Copies (truncating at capacity — workload names are 8 hex chars,
  /// extensions at most 5).
  void set_name_hash(std::string_view s) noexcept {
    const std::size_t n = s.size() < sizeof name_hash ? s.size()
                                                      : sizeof name_hash;
    std::memcpy(name_hash, s.data(), n);
    if (n < sizeof name_hash) std::memset(name_hash + n, 0,
                                          sizeof name_hash - n);
  }
  void set_extension(std::string_view s) noexcept {
    const std::size_t n = s.size() < sizeof extension ? s.size()
                                                      : sizeof extension;
    std::memcpy(extension, s.data(), n);
    if (n < sizeof extension) std::memset(extension + n, 0,
                                          sizeof extension - n);
  }

  bool operator==(const Request&) const = default;
};
static_assert(std::is_trivially_copyable_v<Request>);

/// One envelope response: the union of every per-op result the backend
/// used to return through six separate structs.
struct Response {
  ProtoOp op = ProtoOp::kConnect;  // echoes the request op
  Status status = Status::kError;
  std::uint8_t flags = 0;  // kResponseDeduplicated
  SimTime end = 0;         // virtual completion time (chainable)
  UserId user;             // RegisterUser echo
  SessionId session;       // Connect
  VolumeId volume;         // CreateUDF/RegisterUser root volume
  NodeId node;             // Make*
  NodeId root_dir;         // CreateUDF/RegisterUser
  UploadJobId job;         // resumable interrupted upload
  std::uint64_t transferred_bytes = 0;
  std::uint64_t committed_bytes = 0;

  bool ok() const noexcept { return status == Status::kOk; }
  bool try_again() const noexcept { return status == Status::kTryAgain; }
  bool interrupted() const noexcept {
    return status == Status::kInterrupted;
  }
  bool deduplicated() const noexcept {
    return (flags & kResponseDeduplicated) != 0;
  }

  bool operator==(const Response&) const = default;
};
static_assert(std::is_trivially_copyable_v<Response>);

/// Outcome of pulling one frame off a byte stream.
struct FrameDecode {
  Status status = Status::kOk;  // kOk, or a protocol-error code
  bool need_more = false;       // buffer holds no complete frame yet
  std::size_t consumed = 0;     // bytes to drop from the stream front
};

/// Appends one framed request/response to `out`.
void append_request_frame(std::vector<std::uint8_t>& out, const Request& q);
void append_response_frame(std::vector<std::uint8_t>& out,
                           const Response& r);
std::vector<std::uint8_t> encode_request_frame(const Request& q);
std::vector<std::uint8_t> encode_response_frame(const Response& r);

/// Decodes the frame at the front of [data, data+n). On kOk, `out` holds
/// the message and `consumed` the frame size. On a protocol error,
/// `consumed` covers the rejected frame when its extent is known
/// (truncation inside a known length), and is 0 when the stream is
/// unrecoverable (oversized length prefix) — drop the connection then.
FrameDecode decode_request_frame(const std::uint8_t* data, std::size_t n,
                                 Request& out);
FrameDecode decode_response_frame(const std::uint8_t* data, std::size_t n,
                                  Response& out);

}  // namespace u1
