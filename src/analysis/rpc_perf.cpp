#include "analysis/rpc_perf.hpp"

#include <algorithm>

#include "stats/summary.hpp"

namespace u1 {
namespace {

template <std::size_t... Is>
std::array<ReservoirSampler, sizeof...(Is)> make_samplers(
    std::size_t cap, std::index_sequence<Is...>) {
  return {ReservoirSampler(cap, 0x2e5e + Is)...};
}

}  // namespace

RpcPerfAnalyzer::RpcPerfAnalyzer(std::size_t cap)
    : samples_(make_samplers(cap, std::make_index_sequence<kRpcOpCount>{})) {}

void RpcPerfAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kRpc || r.t < 0) return;
  const auto idx = static_cast<std::size_t>(r.rpc_op);
  samples_[idx].add(to_seconds(r.service_time));
  ++counts_[idx];
}

std::vector<double> RpcPerfAnalyzer::service_times(RpcOp op) const {
  const auto& s = samples_[static_cast<std::size_t>(op)].sample();
  return {s.begin(), s.end()};
}

std::uint64_t RpcPerfAnalyzer::count(RpcOp op) const noexcept {
  return counts_[static_cast<std::size_t>(op)];
}

double RpcPerfAnalyzer::median_s(RpcOp op) const {
  const auto& s = samples_[static_cast<std::size_t>(op)].sample();
  if (s.empty()) return 0.0;
  return median_of(s);
}

double RpcPerfAnalyzer::tail_fraction(RpcOp op, double factor) const {
  const auto& s = samples_[static_cast<std::size_t>(op)].sample();
  if (s.empty()) return 0.0;
  const double med = median_of(s);
  const auto far = std::count_if(s.begin(), s.end(), [&](double x) {
    return x > factor * med;
  });
  return static_cast<double>(far) / static_cast<double>(s.size());
}

std::vector<RpcPerfAnalyzer::ScatterPoint> RpcPerfAnalyzer::scatter() const {
  std::vector<ScatterPoint> out;
  for (const RpcOp op : all_rpc_ops()) {
    if (count(op) == 0) continue;
    ScatterPoint p;
    p.op = op;
    p.rpc_class = rpc_class(op);
    p.count = count(op);
    p.median_s = median_s(op);
    out.push_back(p);
  }
  return out;
}

}  // namespace u1
