#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace u1 {

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void BlockingClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool BlockingClient::connect_loopback(std::uint16_t port,
                                      int recv_buffer_bytes) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (recv_buffer_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes,
                 sizeof recv_buffer_bytes);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool BlockingClient::send_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

std::optional<Response> BlockingClient::recv_response() {
  for (;;) {
    if (!buf_.empty()) {
      Response resp;
      const FrameDecode fd = decode_response_frame(buf_.data(), buf_.size(),
                                                   resp);
      if (!fd.need_more) {
        if (fd.status != Status::kOk) {
          // Undecodable response stream: surface as connection death.
          return std::nullopt;
        }
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(fd.consumed));
        return resp;
      }
    }
    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;  // peer closed or errored
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
}

std::optional<Response> BlockingClient::call(const Request& request) {
  const std::vector<std::uint8_t> frame = encode_request_frame(request);
  if (!send_bytes(frame.data(), frame.size())) return std::nullopt;
  return recv_response();
}

}  // namespace u1
