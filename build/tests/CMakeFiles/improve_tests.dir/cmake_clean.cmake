file(REMOVE_RECURSE
  "CMakeFiles/improve_tests.dir/improve/improve_test.cpp.o"
  "CMakeFiles/improve_tests.dir/improve/improve_test.cpp.o.d"
  "improve_tests"
  "improve_tests.pdb"
  "improve_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/improve_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
