#include "stats/gini.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace u1 {
namespace {

TEST(Gini, PerfectEqualityIsZero) {
  const std::vector<double> v(100, 5.0);
  EXPECT_NEAR(gini(v), 0.0, 1e-9);
}

TEST(Gini, ExtremeInequalityApproachesOne) {
  std::vector<double> v(1000, 0.0);
  v.back() = 100.0;
  EXPECT_NEAR(gini(v), 1.0, 2e-3);  // (n-1)/n
}

TEST(Gini, KnownSmallExample) {
  // For {1,2,3}: Gini = 2/9 ≈ 0.2222.
  const std::vector<double> v = {1, 2, 3};
  EXPECT_NEAR(gini(v), 2.0 / 9.0, 1e-9);
}

TEST(Gini, ScaleInvariant) {
  Rng rng(2);
  std::vector<double> v, w;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    v.push_back(x);
    w.push_back(x * 1000.0);
  }
  EXPECT_NEAR(gini(v), gini(w), 1e-9);
}

TEST(Gini, RejectsNegativeAndEmpty) {
  EXPECT_THROW(gini(std::vector<double>{}), std::invalid_argument);
  const std::vector<double> neg = {1.0, -2.0};
  EXPECT_THROW(gini(neg), std::invalid_argument);
}

TEST(Lorenz, CurveEndpointsAndMonotonicity) {
  const std::vector<double> v = {5, 1, 3, 7, 9};
  const auto c = lorenz(v);
  ASSERT_GE(c.points.size(), 2u);
  EXPECT_DOUBLE_EQ(c.points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(c.points.front().second, 0.0);
  EXPECT_DOUBLE_EQ(c.points.back().first, 1.0);
  EXPECT_NEAR(c.points.back().second, 1.0, 1e-12);
  for (std::size_t i = 1; i < c.points.size(); ++i) {
    EXPECT_GE(c.points[i].first, c.points[i - 1].first);
    EXPECT_GE(c.points[i].second, c.points[i - 1].second);
    // Lorenz curve lies below the diagonal.
    EXPECT_LE(c.points[i].second, c.points[i].first + 1e-12);
  }
}

TEST(Lorenz, TopShareOfParetoLikeSample) {
  // Construct a sample where the top 1% holds ~65% of the mass, mimicking
  // the paper's "1% of users generate 65% of the traffic".
  std::vector<double> v(990, 1.0);
  // 10 heavy users share 65/35 * 990 total weight.
  const double heavy_total = 990.0 * 65.0 / 35.0;
  for (int i = 0; i < 10; ++i) v.push_back(heavy_total / 10.0);
  const auto c = lorenz(v);
  EXPECT_NEAR(c.top_share(0.01), 0.65, 0.01);
  EXPECT_GT(c.gini, 0.6);
}

TEST(Lorenz, TopShareBounds) {
  const std::vector<double> v = {1, 2, 3, 4};
  const auto c = lorenz(v);
  EXPECT_NEAR(c.top_share(1.0), 1.0, 1e-12);
  EXPECT_THROW(c.top_share(0.0), std::domain_error);
  EXPECT_THROW(c.top_share(1.5), std::domain_error);
}

TEST(Lorenz, AllZeroValuesDegradeToEquality) {
  const std::vector<double> v(10, 0.0);
  const auto c = lorenz(v);
  EXPECT_NEAR(c.gini, 0.0, 1e-9);
}

}  // namespace
}  // namespace u1
