// Trace summary (paper Table 3): duration, unique users, unique files,
// user sessions, transfer operations and total transferred traffic.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "trace/sink.hpp"

namespace u1 {

class TraceSummaryAnalyzer final : public TraceSink {
 public:
  /// Only records in [0, end) are summarized; `end` <= 0 means unbounded
  /// (the real collection cut logfiles at the trace end date).
  explicit TraceSummaryAnalyzer(SimTime end = 0) : end_(end) {}

  void append(const TraceRecord& record) override;

  struct Summary {
    int days = 0;
    std::uint64_t unique_users = 0;
    std::uint64_t unique_files = 0;
    std::uint64_t sessions = 0;
    std::uint64_t transfer_ops = 0;
    std::uint64_t upload_bytes = 0;
    std::uint64_t download_bytes = 0;
    std::uint64_t records = 0;
  };
  Summary summary() const;

 private:
  std::unordered_set<UserId> users_;
  std::unordered_set<NodeId> files_;
  std::uint64_t sessions_ = 0;
  std::uint64_t transfer_ops_ = 0;
  std::uint64_t upload_bytes_ = 0;
  std::uint64_t download_bytes_ = 0;
  std::uint64_t records_ = 0;
  SimTime end_ = 0;
  SimTime first_ = 0;
  SimTime last_ = 0;
  bool any_ = false;
};

}  // namespace u1
