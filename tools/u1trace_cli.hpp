// u1trace: command-line tooling over U1-format traces.
//
//   u1trace generate  --out DIR [--users N] [--days D] [--seed S]
//                     [--threads T] [--no-ddos] [--format csv|bin]
//   u1trace convert   SRC --out DIR [--to csv|bin]
//                                    re-encode a trace directory between
//                                    the CSV and binary columnar formats
//   u1trace summarize DIR            Table-3 style trace summary
//   u1trace analyze   DIR --figure F one analyzer (traffic|dedup|sessions|
//                                    ddos|users|ops)
//   u1trace validate  DIR            structural soundness + parse stats
//
// The command implementations live in this library so they are unit-
// testable; the binary is a thin main().
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace u1::cli {

/// Minimal flag parser: positionals plus --key value / --switch flags.
class Args {
 public:
  /// Parses argv-style input (without the program name). Unknown flags
  /// are collected as errors.
  static Args parse(const std::vector<std::string>& argv,
                    const std::vector<std::string>& known_flags,
                    const std::vector<std::string>& known_switches);

  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  std::optional<std::string> flag(const std::string& name) const;
  std::optional<std::int64_t> int_flag(const std::string& name) const;
  bool has_switch(const std::string& name) const;
  const std::vector<std::string>& errors() const noexcept { return errors_; }
  bool ok() const noexcept { return errors_.empty(); }

 private:
  std::vector<std::string> positionals_;
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> switches_;
  std::vector<std::string> errors_;
};

/// Entry point used by main() and by the tests. Returns the exit code.
int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err);

// Individual commands (argv excludes the command word).
int cmd_generate(const Args& args, std::ostream& out, std::ostream& err);
int cmd_convert(const Args& args, std::ostream& out, std::ostream& err);
int cmd_summarize(const Args& args, std::ostream& out, std::ostream& err);
int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err);
int cmd_validate(const Args& args, std::ostream& out, std::ostream& err);

}  // namespace u1::cli
