#include "server/fleet.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace u1 {

ServerFleet::ServerFleet(const FleetConfig& config, std::uint64_t seed)
    : machines_(config.machines), rng_(seed) {
  if (config.machines == 0 || config.processes_per_machine == 0)
    throw std::invalid_argument("ServerFleet: zero machines or processes");
  machine_processes_.resize(machines_);
  open_sessions_.assign(machines_, 0);
  const std::size_t total = machines_ * config.processes_per_machine;
  process_machine_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    const MachineId m{p % machines_ + 1};
    process_machine_.push_back(m);
    machine_processes_[m.value - 1].push_back(ProcessId{p + 1});
  }
}

MachineId ServerFleet::machine_of(ProcessId process) const {
  if (process.value == 0 || process.value > process_machine_.size())
    throw std::out_of_range("ServerFleet::machine_of: bad process");
  return process_machine_[process.value - 1];
}

ServerFleet::Placement ServerFleet::place_session() {
  // Least-loaded machine wins; ties broken by lowest index (HAProxy
  // leastconn behavior).
  std::size_t best = 0;
  for (std::size_t m = 1; m < machines_; ++m) {
    if (open_sessions_[m] < open_sessions_[best]) best = m;
  }
  const auto& procs = machine_processes_[best];
  if (procs.empty())
    throw std::logic_error("ServerFleet: machine without processes");
  const ProcessId proc = procs[rng_.below(procs.size())];
  ++open_sessions_[best];
  return Placement{MachineId{best + 1}, proc};
}

void ServerFleet::end_session(MachineId machine) {
  if (machine.value == 0 || machine.value > machines_)
    throw std::out_of_range("ServerFleet::end_session: bad machine");
  auto& count = open_sessions_[machine.value - 1];
  if (count == 0)
    throw std::logic_error("ServerFleet::end_session: no open sessions");
  --count;
}

std::uint64_t ServerFleet::open_sessions(MachineId machine) const {
  if (machine.value == 0 || machine.value > machines_)
    throw std::out_of_range("ServerFleet::open_sessions: bad machine");
  return open_sessions_[machine.value - 1];
}

std::uint64_t ServerFleet::total_open_sessions() const noexcept {
  return std::accumulate(open_sessions_.begin(), open_sessions_.end(),
                         std::uint64_t{0});
}

std::size_t ServerFleet::migrate_processes(double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("migrate_processes: fraction not in [0,1]");
  std::size_t moved = 0;
  for (std::size_t p = 0; p < process_machine_.size(); ++p) {
    if (!rng_.chance(fraction)) continue;
    const MachineId from = process_machine_[p];
    const MachineId to{rng_.below(machines_) + 1};
    if (to == from) continue;
    auto& src = machine_processes_[from.value - 1];
    // A machine must keep at least one process to stay placeable.
    if (src.size() <= 1) continue;
    src.erase(std::remove(src.begin(), src.end(), ProcessId{p + 1}),
              src.end());
    machine_processes_[to.value - 1].push_back(ProcessId{p + 1});
    process_machine_[p] = to;
    ++moved;
  }
  return moved;
}

}  // namespace u1
