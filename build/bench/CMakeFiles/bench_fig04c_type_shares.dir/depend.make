# Empty dependencies file for bench_fig04c_type_shares.
# This may be replaced when dependencies are built.
