// Unit tests with hand-crafted records, part 2: traffic, sessions,
// load-balance, user-activity, DDoS detection and trace summary — exact
// arithmetic on tiny inputs.
#include <gtest/gtest.h>

#include "analysis/ddos_detect.hpp"
#include "analysis/load_balance.hpp"
#include "analysis/sessions.hpp"
#include "analysis/trace_summary.hpp"
#include "analysis/traffic.hpp"
#include "analysis/users.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

Rng g_rng(7);

TraceRecord transfer(ApiOp op, SimTime t, std::uint64_t size,
                     std::uint64_t wire, std::uint64_t user = 1,
                     bool update = false) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kStorageDone;
  r.api_op = op;
  r.node = Uuid::v4(g_rng);
  r.size_bytes = size;
  r.transferred_bytes = wire;
  r.is_update = update;
  r.user = UserId{user};
  r.session = SessionId{user};
  r.machine = MachineId{1};
  r.process = ProcessId{1};
  r.duration = kSecond;
  return r;
}

TraceRecord session_event(SessionEvent e, SimTime t, std::uint64_t session,
                          std::uint64_t user = 1) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kSession;
  r.session_event = e;
  r.session = SessionId{session};
  r.user = UserId{user};
  r.machine = MachineId{1};
  r.process = ProcessId{1};
  return r;
}

// --- TrafficAnalyzer ---------------------------------------------------------

TEST(TrafficAnalyzer, ByteAndOpAccounting) {
  TrafficAnalyzer traffic(0, kDay);
  traffic.append(transfer(ApiOp::kPutContent, kHour, 1000, 1000));
  traffic.append(transfer(ApiOp::kPutContent, kHour, 2000, 0));  // dedup
  traffic.append(transfer(ApiOp::kGetContent, 2 * kHour, 1500, 1500));
  EXPECT_EQ(traffic.upload_ops(), 2u);
  EXPECT_EQ(traffic.download_ops(), 1u);
  EXPECT_EQ(traffic.download_bytes(), 1500u);
  // Hourly series: wire bytes only.
  EXPECT_DOUBLE_EQ(traffic.upload_bytes_hourly().value(1), 1000.0);
  EXPECT_DOUBLE_EQ(traffic.download_bytes_hourly().value(2), 1500.0);
}

TEST(TrafficAnalyzer, UpdateShares) {
  TrafficAnalyzer traffic(0, kDay);
  traffic.append(transfer(ApiOp::kPutContent, kHour, 800, 800, 1, false));
  traffic.append(transfer(ApiOp::kPutContent, kHour, 200, 200, 1, true));
  EXPECT_DOUBLE_EQ(traffic.update_op_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(traffic.update_traffic_fraction(), 0.2);
}

TEST(TrafficAnalyzer, IgnoresFailedAndBootstrap) {
  TrafficAnalyzer traffic(0, kDay);
  TraceRecord failed = transfer(ApiOp::kPutContent, kHour, 100, 100);
  failed.failed = true;
  traffic.append(failed);
  traffic.append(transfer(ApiOp::kPutContent, -kHour, 100, 100));
  EXPECT_EQ(traffic.upload_ops(), 0u);
}

TEST(TrafficAnalyzer, SizeCategoriesUseLogicalSize) {
  TrafficAnalyzer traffic(0, kDay);
  constexpr std::uint64_t MB = 1024 * 1024;
  traffic.append(transfer(ApiOp::kPutContent, kHour, 30 * MB, 30 * MB));
  traffic.append(transfer(ApiOp::kPutContent, kHour, 100 * 1024,
                          100 * 1024));
  EXPECT_DOUBLE_EQ(traffic.upload_ops_by_size().fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(traffic.upload_ops_by_size().fraction(4), 0.5);
  // Bytes concentrate in the big bin.
  EXPECT_GT(traffic.upload_bytes_by_size().fraction(4), 0.99);
}

TEST(TrafficAnalyzer, RwRatioSkipsUploadFreeHours) {
  TrafficAnalyzer traffic(0, kDay);
  traffic.append(transfer(ApiOp::kPutContent, kHour, 100, 100));
  traffic.append(transfer(ApiOp::kGetContent, kHour, 200, 200));
  traffic.append(transfer(ApiOp::kGetContent, 5 * kHour, 999, 999));
  const auto ratios = traffic.rw_ratios_hourly();
  ASSERT_EQ(ratios.size(), 1u);  // only the hour with uploads
  EXPECT_DOUBLE_EQ(ratios[0], 2.0);
}

// --- SessionAnalyzer ---------------------------------------------------------

TEST(SessionAnalyzer, LengthsAndActiveFraction) {
  SessionAnalyzer sessions(0, kDay);
  // Session 1: cold, 30 minutes.
  sessions.append(session_event(SessionEvent::kOpen, kHour, 1));
  sessions.append(session_event(SessionEvent::kClose, kHour + 30 * kMinute,
                                1));
  // Session 2: active (one upload), 2 hours.
  sessions.append(session_event(SessionEvent::kOpen, 2 * kHour, 2));
  TraceRecord up = transfer(ApiOp::kPutContent, 3 * kHour, 10, 10);
  up.session = SessionId{2};
  sessions.append(up);
  sessions.append(session_event(SessionEvent::kClose, 4 * kHour, 2));
  ASSERT_EQ(sessions.sessions_closed(), 2u);
  EXPECT_DOUBLE_EQ(sessions.active_session_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(sessions.fraction_shorter_than(kHour), 0.5);
  ASSERT_EQ(sessions.ops_per_active_session().size(), 1u);
  EXPECT_DOUBLE_EQ(sessions.ops_per_active_session()[0], 1.0);
}

TEST(SessionAnalyzer, AuthFailureFraction) {
  SessionAnalyzer sessions(0, kDay);
  for (int i = 0; i < 97; ++i)
    sessions.append(session_event(SessionEvent::kAuthRequest, kHour,
                                  static_cast<std::uint64_t>(i) + 10));
  for (int i = 0; i < 3; ++i)
    sessions.append(session_event(SessionEvent::kAuthRequest, kHour, 5000u + i));
  for (int i = 0; i < 3; ++i)
    sessions.append(session_event(SessionEvent::kAuthFail, kHour, 5000u + i));
  EXPECT_DOUBLE_EQ(sessions.auth_failure_fraction(), 0.03);
}

TEST(SessionAnalyzer, NonStorageOpsDontActivate) {
  SessionAnalyzer sessions(0, kDay);
  sessions.append(session_event(SessionEvent::kOpen, kHour, 1));
  TraceRecord list = transfer(ApiOp::kListVolumes, kHour + kMinute, 0, 0);
  list.session = SessionId{1};
  sessions.append(list);
  TraceRecord delta = transfer(ApiOp::kGetDelta, kHour + kMinute, 0, 0);
  delta.session = SessionId{1};
  sessions.append(delta);
  sessions.append(session_event(SessionEvent::kClose, 2 * kHour, 1));
  EXPECT_DOUBLE_EQ(sessions.active_session_fraction(), 0.0);
}

// --- LoadBalanceAnalyzer ------------------------------------------------------

TEST(LoadBalanceAnalyzer, ApiAndShardAccounting) {
  LoadBalanceAnalyzer load(0, 2 * kHour, 3, 2);
  // API machine 1 gets 4 requests in hour 0, machines 2/3 get none.
  for (int i = 0; i < 4; ++i) {
    TraceRecord r;
    r.t = 10 * kMinute;
    r.type = RecordType::kStorage;
    r.api_op = ApiOp::kMake;
    r.machine = MachineId{1};
    r.session = SessionId{1};
    load.append(r);
  }
  const auto api = load.api_load_hourly();
  ASSERT_EQ(api.size(), 2u);
  EXPECT_NEAR(api[0].mean, 4.0 / 3.0, 1e-9);
  EXPECT_GT(api[0].stddev, 0.0);

  // Shard 2 gets 3 rpcs in minute 0.
  for (int i = 0; i < 3; ++i) {
    TraceRecord r;
    r.t = 30 * kSecond;
    r.type = RecordType::kRpc;
    r.rpc_op = RpcOp::kMakeFile;
    r.shard = ShardId{2};
    load.append(r);
  }
  const auto shards = load.shard_load_minutely();
  EXPECT_NEAR(shards[0].mean, 1.5, 1e-9);
  // Totals (3, 0): mean 1.5, sample stddev sqrt(4.5) -> cv = sqrt(2).
  EXPECT_NEAR(load.shard_long_term_cv(), std::sqrt(2.0), 1e-12);
}

TEST(LoadBalanceAnalyzer, PerfectBalanceZeroCv) {
  LoadBalanceAnalyzer load(0, kHour, 2, 2);
  for (std::uint64_t s = 1; s <= 2; ++s) {
    for (int i = 0; i < 5; ++i) {
      TraceRecord r;
      r.t = kMinute;
      r.type = RecordType::kRpc;
      r.shard = ShardId{s};
      load.append(r);
    }
  }
  EXPECT_DOUBLE_EQ(load.shard_long_term_cv(), 0.0);
}

// --- UserActivityAnalyzer -----------------------------------------------------

TEST(UserActivityAnalyzer, OnlineIntervalsAndTraffic) {
  UserActivityAnalyzer users(0, kDay);
  users.append(session_event(SessionEvent::kOpen, kHour, 1, 42));
  users.append(session_event(SessionEvent::kClose, 3 * kHour + kMinute, 1,
                             42));
  TraceRecord up = transfer(ApiOp::kPutContent, 2 * kHour, 500, 500, 42);
  users.append(up);
  users.finalize();
  const auto online = users.online_users_hourly();
  EXPECT_DOUBLE_EQ(online[1], 1.0);
  EXPECT_DOUBLE_EQ(online[2], 1.0);
  EXPECT_DOUBLE_EQ(online[3], 1.0);
  EXPECT_DOUBLE_EQ(online[5], 0.0);
  const auto active = users.active_users_hourly();
  EXPECT_DOUBLE_EQ(active[2], 1.0);
  EXPECT_DOUBLE_EQ(active[1], 0.0);
  EXPECT_DOUBLE_EQ(users.uploaders_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(users.downloaders_fraction(), 0.0);
}

TEST(UserActivityAnalyzer, SessionOpenAtEndStillCounts) {
  UserActivityAnalyzer users(0, kDay);
  users.append(session_event(SessionEvent::kOpen, 22 * kHour, 9, 7));
  // Never closed: finalize() extends it to the window end.
  users.finalize();
  const auto online = users.online_users_hourly();
  EXPECT_DOUBLE_EQ(online[22], 1.0);
  EXPECT_DOUBLE_EQ(online[23], 1.0);
}

TEST(UserActivityAnalyzer, ClassificationCorners) {
  UserActivityAnalyzer users(0, kDay);
  // User 1: 5KB -> occasional. User 2: 1GB up only -> upload-only.
  // User 3: 1MB up + 1MB down -> heavy. User 4: 50MB down only.
  users.append(transfer(ApiOp::kPutContent, kHour, 5000, 5000, 1));
  users.append(transfer(ApiOp::kPutContent, kHour, 1 << 30, 1 << 30, 2));
  users.append(transfer(ApiOp::kPutContent, kHour, 1 << 20, 1 << 20, 3));
  users.append(transfer(ApiOp::kGetContent, kHour, 1 << 20, 1 << 20, 3));
  users.append(transfer(ApiOp::kGetContent, kHour, 50 << 20, 50 << 20, 4));
  users.finalize();
  const auto classes = users.classify_users();
  EXPECT_DOUBLE_EQ(classes.occasional, 0.25);
  EXPECT_DOUBLE_EQ(classes.upload_only, 0.25);
  EXPECT_DOUBLE_EQ(classes.heavy, 0.25);
  EXPECT_DOUBLE_EQ(classes.download_only, 0.25);
}

TEST(UserActivityAnalyzer, FinalizeRequiredForOnline) {
  UserActivityAnalyzer users(0, kDay);
  EXPECT_THROW(users.online_users_hourly(), std::logic_error);
}

// --- DdosAnalyzer --------------------------------------------------------------

TEST(DdosAnalyzer, DetectsInjectedSpike) {
  DdosAnalyzer ddos(0, 3 * kDay);
  Rng rng(3);
  // Background: ~40 session events/hour for 3 days.
  for (SimTime t = 0; t < 3 * kDay; t += 90 * kSecond) {
    ddos.append(session_event(SessionEvent::kAuthRequest, t,
                              rng.next() % 100000, rng.next() % 500));
  }
  // Spike: 50x for two hours on day 2.
  const SimTime start = kDay + 10 * kHour;
  for (SimTime t = start; t < start + 2 * kHour; t += 2 * kSecond) {
    ddos.append(session_event(SessionEvent::kAuthRequest, t,
                              rng.next() % 100000, 777));
  }
  const auto attacks = ddos.detect();
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(ddos.attack_days(), 1u);
  EXPECT_GT(attacks[0].peak_multiplier, 10.0);
  const SimTime detected =
      ddos.session_per_hour().bin_start(attacks[0].first_hour);
  EXPECT_EQ(detected, start);
}

TEST(DdosAnalyzer, QuietTraceNoAttacks) {
  DdosAnalyzer ddos(0, kDay);
  Rng rng(4);
  for (SimTime t = 0; t < kDay; t += 2 * kMinute) {
    ddos.append(session_event(SessionEvent::kOpen, t, rng.next() % 10000,
                              rng.next() % 100));
  }
  EXPECT_TRUE(ddos.detect().empty());
  EXPECT_EQ(ddos.attack_days(), 0u);
}

// --- TraceSummaryAnalyzer -------------------------------------------------------

TEST(TraceSummaryAnalyzer, CountsAndWindow) {
  TraceSummaryAnalyzer summary(2 * kDay);
  summary.append(session_event(SessionEvent::kOpen, kHour, 1));
  summary.append(transfer(ApiOp::kPutContent, kHour, 100, 100, 1));
  summary.append(transfer(ApiOp::kGetContent, kDay + kHour, 50, 50, 2));
  summary.append(transfer(ApiOp::kPutContent, 3 * kDay, 999, 999, 3));  // out
  const auto s = summary.summary();
  EXPECT_EQ(s.days, 2);
  EXPECT_EQ(s.unique_users, 2u);
  EXPECT_EQ(s.unique_files, 1u);
  EXPECT_EQ(s.sessions, 1u);
  EXPECT_EQ(s.transfer_ops, 2u);
  EXPECT_EQ(s.upload_bytes, 100u);
  EXPECT_EQ(s.download_bytes, 50u);
}

}  // namespace
}  // namespace u1
