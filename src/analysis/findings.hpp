// Table 1: the paper's summary of findings. This module composes the
// per-figure analyzers into the ten headline numbers so the tab01 bench
// can print paper-vs-measured side by side.
#pragma once

#include <string>
#include <vector>

#include "analysis/burstiness.hpp"
#include "analysis/ddos_detect.hpp"
#include "analysis/dedup.hpp"
#include "analysis/file_types.hpp"
#include "analysis/load_balance.hpp"
#include "analysis/rpc_perf.hpp"
#include "analysis/sessions.hpp"
#include "analysis/traffic.hpp"
#include "analysis/users.hpp"

namespace u1 {

struct Finding {
  std::string id;        // short slug, e.g. "small-files"
  std::string statement; // the paper's wording
  double paper_value = 0;
  double measured = 0;
  bool shape_holds = false;  // did the qualitative claim reproduce?
};

/// The Table 1 battery; every analyzer must have consumed the same trace.
std::vector<Finding> extract_findings(const FileTypeAnalyzer& types,
                                      const TrafficAnalyzer& traffic,
                                      const DedupAnalyzer& dedup,
                                      const DdosAnalyzer& ddos,
                                      const UserActivityAnalyzer& users,
                                      const BurstinessAnalyzer& bursts,
                                      const RpcPerfAnalyzer& rpcs,
                                      const LoadBalanceAnalyzer& load,
                                      const SessionAnalyzer& sessions);

}  // namespace u1
