// Virtual time for the simulator and the trace. The paper's trace spans
// 30 days (2014-01-11 .. 2014-02-10); we keep the same calendar so that
// day-of-week effects ("15% more auth requests on Mondays") line up.
#pragma once

#include <cstdint>
#include <string>

namespace u1 {

/// Microseconds since the trace epoch (2014-01-11 00:00:00 UTC, a Saturday).
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kWeek = 7 * kDay;

/// Day of week of the trace epoch. 2014-01-11 was a Saturday.
/// Encoding: 0 = Monday .. 6 = Sunday.
constexpr int kEpochWeekday = 5;

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Zero-based day index within the trace (0..29 for the full month).
constexpr int day_index(SimTime t) noexcept {
  return static_cast<int>(t / kDay);
}

/// Hour of day, 0..23.
constexpr int hour_of_day(SimTime t) noexcept {
  return static_cast<int>((t % kDay) / kHour);
}

/// Fractional hour of day in [0, 24).
constexpr double frac_hour_of_day(SimTime t) noexcept {
  return static_cast<double>(t % kDay) / static_cast<double>(kHour);
}

/// Day of week: 0 = Monday .. 6 = Sunday.
constexpr int weekday(SimTime t) noexcept {
  return (kEpochWeekday + day_index(t)) % 7;
}

constexpr bool is_weekend(SimTime t) noexcept { return weekday(t) >= 5; }

/// Calendar date of a sim time, e.g. "20140111"; used in logfile names
/// (production-<machine>-<proc>-<date>). Handles the Jan->Feb rollover of
/// the trace window and keeps going for longer simulations.
std::string trace_date(SimTime t);

/// Human-readable timestamp "YYYY-MM-DD HH:MM:SS.mmm" for log records.
std::string format_timestamp(SimTime t);

/// Compact duration such as "1.5s", "320ms", "2.1h" for reports.
std::string format_duration(SimTime t);

}  // namespace u1
