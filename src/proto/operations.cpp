#include "proto/operations.hpp"

#include <array>

namespace u1 {
namespace {

constexpr std::array<ApiOp, kApiOpCount> kAllApiOps = {
    ApiOp::kListVolumes,  ApiOp::kListShares,   ApiOp::kPutContent,
    ApiOp::kGetContent,   ApiOp::kMake,         ApiOp::kUnlink,
    ApiOp::kMove,         ApiOp::kCreateUDF,    ApiOp::kDeleteVolume,
    ApiOp::kGetDelta,     ApiOp::kAuthenticate, ApiOp::kOpenSession,
    ApiOp::kCloseSession, ApiOp::kQuerySetCaps, ApiOp::kRescanFromScratch,
};

constexpr std::array<RpcOp, kRpcOpCount> kAllRpcOps = {
    RpcOp::kListVolumes,
    RpcOp::kListShares,
    RpcOp::kMakeDir,
    RpcOp::kMakeFile,
    RpcOp::kUnlinkNode,
    RpcOp::kMove,
    RpcOp::kCreateUDF,
    RpcOp::kDeleteVolume,
    RpcOp::kGetDelta,
    RpcOp::kGetVolumeId,
    RpcOp::kMakeContent,
    RpcOp::kMakeUploadJob,
    RpcOp::kGetUploadJob,
    RpcOp::kAddPartToUploadJob,
    RpcOp::kSetUploadJobMultipartId,
    RpcOp::kTouchUploadJob,
    RpcOp::kDeleteUploadJob,
    RpcOp::kGetReusableContent,
    RpcOp::kGetUserIdFromToken,
    RpcOp::kGetFromScratch,
    RpcOp::kGetNode,
    RpcOp::kGetRoot,
    RpcOp::kGetUserData,
};

}  // namespace

std::string_view to_string(ApiOp op) noexcept {
  switch (op) {
    case ApiOp::kListVolumes: return "ListVolumes";
    case ApiOp::kListShares: return "ListShares";
    case ApiOp::kPutContent: return "PutContent";
    case ApiOp::kGetContent: return "GetContent";
    case ApiOp::kMake: return "Make";
    case ApiOp::kUnlink: return "Unlink";
    case ApiOp::kMove: return "Move";
    case ApiOp::kCreateUDF: return "CreateUDF";
    case ApiOp::kDeleteVolume: return "DeleteVolume";
    case ApiOp::kGetDelta: return "GetDelta";
    case ApiOp::kAuthenticate: return "Authenticate";
    case ApiOp::kOpenSession: return "OpenSession";
    case ApiOp::kCloseSession: return "CloseSession";
    case ApiOp::kQuerySetCaps: return "QuerySetCaps";
    case ApiOp::kRescanFromScratch: return "RescanFromScratch";
  }
  return "Unknown";
}

std::optional<ApiOp> api_op_from_string(std::string_view name) noexcept {
  for (const ApiOp op : kAllApiOps)
    if (to_string(op) == name) return op;
  return std::nullopt;
}

std::span<const ApiOp> all_api_ops() noexcept { return kAllApiOps; }

RpcClass rpc_class(RpcOp op) noexcept {
  switch (op) {
    // Cascade: the two RPCs the paper singles out as "more than one order
    // of magnitude slower" because they touch whole subtrees (Fig. 13).
    case RpcOp::kDeleteVolume:
    case RpcOp::kGetFromScratch:
      return RpcClass::kCascade;
    // Writes / updates / deletes.
    case RpcOp::kMakeDir:
    case RpcOp::kMakeFile:
    case RpcOp::kUnlinkNode:
    case RpcOp::kMove:
    case RpcOp::kCreateUDF:
    case RpcOp::kMakeContent:
    case RpcOp::kMakeUploadJob:
    case RpcOp::kAddPartToUploadJob:
    case RpcOp::kSetUploadJobMultipartId:
    case RpcOp::kTouchUploadJob:
    case RpcOp::kDeleteUploadJob:
      return RpcClass::kWrite;
    // Reads exploit lockless parallel access to the shard replicas.
    case RpcOp::kListVolumes:
    case RpcOp::kListShares:
    case RpcOp::kGetDelta:
    case RpcOp::kGetVolumeId:
    case RpcOp::kGetUploadJob:
    case RpcOp::kGetReusableContent:
    case RpcOp::kGetUserIdFromToken:
    case RpcOp::kGetNode:
    case RpcOp::kGetRoot:
    case RpcOp::kGetUserData:
      return RpcClass::kRead;
  }
  return RpcClass::kRead;
}

std::string_view to_string(RpcOp op) noexcept {
  switch (op) {
    case RpcOp::kListVolumes: return "dal.list_volumes";
    case RpcOp::kListShares: return "dal.list_shares";
    case RpcOp::kMakeDir: return "dal.make_dir";
    case RpcOp::kMakeFile: return "dal.make_file";
    case RpcOp::kUnlinkNode: return "dal.unlink_node";
    case RpcOp::kMove: return "dal.move";
    case RpcOp::kCreateUDF: return "dal.create_udf";
    case RpcOp::kDeleteVolume: return "dal.delete_volume";
    case RpcOp::kGetDelta: return "dal.get_delta";
    case RpcOp::kGetVolumeId: return "dal.get_volume_id";
    case RpcOp::kMakeContent: return "dal.make_content";
    case RpcOp::kMakeUploadJob: return "dal.make_uploadjob";
    case RpcOp::kGetUploadJob: return "dal.get_uploadjob";
    case RpcOp::kAddPartToUploadJob: return "dal.add_part_to_uploadjob";
    case RpcOp::kSetUploadJobMultipartId:
      return "dal.set_uploadjob_multipart_id";
    case RpcOp::kTouchUploadJob: return "dal.touch_uploadjob";
    case RpcOp::kDeleteUploadJob: return "dal.delete_uploadjob";
    case RpcOp::kGetReusableContent: return "dal.get_reusable_content";
    case RpcOp::kGetUserIdFromToken: return "auth.get_user_id_from_token";
    case RpcOp::kGetFromScratch: return "dal.get_from_scratch";
    case RpcOp::kGetNode: return "dal.get_node";
    case RpcOp::kGetRoot: return "dal.get_root";
    case RpcOp::kGetUserData: return "dal.get_user_data";
  }
  return "dal.unknown";
}

std::string_view to_string(RpcClass c) noexcept {
  switch (c) {
    case RpcClass::kRead: return "read";
    case RpcClass::kWrite: return "write";
    case RpcClass::kCascade: return "cascade";
  }
  return "unknown";
}

std::optional<RpcOp> rpc_op_from_string(std::string_view name) noexcept {
  for (const RpcOp op : kAllRpcOps)
    if (to_string(op) == name) return op;
  return std::nullopt;
}

std::span<const RpcOp> all_rpc_ops() noexcept { return kAllRpcOps; }

}  // namespace u1
