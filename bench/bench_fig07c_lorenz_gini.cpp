// Fig. 7(c): Lorenz curves and Gini coefficients of per-user traffic.
#include "analysis/users.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  UserActivityAnalyzer users(0, cfg.days * kDay);
  auto sim = run_into(users, cfg);
  users.finalize();

  header("Fig 7(c)", "Lorenz curves of traffic across users");
  const auto up = users.upload_lorenz();
  const auto down = users.download_lorenz();
  row("Gini coefficient (upload)", 0.8943, up.gini);
  row("Gini coefficient (download)", 0.8966, down.gini);
  row("traffic share of the top 1% of users", 0.656,
      users.top_traffic_share(0.01));

  std::printf("\n  Lorenz curve (population share -> traffic share):\n");
  std::printf("  %-12s %10s %10s\n", "population", "upload", "download");
  for (const double p : {0.5, 0.8, 0.9, 0.95, 0.99, 0.999}) {
    std::printf("  bottom %4.1f%% %9.3f %10.3f\n", p * 100,
                1.0 - up.top_share(1.0 - p), 1.0 - down.top_share(1.0 - p));
  }
  const auto classes = users.classify_users();
  std::printf("\n  user classes (Drago et al. criteria):\n");
  row("occasional share", 0.8582, classes.occasional);
  row("upload-only share", 0.0722, classes.upload_only);
  row("download-only share", 0.0234, classes.download_only);
  row("heavy share", 0.0462, classes.heavy);
  return 0;
}
