// Automatic DDoS countermeasure — the research direction §5.4/§9 calls
// for ("the reaction to these attacks was not automatic ... further
// research is needed to automatically react to this kind of threats").
//
// The guard watches the same signal the operators did: session/auth
// request rates. It keeps an exponentially-weighted baseline per hour and
// a short sliding window per user id; when the global rate blows past the
// baseline it searches the window for an account concentrating the spike
// (the shared-credential signature) and recommends a purge.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "proto/ids.hpp"
#include "trace/record.hpp"

namespace u1 {

struct AnomalyGuardConfig {
  /// Baseline EWMA weight per observation window.
  double baseline_alpha = 0.15;
  /// Observation window length.
  SimTime window = 10 * kMinute;
  /// Alert when the window rate exceeds baseline by this factor.
  double rate_threshold = 3.0;
  /// Blame a user only if it holds at least this share of window requests.
  double concentration_threshold = 0.25;
  /// Minimum requests in a window before alerting (cold-start guard).
  std::uint64_t min_requests = 50;
};

class AnomalyGuard {
 public:
  explicit AnomalyGuard(const AnomalyGuardConfig& config = {});

  /// Feed every session-management event (auth requests and session
  /// opens). Returns the user to purge when an attack is detected.
  std::optional<UserId> observe(const TraceRecord& record);

  /// Detection bookkeeping.
  std::uint64_t alerts() const noexcept { return alerts_; }
  double baseline_rate() const noexcept { return baseline_; }

 private:
  void roll_window(SimTime now);

  AnomalyGuardConfig config_;
  std::deque<std::pair<SimTime, UserId>> window_;
  std::unordered_map<UserId, std::uint64_t> per_user_;
  double baseline_ = 0;  // EWMA of requests per window
  SimTime last_roll_ = 0;
  std::uint64_t alerts_ = 0;
  std::unordered_map<UserId, SimTime> recently_flagged_;
};

}  // namespace u1
