file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07a_op_mix.dir/bench_fig07a_op_mix.cpp.o"
  "CMakeFiles/bench_fig07a_op_mix.dir/bench_fig07a_op_mix.cpp.o.d"
  "bench_fig07a_op_mix"
  "bench_fig07a_op_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07a_op_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
