#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "tools/u1trace_cli.hpp"

namespace u1::cli {
namespace {

TEST(Args, ParsesPositionalsFlagsSwitches) {
  const Args args = Args::parse({"dir1", "--users", "500", "--no-ddos",
                                 "dir2"},
                                {"users"}, {"no-ddos"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "dir1");
  EXPECT_EQ(args.int_flag("users"), 500);
  EXPECT_TRUE(args.has_switch("no-ddos"));
  EXPECT_FALSE(args.flag("days").has_value());
}

TEST(Args, RejectsUnknownAndDangling) {
  const Args bad = Args::parse({"--bogus", "x"}, {"users"}, {});
  EXPECT_FALSE(bad.ok());
  const Args dangling = Args::parse({"--users"}, {"users"}, {});
  EXPECT_FALSE(dangling.ok());
}

TEST(Args, NonNumericIntFlag) {
  const Args args = Args::parse({"--users", "abc"}, {"users"}, {});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args.int_flag("users").has_value());
}

TEST(Run, UnknownCommandFails) {
  std::ostringstream out, err;
  EXPECT_NE(run({"frobnicate"}, out, err), 0);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Run, NoArgsShowsUsage) {
  std::ostringstream out, err;
  EXPECT_NE(run({}, out, err), 0);
}

class CliPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("u1trace_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CliPipeline, GenerateSummarizeAnalyzeValidate) {
  std::ostringstream out, err;
  ASSERT_EQ(run({"generate", "--out", dir_, "--users", "120", "--days", "2",
                 "--seed", "7", "--no-ddos"},
                out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("sessions"), std::string::npos);

  std::ostringstream sum_out, sum_err;
  ASSERT_EQ(run({"summarize", dir_}, sum_out, sum_err), 0) << sum_err.str();
  EXPECT_NE(sum_out.str().find("unique users"), std::string::npos);

  for (const char* figure :
       {"traffic", "dedup", "sessions", "users", "ops", "ddos"}) {
    std::ostringstream a_out, a_err;
    EXPECT_EQ(run({"analyze", dir_, "--figure", figure}, a_out, a_err), 0)
        << figure << ": " << a_err.str();
    EXPECT_FALSE(a_out.str().empty()) << figure;
  }

  std::ostringstream v_out, v_err;
  EXPECT_EQ(run({"validate", dir_}, v_out, v_err), 0) << v_err.str();
  EXPECT_NE(v_out.str().find("TRACE SOUND"), std::string::npos)
      << v_out.str();
}

namespace {

/// Concatenated contents of every regular file under dir, in sorted
/// name order — a cheap byte-identity fingerprint for trace dirs.
std::string dir_bytes(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.is_regular_file()) paths.push_back(e.path());
  std::sort(paths.begin(), paths.end());
  std::string all;
  for (const auto& p : paths) {
    all += p.filename().string();
    all += '\n';
    std::ifstream in(p, std::ios::binary);
    all.append(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }
  return all;
}

/// Analyzer output minus '#'-prefixed stats lines (bytes_read and
/// files_binary legitimately differ across formats).
std::string strip_comments(const std::string& text) {
  std::istringstream in(text);
  std::string line, kept;
  while (std::getline(in, line))
    if (!line.starts_with("#")) kept += line + "\n";
  return kept;
}

}  // namespace

TEST_F(CliPipeline, BinaryFormatConvertsToIdenticalCsv) {
  const std::string csv_dir = dir_ + "_csv";
  const std::string bin_dir = dir_ + "_bin";
  const std::string conv_dir = dir_ + "_conv";
  std::filesystem::remove_all(csv_dir);
  std::filesystem::remove_all(bin_dir);
  std::filesystem::remove_all(conv_dir);

  const std::vector<std::string> common = {"--users", "80", "--days", "1",
                                           "--seed", "11", "--no-ddos",
                                           "--fault-plan", "standard"};
  std::ostringstream out, err;
  auto gen = [&](const std::string& target, const char* format) {
    std::vector<std::string> argv = {"generate", "--out", target,
                                     "--format", format};
    argv.insert(argv.end(), common.begin(), common.end());
    ASSERT_EQ(run(argv, out, err), 0) << err.str();
  };
  gen(csv_dir, "csv");
  gen(bin_dir, "bin");

  // The binary trace re-encoded as CSV is byte-identical to the trace
  // generated as CSV directly — for every record type, kFault included.
  std::ostringstream c_out, c_err;
  ASSERT_EQ(run({"convert", bin_dir, "--out", conv_dir, "--to", "csv"},
                c_out, c_err),
            0)
      << c_err.str();
  EXPECT_EQ(dir_bytes(conv_dir), dir_bytes(csv_dir));

  // Analyzers see the identical stream whichever format they read.
  for (const std::string& cmd : {std::string("summarize")}) {
    std::ostringstream csv_a, bin_a, e1, e2;
    ASSERT_EQ(run({cmd, csv_dir}, csv_a, e1), 0) << e1.str();
    ASSERT_EQ(run({cmd, bin_dir}, bin_a, e2), 0) << e2.str();
    EXPECT_EQ(strip_comments(csv_a.str()), strip_comments(bin_a.str()))
        << cmd;
  }
  for (const char* figure : {"traffic", "sessions", "ops"}) {
    std::ostringstream csv_a, bin_a, e1, e2;
    ASSERT_EQ(run({"analyze", csv_dir, "--figure", figure}, csv_a, e1), 0);
    ASSERT_EQ(run({"analyze", bin_dir, "--figure", figure}, bin_a, e2), 0);
    EXPECT_EQ(strip_comments(csv_a.str()), strip_comments(bin_a.str()))
        << figure;
  }

  // CSV -> bin -> CSV is a fixpoint of the parseable subset: whatever
  // survives the text parse round-trips through the binary encoding
  // unchanged. (The direct CSV itself is not the baseline — it carries
  // pre-trace bootstrap rows whose unsigned-printed t never reparses,
  // so ANY re-encode drops them; a csv->csv pass is the normal form.)
  const std::string norm_csv = dir_ + "_normcsv";
  const std::string fix_bin = dir_ + "_fixbin";
  const std::string fix_csv = dir_ + "_fixcsv";
  for (const auto& d : {norm_csv, fix_bin, fix_csv})
    std::filesystem::remove_all(d);
  std::ostringstream f_out, f_err;
  ASSERT_EQ(run({"convert", csv_dir, "--out", norm_csv, "--to", "csv"},
                f_out, f_err),
            0)
      << f_err.str();
  ASSERT_EQ(run({"convert", csv_dir, "--out", fix_bin, "--to", "bin"},
                f_out, f_err),
            0)
      << f_err.str();
  ASSERT_EQ(run({"convert", fix_bin, "--out", fix_csv, "--to", "csv"},
                f_out, f_err),
            0)
      << f_err.str();
  EXPECT_EQ(dir_bytes(fix_csv), dir_bytes(norm_csv));

  for (const auto& d :
       {csv_dir, bin_dir, conv_dir, norm_csv, fix_bin, fix_csv})
    std::filesystem::remove_all(d);
}

TEST_F(CliPipeline, ConvertRejectsBadArguments) {
  std::ostringstream out, err;
  EXPECT_NE(run({"convert"}, out, err), 0);
  EXPECT_NE(run({"convert", dir_ + "_missing", "--out", dir_}, out, err), 0);
  std::ostringstream g_out, g_err;
  ASSERT_EQ(run({"generate", "--out", dir_, "--users", "20", "--days", "1",
                 "--no-ddos"},
                g_out, g_err),
            0);
  EXPECT_NE(run({"convert", dir_, "--out", dir_ + "_x", "--to", "xml"}, out,
                err),
            0);
}

TEST_F(CliPipeline, GenerateRejectsUnknownFormat) {
  std::ostringstream out, err;
  EXPECT_NE(run({"generate", "--out", dir_, "--users", "10", "--format",
                 "parquet"},
                out, err),
            0);
}

TEST_F(CliPipeline, AnalyzeUnknownFigureFails) {
  std::ostringstream out, err;
  ASSERT_EQ(run({"generate", "--out", dir_, "--users", "50", "--days", "1",
                 "--no-ddos"},
                out, err),
            0);
  std::ostringstream a_out, a_err;
  EXPECT_NE(run({"analyze", dir_, "--figure", "nope"}, a_out, a_err), 0);
}

TEST_F(CliPipeline, GenerateRequiresOut) {
  std::ostringstream out, err;
  EXPECT_NE(run({"generate", "--users", "10"}, out, err), 0);
}

TEST_F(CliPipeline, SummarizeRequiresDir) {
  std::ostringstream out, err;
  EXPECT_NE(run({"summarize"}, out, err), 0);
}

}  // namespace
}  // namespace u1::cli
