#include "stats/acf.hpp"

#include <cmath>
#include <stdexcept>

namespace u1 {

AcfResult autocorrelation(std::span<const double> series,
                          std::size_t max_lag) {
  const std::size_t n = series.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: series too short");
  if (max_lag >= n)
    throw std::invalid_argument("autocorrelation: max_lag >= length");

  double mean = 0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);

  double c0 = 0;
  for (const double x : series) c0 += (x - mean) * (x - mean);
  c0 /= static_cast<double>(n);

  AcfResult r;
  r.acf.resize(max_lag + 1);
  r.confidence_bound = 2.0 / std::sqrt(static_cast<double>(n));
  if (c0 == 0) {
    // Constant series: define acf[0]=1, rest 0.
    r.acf[0] = 1.0;
    return r;
  }
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double ck = 0;
    for (std::size_t t = 0; t + k < n; ++t)
      ck += (series[t] - mean) * (series[t + k] - mean);
    ck /= static_cast<double>(n);
    r.acf[k] = ck / c0;
    if (k > 0 && std::abs(r.acf[k]) > r.confidence_bound)
      ++r.significant_lags;
  }
  return r;
}

}  // namespace u1
