file(REMOVE_RECURSE
  "libu1_sim.a"
)
