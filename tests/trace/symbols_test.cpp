#include "trace/symbols.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace u1 {
namespace {

TEST(SymbolTable, InternDedupesAndResolves) {
  SymbolTable table;
  const Symbol a = table.intern("mp3");
  const Symbol b = table.intern("jpg");
  const Symbol a2 = table.intern("mp3");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.resolve(a), "mp3");
  EXPECT_EQ(table.resolve(b), "jpg");
}

TEST(SymbolTable, EmptyStringIsSymbolZero) {
  SymbolTable table;
  EXPECT_EQ(table.intern(""), kEmptySymbol);
  EXPECT_EQ(table.resolve(kEmptySymbol), "");
}

TEST(SymbolTable, ResolveOfGarbageIdIsEmpty) {
  SymbolTable table;
  table.intern("one");
  EXPECT_EQ(table.resolve(Symbol{12345}), "");
  EXPECT_EQ(table.resolve(Symbol{0xffffffffu}), "");
}

TEST(GroupSymbols, EagerModeInternsGlobally) {
  GroupSymbols group;  // eager by default (sequential engine, tests)
  const Symbol s = group.intern("odt");
  EXPECT_EQ(global_symbols().resolve(s), "odt");
  EXPECT_EQ(group.intern("odt"), s);
  EXPECT_EQ(group.intern(""), kEmptySymbol);
}

TEST(GroupSymbols, DeferredModePublishesInOrder) {
  GroupSymbols group;
  group.set_deferred(true);
  // Local ids are dense and group-private: 1, 2, ... in intern order.
  const Symbol l1 = group.intern("aaa-deferred-test");
  const Symbol l2 = group.intern("bbb-deferred-test");
  EXPECT_EQ(l1, Symbol{1});
  EXPECT_EQ(l2, Symbol{2});
  EXPECT_EQ(group.intern("aaa-deferred-test"), l1);  // cached
  group.publish();
  const std::vector<Symbol>& map = group.mapping();
  ASSERT_EQ(map.size(), 3u);  // [0] = empty symbol
  EXPECT_EQ(map[0], kEmptySymbol);
  EXPECT_EQ(global_symbols().resolve(map[l1]), "aaa-deferred-test");
  EXPECT_EQ(global_symbols().resolve(map[l2]), "bbb-deferred-test");
  // Publishing again is a no-op; interning more extends the mapping.
  group.publish();
  EXPECT_EQ(group.mapping().size(), 3u);
  const Symbol l3 = group.intern("ccc-deferred-test");
  EXPECT_EQ(l3, Symbol{3});
  group.publish();
  ASSERT_EQ(group.mapping().size(), 4u);
  EXPECT_EQ(global_symbols().resolve(group.mapping()[l3]),
            "ccc-deferred-test");
}

TEST(GroupSymbols, DeterministicGlobalIdsAcrossGroups) {
  // Two groups interning overlapping strings: after publishing in group
  // order, identical strings map to one global id — the merge rule the
  // parallel engine relies on at every barrier.
  GroupSymbols g0, g1;
  g0.set_deferred(true);
  g1.set_deferred(true);
  const Symbol a0 = g0.intern("shared-ext-test");
  const Symbol a1 = g1.intern("shared-ext-test");
  g0.publish();
  g1.publish();
  EXPECT_EQ(g0.mapping()[a0], g1.mapping()[a1]);
}

}  // namespace
}  // namespace u1
