// Bursty inter-operation process (§6.2, Fig. 9). The paper shows that
// user inter-operation times are far from Poisson: users alternate short,
// very active periods with long idle ones, and the inter-op distribution
// is approximated by a power law P(x) ~ x^-alpha with 1 < alpha < 2 (e.g.
// Upload: alpha=1.54, theta=41.37s). We generate this with a two-state
// renewal process: inside a burst, gaps are short and light-tailed;
// between bursts, gaps are Pareto with the paper's exponents — the mixture
// reproduces both the power-law tail and the "directory-granularity"
// cascades of operations.
#pragma once

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct BurstParams {
  /// Mean in-burst gap (seconds): files of one directory sync in quick
  /// succession.
  double in_burst_mean_s = 2.0;
  /// Probability the next operation continues the current burst.
  double continue_prob = 0.82;
  /// Pareto tail of idle gaps between bursts.
  double idle_alpha = 1.5;     // the paper's 1<alpha<2 regime
  double idle_theta_s = 40.0;  // where the tail starts (theta)
  /// Idle gaps are capped (a month-long trace cannot observe longer).
  double idle_cap_s = 14.0 * 86400.0;
};

class BurstProcess {
 public:
  explicit BurstProcess(const BurstParams& params = {});

  /// Draws the gap to the next operation of the same user.
  SimTime next_gap(Rng& rng) const;

  /// True if a draw with this parameterization came from the idle tail
  /// (exposed for tests/calibration).
  const BurstParams& params() const noexcept { return params_; }

 private:
  BurstParams params_;
};

}  // namespace u1
