// Failure-recovery paths through the backend: crash/outage session drops,
// interrupted multipart uploads resuming from the last committed part,
// GC-forced restarts, load shedding, auth brownouts, MQ drops and shard
// failover write rejections. Everything is scripted through FaultSpec
// windows, so each scenario is exact and deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "server/backend.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

class FaultBackendTest : public ::testing::Test {
 protected:
  FaultBackendTest() {
    config_.auth_failure_rate = 0.0;
    config_.bandwidth_sigma = 0.0;  // exact median wire speeds
    config_.upload_bytes_per_sec_median = 1024.0 * 1024;  // 1 MiB/s
    config_.seed = 42;
  }

  void build_backend() {
    backend_ = std::make_unique<U1Backend>(config_, sink_);
  }

  /// Materializes the plan and arms the backend. Call after build_backend
  /// (crash victims resolve against the live fleet layout).
  void arm(const FaultPlan& plan) {
    schedule_ = build_fault_schedule(plan, 30 * kDay, config_.fleet.machines,
                                     config_.shards, /*seed=*/7);
    injector_ = std::make_unique<FaultInjector>(schedule_, /*seed=*/99);
    backend_->set_fault_injector(injector_.get());
  }

  static FaultSpec window(FaultKind kind, SimTime at, SimTime dur) {
    FaultSpec spec;
    spec.kind = kind;
    spec.at = at;
    spec.duration = dur;
    return spec;
  }

  const FaultEvent& edge(std::size_t id, bool begin) const {
    const auto it = std::find_if(schedule_.begin(), schedule_.end(),
                                 [&](const FaultEvent& e) {
                                   return e.id == id && e.begin == begin;
                                 });
    EXPECT_NE(it, schedule_.end());
    return *it;
  }

  std::pair<UserAccount, SessionId> enroll(std::uint64_t uid, SimTime t) {
    const UserAccount acc = backend_->register_user(UserId{uid}, t);
    const auto conn = backend_->connect(UserId{uid}, t);
    EXPECT_TRUE(conn.ok());
    return {acc, conn.session};
  }

  std::uint64_t count_session_events(SessionEvent event) const {
    return static_cast<std::uint64_t>(std::count_if(
        sink_.records().begin(), sink_.records().end(),
        [&](const TraceRecord& r) {
          return r.type == RecordType::kSession && r.session_event == event;
        }));
  }

  BackendConfig config_;
  InMemorySink sink_;
  std::unique_ptr<U1Backend> backend_;
  FaultSchedule schedule_;
  std::unique_ptr<FaultInjector> injector_;
};

TEST_F(FaultBackendTest, ProcessCrashDropsSessionsAndRespawnRecovers) {
  config_.fleet = FleetConfig{1, 1};  // the one process is the victim
  build_backend();
  FaultSpec crash = window(FaultKind::kProcessCrash, 2 * kHour, kHour);
  crash.machine = 1;
  crash.slot = 0;
  FaultPlan plan;
  plan.specs.push_back(crash);
  arm(plan);

  const auto [acc, sid] = enroll(1, kHour);
  ASSERT_TRUE(backend_->session_open(sid));

  backend_->apply_fault(edge(0, true), 2 * kHour, /*emit_record=*/true);
  EXPECT_FALSE(backend_->session_open(sid));
  EXPECT_EQ(backend_->stats().sessions_dropped, 1u);
  EXPECT_EQ(backend_->fleet().total_open_sessions(), 0u);
  EXPECT_EQ(count_session_events(SessionEvent::kDropped), 1u);

  // Post-crash calls on the dead session fail gracefully (no throw).
  EXPECT_FALSE(backend_->list_volumes(sid, 2 * kHour + kMinute).ok());
  EXPECT_FALSE(backend_->upload(sid, acc.root_dir, Sha1::of("x"), 100, false,
                                2 * kHour + kMinute)
                   .ok());
  EXPECT_EQ(backend_->disconnect(sid, 2 * kHour + kMinute).end,
            2 * kHour + kMinute);

  // While the only process is dead the balancer sheds new connects.
  const auto during = backend_->connect(UserId{1}, 2 * kHour + 10 * kMinute);
  EXPECT_FALSE(during.ok());
  EXPECT_TRUE(during.try_again());
  EXPECT_EQ(backend_->stats().shed_connects, 1u);

  backend_->apply_fault(edge(0, false), 3 * kHour, /*emit_record=*/true);
  const auto after = backend_->connect(UserId{1}, 4 * kHour);
  EXPECT_TRUE(after.ok());

  // Both window edges were traced.
  const auto faults = std::count_if(
      sink_.records().begin(), sink_.records().end(),
      [](const TraceRecord& r) { return r.type == RecordType::kFault; });
  EXPECT_EQ(faults, 2);
}

TEST_F(FaultBackendTest, OutageCutsMultipartUploadAndResumeFinishesIt) {
  config_.fleet = FleetConfig{1, 1};  // session pinned to machine 1
  build_backend();

  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "bulk", "iso", kHour);
  ASSERT_TRUE(mk.ok());

  // 20 MB at 1 MiB/s = four 5 MB parts, one every ~5s. An outage 12s into
  // the transfer lands inside part 3: exactly two parts are committed.
  FaultSpec outage =
      window(FaultKind::kMachineOutage, mk.end + 12 * kSecond, 30 * kMinute);
  outage.machine = 1;
  FaultPlan plan;
  plan.specs.push_back(outage);
  arm(plan);

  const std::uint64_t size = 4 * kMultipartChunkBytes;
  const ContentId content = Sha1::of("bulk-content");
  const auto cut = backend_->upload(sid, mk.node, content, size, false,
                                    mk.end);
  EXPECT_FALSE(cut.ok());
  EXPECT_TRUE(cut.interrupted());
  EXPECT_FALSE(cut.job.is_nil());
  EXPECT_EQ(cut.committed_bytes, 2 * kMultipartChunkBytes);
  EXPECT_EQ(backend_->stats().interrupted_uploads, 1u);
  // The committed parts are parked server-side: open multipart + job row.
  EXPECT_EQ(backend_->s3().open_multiparts(), 1u);
  EXPECT_EQ(backend_->s3().object_count(), 0u);

  // The outage edge drops the session; restore brings the machine back.
  backend_->apply_fault(edge(0, true), outage.at, true);
  EXPECT_FALSE(backend_->session_open(sid));
  backend_->apply_fault(edge(0, false), outage.at + outage.duration, true);

  const SimTime back = outage.at + outage.duration + kMinute;
  const auto conn = backend_->connect(UserId{1}, back);
  ASSERT_TRUE(conn.ok());

  const auto done = backend_->resume_upload(conn.session, mk.node, content,
                                            size, false, cut.job, conn.end);
  EXPECT_TRUE(done.ok());
  EXPECT_FALSE(done.interrupted());
  // Only the remaining two parts crossed the wire; all four are committed.
  EXPECT_EQ(done.transferred_bytes, 2 * kMultipartChunkBytes);
  EXPECT_EQ(done.committed_bytes, size);
  EXPECT_EQ(backend_->stats().resumed_uploads, 1u);
  EXPECT_EQ(backend_->s3().open_multiparts(), 0u);
  EXPECT_EQ(backend_->s3().stored_bytes(), size);
  // Wire accounting counts each part exactly once across both attempts.
  EXPECT_EQ(backend_->stats().upload_bytes_wire, size);
}

TEST_F(FaultBackendTest, GcReclaimedJobForcesRestartFromScratch) {
  config_.fleet = FleetConfig{1, 1};
  build_backend();

  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "bulk", "iso", kHour);
  ASSERT_TRUE(mk.ok());

  FaultSpec outage =
      window(FaultKind::kMachineOutage, mk.end + 12 * kSecond, 30 * kMinute);
  outage.machine = 1;
  FaultPlan plan;
  plan.specs.push_back(outage);
  arm(plan);

  const std::uint64_t size = 4 * kMultipartChunkBytes;
  const ContentId content = Sha1::of("bulk-content");
  const auto cut =
      backend_->upload(sid, mk.node, content, size, false, mk.end);
  ASSERT_TRUE(cut.interrupted());
  backend_->apply_fault(edge(0, true), outage.at, true);
  backend_->apply_fault(edge(0, false), outage.at + outage.duration, true);

  // The client stays offline for over a week; the weekly GC reclaims the
  // job row and aborts the dangling S3 multipart.
  backend_->maintenance(10 * kDay);
  EXPECT_EQ(backend_->s3().open_multiparts(), 0u);

  const auto conn = backend_->connect(UserId{1}, 10 * kDay + kHour);
  ASSERT_TRUE(conn.ok());
  const auto resume = backend_->resume_upload(conn.session, mk.node, content,
                                              size, false, cut.job, conn.end);
  // Job gone, not interrupted: the client must restart from byte zero.
  EXPECT_FALSE(resume.ok());
  EXPECT_FALSE(resume.interrupted());

  const auto fresh = backend_->upload(conn.session, mk.node, content, size,
                                      false, resume.end);
  EXPECT_TRUE(fresh.ok());
  EXPECT_EQ(backend_->s3().stored_bytes(), size);
}

TEST_F(FaultBackendTest, SessionCapShedsConnectsUntilSlotFrees) {
  config_.fleet = FleetConfig{1, 1};
  config_.session_cap_per_process = 1;
  build_backend();
  backend_->register_user(UserId{1}, 0);
  backend_->register_user(UserId{2}, 0);

  const auto first = backend_->connect(UserId{1}, kHour);
  ASSERT_TRUE(first.ok());
  const auto shed = backend_->connect(UserId{2}, kHour + kMinute);
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.try_again());
  EXPECT_GT(shed.end, kHour + kMinute);  // only the API overhead elapsed
  EXPECT_EQ(backend_->stats().shed_connects, 1u);
  EXPECT_EQ(backend_->stats().auth_failures, 0u);  // never reached auth
  EXPECT_EQ(count_session_events(SessionEvent::kTryAgain), 1u);

  backend_->disconnect(first.session, 2 * kHour);
  const auto retry = backend_->connect(UserId{2}, 2 * kHour + kMinute);
  EXPECT_TRUE(retry.ok());
}

TEST_F(FaultBackendTest, AuthBrownoutRejectsConnects) {
  build_backend();
  FaultSpec brown = window(FaultKind::kAuthBrownout, kHour, kHour);
  brown.error_rate = 1.0;
  FaultPlan plan;
  plan.specs.push_back(brown);
  arm(plan);
  backend_->register_user(UserId{1}, 0);

  const auto during = backend_->connect(UserId{1}, 90 * kMinute);
  EXPECT_FALSE(during.ok());
  EXPECT_FALSE(during.try_again());
  EXPECT_EQ(backend_->stats().auth_failures, 1u);
  EXPECT_EQ(backend_->fleet().total_open_sessions(), 0u);
  EXPECT_EQ(count_session_events(SessionEvent::kAuthFail), 1u);

  const auto after = backend_->connect(UserId{1}, 3 * kHour);
  EXPECT_TRUE(after.ok());
}

TEST_F(FaultBackendTest, MqDropWindowSuppressesNotifications) {
  build_backend();
  FaultSpec drop = window(FaultKind::kMqDrop, kHour, kHour);
  drop.drop_prob = 1.0;
  FaultPlan plan;
  plan.specs.push_back(drop);
  arm(plan);

  const auto [acc, sid] = enroll(1, 0);
  backend_->register_user(UserId{2}, 0);
  backend_->share_volume(acc.user, acc.root_volume, UserId{2}, 0);

  const auto in_window = backend_->make_file(sid, acc.root_volume,
                                             acc.root_dir, "a", "txt",
                                             90 * kMinute);
  ASSERT_TRUE(in_window.ok());
  EXPECT_EQ(backend_->stats().notifications_dropped, 1u);
  EXPECT_EQ(backend_->notifications().published(), 0u);

  const auto after = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                         "b", "txt", 3 * kHour);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(backend_->stats().notifications_dropped, 1u);
  EXPECT_EQ(backend_->notifications().published(), 1u);
}

TEST_F(FaultBackendTest, ShardFailoverRejectsWritesInWindow) {
  config_.shards = 1;  // every user lands on the failed-over shard
  build_backend();
  FaultSpec failover = window(FaultKind::kShardFailover, kHour, kHour);
  failover.shard = 1;
  failover.reject_prob = 1.0;
  failover.slow_factor = 6.0;
  FaultPlan plan;
  plan.specs.push_back(failover);
  arm(plan);

  const auto [acc, sid] = enroll(1, 0);
  const auto mk =
      backend_->make_file(sid, acc.root_volume, acc.root_dir, "f", "jpg", 0);
  ASSERT_TRUE(mk.ok());

  const auto rejected = backend_->upload(sid, mk.node, Sha1::of("p"),
                                         256 * 1024, false, 90 * kMinute);
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(rejected.interrupted());
  EXPECT_EQ(backend_->stats().write_rejects, 1u);

  const auto accepted = backend_->upload(sid, mk.node, Sha1::of("p"),
                                         256 * 1024, false, 3 * kHour);
  EXPECT_TRUE(accepted.ok());
}

TEST_F(FaultBackendTest, S3BrownoutFailsRequestsAndRecovers) {
  build_backend();
  FaultSpec brown = window(FaultKind::kS3Brownout, kHour, kHour);
  brown.error_rate = 1.0;
  brown.slow_factor = 4.0;
  FaultPlan plan;
  plan.specs.push_back(brown);
  arm(plan);

  const auto [acc, sid] = enroll(1, 0);
  const auto mk =
      backend_->make_file(sid, acc.root_volume, acc.root_dir, "f", "jpg", 0);
  ASSERT_TRUE(mk.ok());

  // Single-shot upload inside the window: the S3 PUT fails after the
  // bytes crossed the wire, so the attempt is interrupted with no job.
  const auto failed = backend_->upload(sid, mk.node, Sha1::of("p"),
                                       256 * 1024, false, 90 * kMinute);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.interrupted());
  EXPECT_TRUE(failed.job.is_nil());
  EXPECT_GE(backend_->stats().s3_errors, 1u);

  const auto after = backend_->upload(sid, mk.node, Sha1::of("p"),
                                      256 * 1024, false, 3 * kHour);
  EXPECT_TRUE(after.ok());
}

}  // namespace
}  // namespace u1
