// Macroscopic storage workload (paper §5.1): Fig. 2(a) traffic
// time-series, Fig. 2(b) traffic/operations per file-size category and
// Fig. 2(c) hourly R/W ratio with boxplot + autocorrelation.
#pragma once

#include <memory>
#include <vector>

#include "analysis/sharded.hpp"
#include "stats/acf.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"
#include "trace/sink.hpp"

namespace u1 {

class TrafficAnalyzer final : public TraceSink, public ShardedAnalyzer {
 public:
  /// Analyzes the window [start, end) with 1-hour bins.
  TrafficAnalyzer(SimTime start, SimTime end);

  void append(const TraceRecord& record) override;

  // ShardedAnalyzer: every member is an exact mergeable accumulator
  // (integer-valued sums and counts), so a shard is simply another
  // TrafficAnalyzer and the sharded results are bit-identical to the
  // merged path.
  std::unique_ptr<AnalyzerShard> make_shard() override;
  void merge_shard(AnalyzerShard& shard) override;
  /// Element-wise addition of another analyzer over the same window.
  void absorb(const TrafficAnalyzer& other);

  // --- Fig. 2(a): GBytes per hour -----------------------------------------
  const TimeBinSeries& upload_bytes_hourly() const noexcept {
    return up_bytes_;
  }
  const TimeBinSeries& download_bytes_hourly() const noexcept {
    return down_bytes_;
  }
  /// Peak-hour/trough-hour ratio of upload volume over an average day —
  /// the "up to 10x higher in the central day hours" statement.
  double diurnal_swing() const;

  // --- Fig. 2(b): size categories ------------------------------------------
  /// Paper bins in MB: <0.5, 0.5-1, 1-5, 5-25, >25.
  const EdgeHistogram& upload_ops_by_size() const noexcept {
    return up_ops_hist_;
  }
  const EdgeHistogram& download_ops_by_size() const noexcept {
    return down_ops_hist_;
  }
  const EdgeHistogram& upload_bytes_by_size() const noexcept {
    return up_bytes_hist_;
  }
  const EdgeHistogram& download_bytes_by_size() const noexcept {
    return down_bytes_hist_;
  }

  // --- Fig. 2(c): R/W ratio -------------------------------------------------
  /// Hourly down/up byte ratios (hours with no uploads are skipped).
  std::vector<double> rw_ratios_hourly() const;
  BoxplotStats rw_boxplot() const;
  AcfResult rw_acf(std::size_t max_lag = 200) const;

  // --- update-share finding (§5.1) -------------------------------------------
  /// Fraction of upload operations that are updates (paper: 10.05%).
  double update_op_fraction() const;
  /// Fraction of upload wire traffic caused by updates (paper: 18.47%).
  double update_traffic_fraction() const;

  std::uint64_t upload_ops() const noexcept { return upload_ops_; }
  std::uint64_t download_ops() const noexcept { return download_ops_; }
  std::uint64_t upload_bytes() const noexcept { return upload_bytes_total_; }
  /// Wire bytes actually transferred for uploads (dedup hits excluded).
  std::uint64_t upload_wire_bytes() const noexcept {
    return upload_wire_bytes_;
  }
  std::uint64_t download_bytes() const noexcept {
    return download_bytes_total_;
  }

 private:
  class Shard;

  SimTime start_;
  SimTime end_;
  TimeBinSeries up_bytes_;
  TimeBinSeries down_bytes_;
  EdgeHistogram up_ops_hist_;
  EdgeHistogram down_ops_hist_;
  EdgeHistogram up_bytes_hist_;
  EdgeHistogram down_bytes_hist_;
  std::uint64_t upload_ops_ = 0;
  std::uint64_t download_ops_ = 0;
  std::uint64_t upload_bytes_total_ = 0;
  std::uint64_t download_bytes_total_ = 0;
  std::uint64_t update_ops_ = 0;
  std::uint64_t update_wire_bytes_ = 0;
  std::uint64_t upload_wire_bytes_ = 0;
};

}  // namespace u1
