# Empty dependencies file for bench_abl_cold_sessions.
# This may be replaced when dependencies are built.
