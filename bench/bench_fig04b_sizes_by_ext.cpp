// Fig. 4(b): file size CDFs per popular extension + the global size CDF.
#include "analysis/file_types.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  FileTypeAnalyzer types;
  auto sim = run_into(types, cfg);

  header("Fig 4(b)", "Size of files per extension");
  row("files smaller than 1MB (all files)", 0.90,
      types.fraction_below(1024.0 * 1024.0));

  const double kMB = 1024.0 * 1024.0;
  std::printf("\n  per-extension size CDF (fraction of files <= x):\n");
  std::printf("  %-6s %9s %9s %9s %9s %9s %12s\n", "ext", "10KB", "100KB",
              "1MB", "10MB", "100MB", "median");
  for (const char* ext : {"jpg", "mp3", "pdf", "doc", "java", "zip", "py"}) {
    auto sizes = types.sizes_of(ext);
    if (sizes.size() < 10) continue;
    Ecdf e{std::move(sizes)};
    std::printf("  %-6s %9.3f %9.3f %9.3f %9.3f %9.3f %12.0f\n", ext,
                e.at(10 * 1024.0), e.at(100 * 1024.0), e.at(kMB),
                e.at(10 * kMB), e.at(100 * kMB), e.quantile(0.5));
  }
  note("paper: per-extension distributions are very disparate; "
       "incompressible media/archives are much larger than code/docs");
  return 0;
}
