#include "stats/powerlaw.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace u1 {
namespace {

std::vector<double> pareto_sample(double alpha, double x_min, int n,
                                  std::uint64_t seed) {
  Rng rng(seed);
  ParetoDist d(alpha, x_min);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(d.sample(rng));
  return v;
}

TEST(HillAlpha, RecoversKnownExponent) {
  const auto v = pareto_sample(1.54, 41.37, 50000, 1);
  EXPECT_NEAR(hill_alpha(v, 41.37), 1.54, 0.03);
}

TEST(HillAlpha, RecoversUnlinkParameters) {
  // The paper's Unlink fit: alpha=1.44, theta=19.51.
  const auto v = pareto_sample(1.44, 19.51, 50000, 2);
  EXPECT_NEAR(hill_alpha(v, 19.51), 1.44, 0.03);
}

TEST(HillAlpha, RejectsBadInputs) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(hill_alpha(v, 0.0), std::invalid_argument);
  EXPECT_THROW(hill_alpha(v, 100.0), std::invalid_argument);  // empty tail
}

TEST(KsDistance, SmallForTrueModel) {
  const auto v = pareto_sample(1.5, 10.0, 20000, 3);
  EXPECT_LT(ks_distance(v, 10.0, 1.5), 0.02);
}

TEST(KsDistance, LargeForWrongModel) {
  const auto v = pareto_sample(1.5, 10.0, 20000, 4);
  EXPECT_GT(ks_distance(v, 10.0, 4.0), 0.2);
}

TEST(FitPowerLaw, RecoversPureParetoSample) {
  const auto v = pareto_sample(1.54, 41.37, 30000, 5);
  const auto fit = fit_power_law(v);
  EXPECT_NEAR(fit.alpha, 1.54, 0.1);
  EXPECT_LT(fit.ks, 0.03);
  EXPECT_GT(fit.tail_n, 1000u);
}

TEST(FitPowerLaw, FindsTailOfMixedBody) {
  // Exponential body below 50, Pareto tail above: fit should place x_min
  // near the transition and recover the tail exponent.
  Rng rng(6);
  ExponentialDist body(1.0 / 10.0);
  ParetoDist tail(1.7, 50.0);
  std::vector<double> v;
  for (int i = 0; i < 30000; ++i) {
    v.push_back(rng.chance(0.7) ? body.sample(rng) : tail.sample(rng));
  }
  const auto fit = fit_power_law(v);
  EXPECT_GT(fit.x_min, 10.0);
  EXPECT_NEAR(fit.alpha, 1.7, 0.25);
}

TEST(FitPowerLaw, RejectsTinySamples) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_THROW(fit_power_law(v), std::invalid_argument);
}

TEST(CvSquared, PoissonLikeIsOne) {
  Rng rng(7);
  ExponentialDist d(2.0);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(d.sample(rng));
  EXPECT_NEAR(cv_squared(v), 1.0, 0.05);
}

TEST(CvSquared, ParetoIsBursty) {
  const auto v = pareto_sample(1.6, 1.0, 100000, 8);
  EXPECT_GT(cv_squared(v), 3.0);
}

TEST(CvSquared, ConstantIsZero) {
  const std::vector<double> v(100, 5.0);
  EXPECT_DOUBLE_EQ(cv_squared(v), 0.0);
}

}  // namespace
}  // namespace u1
