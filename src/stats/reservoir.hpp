// Reservoir sampling (Vitter's algorithm R): bounded-memory uniform sample
// of an unbounded stream. The streaming analyzers use it wherever a
// distribution must be summarized without holding every observation of a
// month-long trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace u1 {

class ReservoirSampler {
 public:
  explicit ReservoirSampler(std::size_t capacity,
                            std::uint64_t seed = 0x5ee0)
      : capacity_(capacity), rng_(seed) {
    if (capacity == 0)
      throw std::invalid_argument("ReservoirSampler: capacity 0");
    sample_.reserve(capacity);
  }

  void add(double x) noexcept {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(x);
      return;
    }
    const std::uint64_t j = rng_.below(seen_);
    if (j < capacity_) sample_[static_cast<std::size_t>(j)] = x;
  }

  std::span<const double> sample() const noexcept { return sample_; }
  std::vector<double> take() && { return std::move(sample_); }
  std::uint64_t seen() const noexcept { return seen_; }
  std::size_t size() const noexcept { return sample_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<double> sample_;
  std::uint64_t seen_ = 0;
};

}  // namespace u1
