// u1d's network core: a poll(2)-based, single-threaded, multi-client TCP
// server that feeds protocol-envelope frames (proto/envelope.hpp,
// DESIGN.md §9) into U1Backend::call() — the exact dispatch the
// in-process simulation engines use, so server mode and sim mode share
// one backend implementation and one serialization path.
//
// Framing errors never crash the loop: a malformed frame earns a typed
// error Response; only an unrecoverable stream (oversized length prefix,
// where the frame boundary is unknowable) closes the connection, after
// the error response has been flushed.
//
// Virtual time: every Request carries the client's virtual `now`. The
// server tracks the high-water mark across all connections and applies
// armed fault-schedule edges whose `at` falls at or below it, so the
// FaultInjector drives live failover drills exactly as it does in the
// discrete-event simulation.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.hpp"
#include "proto/envelope.hpp"
#include "server/backend.hpp"

namespace u1 {

struct NetServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// port() after start()).
  std::uint16_t port = 0;
  int backlog = 128;
  /// Positive: SO_SNDBUF for accepted connections. The backpressure
  /// tests pin it tiny so a slow reader drives flush() into EAGAIN and
  /// the per-connection backlog path actually executes.
  int send_buffer_bytes = 0;
};

struct NetServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t faults_applied = 0;
};

class U1dServer {
 public:
  U1dServer(U1Backend& backend, const NetServerConfig& config);
  ~U1dServer();

  U1dServer(const U1dServer&) = delete;
  U1dServer& operator=(const U1dServer&) = delete;

  /// Binds and listens (loopback only). False on failure.
  bool start();
  /// The actually-bound port (resolves ephemeral 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Serves until stop() is called (from any thread / signal handler).
  void run();
  void stop() noexcept;

  /// Arms a fault schedule: edges fire as the observed virtual time
  /// (max Request::now across all clients) passes their `at`. Call
  /// U1Backend::set_fault_injector separately for the window faults.
  void arm_faults(const FaultSchedule* schedule);

  const NetServerStats& stats() const noexcept { return stats_; }

 private:
  struct Conn {
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t consumed = 0;  // decoded prefix of `in` not yet erased
    bool close_after_flush = false;
  };

  void accept_clients();
  /// Reads what's available; false when the peer hung up or errored.
  bool read_from(int fd, Conn& conn);
  /// Decodes every complete frame in conn.in and appends responses.
  void serve_frames(Conn& conn);
  /// Flushes conn.out; false on a dead peer.
  bool flush(int fd, Conn& conn);
  void close_conn(int fd);
  void advance_virtual_time(SimTime now);

  U1Backend& backend_;
  NetServerConfig config_;
  NetServerStats stats_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::unordered_map<int, Conn> conns_;

  const FaultSchedule* fault_schedule_ = nullptr;
  std::size_t next_fault_ = 0;
  SimTime virtual_now_ = std::numeric_limits<SimTime>::lowest();
};

}  // namespace u1
