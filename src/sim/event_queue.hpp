// Discrete-event core: a time-ordered queue with deterministic FIFO
// tie-breaking (events at equal timestamps pop in insertion order, so a
// simulation is reproducible bit-for-bit given a seed).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace u1 {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Payload payload;
  };

  void push(SimTime t, Payload payload) {
    heap_.push(Event{t, next_seq_++, std::move(payload)});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the next event; only valid when !empty().
  SimTime next_time() const { return heap_.top().t; }

  /// Pops the earliest event.
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace u1
