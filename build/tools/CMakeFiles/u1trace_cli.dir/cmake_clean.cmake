file(REMOVE_RECURSE
  "CMakeFiles/u1trace_cli.dir/u1trace_cli.cpp.o"
  "CMakeFiles/u1trace_cli.dir/u1trace_cli.cpp.o.d"
  "libu1trace_cli.a"
  "libu1trace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1trace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
