#include "analysis/rpc_perf.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/ecdf.hpp"
#include "stats/summary.hpp"

namespace u1 {
namespace {

template <std::size_t... Is>
std::array<ReservoirSampler, sizeof...(Is)> make_samplers(
    std::size_t cap, std::index_sequence<Is...>) {
  return {ReservoirSampler(cap, 0x2e5e + Is)...};
}

}  // namespace

class RpcPerfAnalyzer::Shard final : public AnalyzerShard {
 public:
  void consume(const TraceRecord* records, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const TraceRecord& r = records[i];
      if (r.type != RecordType::kRpc || r.t < 0) continue;
      const auto idx = static_cast<std::size_t>(r.rpc_op);
      sketches[idx].add(to_seconds(r.service_time));
      ++counts[idx];
    }
  }

  std::array<QuantileSketch, kRpcOpCount> sketches;
  std::array<std::uint64_t, kRpcOpCount> counts{};
};

RpcPerfAnalyzer::RpcPerfAnalyzer(std::size_t cap)
    : samples_(make_samplers(cap, std::make_index_sequence<kRpcOpCount>{})) {}

void RpcPerfAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kRpc || r.t < 0) return;
  const auto idx = static_cast<std::size_t>(r.rpc_op);
  samples_[idx].add(to_seconds(r.service_time));
  ++counts_[idx];
}

std::unique_ptr<AnalyzerShard> RpcPerfAnalyzer::make_shard() {
  return std::make_unique<Shard>();
}

void RpcPerfAnalyzer::merge_shard(AnalyzerShard& shard) {
  auto& s = dynamic_cast<Shard&>(shard);
  sharded_ = true;
  for (std::size_t i = 0; i < kRpcOpCount; ++i) {
    sketches_[i].merge(s.sketches[i]);
    counts_[i] += s.counts[i];
  }
}

std::vector<double> RpcPerfAnalyzer::service_times(RpcOp op) const {
  const auto idx = static_cast<std::size_t>(op);
  if (sharded_) {
    const QuantileSketch& sk = sketches_[idx];
    const auto points =
        static_cast<std::size_t>(std::min<std::uint64_t>(sk.count(), 2001));
    return sk.sorted_sample(points);
  }
  const auto& s = samples_[idx].sample();
  return {s.begin(), s.end()};
}

std::uint64_t RpcPerfAnalyzer::count(RpcOp op) const noexcept {
  return counts_[static_cast<std::size_t>(op)];
}

double RpcPerfAnalyzer::median_s(RpcOp op) const { return quantile_s(op, 0.5); }

double RpcPerfAnalyzer::quantile_s(RpcOp op, double q) const {
  const auto idx = static_cast<std::size_t>(op);
  if (sharded_) {
    const QuantileSketch& sk = sketches_[idx];
    return sk.empty() ? 0.0 : sk.quantile(q);
  }
  const auto& s = samples_[idx].sample();
  if (s.empty()) return 0.0;
  return Ecdf(std::vector<double>(s.begin(), s.end())).quantile(q);
}

double RpcPerfAnalyzer::tail_fraction(RpcOp op, double factor) const {
  const auto idx = static_cast<std::size_t>(op);
  if (sharded_) {
    const QuantileSketch& sk = sketches_[idx];
    if (sk.empty()) return 0.0;
    return 1.0 - sk.rank(factor * sk.quantile(0.5));
  }
  const auto& s = samples_[idx].sample();
  if (s.empty()) return 0.0;
  const double med = median_of(s);
  const auto far = std::count_if(s.begin(), s.end(), [&](double x) {
    return x > factor * med;
  });
  return static_cast<double>(far) / static_cast<double>(s.size());
}

const QuantileSketch& RpcPerfAnalyzer::sketch(RpcOp op) const {
  if (!sharded_)
    throw std::logic_error(
        "RpcPerfAnalyzer::sketch: merged path has no sketches");
  return sketches_[static_cast<std::size_t>(op)];
}

std::vector<RpcPerfAnalyzer::ScatterPoint> RpcPerfAnalyzer::scatter() const {
  std::vector<ScatterPoint> out;
  for (const RpcOp op : all_rpc_ops()) {
    if (count(op) == 0) continue;
    ScatterPoint p;
    p.op = op;
    p.rpc_class = rpc_class(op);
    p.count = count(op);
    p.median_s = median_s(op);
    out.push_back(p);
  }
  return out;
}

}  // namespace u1
