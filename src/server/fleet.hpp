// The API/RPC server fleet (§3.4): 6 racked machines running 8-16 API/RPC
// processes each, fronted by an HAProxy load balancer. Processes are more
// numerous than machines and migrate between them for load balancing; a
// session starts on the least-loaded machine and stays pinned to its
// process until it ends (§4).
//
// Fault support: processes (or whole machines) can be killed and later
// respawned; placement skips dead processes and machines with nothing
// alive, and an optional per-process session cap models load shedding
// (the balancer returns "try again" instead of overloading a process).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/ids.hpp"
#include "util/rng.hpp"

namespace u1 {

struct FleetConfig {
  std::size_t machines = 6;
  std::size_t processes_per_machine = 12;  // paper: 8-16
};

class ServerFleet {
 public:
  explicit ServerFleet(const FleetConfig& config, std::uint64_t seed);

  std::size_t machine_count() const noexcept { return machines_; }
  std::size_t process_count() const noexcept {
    return process_machine_.size();
  }

  /// Machine currently hosting a process.
  MachineId machine_of(ProcessId process) const;

  /// Load-balancer placement: least-loaded machine (fewest open sessions),
  /// then a uniformly random process on it. Records the session.
  struct Placement {
    MachineId machine;
    ProcessId process;
  };
  /// nullopt when no live process has capacity (every machine dead, or —
  /// with per_process_cap > 0 — every live process is at the cap): the
  /// balancer's "try again later". With a healthy fleet and cap 0 this
  /// never fails and draws exactly one random number, preserving the
  /// faults-off placement stream.
  std::optional<Placement> place_session(std::uint64_t per_process_cap);
  /// Healthy-fleet convenience (cap 0); throws std::logic_error if the
  /// whole fleet is down.
  Placement place_session();

  /// Releases a session slot previously granted by place_session().
  /// Idempotent under fault races: returns false (instead of throwing)
  /// when the slot was already released — e.g. a disconnect arriving
  /// after a crash already dropped the session. Still throws
  /// std::out_of_range for ids that never existed (programmer error).
  bool end_session(MachineId machine, ProcessId process);

  // --- fault hooks ---------------------------------------------------------
  /// Marks a process dead; its sessions must be dropped by the caller
  /// (the back-end owns session state). No-op if already dead.
  void kill_process(ProcessId process);
  void respawn_process(ProcessId process);
  /// Kills / restores every process currently on a machine.
  void kill_machine(MachineId machine);
  void restore_machine(MachineId machine);
  bool process_alive(ProcessId process) const;
  /// A machine is placeable while it has >= 1 live process.
  bool machine_alive(MachineId machine) const;
  /// Live processes currently hosted on `machine`, in slot order.
  std::vector<ProcessId> live_processes_on(MachineId machine) const;

  std::uint64_t open_sessions(MachineId machine) const;
  std::uint64_t process_sessions(ProcessId process) const;
  std::uint64_t total_open_sessions() const noexcept;

  /// Migrates roughly `fraction` of processes to new machines — the
  /// paper's dynamic process<->machine mapping ("they can migrate between
  /// servers to balance load"). Sessions already pinned keep their
  /// (machine, process) identity; only future placements see the change.
  /// Dead processes do not move. Returns how many processes moved.
  std::size_t migrate_processes(double fraction);

 private:
  void check_machine(MachineId machine, const char* what) const;
  void check_process(ProcessId process, const char* what) const;

  std::size_t machines_;
  std::vector<MachineId> process_machine_;   // index = process id - 1
  std::vector<std::vector<ProcessId>> machine_processes_;
  std::vector<std::uint64_t> open_sessions_;
  std::vector<std::uint64_t> proc_sessions_;  // index = process id - 1
  std::vector<char> dead_;                    // index = process id - 1
  std::vector<std::size_t> dead_on_machine_;  // dead procs per machine
  Rng rng_;
};

}  // namespace u1
