// Fig. 3(c): file and directory lifetime CDFs.
#include "analysis/node_lifetime.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  NodeLifetimeAnalyzer life;
  auto sim = run_into(life, cfg);

  header("Fig 3(c)", "File/directory lifetime");
  row("files deleted within the month", 0.289,
      life.file_deleted_fraction(30 * kDay));
  row("dirs deleted within the month", 0.315,
      life.dir_deleted_fraction(30 * kDay));
  row("files deleted within 8 hours", 0.171,
      life.file_deleted_fraction(8 * kHour));
  row("dirs deleted within 8 hours", 0.129,
      life.dir_deleted_fraction(8 * kHour));

  if (!life.file_lifetimes().empty() && !life.dir_lifetimes().empty()) {
    Ecdf files{std::vector<double>(life.file_lifetimes())};
    Ecdf dirs{std::vector<double>(life.dir_lifetimes())};
    std::printf("\n  lifetime CDF over deleted nodes (seconds):\n");
    std::printf("  %-8s %10s %10s\n", "x", "files", "dirs");
    for (const auto& [label, x] :
         std::vector<std::pair<const char*, double>>{{"1s", 1},
                                                     {"1m", 60},
                                                     {"10m", 600},
                                                     {"1h", 3600},
                                                     {"8h", 28800},
                                                     {"1d", 86400},
                                                     {"1w", 604800}}) {
      std::printf("  %-8s %10.3f %10.3f\n", label, files.at(x), dirs.at(x));
    }
  }
  note("paper: file and directory lifetime distributions are similar "
       "because deleting a directory deletes its contents");
  return 0;
}
