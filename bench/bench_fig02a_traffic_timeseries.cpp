// Fig. 2(a): upload/download GBytes per hour over one week, with the
// paper's "uploads up to 10x higher mid-day than at night" finding.
#include "analysis/traffic.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  // The paper plots the week of Jan 20-27 (days 9..16 of the window) —
  // deliberately a quiet week with no attacks.
  const auto cfg = standard_config(env_users(), env_days(17));
  TrafficAnalyzer traffic(0, cfg.days * kDay);
  auto sim = run_into(traffic, cfg);

  header("Fig 2(a)", "Transferred traffic time-series (GBytes/hour)");
  std::printf("  hour-of-week series for days 9..16 (Jan 20 .. Jan 27):\n");
  std::printf("  %-22s %14s %14s\n", "time", "upload GB/h", "download GB/h");
  const auto& up = traffic.upload_bytes_hourly();
  const auto& down = traffic.download_bytes_hourly();
  for (std::size_t i = 0; i < up.bins(); ++i) {
    const SimTime t = up.bin_start(i);
    if (day_index(t) < 9 || day_index(t) > 16) continue;
    if (hour_of_day(t) % 4 != 0) continue;  // print every 4h for brevity
    std::printf("  %-22s %14.3f %14.3f\n", format_timestamp(t).c_str(),
                up.value(i) / 1e9, down.value(i) / 1e9);
  }
  row("mid-day vs night upload swing (x)", 10.0, traffic.diurnal_swing());
  note("paper: volume of uploaded GBytes/hour up to 10x higher in central "
       "day hours than at night");
  return 0;
}
