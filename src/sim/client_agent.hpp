// A simulated U1 desktop client (§3.3). The agent mirrors the local state
// a real client keeps in ~/.cache/ubuntuone (volumes, directories, files)
// and drives the back-end through the same operation sequences the paper
// observed: session handshake (caps, ListVolumes, ListShares), bursty runs
// of storage operations chosen by the Fig. 8 transition chain, cold vs
// active sessions, and working-hour connection habits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/backend.hpp"
#include "util/rng.hpp"
#include "workload/burst.hpp"
#include "workload/content_pool.hpp"
#include "workload/diurnal.hpp"
#include "workload/file_model.hpp"
#include "workload/transitions.hpp"
#include "workload/user_model.hpp"

namespace u1 {

/// Shared, read-only workload machinery handed to every agent.
struct WorkloadContext {
  const FileModel* files = nullptr;
  ContentPool* contents = nullptr;  // shared mutable pool (dedup corpus)
  const UserModel* users = nullptr;
  const TransitionModel* transitions = nullptr;
  const DiurnalModel* diurnal = nullptr;
  const BurstProcess* bursts = nullptr;
};

class ClientAgent {
 public:
  ClientAgent(UserId user, UserProfile profile, UserAccount account,
              WorkloadContext ctx, Rng rng);

  UserId user() const noexcept { return user_; }
  const UserProfile& profile() const noexcept { return profile_; }
  bool connected() const noexcept { return connected_; }
  std::size_t file_count() const noexcept { return files_.size(); }

  /// Advances the agent one step at time `now` against the back-end and
  /// returns when it wants to be woken next.
  SimTime on_wake(U1Backend& backend, SimTime now);

  /// Seeds the user's namespace with `n` pre-existing files through real
  /// uploads (used for the pre-trace bootstrap phase).
  void bootstrap(U1Backend& backend, SimTime now, std::size_t n);

  /// Worker hook: frees the client-side namespace mirror (volumes, dirs,
  /// file records) of an agent that will never wake in this process.
  /// The distributed engine calls this right after replaying a remote
  /// user's bootstrap — the mirror is per-file state and would otherwise
  /// hold the cluster-wide bootstrap working set in every worker. The
  /// profile and RNG stay intact (schedule_population_start still reads
  /// them); calling this on an agent that later wakes is a logic error.
  void shed_namespace_mirror() {
    volumes_.clear();
    volumes_.shrink_to_fit();
    dirs_.clear();
    dirs_.shrink_to_fit();
    files_.clear();
    files_.shrink_to_fit();
    recent_downloads_.clear();
    recent_downloads_.shrink_to_fit();
  }

 private:
  struct FileRec {
    NodeId node;
    VolumeId volume;
    NodeId parent;
    std::string extension;
    FileCategory category = FileCategory::kOther;
    ContentId content;  // last uploaded hash (same-content re-uploads)
    std::uint64_t size = 0;
    double update_affinity = 0;
    bool has_content = false;
  };
  struct DirRec {
    NodeId node;
    VolumeId volume;
  };
  struct VolRec {
    VolumeId id;
    NodeId root;
    bool is_udf = false;
  };

  SimTime connect_and_handshake(U1Backend& backend, SimTime now);
  SimTime perform_action(U1Backend& backend, SimTime now);
  SimTime schedule_reconnect(SimTime now);

  /// An upload a fault cut mid-transfer; retried (resume or restart)
  /// before any new work on the next wakes, up to kMaxUploadAttempts.
  struct PendingUpload {
    bool active = false;
    NodeId node;
    ContentId content;
    std::uint64_t size = 0;
    bool is_update = false;
    UploadJobId job;  // nil = no committed parts, restart from scratch
    int attempts = 0;
  };
  SimTime retry_pending_upload(U1Backend& backend, SimTime now);
  void note_interrupted_upload(const Response& up, NodeId node,
                               const ContentId& content, std::uint64_t size,
                               bool is_update);
  void apply_upload_success(NodeId node, const ContentId& content,
                            std::uint64_t size);

  // Action realizations; each returns the completion time.
  SimTime act_upload_new(U1Backend& backend, SimTime now);
  SimTime act_upload_update(U1Backend& backend, SimTime now);
  SimTime act_download(U1Backend& backend, SimTime now);
  SimTime act_unlink(U1Backend& backend, SimTime now);
  SimTime act_move(U1Backend& backend, SimTime now);
  SimTime act_make_dir(U1Backend& backend, SimTime now);
  SimTime act_create_udf(U1Backend& backend, SimTime now);
  SimTime act_delete_volume(U1Backend& backend, SimTime now);
  SimTime act_get_delta(U1Backend& backend, SimTime now);

  const VolRec& pick_volume(Rng& rng) const;
  /// Picks a parent directory within a volume (its root or a subdir).
  NodeId pick_parent(const VolRec& vol, Rng& rng) const;
  /// Index into files_ biased toward recently-created entries (RAW / short
  /// lifetimes); returns npos when empty.
  std::size_t pick_file(bool prefer_recent, Rng& rng) const;
  void forget_dir(NodeId dir);
  void forget_volume(VolumeId volume);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  UserId user_;
  UserProfile profile_;
  UserAccount account_;
  WorkloadContext ctx_;
  Rng rng_;

  std::vector<VolRec> volumes_;
  std::vector<DirRec> dirs_;
  std::vector<FileRec> files_;

  bool connected_ = false;
  SessionId session_;
  SimTime session_ends_ = 0;
  std::uint64_t ops_left_ = 0;
  ClientAction prev_action_ = ClientAction::kGetDelta;
  int consecutive_auth_failures_ = 0;
  /// Dropped-session / load-shed streak, reset on a successful connect.
  int reconnect_failures_ = 0;
  PendingUpload pending_;
  static constexpr int kMaxUploadAttempts = 8;
  /// Extra ops spent by the last action beyond one (batch uploads).
  std::uint64_t last_batch_extra_ = 0;
  /// Recently downloaded files: deletes and edits often follow a read on
  /// the same node (the DAR/WAR dependencies of Fig. 3b). Bounded queue,
  /// most recent at the back.
  std::vector<NodeId> recent_downloads_;
  NodeId last_download_;
  void remember_download(NodeId node);
  /// Pops a recently-downloaded node still present in files_; npos-like
  /// nil when none.
  NodeId take_recent_download();
};

}  // namespace u1
