// Empirical CDF — the workhorse behind almost every figure in the paper
// (service-time CDFs, session-length CDFs, file-size CDFs, lifetime CDFs...).
#pragma once

#include <span>
#include <vector>

namespace u1 {

/// Immutable empirical distribution built from a sample.
class Ecdf {
 public:
  Ecdf() = default;
  /// Takes the sample by value (move it in — benches should not copy a
  /// month of observations) and sorts it. Throws std::invalid_argument
  /// if empty.
  explicit Ecdf(std::vector<double> sample);

  /// Fast path for already-sorted input (quantile-sketch samples come
  /// out sorted): skips the O(n log n) sort after an O(n) verification.
  /// Throws std::invalid_argument if empty or unsorted.
  static Ecdf from_sorted(std::vector<double> sorted_sample);

  /// Fraction of the sample <= x, in [0, 1].
  double at(double x) const noexcept;

  /// q-quantile for q in [0, 1] (linear interpolation between order
  /// statistics). Throws std::domain_error if q outside [0,1].
  double quantile(double q) const;

  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }
  std::size_t size() const noexcept { return sorted_.size(); }
  bool empty() const noexcept { return sorted_.empty(); }

  /// Sorted sample, ascending.
  std::span<const double> sorted() const noexcept { return sorted_; }

  /// Evaluate the CDF at each of the given x-points; used by the bench
  /// harness to print figure series on a fixed grid.
  std::vector<double> evaluate(std::span<const double> xs) const;

  /// Complementary CDF P(X > x) on the sample's own support, one point per
  /// distinct value — the log-log CCDF plot of Fig. 9(b).
  std::vector<std::pair<double, double>> ccdf_points() const;

 private:
  std::vector<double> sorted_;
};

/// Convenience: x grid with n points log-spaced over [lo, hi].
std::vector<double> log_space(double lo, double hi, std::size_t n);

/// Convenience: x grid with n points linearly spaced over [lo, hi].
std::vector<double> lin_space(double lo, double hi, std::size_t n);

}  // namespace u1
