// File size & type analysis (paper §5.3, Fig. 4b/4c): per-extension file
// size distributions, the global "90% of files < 1MB" CDF, and the
// count-share vs storage-share scatter of the 7 file categories. A file is
// counted once, at its first upload (updates change the size in place).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/sharded.hpp"
#include "stats/sketch.hpp"
#include "trace/sink.hpp"
#include "trace/symbols.hpp"
#include "workload/file_model.hpp"

namespace u1 {

class FileTypeAnalyzer final : public TraceSink, public ShardedAnalyzer {
 public:
  void append(const TraceRecord& record) override;

  // ShardedAnalyzer: each shard keeps the same per-node latest-size map
  // the merged path does (a node's uploads all land in one group, so the
  // maps are disjoint and merge exactly — "latest version" semantics are
  // impossible to stream without per-key state, since an update would
  // have to retract the old size from any histogram). finish() then
  // derives the bounded-size query substrate from the merged map: a
  // log-binned size histogram (~4% relative resolution at 16
  // bins/octave), per-extension histograms, and a count-min sketch of
  // extension tallies — so sharded accessors return O(bins) grids, never
  // O(files) vectors, and answers match the merged path up to histogram
  // resolution (distinct-file counts and category shares are exact).
  std::unique_ptr<AnalyzerShard> make_shard() override;
  void merge_shard(AnalyzerShard& shard) override;
  void finish() override;

  /// Sizes (bytes) of distinct files, overall and for one extension. On
  /// the sharded path these are sorted quantile grids from the log
  /// histograms, not exact per-file lists.
  std::vector<double> all_sizes() const;
  std::vector<double> sizes_of(const std::string& extension) const;

  /// Fraction of files smaller than `bytes` (paper: 0.90 below 1MB).
  double fraction_below(double bytes) const;

  struct CategoryShare {
    FileCategory category;
    double file_share = 0;     // fraction of files
    double storage_share = 0;  // fraction of bytes
  };
  /// The Fig. 4c scatter, one entry per category that appeared.
  std::vector<CategoryShare> category_shares() const;

  /// Extensions ordered by file count (most popular first).
  std::vector<std::string> popular_extensions(std::size_t top_n) const;

  std::uint64_t distinct_files() const noexcept {
    return sharded_ ? distinct_files_ : files_.size();
  }

 private:
  class Shard;

  struct FileInfo {
    std::uint64_t size = 0;
    std::uint16_t ext_index = 0;
  };
  std::uint16_t intern(Symbol label, std::string_view extension);

  std::unordered_map<NodeId, FileInfo> files_;
  std::vector<std::string> extensions_;  // interned extension names
  std::unordered_map<std::string, std::uint16_t> ext_index_;
  /// Record label -> ext_index fast path: the hot append never hashes
  /// the extension string, only its global symbol id.
  std::unordered_map<Symbol, std::uint16_t> label_index_;

  // Sharded-path state (populated by merge_shard).
  bool sharded_ = false;
  LogHistogram sizes_hist_{1.0, 16, 1024};
  std::array<std::uint64_t, kFileCategoryCount> cat_count_{};
  std::array<double, kFileCategoryCount> cat_bytes_{};
  CountMinSketch ext_cms_{4096, 4, 0x115e7};
  std::unordered_map<Symbol, LogHistogram> ext_hists_;
  std::unordered_map<std::string, Symbol> ext_syms_;
  std::uint64_t distinct_files_ = 0;
};

}  // namespace u1
