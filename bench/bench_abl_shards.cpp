// Ablation (§7.2): shard count sweep. Drives the back-end directly with a
// synthetic write storm near the single-shard capacity limit to expose
// the queueing knee, and reports the load-balance statistics of the
// user-per-shard routing at each cluster size.
#include <vector>

#include "bench/bench_util.hpp"
#include "server/backend.hpp"
#include "stats/summary.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;

  header("Ablation", "Metadata cluster shard count sweep");
  std::printf("  Write storm: 64 users, Poisson arrivals at ~80%% of one "
              "master's write capacity.\n\n");
  std::printf("  %-8s %14s %14s %14s\n", "shards", "mean op (ms)",
              "p99-ish (ms)", "shard cv");

  for (const std::size_t shards : {1u, 2u, 5u, 10u, 20u, 40u}) {
    BackendConfig cfg;
    cfg.shards = shards;
    cfg.auth_failure_rate = 0.0;
    cfg.seed = 99;
    NullSink sink;
    U1Backend backend(cfg, sink);

    constexpr int kUsers = 64;
    std::vector<SessionId> sessions;
    std::vector<UserAccount> accounts;
    for (int u = 1; u <= kUsers; ++u) {
      accounts.push_back(backend.register_user(UserId{(unsigned)u}, 0));
      const auto conn = backend.connect(UserId{(unsigned)u}, 0);
      sessions.push_back(conn.session);
    }

    // One shard master serves ~1/6ms writes => ~170/s. Drive the cluster
    // at 140 make_file()/s for 2 simulated minutes.
    Rng rng(7);
    ExponentialDist gap(140.0);  // arrivals per second
    RunningStats latency;
    std::vector<double> latencies;
    SimTime t = kMinute;
    std::vector<std::uint64_t> per_shard(shards, 0);
    for (int i = 0; i < 140 * 120; ++i) {
      t += from_seconds(gap.sample(rng));
      const std::size_t u = rng.below(kUsers);
      const auto mk = backend.make_file(
          sessions[u], accounts[u].root_volume, accounts[u].root_dir,
          "f" + std::to_string(i), "txt", t);
      const double ms = to_seconds(mk.end - t) * 1e3;
      latency.add(ms);
      latencies.push_back(ms);
      per_shard[backend.store().shard_of(UserId{u + 1}).value - 1]++;
    }
    RunningStats balance;
    for (const auto n : per_shard) balance.add(static_cast<double>(n));
    std::sort(latencies.begin(), latencies.end());
    const double p99 = latencies[latencies.size() * 99 / 100];
    std::printf("  %-8zu %14.2f %14.2f %14.3f\n", shards, latency.mean(),
                p99, balance.cv());
  }
  note("shape: a single master saturates (queueing blow-up); ~10 shards "
       "absorb the load — the paper's cluster served 1.29M users on 10 "
       "shards without congestion symptoms");
  return 0;
}
