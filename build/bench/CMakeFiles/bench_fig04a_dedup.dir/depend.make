# Empty dependencies file for bench_fig04a_dedup.
# This may be replaced when dependencies are built.
