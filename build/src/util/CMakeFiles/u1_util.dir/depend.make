# Empty dependencies file for u1_util.
# This may be replaced when dependencies are built.
