# Empty compiler generated dependencies file for bench_fig06_online_active.
# This may be replaced when dependencies are built.
