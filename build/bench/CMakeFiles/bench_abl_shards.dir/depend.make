# Empty dependencies file for bench_abl_shards.
# This may be replaced when dependencies are built.
