# Empty dependencies file for bench_fig04b_sizes_by_ext.
# This may be replaced when dependencies are built.
