// The user population model (§6):
//  - class mix measured in the paper: 85.82% occasional, 7.22% upload-only,
//    2.34% download-only, 4.62% heavy;
//  - activity across users is extremely skewed: 1% of users generate 65.6%
//    of the traffic (Gini ≈ 0.89, Fig. 7c) — modeled with a Pareto
//    activity multiplier;
//  - 58% of users have user-defined volumes, 1.8% have shares (Fig. 11);
//  - sessions: 97% shorter than 8h, 32% shorter than 1s (NAT/firewall
//    resets), dominated by home-user working habits (Fig. 16);
//  - only 5.57% of sessions perform any storage operation, and ops per
//    active session are heavy-tailed (80% ≤ 92 ops, top 20% = 96.7%).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

enum class UserClass : std::uint8_t {
  kOccasional,
  kUploadOnly,
  kDownloadOnly,
  kHeavy,
};
inline constexpr std::size_t kUserClassCount = 4;

std::string_view to_string(UserClass c) noexcept;

/// Per-user static traits, drawn once at population build time.
struct UserProfile {
  UserClass user_class = UserClass::kOccasional;
  /// Multiplies the base storage-op rate; Pareto-tailed so the top 1%
  /// carries most of the traffic.
  double activity = 1.0;
  /// Sessions per day (connection habit, diurnal-modulated at runtime).
  double sessions_per_day = 1.0;
  /// Number of user-defined volumes this user will eventually create
  /// (0 for the 42% who only use the root volume).
  std::uint32_t udf_volumes = 0;
  /// Whether this user shares a volume with someone (1.8% in the paper).
  bool sharer = false;
  /// Probability a given session of this user is active (issues storage
  /// ops) rather than cold.
  double active_session_prob = 0.05;
};

struct UserModelParams {
  double p_occasional = 0.8582;
  double p_upload_only = 0.0722;
  double p_download_only = 0.0234;
  double p_heavy = 0.0462;
  /// Pareto shape of the activity multiplier (smaller -> heavier tail).
  double activity_alpha = 1.25;
  double p_has_udf = 0.58;
  double p_sharer = 0.018;
};

class UserModel {
 public:
  explicit UserModel(const UserModelParams& params = {});

  UserProfile sample(Rng& rng) const;

  const UserModelParams& params() const noexcept { return params_; }

  /// Session length sampler (Fig. 16): a mixture of instant NAT-killed
  /// connections (~32% < 1s), short app restarts, and work-day sessions,
  /// with 97% below 8 hours.
  SimTime sample_session_length(Rng& rng) const;

  /// Ops budget for an *active* session: heavy-tailed (inner Fig. 16).
  std::uint64_t sample_session_ops(UserClass user_class, Rng& rng) const;

 private:
  UserModelParams params_;
  WeightedDiscrete class_mix_;
};

}  // namespace u1
