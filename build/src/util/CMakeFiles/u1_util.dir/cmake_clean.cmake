file(REMOVE_RECURSE
  "CMakeFiles/u1_util.dir/csv.cpp.o"
  "CMakeFiles/u1_util.dir/csv.cpp.o.d"
  "CMakeFiles/u1_util.dir/rng.cpp.o"
  "CMakeFiles/u1_util.dir/rng.cpp.o.d"
  "CMakeFiles/u1_util.dir/sha1.cpp.o"
  "CMakeFiles/u1_util.dir/sha1.cpp.o.d"
  "CMakeFiles/u1_util.dir/sim_time.cpp.o"
  "CMakeFiles/u1_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/u1_util.dir/strings.cpp.o"
  "CMakeFiles/u1_util.dir/strings.cpp.o.d"
  "CMakeFiles/u1_util.dir/uuid.cpp.o"
  "CMakeFiles/u1_util.dir/uuid.cpp.o.d"
  "libu1_util.a"
  "libu1_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
