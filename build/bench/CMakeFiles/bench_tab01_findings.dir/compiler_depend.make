# Empty compiler generated dependencies file for bench_tab01_findings.
# This may be replaced when dependencies are built.
