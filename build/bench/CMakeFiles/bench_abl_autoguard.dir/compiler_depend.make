# Empty compiler generated dependencies file for bench_abl_autoguard.
# This may be replaced when dependencies are built.
