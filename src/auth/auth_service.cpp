#include "auth/auth_service.hpp"

#include <stdexcept>

namespace u1 {

AuthService::AuthService(std::uint64_t seed, double failure_rate)
    : rng_(seed), failure_rate_(failure_rate) {
  if (failure_rate < 0.0 || failure_rate >= 1.0)
    throw std::invalid_argument("AuthService: failure_rate not in [0,1)");
}

std::optional<AuthToken> AuthService::issue_token(UserId user, SimTime now) {
  ++stats_.issue_requests;
  if (rng_.chance(failure_rate_)) {
    ++stats_.failures;
    return std::nullopt;
  }
  AuthToken token;
  token.id = Uuid::v4(rng_);
  token.user = user;
  token.issued_at = now;
  tokens_.emplace(token.id, token);
  return token;
}

std::optional<UserId> AuthService::verify_token(const TokenId& token,
                                                SimTime /*now*/) {
  ++stats_.verify_requests;
  if (rng_.chance(failure_rate_)) {
    ++stats_.failures;
    return std::nullopt;
  }
  const auto it = tokens_.find(token);
  if (it == tokens_.end() || it->second.revoked) {
    ++stats_.rejects;
    return std::nullopt;
  }
  return it->second.user;
}

bool AuthService::revoke_user_tokens(UserId user) {
  bool any = false;
  for (auto& [id, token] : tokens_) {
    if (token.user == user && !token.revoked) {
      token.revoked = true;
      any = true;
    }
  }
  return any;
}

}  // namespace u1
