// Fig. 13: median service time vs operation count per RPC, colored by the
// read / write / cascade classification.
#include "analysis/rpc_perf.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  RpcPerfAnalyzer rpcs;
  auto sim = run_into(rpcs, cfg);

  header("Fig 13", "Median service time vs frequency per RPC");
  std::printf("  %-34s %-8s %12s %12s\n", "rpc", "class", "count",
              "median(ms)");
  const auto scatter = rpcs.scatter();
  double fastest_read = 1e9, slowest_cascade = 0;
  for (const auto& p : scatter) {
    std::printf("  %-34s %-8s %12llu %12.2f\n",
                std::string(to_string(p.op)).c_str(),
                std::string(to_string(p.rpc_class)).c_str(),
                static_cast<unsigned long long>(p.count),
                p.median_s * 1e3);
    if (p.rpc_class == RpcClass::kRead)
      fastest_read = std::min(fastest_read, p.median_s);
    if (p.rpc_class == RpcClass::kCascade)
      slowest_cascade = std::max(slowest_cascade, p.median_s);
  }
  std::printf("\n");
  row("slowest cascade / fastest read (x)", 10.0,
      fastest_read > 0 ? slowest_cascade / fastest_read : 0.0);
  note("paper: cascade RPCs are more than an order of magnitude slower "
       "than the fastest reads, but relatively infrequent; writes are "
       "slower than reads at comparable frequency");
  return 0;
}
