file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03b_after_read.dir/bench_fig03b_after_read.cpp.o"
  "CMakeFiles/bench_fig03b_after_read.dir/bench_fig03b_after_read.cpp.o.d"
  "bench_fig03b_after_read"
  "bench_fig03b_after_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03b_after_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
