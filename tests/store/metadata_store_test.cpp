#include "store/metadata_store.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/sha1.hpp"

namespace u1 {
namespace {

class MetadataStoreTest : public ::testing::Test {
 protected:
  MetadataStoreTest() : store_(10, 7) {}

  Volume add_user(std::uint64_t id) {
    return store_.create_user(UserId{id}, kHour);
  }

  MetadataStore store_;
};

TEST_F(MetadataStoreTest, RoutingIsStableAndBalanced) {
  std::vector<int> counts(10, 0);
  for (std::uint64_t u = 1; u <= 10000; ++u) {
    const ShardId s = store_.shard_of(UserId{u});
    ASSERT_GE(s.value, 1u);
    ASSERT_LE(s.value, 10u);
    EXPECT_EQ(s, store_.shard_of(UserId{u}));  // stable
    counts[s.value - 1]++;
  }
  // With 10k users over 10 shards each shard should get ~1000 +/- 15%.
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST_F(MetadataStoreTest, CreateUserTouchesExactlyOneShard) {
  add_user(1);
  EXPECT_EQ(store_.shards_touched().size(), 1u);
  EXPECT_EQ(store_.shards_touched()[0], store_.shard_of(UserId{1}));
  EXPECT_TRUE(store_.has_user(UserId{1}));
  EXPECT_EQ(store_.total_users(), 1u);
}

TEST_F(MetadataStoreTest, ListVolumesIncludesUdfs) {
  add_user(1);
  store_.create_udf(UserId{1}, 2 * kHour);
  const auto vols = store_.list_volumes(UserId{1});
  ASSERT_EQ(vols.size(), 2u);
}

TEST_F(MetadataStoreTest, SharingIsCrossShard) {
  // Find two users on different shards.
  std::uint64_t u1 = 1, u2 = 2;
  while (store_.shard_of(UserId{u2}) == store_.shard_of(UserId{u1})) ++u2;
  const Volume va = add_user(u1);
  add_user(u2);
  store_.share_volume(UserId{u1}, va.id, UserId{u2}, kHour);
  EXPECT_EQ(store_.shards_touched().size(), 2u);

  const auto shares = store_.list_shares(UserId{u2});
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].kind, VolumeKind::kShared);
  EXPECT_EQ(shares[0].owner, (UserId{u1}));
  EXPECT_EQ(shares[0].shared_to, (UserId{u2}));
  // list_shares resolved a foreign volume: two shards touched.
  EXPECT_EQ(store_.shards_touched().size(), 2u);
  // The shared volume also shows up in ListVolumes (Table 2).
  EXPECT_EQ(store_.list_volumes(UserId{u2}).size(), 2u);
}

TEST_F(MetadataStoreTest, NonSharingOpsStaySingleShard) {
  const Volume v = add_user(1);
  store_.make_file(UserId{1}, v.id, v.root_dir, "f", "txt", kHour);
  EXPECT_EQ(store_.shards_touched().size(), 1u);
  store_.get_delta(UserId{1}, v.id, 0);
  EXPECT_EQ(store_.shards_touched().size(), 1u);
}

TEST_F(MetadataStoreTest, MakeContentDeduplicates) {
  const Volume v = add_user(1);
  const Node f1 = store_.make_file(UserId{1}, v.id, v.root_dir, "f1", "mp3",
                                   kHour);
  const Node f2 = store_.make_file(UserId{1}, v.id, v.root_dir, "f2", "mp3",
                                   kHour);
  const ContentId c = Sha1::of("song");
  // First upload: content unknown.
  EXPECT_FALSE(store_.get_reusable_content(c, 1000).has_value());
  store_.make_content(UserId{1}, f1.id, c, 1000, "s3/song");
  // Second user uploads the same song: dedup hit, no transfer needed.
  EXPECT_TRUE(store_.get_reusable_content(c, 1000).has_value());
  store_.make_content(UserId{1}, f2.id, c, 1000, "s3/song");
  EXPECT_EQ(store_.contents().unique_bytes(), 1000u);
  EXPECT_EQ(store_.contents().logical_bytes(), 2000u);
  EXPECT_DOUBLE_EQ(store_.contents().dedup_ratio(), 0.5);
}

TEST_F(MetadataStoreTest, UpdateReleasesOldContent) {
  const Volume v = add_user(1);
  const Node f = store_.make_file(UserId{1}, v.id, v.root_dir, "f", "doc",
                                  kHour);
  store_.make_content(UserId{1}, f.id, Sha1::of("v1"), 10, "s3/v1");
  const auto dead =
      store_.make_content(UserId{1}, f.id, Sha1::of("v2"), 12, "s3/v2");
  ASSERT_TRUE(dead.has_value());  // v1 orphaned
  EXPECT_EQ(dead->s3_key, "s3/v1");
}

TEST_F(MetadataStoreTest, UnlinkReportsDeadBlobs) {
  const Volume v = add_user(1);
  const Node f = store_.make_file(UserId{1}, v.id, v.root_dir, "f", "",
                                  kHour);
  store_.make_content(UserId{1}, f.id, Sha1::of("x"), 5, "s3/x");
  const auto dead = store_.unlink_node(UserId{1}, f.id);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].s3_key, "s3/x");
}

TEST_F(MetadataStoreTest, SharedContentSurvivesOneUnlink) {
  const Volume v = add_user(1);
  const Node f1 = store_.make_file(UserId{1}, v.id, v.root_dir, "f1", "",
                                   kHour);
  const Node f2 = store_.make_file(UserId{1}, v.id, v.root_dir, "f2", "",
                                   kHour);
  const ContentId c = Sha1::of("shared");
  store_.make_content(UserId{1}, f1.id, c, 5, "s3/s");
  store_.make_content(UserId{1}, f2.id, c, 5, "s3/s");
  EXPECT_TRUE(store_.unlink_node(UserId{1}, f1.id).empty());
  const auto dead = store_.unlink_node(UserId{1}, f2.id);
  ASSERT_EQ(dead.size(), 1u);
}

TEST_F(MetadataStoreTest, DeleteVolumeCascade) {
  add_user(1);
  const Volume udf = store_.create_udf(UserId{1}, kHour);
  const Node f = store_.make_file(UserId{1}, udf.id, udf.root_dir, "f", "",
                                  kHour);
  store_.make_content(UserId{1}, f.id, Sha1::of("d"), 9, "s3/d");
  const auto dead = store_.delete_volume(UserId{1}, udf.id);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(store_.list_volumes(UserId{1}).size(), 1u);
}

TEST_F(MetadataStoreTest, UploadJobFlow) {
  const Volume v = add_user(1);
  const Node f = store_.make_file(UserId{1}, v.id, v.root_dir, "big", "zip",
                                  kHour);
  const UploadJob job = store_.make_uploadjob(UserId{1}, f.id,
                                              Sha1::of("big"), 20 << 20,
                                              kHour);
  store_.set_uploadjob_multipart_id(UserId{1}, job.id, "mpu-1");
  EXPECT_EQ(store_.add_part_to_uploadjob(UserId{1}, job.id, 5 << 20,
                                         kHour + kMinute),
            5u << 20);
  EXPECT_EQ(store_.add_part_to_uploadjob(UserId{1}, job.id, 5 << 20,
                                         kHour + 2 * kMinute),
            10u << 20);
  const auto fetched = store_.get_uploadjob(UserId{1}, job.id);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->parts, 2u);
  EXPECT_EQ(fetched->multipart_id, "mpu-1");
  store_.delete_uploadjob(UserId{1}, job.id);
  EXPECT_FALSE(store_.get_uploadjob(UserId{1}, job.id).has_value());
}

TEST_F(MetadataStoreTest, UploadJobGc) {
  const Volume v = add_user(1);
  const Node f = store_.make_file(UserId{1}, v.id, v.root_dir, "f", "",
                                  kHour);
  const UploadJob stale =
      store_.make_uploadjob(UserId{1}, f.id, Sha1::of("a"), 1, kDay);
  store_.set_uploadjob_multipart_id(UserId{1}, stale.id, "mpu-stale");
  const UploadJob fresh = store_.make_uploadjob(UserId{1}, f.id,
                                                Sha1::of("b"), 1, 10 * kDay);
  // GC with the paper's one-week cutoff; the collected rows come back so
  // the caller (U1Backend::maintenance) can abort their S3 multiparts.
  const auto collected = store_.gc_uploadjobs(9 * kDay);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].id, stale.id);
  EXPECT_EQ(collected[0].multipart_id, "mpu-stale");
  EXPECT_FALSE(store_.get_uploadjob(UserId{1}, stale.id).has_value());
  EXPECT_TRUE(store_.get_uploadjob(UserId{1}, fresh.id).has_value());
}

TEST_F(MetadataStoreTest, UploadJobGcCutoffIsStrict) {
  const Volume v = add_user(1);
  const Node f = store_.make_file(UserId{1}, v.id, v.root_dir, "f", "",
                                  kHour);
  // last_touched == cutoff survives: the GC predicate is strictly-older.
  const UploadJob at_cutoff =
      store_.make_uploadjob(UserId{1}, f.id, Sha1::of("a"), 1, kDay);
  EXPECT_TRUE(store_.gc_uploadjobs(kDay).empty());
  EXPECT_TRUE(store_.get_uploadjob(UserId{1}, at_cutoff.id).has_value());
  EXPECT_EQ(store_.gc_uploadjobs(kDay + 1).size(), 1u);
}

TEST_F(MetadataStoreTest, TouchedUploadJobSurvivesGcAndKeepsParts) {
  const Volume v = add_user(1);
  const Node f = store_.make_file(UserId{1}, v.id, v.root_dir, "f", "",
                                  kHour);
  const UploadJob job = store_.make_uploadjob(UserId{1}, f.id, Sha1::of("a"),
                                              20 << 20, kDay);
  store_.set_uploadjob_multipart_id(UserId{1}, job.id, "mpu-1");
  store_.add_part_to_uploadjob(UserId{1}, job.id, 5 << 20, kDay);
  // A resume touches the row; the job then outlives a cutoff that would
  // otherwise have collected it, parts intact.
  store_.touch_uploadjob(UserId{1}, job.id, 9 * kDay);
  EXPECT_TRUE(store_.gc_uploadjobs(8 * kDay).empty());
  const auto fetched = store_.get_uploadjob(UserId{1}, job.id);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->parts, 1u);
  EXPECT_EQ(fetched->bytes_received, 5u << 20);
}

TEST_F(MetadataStoreTest, UnknownIdsThrow) {
  add_user(1);
  Rng rng(1);
  EXPECT_THROW(store_.set_uploadjob_multipart_id(UserId{1}, Uuid::v4(rng),
                                                 "x"),
               std::out_of_range);
  EXPECT_THROW(store_.add_part_to_uploadjob(UserId{1}, Uuid::v4(rng), 1, 0),
               std::out_of_range);
  EXPECT_THROW(store_.touch_uploadjob(UserId{1}, Uuid::v4(rng), 0),
               std::out_of_range);
  EXPECT_THROW(store_.share_volume(UserId{1}, Uuid::v4(rng), UserId{2}, 0),
               std::out_of_range);
}

TEST_F(MetadataStoreTest, RejectsZeroShards) {
  EXPECT_THROW(MetadataStore(0), std::invalid_argument);
}

TEST_F(MetadataStoreTest, GetRootAndGetNode) {
  const Volume v = add_user(1);
  EXPECT_EQ(store_.get_root(UserId{1}), v.root_dir);
  const auto node = store_.get_node(UserId{1}, v.root_dir);
  ASSERT_TRUE(node.has_value());
  EXPECT_TRUE(node->is_dir());
  Rng rng(2);
  EXPECT_FALSE(store_.get_node(UserId{1}, Uuid::v4(rng)).has_value());
}

}  // namespace
}  // namespace u1
