#include "workload/file_model.hpp"

#include <gtest/gtest.h>

#include <map>

namespace u1 {
namespace {

TEST(FileModel, NinetyPercentUnderOneMegabyte) {
  // The paper's headline file-size finding (Fig. 4b inner plot).
  FileModel model;
  Rng rng(1);
  int small = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng).size_bytes < 1024 * 1024) ++small;
  }
  const double frac = static_cast<double>(small) / n;
  EXPECT_GE(frac, 0.85);
  EXPECT_LE(frac, 0.95);
}

TEST(FileModel, SizesArePositiveAndBounded) {
  FileModel model;
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const FileSpec spec = model.sample(rng);
    EXPECT_GE(spec.size_bytes, 64u);
    EXPECT_LE(spec.size_bytes, 2048ull * 1024 * 1024);
    EXPECT_FALSE(spec.extension.empty());
  }
}

TEST(FileModel, CategoryCountSharesMatchFig4c) {
  FileModel model;
  Rng rng(3);
  std::map<FileCategory, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[model.sample(rng).category]++;
  // Code has the highest fraction of files (paper: ~0.3 of classified).
  EXPECT_GT(counts[FileCategory::kCode], counts[FileCategory::kAudioVideo]);
  EXPECT_GT(counts[FileCategory::kCode], counts[FileCategory::kCompressed]);
  EXPECT_GT(counts[FileCategory::kPics], counts[FileCategory::kAudioVideo]);
  // Audio/Video is a small fraction of files...
  EXPECT_LT(static_cast<double>(counts[FileCategory::kAudioVideo]) / n, 0.12);
}

TEST(FileModel, AudioVideoDominatesStorageShare) {
  // ...but a dominant share of bytes (Fig. 4c).
  FileModel model;
  Rng rng(4);
  std::map<FileCategory, double> bytes;
  double total = 0;
  for (int i = 0; i < 100000; ++i) {
    const FileSpec s = model.sample(rng);
    bytes[s.category] += static_cast<double>(s.size_bytes);
    total += static_cast<double>(s.size_bytes);
  }
  EXPECT_GT(bytes[FileCategory::kAudioVideo] / total, 0.15);
  // Code files are numerous but consume minimal storage.
  EXPECT_LT(bytes[FileCategory::kCode] / total, 0.05);
}

TEST(FileModel, MediaLargerThanCode) {
  FileModel model;
  Rng rng(5);
  double mp3_sum = 0, code_sum = 0;
  int mp3_n = 0, code_n = 0;
  for (int i = 0; i < 200000 && (mp3_n < 500 || code_n < 500); ++i) {
    const FileSpec s = model.sample(rng);
    if (s.extension == "mp3") {
      mp3_sum += static_cast<double>(s.size_bytes);
      ++mp3_n;
    } else if (s.category == FileCategory::kCode) {
      code_sum += static_cast<double>(s.size_bytes);
      ++code_n;
    }
  }
  ASSERT_GT(mp3_n, 100);
  ASSERT_GT(code_n, 100);
  EXPECT_GT(mp3_sum / mp3_n, 50.0 * (code_sum / code_n));
}

TEST(FileModel, CodeHasHighUpdateAffinity) {
  FileModel model;
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    const FileSpec s = model.sample(rng);
    if (s.category == FileCategory::kCode) EXPECT_GE(s.update_affinity, 0.4);
    if (s.extension == "jpg") EXPECT_LE(s.update_affinity, 0.1);
  }
}

TEST(FileModel, UpdateSizePerturbsGently) {
  FileModel model;
  Rng rng(7);
  FileSpec spec;
  spec.size_bytes = 100000;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t updated = model.sample_update_size(spec, rng);
    EXPECT_GE(updated, 80000u);
    EXPECT_LE(updated, 125000u);
  }
}

TEST(CategoryOf, KnownAndUnknownExtensions) {
  EXPECT_EQ(category_of("jpg"), FileCategory::kPics);
  EXPECT_EQ(category_of("py"), FileCategory::kCode);
  EXPECT_EQ(category_of("pdf"), FileCategory::kDocs);
  EXPECT_EQ(category_of("mp3"), FileCategory::kAudioVideo);
  EXPECT_EQ(category_of("zip"), FileCategory::kCompressed);
  EXPECT_EQ(category_of("o"), FileCategory::kBinary);
  EXPECT_EQ(category_of("weird"), FileCategory::kOther);
  EXPECT_EQ(category_of(""), FileCategory::kOther);
}

TEST(FileCategory, NamesMatchPaper) {
  EXPECT_EQ(to_string(FileCategory::kAudioVideo), "Audio/Video");
  EXPECT_EQ(to_string(FileCategory::kPics), "Pics");
}

TEST(FileModel, KnownExtensionsNonEmptyAndCategorized) {
  FileModel model;
  EXPECT_GE(model.known_extensions().size(), 25u);
  for (const auto ext : model.known_extensions()) {
    EXPECT_FALSE(ext.empty());
  }
}

}  // namespace
}  // namespace u1
