// Shared harness for the figure/table benches: runs the standard
// month-scale simulation once, streaming records into the caller's
// analyzers, and provides small printing helpers so every bench reports
// "paper vs measured" rows in the same format.
//
// Scale: the real trace covers 1.29M users; the default bench population
// is 8,000 (override with the U1SIM_USERS environment variable). All
// reproduced quantities are ratios, distributions and shapes, which are
// scale-free; absolute totals are reported per-user-normalized alongside.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "sim/simulation.hpp"
#include "trace/sink.hpp"

namespace u1::bench {

inline std::size_t env_users(std::size_t fallback = 8000) {
  if (const char* v = std::getenv("U1SIM_USERS")) {
    const long n = std::atol(v);
    if (n > 10) return static_cast<std::size_t>(n);
  }
  return fallback;
}

inline int env_days(int fallback = 30) {
  if (const char* v = std::getenv("U1SIM_DAYS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return fallback;
}

inline SimulationConfig standard_config(std::size_t users, int days,
                                        bool ddos = true) {
  SimulationConfig cfg;
  cfg.users = users;
  cfg.days = days;
  cfg.seed = 20140111;
  cfg.enable_ddos = ddos;
  return cfg;
}

/// Runs the simulation, streaming every record into `sink`; returns the
/// Simulation (whose back-end state outlives the run for snapshots).
inline std::unique_ptr<Simulation> run_into(TraceSink& sink,
                                            const SimulationConfig& cfg) {
  std::printf("# u1sim | users=%zu days=%d seed=%llu ddos=%s\n", cfg.users,
              cfg.days, static_cast<unsigned long long>(cfg.seed),
              cfg.enable_ddos ? "on" : "off");
  auto sim = std::make_unique<Simulation>(cfg, sink);
  const SimulationReport report = sim->run();
  std::printf("# trace: %llu sessions, %llu uploads, %llu downloads, "
              "%llu rpcs\n",
              static_cast<unsigned long long>(report.backend.sessions_opened),
              static_cast<unsigned long long>(report.backend.uploads),
              static_cast<unsigned long long>(report.backend.downloads),
              static_cast<unsigned long long>(report.backend.rpcs));
  return sim;
}

inline void header(const char* figure, const char* title) {
  std::printf("\n================================================="
              "=============\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("==================================================="
              "===========\n");
}

inline void row(const char* metric, double paper, double measured,
                const char* unit = "") {
  std::printf("  %-46s paper=%10.4g   measured=%10.4g %s\n", metric, paper,
              measured, unit);
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

}  // namespace u1::bench
