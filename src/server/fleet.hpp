// The API/RPC server fleet (§3.4): 6 racked machines running 8-16 API/RPC
// processes each, fronted by an HAProxy load balancer. Processes are more
// numerous than machines and migrate between them for load balancing; a
// session starts on the least-loaded machine and stays pinned to its
// process until it ends (§4).
//
// Fault support: processes (or whole machines) can be killed and later
// respawned; placement skips dead processes and machines with nothing
// alive, and an optional per-process session cap models load shedding
// (the balancer returns "try again" instead of overloading a process).
//
// Slow-start (HAProxy `slowstart`-style): with FleetConfig::slow_start
// > 0, a freshly-respawned process re-enters the balancer gradually over
// that window instead of counting as zero-load and absorbing every new
// placement (which would invert the failback it models). Two linear
// ramps drive this, both pure functions of (state, now):
//   * leastconn sees an effective machine load — real open sessions plus
//     a phantom load of (1 - ramp_fraction) x fleet-average sessions per
//     live process for each ramping process — so a restored machine
//     climbs back to parity instead of teleporting to "least loaded";
//   * a ramping process admits at most
//     max(1, floor(ramp_fraction x target)) sessions, target being the
//     per-process cap (or the fleet average when uncapped).
// With slow_start == 0, or while no process is ramping, placement takes
// the exact legacy code path and consumes the identical RNG stream.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "proto/ids.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct FleetConfig {
  std::size_t machines = 6;
  std::size_t processes_per_machine = 12;  // paper: 8-16
  /// Slow-start ramp window for respawned processes (0 = off).
  SimTime slow_start = 0;
};

class ServerFleet {
 public:
  explicit ServerFleet(const FleetConfig& config, std::uint64_t seed);

  std::size_t machine_count() const noexcept { return machines_; }
  std::size_t process_count() const noexcept {
    return process_machine_.size();
  }

  /// Machine currently hosting a process.
  MachineId machine_of(ProcessId process) const;

  /// Load-balancer placement: least-loaded machine (fewest open sessions),
  /// then a uniformly random process on it. Records the session.
  struct Placement {
    MachineId machine;
    ProcessId process;
  };
  /// nullopt when no live process has capacity (every machine dead, or —
  /// with per_process_cap > 0 — every live process is at the cap, or
  /// every candidate is held back by its slow-start ramp): the
  /// balancer's "try again later". With a healthy fleet and cap 0 this
  /// never fails and draws exactly one random number, preserving the
  /// faults-off placement stream. `now` feeds the slow-start ramps and
  /// is ignored while none are active.
  std::optional<Placement> place_session(std::uint64_t per_process_cap,
                                         SimTime now = 0);
  /// Healthy-fleet convenience (cap 0); throws std::logic_error if the
  /// whole fleet is down.
  Placement place_session();

  /// Releases a session slot previously granted by place_session().
  /// Idempotent under fault races: returns false (instead of throwing)
  /// when the slot was already released — e.g. a disconnect arriving
  /// after a crash already dropped the session. Still throws
  /// std::out_of_range for ids that never existed (programmer error).
  bool end_session(MachineId machine, ProcessId process);

  // --- fault hooks ---------------------------------------------------------
  /// Marks a process dead; its sessions must be dropped by the caller
  /// (the back-end owns session state). No-op if already dead. A dying
  /// process forfeits any slow-start ramp in progress.
  void kill_process(ProcessId process);
  /// Revives a process. `now` starts its slow-start ramp (when
  /// FleetConfig::slow_start > 0); without it the process re-enters at
  /// zero load and the next placements flood it.
  void respawn_process(ProcessId process, SimTime now = 0);
  /// Kills / restores every process currently on a machine.
  void kill_machine(MachineId machine);
  void restore_machine(MachineId machine, SimTime now = 0);
  bool process_alive(ProcessId process) const;
  /// Slow-start introspection: fraction of the ramp completed, in
  /// [0, 1]; 1.0 for processes not ramping (incl. slow_start == 0).
  double ramp_fraction(ProcessId process, SimTime now) const;
  bool in_slow_start(ProcessId process, SimTime now) const;
  /// A machine is placeable while it has >= 1 live process.
  bool machine_alive(MachineId machine) const;
  /// Live processes currently hosted on `machine`, in slot order.
  std::vector<ProcessId> live_processes_on(MachineId machine) const;

  std::uint64_t open_sessions(MachineId machine) const;
  std::uint64_t process_sessions(ProcessId process) const;
  std::uint64_t total_open_sessions() const noexcept;

  /// Migrates roughly `fraction` of processes to new machines — the
  /// paper's dynamic process<->machine mapping ("they can migrate between
  /// servers to balance load"). Sessions already pinned keep their
  /// (machine, process) identity; only future placements see the change.
  /// Dead processes do not move. Returns how many processes moved.
  std::size_t migrate_processes(double fraction);

 private:
  static constexpr SimTime kNoRamp = std::numeric_limits<SimTime>::min();

  void check_machine(MachineId machine, const char* what) const;
  void check_process(ProcessId process, const char* what) const;
  double ramp_fraction_at(std::size_t index, SimTime now) const;
  /// Retires ramps whose window has fully elapsed at `now`, restoring
  /// the zero-overhead legacy placement path.
  void expire_ramps(SimTime now);

  std::size_t machines_;
  SimTime slow_start_;
  std::vector<MachineId> process_machine_;   // index = process id - 1
  std::vector<std::vector<ProcessId>> machine_processes_;
  std::vector<std::uint64_t> open_sessions_;
  std::vector<std::uint64_t> proc_sessions_;  // index = process id - 1
  std::vector<char> dead_;                    // index = process id - 1
  std::vector<std::size_t> dead_on_machine_;  // dead procs per machine
  std::vector<SimTime> ramp_start_;           // kNoRamp = not ramping
  std::size_t ramping_ = 0;                   // processes mid-ramp
  Rng rng_;
};

}  // namespace u1
