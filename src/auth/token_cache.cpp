#include "auth/token_cache.hpp"

#include <stdexcept>

namespace u1 {

TokenCache::TokenCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("TokenCache: capacity 0");
}

std::optional<UserId> TokenCache::get(const TokenId& token) {
  const auto it = map_.find(token);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->user;
}

void TokenCache::put(const TokenId& token, UserId user) {
  const auto it = map_.find(token);
  if (it != map_.end()) {
    it->second->user = user;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    map_.erase(victim.token);
    lru_.pop_back();
  }
  lru_.push_front(Entry{token, user});
  map_.emplace(token, lru_.begin());
}

void TokenCache::erase(const TokenId& token) {
  const auto it = map_.find(token);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

double TokenCache::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace u1
