
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mq/message_queue_test.cpp" "tests/CMakeFiles/mq_tests.dir/mq/message_queue_test.cpp.o" "gcc" "tests/CMakeFiles/mq_tests.dir/mq/message_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mq/CMakeFiles/u1_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/u1_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
