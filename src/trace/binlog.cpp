#include "trace/binlog.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/sim_time.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define U1SIM_HAVE_MMAP 1
#endif

namespace u1 {
namespace {

// --- format constants -------------------------------------------------------

// PNG-style magic: a high byte no text encoding produces, the format
// name, then CRLF/EOF/LF bytes that catch ASCII-mode mangling. Never a
// valid CSV prefix, so the reader can sniff by the first 8 bytes.
constexpr std::array<unsigned char, 8> kLogMagic = {
    0x89, 'U', '1', 'B', 0x0D, 0x0A, 0x1A, 0x0A};
constexpr std::array<unsigned char, 8> kSymMagic = {
    0x89, 'U', '1', 'S', 0x0D, 0x0A, 0x1A, 0x0A};

constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kFileHeaderBytes = 64;
constexpr std::size_t kSidecarHeaderBytes = 48;
// payload_bytes:u32 record_count:u32 type_counts:u32[kRecordTypeCount]
constexpr std::size_t kStripeHeaderBytes = 8 + 4 * kRecordTypeCount;

// --- little-endian + varint primitives --------------------------------------

void put_le16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t get_le16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Raw-pointer variant for the encode hot loop: the caller reserves the
/// segment's worst case up front, so every write is unchecked.
std::uint8_t* put_varint(std::uint8_t* p, std::uint64_t v) noexcept {
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

// --- integrity checksum -----------------------------------------------------

/// XXH64 (Yann Collet's xxHash64 algorithm): the `.u1b`/`.u1s`
/// integrity checksum. It guards against torn writes and bit rot, not
/// adversaries — so a non-cryptographic hash that runs at memory speed
/// is the right tool; a SHA here would cost more than the entire
/// columnar encode.
class Xxh64 {
 public:
  Xxh64() noexcept { reset(); }

  void reset(std::uint64_t seed = 0) noexcept {
    v1_ = seed + kP1 + kP2;
    v2_ = seed + kP2;
    v3_ = seed;
    v4_ = seed - kP1;
    len_ = 0;
    buf_used_ = 0;
  }

  void update(const std::uint8_t* data, std::size_t len) noexcept {
    len_ += len;
    if (buf_used_ + len < kBlock) {
      std::memcpy(buf_ + buf_used_, data, len);
      buf_used_ += len;
      return;
    }
    if (buf_used_ > 0) {
      const std::size_t fill = kBlock - buf_used_;
      std::memcpy(buf_ + buf_used_, data, fill);
      data += fill;
      len -= fill;
      round_block(buf_);
      buf_used_ = 0;
    }
    while (len >= kBlock) {
      round_block(data);
      data += kBlock;
      len -= kBlock;
    }
    std::memcpy(buf_, data, len);
    buf_used_ = len;
  }

  std::uint64_t digest() const noexcept {
    std::uint64_t h;
    if (len_ >= kBlock) {
      h = rotl(v1_, 1) + rotl(v2_, 7) + rotl(v3_, 12) + rotl(v4_, 18);
      h = merge(h, v1_);
      h = merge(h, v2_);
      h = merge(h, v3_);
      h = merge(h, v4_);
    } else {
      h = v3_ + kP5;  // v3_ holds the seed until the first full block
    }
    h += len_;
    const std::uint8_t* p = buf_;
    const std::uint8_t* end = buf_ + buf_used_;
    for (; p + 8 <= end; p += 8) {
      h ^= round1(0, get_le64(p));
      h = rotl(h, 27) * kP1 + kP4;
    }
    if (p + 4 <= end) {
      h ^= static_cast<std::uint64_t>(get_le32(p)) * kP1;
      h = rotl(h, 23) * kP2 + kP3;
      p += 4;
    }
    for (; p < end; ++p) {
      h ^= *p * kP5;
      h = rotl(h, 11) * kP1;
    }
    h ^= h >> 33;
    h *= kP2;
    h ^= h >> 29;
    h *= kP3;
    h ^= h >> 32;
    return h;
  }

 private:
  static constexpr std::size_t kBlock = 32;
  static constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ull;
  static constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
  static constexpr std::uint64_t kP3 = 0x165667B19E3779F9ull;
  static constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ull;
  static constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ull;

  static constexpr std::uint64_t rotl(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  }
  static constexpr std::uint64_t round1(std::uint64_t acc,
                                        std::uint64_t input) noexcept {
    return rotl(acc + input * kP2, 31) * kP1;
  }
  static constexpr std::uint64_t merge(std::uint64_t h,
                                       std::uint64_t v) noexcept {
    return (h ^ round1(0, v)) * kP1 + kP4;
  }
  void round_block(const std::uint8_t* p) noexcept {
    v1_ = round1(v1_, get_le64(p));
    v2_ = round1(v2_, get_le64(p + 8));
    v3_ = round1(v3_, get_le64(p + 16));
    v4_ = round1(v4_, get_le64(p + 24));
  }

  std::uint64_t v1_, v2_, v3_, v4_;
  std::uint64_t len_ = 0;
  std::uint8_t buf_[kBlock];
  std::size_t buf_used_ = 0;
};

std::uint64_t xxh64(const std::uint8_t* data, std::size_t len) noexcept {
  Xxh64 h;
  h.update(data, len);
  return h.digest();
}

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Bounds-checked decode cursor. Every read sets ok=false instead of
/// stepping past `end`; callers check ok once per stripe.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  std::uint64_t varint() noexcept {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p >= end) {
        ok = false;
        return 0;
      }
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok = false;  // > 10 bytes: not a varint we ever write
    return 0;
  }

  const std::uint8_t* take(std::size_t n) noexcept {
    if (static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return nullptr;
    }
    const std::uint8_t* r = p;
    p += n;
    return r;
  }
};

// --- column codecs ----------------------------------------------------------
//
// A segment holds every record of one type in one stripe, column-major.
// Encode and decode MUST walk the identical column order; keep the two
// functions below in lockstep.
//
//   1. t                zigzag varint delta (prev starts at 0)
//   2. duration         varint
//   3. size_bytes       varint
//   4. transferred_bytes varint
//   5. service_time     varint
//   6. user             varint
//   7. session          varint
//   8. label            varint (file-local SymbolDict id)
//   9. shard            varint
//  10. node             presence bitmap + 16 raw bytes per present
//  11. parent           presence bitmap + 16 raw bytes per present
//  12. volume           presence bitmap + 16 raw bytes per present
//  13. content          presence bitmap + 20 raw bytes per present
//  14. session_event    u8[n]
//  15. api_op           u8[n]
//  16. rpc_op           u8[n]
//  17. flags            u8[n] (bit0 update, bit1 dir, bit2 dedup, bit3 failed)

std::uint8_t* encode_uuid_column(const std::vector<TraceRecord>& recs,
                                 const std::vector<std::uint32_t>& idx,
                                 Uuid TraceRecord::* member,
                                 std::uint8_t* p) {
  std::uint8_t* bitmap = p;
  const std::size_t bitmap_bytes = (idx.size() + 7) / 8;
  std::memset(bitmap, 0, bitmap_bytes);
  p += bitmap_bytes;
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const Uuid& u = recs[idx[j]].*member;
    if (u.is_nil()) continue;
    bitmap[j >> 3] |= static_cast<std::uint8_t>(1u << (j & 7));
    std::memcpy(p, u.bytes.data(), u.bytes.size());
    p += u.bytes.size();
  }
  return p;
}

bool decode_uuid_column(Cursor& c, const std::vector<std::uint32_t>& idx,
                        Uuid TraceRecord::* member, TraceRecord* recs) {
  const std::uint8_t* bitmap = c.take((idx.size() + 7) / 8);
  if (bitmap == nullptr) return false;
  for (std::size_t j = 0; j < idx.size(); ++j) {
    if (((bitmap[j >> 3] >> (j & 7)) & 1) == 0) continue;
    const std::uint8_t* b = c.take(16);
    if (b == nullptr) return false;
    std::memcpy((recs[idx[j]].*member).bytes.data(), b, 16);
  }
  return true;
}

std::uint8_t pack_flags(const TraceRecord& r) noexcept {
  return static_cast<std::uint8_t>(
      (r.is_update ? 1u : 0u) | (r.is_dir ? 2u : 0u) |
      (r.deduplicated ? 4u : 0u) | (r.failed ? 8u : 0u));
}

void encode_segment(const std::vector<TraceRecord>& recs,
                    const std::vector<std::uint32_t>& idx, SymbolDict& dict,
                    std::vector<std::uint8_t>& out) {
  // One worst-case reservation, then unchecked raw-pointer writes: the
  // per-byte push_back bounds checks were the encode hot spot. Worst
  // case per record: 9 varints (≤63 B), 3 UUIDs + content (≤68 B),
  // 4 enum/flag bytes; plus 4 presence bitmaps.
  const std::size_t n = idx.size();
  const std::size_t base = out.size();
  out.resize(base + n * 136 + 4 * (n / 8 + 1));
  std::uint8_t* p = out.data() + base;

  SimTime prev = 0;
  for (const std::uint32_t i : idx) {
    p = put_varint(p, zigzag(recs[i].t - prev));
    prev = recs[i].t;
  }
  for (const std::uint32_t i : idx)
    p = put_varint(p, static_cast<std::uint64_t>(recs[i].duration));
  for (const std::uint32_t i : idx) p = put_varint(p, recs[i].size_bytes);
  for (const std::uint32_t i : idx)
    p = put_varint(p, recs[i].transferred_bytes);
  for (const std::uint32_t i : idx) p = put_varint(p, recs[i].service_time);
  for (const std::uint32_t i : idx) p = put_varint(p, recs[i].user.value);
  for (const std::uint32_t i : idx) p = put_varint(p, recs[i].session.value);
  for (const std::uint32_t i : idx)
    p = put_varint(p, dict.local_id(recs[i].label));
  for (const std::uint32_t i : idx) p = put_varint(p, recs[i].shard.value);
  p = encode_uuid_column(recs, idx, &TraceRecord::node, p);
  p = encode_uuid_column(recs, idx, &TraceRecord::parent, p);
  p = encode_uuid_column(recs, idx, &TraceRecord::volume, p);
  {  // content: same presence scheme, 20-byte SHA-1 payload
    std::uint8_t* bitmap = p;
    const std::size_t bitmap_bytes = (n + 7) / 8;
    std::memset(bitmap, 0, bitmap_bytes);
    p += bitmap_bytes;
    for (std::size_t j = 0; j < n; ++j) {
      const ContentId& cid = recs[idx[j]].content;
      if (cid == ContentId{}) continue;
      bitmap[j >> 3] |= static_cast<std::uint8_t>(1u << (j & 7));
      std::memcpy(p, cid.bytes.data(), cid.bytes.size());
      p += cid.bytes.size();
    }
  }
  for (const std::uint32_t i : idx)
    *p++ = static_cast<std::uint8_t>(recs[i].session_event);
  for (const std::uint32_t i : idx)
    *p++ = static_cast<std::uint8_t>(recs[i].api_op);
  for (const std::uint32_t i : idx)
    *p++ = static_cast<std::uint8_t>(recs[i].rpc_op);
  for (const std::uint32_t i : idx) *p++ = pack_flags(recs[i]);

  out.resize(static_cast<std::size_t>(p - out.data()));
}

bool decode_segment(Cursor& c, RecordType type,
                    const std::vector<std::uint32_t>& idx, TraceRecord* recs,
                    const std::vector<Symbol>& local_to_global,
                    std::uint8_t machine, std::uint16_t process) {
  SimTime prev = 0;
  for (const std::uint32_t i : idx) {
    prev += unzigzag(c.varint());
    recs[i].t = prev;
  }
  for (const std::uint32_t i : idx)
    recs[i].duration = static_cast<SimTime>(c.varint());
  for (const std::uint32_t i : idx) recs[i].size_bytes = c.varint();
  for (const std::uint32_t i : idx) recs[i].transferred_bytes = c.varint();
  for (const std::uint32_t i : idx) {
    const std::uint64_t v = c.varint();
    if (v > 0xffffffffu) return false;
    recs[i].service_time = static_cast<std::uint32_t>(v);
  }
  for (const std::uint32_t i : idx) {
    const std::uint64_t v = c.varint();
    if (v > 0xffffffffu) return false;
    recs[i].user = UserId{v};
  }
  for (const std::uint32_t i : idx) {
    const std::uint64_t v = c.varint();
    if (v > 0xffffffffu) return false;
    recs[i].session = SessionId{v};
  }
  for (const std::uint32_t i : idx) {
    const std::uint64_t local = c.varint();
    if (local >= local_to_global.size()) return false;
    recs[i].label = local_to_global[local];
  }
  for (const std::uint32_t i : idx) {
    const std::uint64_t v = c.varint();
    if (v > 0xffffu) return false;
    recs[i].shard = ShardId{v};
  }
  if (!decode_uuid_column(c, idx, &TraceRecord::node, recs)) return false;
  if (!decode_uuid_column(c, idx, &TraceRecord::parent, recs)) return false;
  if (!decode_uuid_column(c, idx, &TraceRecord::volume, recs)) return false;
  {
    const std::uint8_t* bitmap = c.take((idx.size() + 7) / 8);
    if (bitmap == nullptr) return false;
    for (std::size_t j = 0; j < idx.size(); ++j) {
      if (((bitmap[j >> 3] >> (j & 7)) & 1) == 0) continue;
      const std::uint8_t* b = c.take(20);
      if (b == nullptr) return false;
      std::memcpy(recs[idx[j]].content.bytes.data(), b, 20);
    }
  }
  const std::uint8_t* events = c.take(idx.size());
  const std::uint8_t* api_ops = c.take(idx.size());
  const std::uint8_t* rpc_ops = c.take(idx.size());
  const std::uint8_t* flags = c.take(idx.size());
  if (!c.ok) return false;
  constexpr auto kMaxEvent =
      static_cast<std::uint8_t>(SessionEvent::kTryAgain);
  for (std::size_t j = 0; j < idx.size(); ++j) {
    if (events[j] > kMaxEvent || api_ops[j] >= kApiOpCount ||
        rpc_ops[j] >= kRpcOpCount || (flags[j] & ~0x0fu) != 0)
      return false;
    TraceRecord& r = recs[idx[j]];
    r.session_event = static_cast<SessionEvent>(events[j]);
    r.api_op = static_cast<ApiOp>(api_ops[j]);
    r.rpc_op = static_cast<RpcOp>(rpc_ops[j]);
    r.is_update = (flags[j] & 1) != 0;
    r.is_dir = (flags[j] & 2) != 0;
    r.deduplicated = (flags[j] & 4) != 0;
    r.failed = (flags[j] & 8) != 0;
    r.type = type;
    r.machine = MachineId{machine};
    r.process = ProcessId{process};
  }
  return true;
}

// --- read-side file mapping -------------------------------------------------

/// Read-only view of a whole file: mmap where available (the zero-parse
/// path — columns decode straight out of the page cache), plain read
/// otherwise. Unmaps/frees on destruction.
struct Mapping {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
#ifdef U1SIM_HAVE_MMAP
  void* mapped = MAP_FAILED;
  std::size_t mapped_len = 0;
#endif
  std::vector<std::uint8_t> buffer;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
#ifdef U1SIM_HAVE_MMAP
    if (mapped != MAP_FAILED) ::munmap(mapped, mapped_len);
#endif
  }
};

bool map_file(const std::filesystem::path& path, Mapping& out) {
#ifdef U1SIM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto len = static_cast<std::size_t>(st.st_size);
      if (len == 0) {
        ::close(fd);
        out.data = nullptr;
        out.size = 0;
        return true;
      }
      void* p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        out.mapped = p;
        out.mapped_len = len;
        out.data = static_cast<const std::uint8_t*>(p);
        out.size = len;
        return true;
      }
      // fall through to the buffered path below
    } else {
      ::close(fd);
      return false;
    }
  } else {
    return false;
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  in.seekg(0, std::ios::end);
  const auto len = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  out.buffer.resize(len);
  if (len > 0 &&
      !in.read(reinterpret_cast<char*>(out.buffer.data()),
               static_cast<std::streamsize>(len)))
    return false;
  out.data = out.buffer.data();
  out.size = len;
  return true;
}

std::filesystem::path sidecar_path(const std::filesystem::path& logfile) {
  std::filesystem::path p = logfile;
  p.replace_extension(kSymbolSidecarExt);
  return p;
}

/// Loads and verifies a `.u1s` sidecar, interning every string into the
/// global table. local_to_global[0] is the empty symbol. Adds the
/// sidecar's bytes to `stats`; false on any integrity problem.
bool load_sidecar(const std::filesystem::path& path,
                  std::vector<Symbol>& local_to_global, ReadStats& stats) {
  Mapping map;
  if (!map_file(path, map)) return false;
  stats.bytes_read += map.size;
  if (map.size < kSidecarHeaderBytes ||
      std::memcmp(map.data, kSymMagic.data(), kSymMagic.size()) != 0)
    return false;
  if (get_le32(map.data + 8) != kFormatVersion) return false;
  const std::uint32_t count = get_le32(map.data + 12);
  const std::uint64_t payload_bytes = get_le64(map.data + 16);
  if (map.size - kSidecarHeaderBytes != payload_bytes) return false;
  const std::uint8_t* payload = map.data + kSidecarHeaderBytes;
  if (xxh64(payload, static_cast<std::size_t>(payload_bytes)) !=
      get_le64(map.data + 24))
    return false;
  local_to_global.clear();
  local_to_global.reserve(count + 1);
  local_to_global.push_back(kEmptySymbol);
  Cursor c{payload, payload + payload_bytes};
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t len = c.varint();
    const std::uint8_t* bytes = c.take(static_cast<std::size_t>(len));
    if (!c.ok || len == 0) return false;  // the empty string is id 0, always
    local_to_global.push_back(global_symbols().intern(
        std::string_view(reinterpret_cast<const char*>(bytes),
                         static_cast<std::size_t>(len))));
  }
  return c.p == c.end;
}

bool decode_stripe(const std::uint8_t* begin, const std::uint8_t* end,
                   std::uint32_t count, const std::uint32_t* type_counts,
                   std::uint8_t machine, std::uint16_t process,
                   const std::vector<Symbol>& local_to_global,
                   std::vector<TraceRecord>& out) {
  const std::size_t base = out.size();
  out.resize(base + count);
  Cursor c{begin, end};
  const std::uint8_t* type_seq = c.take(count);
  if (type_seq == nullptr) {
    out.resize(base);
    return false;
  }
  std::array<std::vector<std::uint32_t>, kRecordTypeCount> slots;
  for (std::size_t t = 0; t < kRecordTypeCount; ++t)
    slots[t].reserve(type_counts[t]);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (type_seq[i] >= kRecordTypeCount) {
      out.resize(base);
      return false;
    }
    slots[type_seq[i]].push_back(i);
  }
  for (std::size_t t = 0; t < kRecordTypeCount; ++t) {
    if (slots[t].size() != type_counts[t]) {
      out.resize(base);
      return false;
    }
  }
  for (std::size_t t = 0; t < kRecordTypeCount; ++t) {
    if (slots[t].empty()) continue;
    if (!decode_segment(c, static_cast<RecordType>(t), slots[t],
                        out.data() + base, local_to_global, machine,
                        process) ||
        !c.ok) {
      out.resize(base);
      return false;
    }
  }
  if (c.p != c.end) {  // canonical encoding leaves no slack
    out.resize(base);
    return false;
  }
  return true;
}

}  // namespace

// --- format selector --------------------------------------------------------

std::string_view to_string(TraceFormat f) noexcept {
  return f == TraceFormat::kBinary ? "bin" : "csv";
}

std::optional<TraceFormat> trace_format_from_string(
    std::string_view s) noexcept {
  if (s == "csv") return TraceFormat::kCsv;
  if (s == "bin" || s == "binary") return TraceFormat::kBinary;
  return std::nullopt;
}

TraceFormat trace_format_from_env() {
  if (const char* v = std::getenv("U1SIM_TRACE_FORMAT")) {
    if (const auto f = trace_format_from_string(v)) return *f;
  }
  return TraceFormat::kCsv;
}

bool is_binary_logfile_magic(const unsigned char* p, std::size_t n) noexcept {
  return n >= kLogMagic.size() &&
         std::memcmp(p, kLogMagic.data(), kLogMagic.size()) == 0;
}

// --- writer -----------------------------------------------------------------

struct BinaryLogfileWriter::FileState {
  std::ofstream out;
  std::string logname;
  std::uint8_t machine = 0;
  std::uint16_t process = 0;
  std::uint64_t record_count = 0;
  std::uint32_t stripe_count = 0;
  std::uint64_t payload_bytes = 0;
  Xxh64 checksum;  // running digest over every payload byte written
  SymbolDict dict;
  std::vector<TraceRecord> pending;  // current stripe, arrival order
};

BinaryLogfileWriter::BinaryLogfileWriter(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

BinaryLogfileWriter::~BinaryLogfileWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an explicit close() reports errors.
  }
}

BinaryLogfileWriter::FileState& BinaryLogfileWriter::file_for(
    const TraceRecord& record) {
  // (machine, process, day) packs into one integer key, so the hot path
  // never materializes the logname string the CSV writer rebuilds per
  // record. The day index must mirror trace_date(): pre-trace bootstrap
  // records (t < 0) all land on the epoch date, so they must share the
  // epoch file — a second key for the same logname would clobber it.
  const std::int64_t day = record.t < 0 ? 0 : record.t / kDay;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(record.machine.value) << 48) |
      (static_cast<std::uint64_t>(record.process.value) << 32) |
      static_cast<std::uint32_t>(day);
  const auto it = files_.find(key);
  if (it != files_.end()) return *it->second;

  auto file = std::make_unique<FileState>();
  file->logname = record.logname();
  file->machine = static_cast<std::uint8_t>(record.machine.value);
  file->process = record.process.value;
  const std::filesystem::path path =
      dir_ / (file->logname + std::string(kBinaryLogfileExt));
  file->out.open(path, std::ios::binary | std::ios::trunc);
  if (!file->out.is_open())
    throw std::runtime_error("BinaryLogfileWriter: cannot open " +
                             path.string());
  const std::array<char, kFileHeaderBytes> placeholder{};
  file->out.write(placeholder.data(), placeholder.size());
  bytes_written_ += kFileHeaderBytes;
  file->pending.reserve(stripe_records_);
  return *files_.emplace(key, std::move(file)).first->second;
}

void BinaryLogfileWriter::append(const TraceRecord& record) {
  FileState& file = file_for(record);
  file.pending.push_back(record);
  ++records_;
  if (file.pending.size() >= stripe_records_) flush_stripe(file);
}

void BinaryLogfileWriter::append_batch(const TraceRecord* records,
                                       std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) append(records[i]);
}

void BinaryLogfileWriter::flush_stripe(FileState& file) {
  if (file.pending.empty()) return;
  const auto count = static_cast<std::uint32_t>(file.pending.size());

  std::array<std::vector<std::uint32_t>, kRecordTypeCount> idx;
  for (std::uint32_t i = 0; i < count; ++i)
    idx[static_cast<std::size_t>(file.pending[i].type)].push_back(i);

  scratch_.clear();
  for (std::uint32_t i = 0; i < count; ++i)
    scratch_.push_back(static_cast<std::uint8_t>(file.pending[i].type));
  for (std::size_t t = 0; t < kRecordTypeCount; ++t)
    if (!idx[t].empty())
      encode_segment(file.pending, idx[t], file.dict, scratch_);

  std::array<std::uint8_t, kStripeHeaderBytes> header{};
  put_le32(header.data(), static_cast<std::uint32_t>(scratch_.size()));
  put_le32(header.data() + 4, count);
  for (std::size_t t = 0; t < kRecordTypeCount; ++t)
    put_le32(header.data() + 8 + 4 * t,
             static_cast<std::uint32_t>(idx[t].size()));

  file.out.write(reinterpret_cast<const char*>(header.data()),
                 static_cast<std::streamsize>(header.size()));
  file.out.write(reinterpret_cast<const char*>(scratch_.data()),
                 static_cast<std::streamsize>(scratch_.size()));
  file.checksum.update(header.data(), header.size());
  file.checksum.update(scratch_.data(), scratch_.size());
  file.payload_bytes += header.size() + scratch_.size();
  bytes_written_ += header.size() + scratch_.size();
  file.record_count += count;
  file.stripe_count += 1;
  file.pending.clear();
}

void BinaryLogfileWriter::finalize(FileState& file) {
  flush_stripe(file);

  std::array<std::uint8_t, kFileHeaderBytes> header{};
  std::memcpy(header.data(), kLogMagic.data(), kLogMagic.size());
  put_le32(header.data() + 8, kFormatVersion);
  put_le32(header.data() + 12, kFileHeaderBytes);
  header[16] = file.machine;
  put_le16(header.data() + 18, file.process);
  put_le32(header.data() + 20, file.stripe_count);
  put_le64(header.data() + 24, file.record_count);
  put_le64(header.data() + 32, file.payload_bytes);
  put_le64(header.data() + 40, file.checksum.digest());
  file.out.seekp(0);
  file.out.write(reinterpret_cast<const char*>(header.data()),
                 static_cast<std::streamsize>(header.size()));
  file.out.flush();
  if (!file.out)
    throw std::runtime_error("BinaryLogfileWriter: write failed for " +
                             file.logname);

  // Symbol sidecar: the strings this file references, in local-id order.
  std::vector<std::uint8_t> payload;
  for (const Symbol global : file.dict.globals()) {
    const std::string_view text = global_symbols().resolve(global);
    put_varint(payload, text.size());
    payload.insert(payload.end(), text.begin(), text.end());
  }
  std::array<std::uint8_t, kSidecarHeaderBytes> sym_header{};
  std::memcpy(sym_header.data(), kSymMagic.data(), kSymMagic.size());
  put_le32(sym_header.data() + 8, kFormatVersion);
  put_le32(sym_header.data() + 12,
           static_cast<std::uint32_t>(file.dict.size()));
  put_le64(sym_header.data() + 16, payload.size());
  put_le64(sym_header.data() + 24, xxh64(payload.data(), payload.size()));
  const std::filesystem::path path =
      dir_ / (file.logname + std::string(kSymbolSidecarExt));
  std::ofstream sidecar(path, std::ios::binary | std::ios::trunc);
  if (!sidecar.is_open())
    throw std::runtime_error("BinaryLogfileWriter: cannot open " +
                             path.string());
  sidecar.write(reinterpret_cast<const char*>(sym_header.data()),
                static_cast<std::streamsize>(sym_header.size()));
  sidecar.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
  sidecar.flush();
  if (!sidecar)
    throw std::runtime_error("BinaryLogfileWriter: write failed for " +
                             path.string());
  bytes_written_ += sym_header.size() + payload.size();
}

void BinaryLogfileWriter::close() {
  for (auto& [key, file] : files_) finalize(*file);
  files_.clear();
}

// --- reader -----------------------------------------------------------------

ReadStats read_binary_logfile(const std::filesystem::path& file,
                              std::vector<TraceRecord>& out) {
  ReadStats stats;
  stats.files = 1;
  stats.files_binary = 1;

  Mapping map;
  if (!map_file(file, map))
    throw std::runtime_error("read_binary_logfile: cannot open " +
                             file.string());
  stats.bytes_read += map.size;

  // A file too short for a header, or with the wrong magic/version,
  // carries no trustworthy record count: it is one malformed unit.
  if (map.size < kFileHeaderBytes ||
      !is_binary_logfile_magic(map.data, map.size) ||
      get_le32(map.data + 8) != kFormatVersion ||
      get_le32(map.data + 12) != kFileHeaderBytes) {
    stats.rows = 1;
    stats.malformed = 1;
    return stats;
  }
  const std::uint8_t machine = map.data[16];
  const std::uint16_t process = get_le16(map.data + 18);
  const std::uint32_t stripe_count = get_le32(map.data + 20);
  const std::uint64_t record_count = get_le64(map.data + 24);
  const std::uint64_t payload_declared = get_le64(map.data + 32);
  const std::uint8_t* payload = map.data + kFileHeaderBytes;
  const std::uint64_t payload_actual = map.size - kFileHeaderBytes;
  stats.rows = record_count;

  // Truncated tails skip checksum verification (it cannot match) and
  // decode whatever stripes survive intact; complete files must match
  // their digest or every record is rejected.
  const bool truncated = payload_actual < payload_declared;
  if (!truncated) {
    if (xxh64(payload, static_cast<std::size_t>(payload_declared)) !=
        get_le64(map.data + 40)) {
      stats.checksum_failures = 1;
      stats.malformed = std::max<std::uint64_t>(record_count, 1);
      stats.rows = stats.malformed;
      return stats;
    }
  }

  std::vector<Symbol> local_to_global;
  if (!load_sidecar(sidecar_path(file), local_to_global, stats)) {
    stats.malformed = std::max<std::uint64_t>(record_count, 1);
    stats.rows = stats.malformed;
    return stats;
  }

  const std::uint8_t* p = payload;
  const std::uint8_t* end =
      payload +
      static_cast<std::size_t>(std::min(payload_actual, payload_declared));
  std::uint64_t decoded = 0;
  for (std::uint32_t s = 0; s < stripe_count; ++s) {
    if (static_cast<std::size_t>(end - p) < kStripeHeaderBytes)
      break;  // truncated tail: remaining stripes count as malformed
    const std::uint32_t stripe_bytes = get_le32(p);
    const std::uint32_t count = get_le32(p + 4);
    std::uint32_t type_counts[kRecordTypeCount];
    std::uint64_t type_total = 0;
    for (std::size_t t = 0; t < kRecordTypeCount; ++t) {
      type_counts[t] = get_le32(p + 8 + 4 * t);
      type_total += type_counts[t];
    }
    if (type_total != count) break;  // header inconsistent: stop trusting
    if (static_cast<std::size_t>(end - p) - kStripeHeaderBytes <
        stripe_bytes)
      break;  // stripe body truncated
    const std::uint8_t* body = p + kStripeHeaderBytes;
    if (decode_stripe(body, body + stripe_bytes, count, type_counts, machine,
                      process, local_to_global, out))
      decoded += count;
    p += kStripeHeaderBytes + stripe_bytes;
  }

  stats.parsed = decoded;
  stats.rows = std::max<std::uint64_t>(record_count, decoded);
  stats.malformed = stats.rows - decoded;
  return stats;
}

std::unique_ptr<LogfileSink> make_logfile_writer(
    std::filesystem::path directory, TraceFormat format) {
  if (format == TraceFormat::kBinary)
    return std::make_unique<BinaryLogfileWriter>(std::move(directory));
  return std::make_unique<LogfileWriter>(std::move(directory));
}

}  // namespace u1
