// Mergeable streaming sketches — the bounded-memory substrate behind the
// sharded analyzers. The paper's dataset (758GB, 1.29M users) must be
// reduced on the fly; every structure here consumes an unbounded stream
// in O(1) amortized time and O(polylog n) or O(bins) space, and two
// sketches built from disjoint substreams merge into the sketch of the
// concatenated stream (within the stated error bounds). All of them are
// deterministic: no wall clock, no global RNG — a shard's sketch is a
// pure function of its input stream, so the shard-parallel engine's
// merged results are bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/gini.hpp"

namespace u1 {

/// Mergeable quantile sketch, MRL/KLL-style compactor hierarchy with
/// *deterministic* alternating-parity compaction (no randomness: merges
/// must be reproducible bit-for-bit for the determinism oracle).
///
/// Structure: level h holds up to k items, each representing 2^h stream
/// items. When a level fills it is sorted and every other item (starting
/// at an alternating offset) is promoted to level h+1 with doubled
/// weight. One compaction of level h perturbs the rank of any fixed
/// query by at most 2^h; level h compacts at most n / (2^h * k/2) times,
/// so the worst-case rank error after n inserts is
///
///   eps * n  <=  sum_h 2^h * n/(2^h * k/2)  =  (2*H/k) * n,
///
/// with H = number of levels ~ log2(2n/k). The alternating parity makes
/// consecutive compactions cancel in expectation, so observed error is
/// far below the bound (tests assert both). Merging concatenates levels
/// and re-compacts — same bound in the merged item count.
class QuantileSketch {
 public:
  /// k: compactor capacity. Default 512 keeps worst-case error under 1%
  /// for month-scale streams (H ~ 16 at n = 1e9 -> eps ~ 0.6%) at ~64KB
  /// per fully-grown sketch.
  explicit QuantileSketch(std::size_t k = 512);

  void add(double x);
  /// Folds `other` into this sketch (deterministic for a fixed operand
  /// order). Sketches with different k may merge; the smaller k governs
  /// the resulting bound.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double min() const;  // exact; throws std::logic_error if empty
  double max() const;  // exact

  /// Value at rank ~ q*n, q in [0,1] (0 if empty). q=0/1 return the
  /// exact min/max.
  double quantile(double q) const;
  /// Estimated fraction of the stream <= x, in [0,1].
  double rank(double x) const;

  /// `points` values at evenly spaced quantiles (sorted ascending) — a
  /// representative sample for Ecdf::from_sorted / figure CDFs.
  std::vector<double> sorted_sample(std::size_t points) const;

  /// Analytic worst-case rank error (2*H/k) of the current state.
  double error_bound() const noexcept;
  /// Items currently stored (memory bound: <= k * levels).
  std::size_t stored_items() const noexcept;

  /// Byte-exact state snapshot for cross-process merge: the distributed
  /// engine ships sketch states over the control plane instead of record
  /// streams. deserialize(serialize(s)) reproduces s bit-for-bit, so
  /// merged figures stay identical to the in-process run. `bytes` is
  /// consumed from the front (advanced past this sketch — states nest in
  /// larger payloads); throws std::invalid_argument on malformed input.
  void serialize(std::vector<std::uint8_t>& out) const;
  static QuantileSketch deserialize(std::span<const std::uint8_t>& bytes);

 private:
  void compact_level(std::size_t h);
  /// All (value, weight) pairs, sorted by value.
  std::vector<std::pair<double, std::uint64_t>> weighted_sorted() const;

  std::size_t k_;
  std::uint64_t n_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<std::vector<double>> levels_;
  std::vector<std::uint8_t> parity_;  // next compaction offset per level
};

/// Count-min sketch for heavy-hitter tallies (extension/type counts).
/// d rows of w counters; estimate(key) = min over rows. Never
/// underestimates; overestimates by at most eps * N (N = total weight)
/// with probability 1 - (1/2)^d for eps = 2/w. Merging is element-wise
/// addition (exact: CMS(a) + CMS(b) = CMS(a ++ b) for equal dims/seed).
class CountMinSketch {
 public:
  explicit CountMinSketch(std::size_t width = 4096, std::size_t depth = 4,
                          std::uint64_t seed = 0xc01717);

  void add(std::uint64_t key, std::uint64_t weight = 1);
  std::uint64_t estimate(std::uint64_t key) const noexcept;
  /// Element-wise add; throws std::invalid_argument on dim/seed mismatch.
  void merge(const CountMinSketch& other);

  std::uint64_t total() const noexcept { return total_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  /// Overestimate bound as a fraction of total weight.
  double epsilon() const noexcept {
    return 2.0 / static_cast<double>(width_);
  }

  /// Byte-exact state snapshot (see QuantileSketch::serialize).
  void serialize(std::vector<std::uint8_t>& out) const;
  static CountMinSketch deserialize(std::span<const std::uint8_t>& bytes);

 private:
  std::size_t row_index(std::uint64_t key, std::size_t row) const noexcept;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counters_;  // depth_ x width_, row-major
};

/// Fixed-width logarithmic histogram over positive values: bin i covers
/// one 1/bins_per_octave-th of an octave starting at min_value (values
/// <= min_value share bin 0, values past the last bin clamp into it).
/// Relative value resolution is 2^(1/bins_per_octave) - 1 per bin
/// (~9% at 8 bins/octave); counts are exact, so fraction_below() at a
/// bin boundary is exact. Merging is element-wise addition.
class LogHistogram {
 public:
  explicit LogHistogram(double min_value = 1.0,
                        std::size_t bins_per_octave = 8,
                        std::size_t max_bins = 640);

  void add(double x, double weight = 1.0);
  void merge(const LogHistogram& other);

  double total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  double count(std::size_t i) const;
  double bin_lo(std::size_t i) const;  // lower bound of bin i
  double bin_hi(std::size_t i) const;

  /// Weight fraction below x (full bins below x's bin, plus a log-linear
  /// share of the containing bin). Exact when x is a bin boundary.
  double fraction_below(double x) const;
  /// Value at weight-quantile q, interpolated within the containing bin
  /// (log-linear; linear in the bin-0 stub) — the inverse of
  /// fraction_below's model.
  double quantile(double q) const;
  /// Sorted representative values at evenly spaced quantiles.
  std::vector<double> sorted_sample(std::size_t points) const;

  /// Index of the bin x lands in (0 for x <= min_value, clamped at the
  /// top). Public so BinnedLorenz can keep exact per-bin sums.
  std::size_t bin_of(double x) const noexcept;

  /// Byte-exact state snapshot (see QuantileSketch::serialize).
  void serialize(std::vector<std::uint8_t>& out) const;
  static LogHistogram deserialize(std::span<const std::uint8_t>& bytes);

 private:
  double min_value_;
  double bins_per_octave_;
  std::vector<double> counts_;
  double total_ = 0;
};

/// Streaming Lorenz/Gini accumulator: entity totals land in logarithmic
/// bins carrying (count, sum), plus an exact zero bucket. The curve
/// treats every entity in a bin as the bin's *mean* value — since bins
/// span a factor of 2^(1/bins_per_octave) (~9%), the Gini and top-share
/// errors are bounded by the within-bin spread and come out well under
/// 0.01 in practice (tests assert it). Merging is element-wise.
class BinnedLorenz {
 public:
  explicit BinnedLorenz(double min_value = 1.0,
                        std::size_t bins_per_octave = 8,
                        std::size_t max_bins = 640);

  /// Adds one entity's non-negative total.
  void add(double value);
  void merge(const BinnedLorenz& other);

  std::uint64_t count() const noexcept { return count_; }
  double total() const noexcept { return total_; }

  /// Lorenz curve over the binned population (points start (0,0), end
  /// (1,1)); same shape lorenz() returns, so top_share()/gini compose.
  LorenzCurve curve() const;
  double gini() const { return curve().gini; }
  double top_share(double top_fraction) const {
    return curve().top_share(top_fraction);
  }

  /// Byte-exact state snapshot (see QuantileSketch::serialize).
  void serialize(std::vector<std::uint8_t>& out) const;
  static BinnedLorenz deserialize(std::span<const std::uint8_t>& bytes);

 private:
  LogHistogram hist_;           // entity counts per value bin
  std::vector<double> sums_;    // exact per-bin value sums
  std::uint64_t zeros_ = 0;     // entities with value 0
  std::uint64_t count_ = 0;
  double total_ = 0;
};

}  // namespace u1
