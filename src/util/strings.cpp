#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace u1 {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_i64(std::string_view text) {
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  }
  return buf;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace u1
