// Parameterized end-to-end invariants: whatever the seed or population,
// a simulation's trace must satisfy the structural properties of the U1
// collection methodology (§4) — causal per-session ordering, paired
// storage/storage_done records, balanced bookkeeping, conserved bytes.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "sim/simulation.hpp"

namespace u1 {
namespace {

struct SimCase {
  std::uint64_t seed;
  std::size_t users;
  int days;
  bool ddos;
};

class SimInvariants : public ::testing::TestWithParam<SimCase> {
 protected:
  static SimulationConfig config(const SimCase& c) {
    SimulationConfig cfg;
    cfg.users = c.users;
    cfg.days = c.days;
    cfg.seed = c.seed;
    cfg.enable_ddos = c.ddos;
    cfg.bootstrap_files_mean = 4.0;
    return cfg;
  }
};

TEST_P(SimInvariants, TraceIsStructurallySound) {
  InMemorySink sink;
  Simulation sim(config(GetParam()), sink);
  const SimulationReport report = sim.run();
  ASSERT_GT(sink.records().size(), 100u);

  std::unordered_map<std::uint64_t, SimTime> session_last_t;
  std::unordered_set<std::uint64_t> open_sessions;
  std::uint64_t storage = 0, storage_done = 0;
  std::uint64_t opens = 0, closes = 0;
  std::uint64_t upload_wire = 0, download_wire = 0;

  for (const TraceRecord& r : sink.records()) {
    // Per-session causal ordering (the paper: "a session lives in the
    // same node until it finishes, making user events strictly
    // sequential").
    if (r.session.valid()) {
      auto [it, fresh] = session_last_t.try_emplace(r.session.value, r.t);
      if (!fresh) {
        EXPECT_LE(it->second, r.t) << "session " << r.session.value;
        it->second = r.t;
      }
    }
    switch (r.type) {
      case RecordType::kStorage:
        ++storage;
        break;
      case RecordType::kStorageDone:
        ++storage_done;
        EXPECT_GE(r.duration, 0);
        if (!r.failed && r.api_op == ApiOp::kPutContent)
          upload_wire += r.transferred_bytes;
        if (!r.failed && r.api_op == ApiOp::kGetContent)
          download_wire += r.transferred_bytes;
        break;
      case RecordType::kSession:
        if (r.session_event == SessionEvent::kOpen) {
          ++opens;
          EXPECT_TRUE(open_sessions.insert(r.session.value).second);
        } else if (r.session_event == SessionEvent::kClose) {
          ++closes;
          EXPECT_TRUE(open_sessions.erase(r.session.value) == 1);
        }
        break;
      case RecordType::kRpc:
        EXPECT_GT(r.service_time, 0);
        break;
      case RecordType::kFault:
        break;
    }
  }
  // Records pair up and sessions balance (some may stay open at horizon).
  EXPECT_EQ(storage, storage_done);
  EXPECT_GE(opens, closes);
  EXPECT_EQ(opens - closes, open_sessions.size());
  // Backend counters agree with the trace-derived byte totals.
  EXPECT_EQ(report.backend.upload_bytes_wire, upload_wire);
  EXPECT_EQ(report.backend.download_bytes, download_wire);
  EXPECT_EQ(report.backend.sessions_opened, opens);
}

TEST_P(SimInvariants, StoreAndS3StayConsistent) {
  InMemorySink sink;
  Simulation sim(config(GetParam()), sink);
  sim.run();
  const auto& store = sim.backend().store();
  const auto& s3 = sim.backend().s3();
  // Every unique registered content is exactly one S3 object.
  EXPECT_EQ(store.contents().unique_contents(), s3.object_count());
  EXPECT_EQ(store.contents().unique_bytes(), s3.stored_bytes());
  // Dedup ratio is a ratio.
  const double dr = store.contents().dedup_ratio();
  EXPECT_GE(dr, 0.0);
  EXPECT_LT(dr, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScales, SimInvariants,
    ::testing::Values(SimCase{1, 200, 2, false}, SimCase{2, 200, 2, true},
                      SimCase{20140111, 400, 3, false},
                      SimCase{77, 100, 6, true}),
    [](const ::testing::TestParamInfo<SimCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_u" +
             std::to_string(info.param.users) + "_d" +
             std::to_string(info.param.days) +
             (info.param.ddos ? "_ddos" : "");
    });

}  // namespace
}  // namespace u1
