#include "trace/symbols.hpp"

#include <stdexcept>

namespace u1 {

SymbolTable::SymbolTable() {
  chunks_.resize(kMaxChunks);  // directory never reallocates after this
  chunks_[0] = std::make_unique<Chunk>();
  index_.emplace(std::string{}, kEmptySymbol);
  count_ = 1;  // symbol 0: the empty string
}

Symbol SymbolTable::intern(std::string_view text) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  if (count_ >= kMaxChunks * kChunkSize)
    throw std::length_error("SymbolTable: symbol space exhausted");
  const auto sym = static_cast<Symbol>(count_);
  auto& chunk = chunks_[sym >> kChunkShift];
  if (!chunk) chunk = std::make_unique<Chunk>();
  (*chunk)[sym & (kChunkSize - 1)] = std::string(text);
  // Publish only after the string is in place: a reader that got `sym`
  // via a record handoff observes a fully-written slot.
  index_.emplace(std::string(text), sym);
  ++count_;
  return sym;
}

std::string_view SymbolTable::resolve(Symbol symbol) const noexcept {
  if (symbol == kEmptySymbol) return {};
  if ((symbol >> kChunkShift) >= kMaxChunks) return {};  // garbage id
  const Chunk* chunk = chunks_[symbol >> kChunkShift].get();
  if (chunk == nullptr) return {};  // never-published id: defensive
  return (*chunk)[symbol & (kChunkSize - 1)];
}

std::size_t SymbolTable::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

SymbolTable& global_symbols() {
  static SymbolTable table;
  return table;
}

}  // namespace u1
