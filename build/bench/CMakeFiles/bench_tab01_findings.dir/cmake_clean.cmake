file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_findings.dir/bench_tab01_findings.cpp.o"
  "CMakeFiles/bench_tab01_findings.dir/bench_tab01_findings.cpp.o.d"
  "bench_tab01_findings"
  "bench_tab01_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
