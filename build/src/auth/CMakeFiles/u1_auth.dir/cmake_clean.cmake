file(REMOVE_RECURSE
  "CMakeFiles/u1_auth.dir/auth_service.cpp.o"
  "CMakeFiles/u1_auth.dir/auth_service.cpp.o.d"
  "CMakeFiles/u1_auth.dir/token_cache.cpp.o"
  "CMakeFiles/u1_auth.dir/token_cache.cpp.o.d"
  "libu1_auth.a"
  "libu1_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
