#include <gtest/gtest.h>

#include <vector>

#include "stats/powerlaw.hpp"
#include "workload/burst.hpp"
#include "workload/ddos.hpp"
#include "workload/diurnal.hpp"
#include "workload/transitions.hpp"

namespace u1 {
namespace {

TEST(BurstProcess, GapsArePositive) {
  BurstProcess bursts;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(bursts.next_gap(rng), 0);
}

TEST(BurstProcess, NotPoissonHighVariance) {
  // Fig. 9: inter-op times are bursty (CV^2 >> 1), unlike Poisson.
  BurstProcess bursts;
  Rng rng(2);
  std::vector<double> gaps;
  for (int i = 0; i < 50000; ++i)
    gaps.push_back(to_seconds(bursts.next_gap(rng)));
  EXPECT_GT(cv_squared(gaps), 5.0);
}

TEST(BurstProcess, TailFitsPowerLawInPaperRange) {
  // Fitting the generated inter-op times should recover alpha in the
  // paper's 1 < alpha < 2 regime.
  BurstParams params;
  params.idle_alpha = 1.54;  // Upload calibration
  BurstProcess bursts(params);
  Rng rng(3);
  std::vector<double> gaps;
  for (int i = 0; i < 60000; ++i)
    gaps.push_back(to_seconds(bursts.next_gap(rng)));
  const PowerLawFit fit = fit_power_law(gaps);
  EXPECT_GT(fit.alpha, 1.0);
  EXPECT_LT(fit.alpha, 2.0);
}

TEST(BurstProcess, MostGapsShortSomeVeryLong) {
  BurstProcess bursts;
  Rng rng(4);
  int short_gaps = 0, long_gaps = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const SimTime g = bursts.next_gap(rng);
    if (g < 10 * kSecond) ++short_gaps;
    if (g > 10 * kMinute) ++long_gaps;
  }
  EXPECT_GT(short_gaps, n / 2);  // bursts dominate counts
  EXPECT_GT(long_gaps, 60);      // idle tail exists
}

TEST(BurstProcess, ValidatesParams) {
  BurstParams p;
  p.idle_alpha = 1.0;
  EXPECT_THROW(BurstProcess{p}, std::invalid_argument);
  p = BurstParams{};
  p.continue_prob = 1.0;
  EXPECT_THROW(BurstProcess{p}, std::invalid_argument);
  p = BurstParams{};
  p.idle_cap_s = 1.0;
  EXPECT_THROW(BurstProcess{p}, std::invalid_argument);
}

TEST(DiurnalModel, DayNightSwing) {
  DiurnalModel model;
  // Peak around 14:00 on a weekday vs 4am: ~10x (Fig. 2a).
  const SimTime monday = 2 * kDay;  // Jan 13 was a Monday
  const double peak = model.intensity(monday + 14 * kHour);
  const double night = model.intensity(monday + 4 * kHour);
  EXPECT_GT(peak / night, 5.0);
  EXPECT_LT(peak / night, 20.0);
}

TEST(DiurnalModel, MondayAboveWeekend) {
  DiurnalModel model;
  const double monday = model.intensity(2 * kDay + 10 * kHour);
  const double saturday = model.intensity(0 * kDay + 10 * kHour);
  EXPECT_GT(monday, saturday * 1.2);
}

TEST(DiurnalModel, DownloadBiasDecaysLinearlyMorning) {
  // §5.1: R/W ratio decays linearly from 6am to 3pm.
  DiurnalModel model;
  const double at6 = model.download_bias(6 * kHour);
  const double at10 = model.download_bias(10 * kHour + 30 * kMinute);
  const double at15 = model.download_bias(15 * kHour);
  const double at20 = model.download_bias(20 * kHour);
  EXPECT_GT(at6, at10);
  EXPECT_GT(at10, at15);
  EXPECT_DOUBLE_EQ(at15, 0.0);
  EXPECT_DOUBLE_EQ(at20, 0.0);
  EXPECT_NEAR(at6, model.params().morning_download_boost, 1e-9);
}

TEST(DiurnalModel, ArrivalsFollowIntensity) {
  DiurnalModel model;
  Rng rng(5);
  // Generate arrivals for one synthetic user over many days and check
  // day-hours beat night-hours.
  std::vector<int> by_hour(24, 0);
  SimTime t = 0;
  for (int i = 0; i < 20000; ++i) {
    t = model.next_arrival(t, 24.0, rng);  // ~1/hour baseline
    by_hour[static_cast<std::size_t>(hour_of_day(t))]++;
  }
  EXPECT_GT(by_hour[14], by_hour[4] * 3);
}

TEST(DiurnalModel, NextArrivalMovesForward) {
  DiurnalModel model;
  Rng rng(6);
  SimTime t = kHour;
  for (int i = 0; i < 100; ++i) {
    const SimTime next = model.next_arrival(t, 5.0, rng);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(DiurnalModel, ZeroRateNeverFires) {
  DiurnalModel model;
  Rng rng(7);
  EXPECT_GE(model.next_arrival(0, 0.0, rng), 300 * kDay);
}

TEST(TransitionModel, TransfersSelfRepeat) {
  // Fig. 8: after a transfer, another transfer is the most likely move.
  TransitionModel model;
  const double down_down =
      model.probability(ClientAction::kDownload, ClientAction::kDownload);
  const double down_up =
      model.probability(ClientAction::kDownload, ClientAction::kUploadNew);
  EXPECT_GT(down_down, down_up);
  EXPECT_GT(down_down, 0.3);
  const double up_self =
      model.probability(ClientAction::kUploadNew, ClientAction::kUploadNew);
  EXPECT_GT(up_self, 0.3);
}

TEST(TransitionModel, RowsAreNormalized) {
  TransitionModel model;
  for (std::size_t from = 0; from < kClientActionCount; ++from) {
    double sum = 0;
    for (std::size_t to = 0; to < kClientActionCount; ++to)
      sum += model.probability(static_cast<ClientAction>(from),
                               static_cast<ClientAction>(to));
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(TransitionModel, UploadOnlyUsersRarelyDownload) {
  TransitionModel model;
  Rng rng(8);
  int downloads = 0;
  ClientAction a = model.initial(UserClass::kUploadOnly, rng);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    a = model.next(a, UserClass::kUploadOnly, rng);
    if (a == ClientAction::kDownload) ++downloads;
  }
  EXPECT_LT(downloads / static_cast<double>(n), 0.08);
}

TEST(TransitionModel, DownloadOnlyUsersRarelyUpload) {
  TransitionModel model;
  Rng rng(9);
  int uploads = 0;
  ClientAction a = model.initial(UserClass::kDownloadOnly, rng);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    a = model.next(a, UserClass::kDownloadOnly, rng);
    if (a == ClientAction::kUploadNew || a == ClientAction::kUploadUpdate)
      ++uploads;
  }
  EXPECT_LT(uploads / static_cast<double>(n), 0.05);
}

TEST(TransitionModel, MakeDirLeadsToUploads) {
  // Folder sync: creating a directory is usually followed by uploads.
  TransitionModel model;
  EXPECT_GT(model.probability(ClientAction::kMakeDir,
                              ClientAction::kUploadNew),
            0.4);
}

TEST(DdosSchedule, PaperAttacksOnCorrectDays) {
  const auto attacks = paper_attack_schedule();
  ASSERT_EQ(attacks.size(), 3u);
  EXPECT_EQ(day_index(attacks[0].start), 4);   // Jan 15
  EXPECT_EQ(day_index(attacks[1].start), 5);   // Jan 16
  EXPECT_EQ(day_index(attacks[2].start), 26);  // Feb 6
  // Attack 2 is by far the largest (245x in the paper): compare the
  // request pressure (bots x connects/h x downloads per connection).
  auto pressure = [](const DdosAttackSpec& a) {
    return a.bots * a.connects_per_hour * a.downloads_per_connection;
  };
  EXPECT_GT(pressure(attacks[1]), 10 * pressure(attacks[0]));
  EXPECT_GT(pressure(attacks[1]), 10 * pressure(attacks[2]));
  EXPECT_GT(pressure(attacks[2]), pressure(attacks[0]));
}

TEST(DdosSchedule, ScalesBots) {
  const auto small = paper_attack_schedule(0.1);
  const auto big = paper_attack_schedule(2.0);
  EXPECT_LT(small[1].bots, big[1].bots);
  EXPECT_THROW(paper_attack_schedule(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace u1
