#include "server/backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace u1 {
namespace {

/// Small fixed cost for API-server work that involves no DAL RPC
/// (parsing, capability negotiation).
constexpr SimTime kApiOverhead = 300 * kMicrosecond;

/// Shorthand for the common "status + completion time, nothing else"
/// responses.
Response make_response(ProtoOp op, Status status, SimTime end) {
  Response r;
  r.op = op;
  r.status = status;
  r.end = end;
  return r;
}

}  // namespace

U1Backend::U1Backend(const BackendConfig& config, TraceSink& sink)
    : config_(config),
      sink_(&sink),
      rng_(config.seed),
      store_(config.shards, config.seed ^ 0x5707e),
      auth_(config.seed ^ 0xa117, config.auth_failure_rate),
      token_cache_(config.token_cache_capacity),
      fleet_(config.fleet, config.seed ^ 0xf1ee7),
      // "Idle since forever": pre-trace (negative-time) operations must
      // not queue behind t=0.
      shard_busy_until_(config.shards,
                        std::numeric_limits<SimTime>::lowest() / 2) {
  next_session_ = config_.session_id_base;
  // Every API process subscribes to the notification queue (§3.4.2).
  for (std::size_t p = 1; p <= fleet_.process_count(); ++p) {
    mq_.subscribe(ProcessId{p},
                  [this](const VolumeEvent&) { ++stats_.notifications; });
  }
}

// --- the envelope dispatch ---------------------------------------------------

Response U1Backend::call(const Request& request) {
  if (!config_.wire_check) return dispatch(request);
  // Proof mode: push the request through the frame codec and dispatch the
  // decoded copy, then do the same for the response. Divergence anywhere
  // is a codec bug, not a workload condition — throw, don't trace.
  const std::vector<std::uint8_t> qframe = encode_request_frame(request);
  Request decoded_q;
  const FrameDecode qd =
      decode_request_frame(qframe.data(), qframe.size(), decoded_q);
  if (qd.status != Status::kOk || qd.consumed != qframe.size() ||
      !(decoded_q == request)) {
    throw std::logic_error(
        "wire_check: request round-trip diverged for op " +
        std::string(to_string(request.op)));
  }
  const Response response = dispatch(decoded_q);
  const std::vector<std::uint8_t> rframe = encode_response_frame(response);
  Response decoded_r;
  const FrameDecode rd =
      decode_response_frame(rframe.data(), rframe.size(), decoded_r);
  if (rd.status != Status::kOk || rd.consumed != rframe.size() ||
      !(decoded_r == response)) {
    throw std::logic_error(
        "wire_check: response round-trip diverged for op " +
        std::string(to_string(request.op)));
  }
  return decoded_r;
}

Response U1Backend::dispatch(const Request& q) {
  switch (q.op) {
    case ProtoOp::kConnect:
      return do_connect(q);
    case ProtoOp::kDisconnect:
      return do_disconnect(q);
    case ProtoOp::kListVolumes:
    case ProtoOp::kListShares:
    case ProtoOp::kQuerySetCaps:
      return do_simple_meta(q);
    case ProtoOp::kGetDelta:
      return do_get_delta(q);
    case ProtoOp::kRescanFromScratch:
      return do_rescan_from_scratch(q);
    case ProtoOp::kMakeFile:
    case ProtoOp::kMakeDir:
      return do_make(q);
    case ProtoOp::kUnlink:
      return do_unlink(q);
    case ProtoOp::kMove:
      return do_move(q);
    case ProtoOp::kCreateUDF:
      return do_create_udf(q);
    case ProtoOp::kDeleteVolume:
      return do_delete_volume(q);
    case ProtoOp::kUpload:
      return do_upload(q);
    case ProtoOp::kResumeUpload:
      return do_resume_upload(q);
    case ProtoOp::kDownload:
      return do_download(q);
    case ProtoOp::kRegisterUser:
      return do_register_user(q);
    case ProtoOp::kShareVolume:
      return do_share_volume(q);
    case ProtoOp::kEpochBegin:
    case ProtoOp::kMailboxBatch:
    case ProtoOp::kEpochDone:
    case ProtoOp::kChunkMeta:
    case ProtoOp::kShutdown:
      // Control-plane ops never dispatch: proto_op_from_wire rejects
      // them at the request decoder, so they fall through to the
      // unknown-op response below like any other non-request byte.
      break;
  }
  // Op byte outside the request plane (only reachable via a hand-built
  // Request — the frame decoder already rejects these before dispatch).
  Response r;
  r.op = q.op;
  r.status = Status::kUnknownOp;
  r.end = q.now;
  return r;
}

// --- typed wrappers (each packs a Request and lands in call()) ---------------

UserAccount U1Backend::register_user(UserId user, SimTime now) {
  Request q;
  q.op = ProtoOp::kRegisterUser;
  q.user = user;
  q.now = now;
  const Response r = call(q);
  return UserAccount{r.user, r.volume, r.root_dir};
}

Response U1Backend::connect(UserId user, SimTime now) {
  Request q;
  q.op = ProtoOp::kConnect;
  q.user = user;
  q.now = now;
  return call(q);
}

Response U1Backend::disconnect(SessionId session, SimTime now) {
  Request q;
  q.op = ProtoOp::kDisconnect;
  q.session = session;
  q.now = now;
  return call(q);
}

Response U1Backend::list_volumes(SessionId session, SimTime now) {
  Request q;
  q.op = ProtoOp::kListVolumes;
  q.session = session;
  q.now = now;
  return call(q);
}

Response U1Backend::list_shares(SessionId session, SimTime now) {
  Request q;
  q.op = ProtoOp::kListShares;
  q.session = session;
  q.now = now;
  return call(q);
}

Response U1Backend::query_set_caps(SessionId session, SimTime now) {
  Request q;
  q.op = ProtoOp::kQuerySetCaps;
  q.session = session;
  q.now = now;
  return call(q);
}

Response U1Backend::get_delta(SessionId session, VolumeId volume,
                              std::uint64_t since_generation, SimTime now) {
  Request q;
  q.op = ProtoOp::kGetDelta;
  q.session = session;
  q.volume = volume;
  q.since_generation = since_generation;
  q.now = now;
  return call(q);
}

Response U1Backend::rescan_from_scratch(SessionId session, VolumeId volume,
                                        SimTime now) {
  Request q;
  q.op = ProtoOp::kRescanFromScratch;
  q.session = session;
  q.volume = volume;
  q.now = now;
  return call(q);
}

Response U1Backend::make_file(SessionId session, VolumeId volume,
                              NodeId parent, std::string_view name_hash,
                              std::string_view extension, SimTime now) {
  Request q;
  q.op = ProtoOp::kMakeFile;
  q.session = session;
  q.volume = volume;
  q.parent = parent;
  q.set_name_hash(name_hash);
  q.set_extension(extension);
  q.now = now;
  return call(q);
}

Response U1Backend::make_dir(SessionId session, VolumeId volume,
                             NodeId parent, std::string_view name_hash,
                             SimTime now) {
  Request q;
  q.op = ProtoOp::kMakeDir;
  q.session = session;
  q.volume = volume;
  q.parent = parent;
  q.set_name_hash(name_hash);
  q.now = now;
  return call(q);
}

Response U1Backend::unlink(SessionId session, NodeId node, SimTime now) {
  Request q;
  q.op = ProtoOp::kUnlink;
  q.session = session;
  q.node = node;
  q.now = now;
  return call(q);
}

Response U1Backend::move(SessionId session, NodeId node, NodeId new_parent,
                         SimTime now) {
  Request q;
  q.op = ProtoOp::kMove;
  q.session = session;
  q.node = node;
  q.parent = new_parent;
  q.now = now;
  return call(q);
}

Response U1Backend::create_udf(SessionId session, SimTime now) {
  Request q;
  q.op = ProtoOp::kCreateUDF;
  q.session = session;
  q.now = now;
  return call(q);
}

Response U1Backend::delete_volume(SessionId session, VolumeId volume,
                                  SimTime now) {
  Request q;
  q.op = ProtoOp::kDeleteVolume;
  q.session = session;
  q.volume = volume;
  q.now = now;
  return call(q);
}

Response U1Backend::upload(SessionId session, NodeId node,
                           const ContentId& content, std::uint64_t size_bytes,
                           bool is_update, SimTime now) {
  Request q;
  q.op = ProtoOp::kUpload;
  q.session = session;
  q.node = node;
  q.content = content;
  q.size_bytes = size_bytes;
  q.set_is_update(is_update);
  q.now = now;
  return call(q);
}

Response U1Backend::resume_upload(SessionId session, NodeId node,
                                  const ContentId& content,
                                  std::uint64_t size_bytes, bool is_update,
                                  UploadJobId job, SimTime now) {
  Request q;
  q.op = ProtoOp::kResumeUpload;
  q.session = session;
  q.node = node;
  q.content = content;
  q.size_bytes = size_bytes;
  q.set_is_update(is_update);
  q.job = job;
  q.now = now;
  return call(q);
}

Response U1Backend::download(SessionId session, NodeId node, SimTime now) {
  Request q;
  q.op = ProtoOp::kDownload;
  q.session = session;
  q.node = node;
  q.now = now;
  return call(q);
}

Response U1Backend::share_volume(UserId owner, VolumeId volume, UserId to,
                                 SimTime now) {
  Request q;
  q.op = ProtoOp::kShareVolume;
  q.user = owner;
  q.peer = to;
  q.volume = volume;
  q.now = now;
  return call(q);
}

// --- operation implementations ----------------------------------------------

Response U1Backend::do_register_user(const Request& q) {
  const Volume root = store_.create_user(q.user, q.now);
  Response r;
  r.op = q.op;
  r.status = Status::kOk;
  r.user = q.user;
  r.volume = root.id;
  r.root_dir = root.root_dir;
  r.end = q.now;
  return r;
}

U1Backend::SessionState* U1Backend::find_session(SessionId id) noexcept {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

bool U1Backend::session_open(SessionId session) const {
  return sessions_.contains(session);
}

SimTime U1Backend::s3_latency(SimTime at) {
  // Log-normal one-way latency to us-east.
  const double u1v = 1.0 - rng_.uniform();
  const double u2 = rng_.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1v)) * std::cos(2 * M_PI * u2);
  double s = config_.s3_latency_s_median * std::exp(0.5 * z);
  // Brownout windows stretch the S3 round trip (still capped at 5s).
  if (injector_ != nullptr) s *= injector_->s3_latency_multiplier(at);
  return at + from_seconds(std::clamp(s, 0.002, 5.0));
}

void U1Backend::emit_session_event(MachineId machine, ProcessId process,
                                   UserId user, SessionId session,
                                   SessionEvent event, SimTime at,
                                   SimTime duration) {
  TraceRecord r;
  r.t = at;
  r.type = RecordType::kSession;
  r.machine = machine;
  r.process = process;
  r.user = user;
  r.session = session;
  r.session_event = event;
  r.duration = duration;
  sink_->append(r);
}

SimTime U1Backend::run_rpc_at(RpcOp op, MachineId machine, ProcessId process,
                              UserId user, SessionId session, SimTime at) {
  // Which shards the preceding store call touched (empty for auth RPCs).
  const auto& touched = store_.shards_touched();
  const RpcClass cls = rpc_class(op);
  SimTime service = service_model_.sample(op, rng_);
  // A shard mid-failover serves writes from a catching-up slave: inflate
  // the master-side service time (reads hit the replica pair unharmed).
  if (injector_ != nullptr && cls != RpcClass::kRead) {
    double mult = 1.0;
    for (const ShardId s : touched)
      mult = std::max(mult, injector_->shard_service_multiplier(s.value, at));
    if (mult > 1.0)
      service = static_cast<SimTime>(static_cast<double>(service) * mult);
  }

  SimTime start = at;
  if (cls != RpcClass::kRead) {
    // Writes and cascades serialize on the shard master(s).
    for (const ShardId s : touched)
      start = std::max(start, shard_busy_until_[s.value - 1]);
  }
  const SimTime end = start + service;
  if (cls != RpcClass::kRead) {
    for (const ShardId s : touched) shard_busy_until_[s.value - 1] = end;
  }

  TraceRecord r;
  r.t = start;
  r.type = RecordType::kRpc;
  r.machine = machine;
  r.process = process;
  r.user = user;
  r.session = session;
  r.rpc_op = op;
  r.shard = touched.empty() ? ShardId{} : touched.front();
  r.service_time = service;
  sink_->append(r);
  ++stats_.rpcs;
  return end;
}

SimTime U1Backend::run_rpc(RpcOp op, const SessionState& ctx, SimTime at) {
  return run_rpc_at(op, ctx.session.api_machine, ctx.session.api_process,
                    ctx.session.user, ctx.session.id, at);
}

void U1Backend::emit_storage(const SessionState& ctx, ApiOp op, SimTime at,
                             const TraceRecord& partial) {
  TraceRecord r = partial;
  r.t = at;
  r.type = RecordType::kStorage;
  r.machine = ctx.session.api_machine;
  r.process = ctx.session.api_process;
  r.user = ctx.session.user;
  r.session = ctx.session.id;
  r.api_op = op;
  sink_->append(r);
}

void U1Backend::emit_storage_done(const SessionState& ctx, ApiOp op,
                                  SimTime start, SimTime end,
                                  const TraceRecord& partial) {
  TraceRecord r = partial;
  r.t = end;
  r.type = RecordType::kStorageDone;
  r.machine = ctx.session.api_machine;
  r.process = ctx.session.api_process;
  r.user = ctx.session.user;
  r.session = ctx.session.id;
  r.api_op = op;
  r.duration = end - start;
  sink_->append(r);
}

void U1Backend::publish_change(const SessionState& ctx,
                               VolumeEvent::Kind kind, VolumeId volume,
                               NodeId node, SimTime at) {
  // Only volumes with shares have simultaneously-interested clients; other
  // changes are picked up via generations on reconnect (§3.4.2).
  if (!shared_volumes_.contains(volume)) return;
  if (injector_ != nullptr && injector_->mq_drops(at)) {
    ++stats_.notifications_dropped;
    return;
  }
  VolumeEvent event;
  event.kind = kind;
  event.affected_user = ctx.session.user;
  event.volume = volume;
  event.node = node;
  event.origin_process = ctx.session.api_process;
  event.at = at;
  mq_.publish(event);
}

Response U1Backend::do_connect(const Request& q) {
  const UserId user = q.user;
  const SimTime now = q.now;
  const auto placed =
      fleet_.place_session(config_.session_cap_per_process, now);
  if (!placed) {
    // Load shed: no live process with spare capacity. The balancer tells
    // the client to come back later without ever engaging auth.
    ++stats_.shed_connects;
    emit_session_event(MachineId{}, ProcessId{}, user, SessionId{},
                       SessionEvent::kTryAgain, now);
    return make_response(q.op, Status::kTryAgain, now + kApiOverhead);
  }
  const ServerFleet::Placement placement = *placed;
  const SessionId sid{next_session_};
  next_session_ += config_.session_id_stride;

  // Authenticate (Table 2): API server contacts the Canonical auth
  // service; the token is cached per API server afterwards.
  emit_session_event(placement.machine, placement.process, user, sid,
                     SessionEvent::kAuthRequest, now);
  store_.clear_touched();  // auth RPC hits no metadata shard
  SimTime t = run_rpc_at(RpcOp::kGetUserIdFromToken, placement.machine,
                         placement.process, user, sid, now);

  bool ok;
  if (banned_users_.contains(user)) {
    ++stats_.auth_failures;
    emit_session_event(placement.machine, placement.process, user, sid,
                       SessionEvent::kAuthFail, t);
    fleet_.end_session(placement.machine, placement.process);
    return make_response(q.op, Status::kError, t);
  }
  // Auth-service brownout: the SSO backend times out before any token
  // work happens (indistinguishable from a failed verify to the client).
  if (injector_ != nullptr && injector_->auth_brownout_fails(t)) {
    ++stats_.auth_failures;
    emit_session_event(placement.machine, placement.process, user, sid,
                       SessionEvent::kAuthFail, t);
    fleet_.end_session(placement.machine, placement.process);
    return make_response(q.op, Status::kError, t);
  }
  const auto tok_it = user_tokens_.find(user);
  TokenId token;
  if (tok_it == user_tokens_.end()) {
    // First contact: exchange credentials for a fresh token.
    const auto issued = auth_.issue_token(user, t);
    ok = issued.has_value();
    if (ok) {
      token = issued->id;
      user_tokens_.emplace(user, token);
    }
  } else {
    token = tok_it->second;
    // A new session always verifies against the Canonical auth service
    // (§3.4.1); the per-API-server token cache only short-circuits checks
    // *during* an established session.
    (void)token_cache_.get(token);
    ok = auth_.verify_token(token, t).has_value();
  }

  if (!ok) {
    ++stats_.auth_failures;
    emit_session_event(placement.machine, placement.process, user, sid,
                       SessionEvent::kAuthFail, t);
    fleet_.end_session(placement.machine, placement.process);
    return make_response(q.op, Status::kError, t);
  }
  token_cache_.put(token, user);
  emit_session_event(placement.machine, placement.process, user, sid,
                     SessionEvent::kAuthOk, t);

  SessionState state;
  state.session.id = sid;
  state.session.user = user;
  state.session.api_machine = placement.machine;
  state.session.api_process = placement.process;
  state.session.started_at = t;
  state.token = token;
  // Per-session wire speed (residential link), log-normal around medians.
  auto draw_bw = [&](double median) {
    const double u1v = 1.0 - rng_.uniform();
    const double u2 = rng_.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1v)) * std::cos(2 * M_PI * u2);
    return median * std::exp(config_.bandwidth_sigma * z);
  };
  state.up_bw = std::max(8.0 * 1024, draw_bw(config_.upload_bytes_per_sec_median));
  state.down_bw =
      std::max(16.0 * 1024, draw_bw(config_.download_bytes_per_sec_median));

  emit_session_event(placement.machine, placement.process, user, sid,
                     SessionEvent::kOpen, t);
  sessions_.emplace(sid, std::move(state));
  user_sessions_[user].push_back(sid);
  ++stats_.sessions_opened;
  Response res = make_response(q.op, Status::kOk, t);
  res.session = sid;
  return res;
}

Response U1Backend::do_disconnect(const Request& q) {
  const SessionId session = q.session;
  const SimTime now = q.now;
  auto* statep = find_session(session);
  if (statep == nullptr) {
    // Already dropped by a crash/outage; completion time is still `now`.
    return make_response(q.op, Status::kError, now);
  }
  auto& state = *statep;
  state.session.ended_at = now;
  emit_session_event(state.session.api_machine, state.session.api_process,
                     state.session.user, session, SessionEvent::kClose, now,
                     now - state.session.started_at);
  fleet_.end_session(state.session.api_machine, state.session.api_process);
  auto& list = user_sessions_[state.session.user];
  list.erase(std::remove(list.begin(), list.end(), session), list.end());
  sessions_.erase(session);
  ++stats_.sessions_closed;
  return make_response(q.op, Status::kOk, now);
}

Response U1Backend::do_simple_meta(const Request& q) {
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  SimTime end;
  switch (q.op) {
    case ProtoOp::kListVolumes:
      emit_storage(ctx, ApiOp::kListVolumes, now, {});
      (void)store_.list_volumes(ctx.session.user);
      end = run_rpc(RpcOp::kListVolumes, ctx, now);
      emit_storage_done(ctx, ApiOp::kListVolumes, now, end, {});
      break;
    case ProtoOp::kListShares:
      emit_storage(ctx, ApiOp::kListShares, now, {});
      (void)store_.list_shares(ctx.session.user);
      end = run_rpc(RpcOp::kListShares, ctx, now);
      emit_storage_done(ctx, ApiOp::kListShares, now, end, {});
      break;
    default:  // kQuerySetCaps: pure API-server work, no DAL RPC
      emit_storage(ctx, ApiOp::kQuerySetCaps, now, {});
      end = now + kApiOverhead;
      emit_storage_done(ctx, ApiOp::kQuerySetCaps, now, end, {});
      break;
  }
  return make_response(q.op, Status::kOk, end);
}

Response U1Backend::do_get_delta(const Request& q) {
  const VolumeId volume = q.volume;
  const std::uint64_t since_generation = q.since_generation;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  TraceRecord partial;
  partial.volume = volume;
  emit_storage(ctx, ApiOp::kGetDelta, now, partial);
  // Clients track generations and are normally almost in sync: a delta
  // request covers only the most recent changes, not the whole volume.
  std::uint64_t since = since_generation;
  if (since == 0) {
    const Shard& shard = store_.shard(store_.shard_of(ctx.session.user));
    if (const Volume* vol = shard.find_volume(volume)) {
      since = vol->generation > 8 ? vol->generation - 8 : 0;
    }
  }
  (void)store_.get_delta(ctx.session.user, volume, since);
  const SimTime end = run_rpc(RpcOp::kGetDelta, ctx, now);
  emit_storage_done(ctx, ApiOp::kGetDelta, now, end, partial);
  return make_response(q.op, Status::kOk, end);
}

Response U1Backend::do_rescan_from_scratch(const Request& q) {
  const VolumeId volume = q.volume;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  TraceRecord partial;
  partial.volume = volume;
  emit_storage(ctx, ApiOp::kRescanFromScratch, now, partial);
  (void)store_.get_from_scratch(ctx.session.user, volume);
  const SimTime end = run_rpc(RpcOp::kGetFromScratch, ctx, now);
  emit_storage_done(ctx, ApiOp::kRescanFromScratch, now, end, partial);
  return make_response(q.op, Status::kOk, end);
}

Response U1Backend::do_make(const Request& q) {
  const bool is_file = q.op == ProtoOp::kMakeFile;
  const VolumeId volume = q.volume;
  const NodeId parent = q.parent;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  TraceRecord partial;
  partial.volume = volume;
  partial.parent = parent;
  if (is_file) {
    partial.label = symbols_.intern(q.extension_view());
  } else {
    partial.is_dir = true;
  }
  emit_storage(ctx, ApiOp::kMake, now, partial);
  if (write_rejected(ctx, now)) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kMake, now, now + kApiOverhead, failed);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }
  const Node node =
      is_file ? store_.make_file(ctx.session.user, volume, parent,
                                 std::string(q.name_hash_view()),
                                 std::string(q.extension_view()), now)
              : store_.make_dir(ctx.session.user, volume, parent,
                                std::string(q.name_hash_view()), now);
  const SimTime end =
      run_rpc(is_file ? RpcOp::kMakeFile : RpcOp::kMakeDir, ctx, now);
  partial.node = node.id;
  emit_storage_done(ctx, ApiOp::kMake, now, end, partial);
  publish_change(ctx, VolumeEvent::Kind::kNodeCreated, volume, node.id, end);
  Response res = make_response(q.op, Status::kOk, end);
  res.node = node.id;
  return res;
}

Response U1Backend::do_unlink(const Request& q) {
  const NodeId node = q.node;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  const auto before = store_.get_node(ctx.session.user, node);
  TraceRecord partial;
  partial.node = node;
  if (before) {
    partial.volume = before->volume;
    partial.parent = before->parent;
    partial.is_dir = before->is_dir();
    partial.label = symbols_.intern(before->extension);
    partial.size_bytes = before->size_bytes;
    partial.content = before->content;
  }
  emit_storage(ctx, ApiOp::kUnlink, now, partial);
  if (!before || write_rejected(ctx, now)) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kUnlink, now, now + kApiOverhead, failed);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }
  const auto dead = store_.unlink_node(ctx.session.user, node);
  SimTime end = run_rpc(RpcOp::kUnlinkNode, ctx, now);
  // The API server finishes by deleting dead blobs from Amazon S3 (§3.2).
  for (const ContentInfo& blob : dead) {
    s3_.remove(blob.s3_key);
    store_.purge_content(blob.id);
    end = s3_latency(end);
  }
  emit_storage_done(ctx, ApiOp::kUnlink, now, end, partial);
  publish_change(ctx, VolumeEvent::Kind::kNodeDeleted, partial.volume, node,
                 end);
  return make_response(q.op, Status::kOk, end);
}

Response U1Backend::do_move(const Request& q) {
  const NodeId node = q.node;
  const NodeId new_parent = q.parent;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  TraceRecord partial;
  partial.node = node;
  const auto before = store_.get_node(ctx.session.user, node);
  if (before) partial.volume = before->volume;
  emit_storage(ctx, ApiOp::kMove, now, partial);
  if (!before || write_rejected(ctx, now)) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kMove, now, now + kApiOverhead, failed);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }
  store_.move(ctx.session.user, node, new_parent);
  const SimTime end = run_rpc(RpcOp::kMove, ctx, now);
  emit_storage_done(ctx, ApiOp::kMove, now, end, partial);
  publish_change(ctx, VolumeEvent::Kind::kNodeUpdated, partial.volume, node,
                 end);
  return make_response(q.op, Status::kOk, end);
}

Response U1Backend::do_create_udf(const Request& q) {
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  emit_storage(ctx, ApiOp::kCreateUDF, now, {});
  if (write_rejected(ctx, now)) {
    TraceRecord failed;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kCreateUDF, now, now + kApiOverhead, failed);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }
  const Volume vol = store_.create_udf(ctx.session.user, now);
  const SimTime end = run_rpc(RpcOp::kCreateUDF, ctx, now);
  TraceRecord done;
  done.volume = vol.id;
  emit_storage_done(ctx, ApiOp::kCreateUDF, now, end, done);
  Response res = make_response(q.op, Status::kOk, end);
  res.volume = vol.id;
  res.root_dir = vol.root_dir;
  return res;
}

Response U1Backend::do_delete_volume(const Request& q) {
  const VolumeId volume = q.volume;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  TraceRecord partial;
  partial.volume = volume;
  emit_storage(ctx, ApiOp::kDeleteVolume, now, partial);
  if (write_rejected(ctx, now)) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kDeleteVolume, now, now + kApiOverhead,
                      failed);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }
  const auto dead = store_.delete_volume(ctx.session.user, volume);
  SimTime end = run_rpc(RpcOp::kDeleteVolume, ctx, now);
  for (const ContentInfo& blob : dead) {
    s3_.remove(blob.s3_key);
    store_.purge_content(blob.id);
    end = s3_latency(end);
  }
  shared_volumes_.erase(volume);
  emit_storage_done(ctx, ApiOp::kDeleteVolume, now, end, partial);
  publish_change(ctx, VolumeEvent::Kind::kVolumeDeleted, volume, NodeId{},
                 end);
  return make_response(q.op, Status::kOk, end);
}

ContentId U1Backend::effective_content(const ContentId& content, NodeId node) {
  if (config_.enable_dedup) return content;
  // Dedup ablation: uniquify so every upload stores a distinct blob.
  Sha1 h;
  h.update(content.hex());
  h.update(node.str());
  h.update(std::to_string(dedup_off_seq_++));
  return h.finish();
}

Response U1Backend::do_upload(const Request& q) {
  const NodeId node = q.node;
  const ContentId& content = q.content;
  const std::uint64_t size_bytes = q.size_bytes;
  const bool is_update = q.is_update();
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  const auto target = store_.get_node(ctx.session.user, node);
  TraceRecord partial;
  partial.node = node;
  partial.size_bytes = size_bytes;
  partial.content = content;
  partial.is_update = is_update;
  if (target) {
    partial.volume = target->volume;
    partial.label = symbols_.intern(target->extension);
  }
  emit_storage(ctx, ApiOp::kPutContent, now, partial);
  if (!target || target->is_dir() || size_bytes == 0 ||
      write_rejected(ctx, now)) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kPutContent, now, now + kApiOverhead,
                      failed);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }

  const ContentId eff = effective_content(content, node);
  ++stats_.uploads;

  SimTime t = now;
  bool dedup_hit = false;
  std::uint64_t wire = 0;

  if (config_.enable_dedup) {
    // The client sends the SHA-1 first; the server checks for the blob.
    const auto reusable = store_.get_reusable_content(eff, size_bytes);
    t = run_rpc(RpcOp::kGetReusableContent, ctx, t);
    dedup_hit = reusable.has_value();
  }

  if (dedup_hit) {
    // Logical link only; no data crosses the wire (§3.3).
    store_.make_content(ctx.session.user, node, eff, size_bytes, eff.hex());
    t = run_rpc(RpcOp::kMakeContent, ctx, t);
    ++stats_.dedup_hits;
  } else {
    wire = size_bytes;
    if (config_.enable_delta_updates && is_update) {
      // §9 ablation: a delta-aware client ships only the changed fraction.
      wire = std::max<std::uint64_t>(
          1024, static_cast<std::uint64_t>(
                    static_cast<double>(size_bytes) *
                    config_.delta_update_fraction));
    }
    const std::string s3_key = eff.hex();
    if (wire > kMultipartChunkBytes) {
      // Multipart upload state machine (appendix A, Fig. 17).
      const UploadJob job =
          store_.make_uploadjob(ctx.session.user, node, eff, wire, t);
      t = run_rpc(RpcOp::kMakeUploadJob, ctx, t);
      const std::string mpu = s3_.initiate_multipart(s3_key, t);
      t = s3_latency(t);
      store_.set_uploadjob_multipart_id(ctx.session.user, job.id, mpu);
      t = run_rpc(RpcOp::kSetUploadJobMultipartId, ctx, t);
      const PartsOutcome parts = push_parts(ctx, job.id, mpu, 0, wire, t);
      t = parts.t;
      bool complete_failed = false;
      if (parts.ok && injector_ != nullptr && injector_->s3_request_fails(t)) {
        ++stats_.s3_errors;
        complete_failed = true;
      }
      if (!parts.ok || complete_failed) {
        // Cut mid-flight: the committed parts stay in the uploadjob row
        // and the open S3 multipart, ready for resume_upload().
        stats_.upload_bytes_wire += parts.sent;
        ++stats_.interrupted_uploads;
        TraceRecord failed = partial;
        failed.failed = true;
        failed.transferred_bytes = parts.sent;
        emit_storage_done(ctx, ApiOp::kPutContent, now, t, failed);
        Response res = make_response(q.op, Status::kInterrupted, t);
        res.transferred_bytes = parts.sent;
        res.committed_bytes = parts.sent;
        res.job = job.id;
        return res;
      }
      s3_.complete_multipart(mpu, t);
      t = s3_latency(t);
      const auto dead = store_.make_content(ctx.session.user, node, eff,
                                            size_bytes, s3_key);
      t = run_rpc(RpcOp::kMakeContent, ctx, t);
      store_.delete_uploadjob(ctx.session.user, job.id);
      t = run_rpc(RpcOp::kDeleteUploadJob, ctx, t);
      if (dead) {
        s3_.remove(dead->s3_key);
        store_.purge_content(dead->id);
      }
    } else {
      // Single-shot upload: no uploadjob row, so an interruption means a
      // from-scratch retry (nil job in the result).
      const SimTime arrive =
          t + from_seconds(static_cast<double>(wire) / ctx.up_bw);
      const bool cut = crash_cut(ctx, t, arrive) != nullptr;
      bool s3_fail = false;
      SimTime fail_end = arrive;
      if (!cut && injector_ != nullptr &&
          injector_->s3_request_fails(arrive)) {
        ++stats_.s3_errors;
        s3_fail = true;
        fail_end = s3_latency(arrive);
      }
      if (cut || s3_fail) {
        ++stats_.interrupted_uploads;
        TraceRecord failed = partial;
        failed.failed = true;
        emit_storage_done(ctx, ApiOp::kPutContent, now, fail_end, failed);
        // Nil job: single-shot uploads leave nothing to resume.
        return make_response(q.op, Status::kInterrupted, fail_end);
      }
      t = arrive;
      s3_.put(s3_key, size_bytes, t);
      t = s3_latency(t);
      const auto dead = store_.make_content(ctx.session.user, node, eff,
                                            size_bytes, s3_key);
      t = run_rpc(RpcOp::kMakeContent, ctx, t);
      if (dead) {
        s3_.remove(dead->s3_key);
        store_.purge_content(dead->id);
      }
    }
  }

  stats_.upload_bytes_logical += size_bytes;
  stats_.upload_bytes_wire += wire;
  TraceRecord done = partial;
  done.transferred_bytes = wire;
  done.deduplicated = dedup_hit;
  emit_storage_done(ctx, ApiOp::kPutContent, now, t, done);
  publish_change(ctx,
                 is_update ? VolumeEvent::Kind::kNodeUpdated
                           : VolumeEvent::Kind::kNodeCreated,
                 partial.volume, node, t);
  Response res = make_response(q.op, Status::kOk, t);
  if (dedup_hit) res.flags |= kResponseDeduplicated;
  res.transferred_bytes = wire;
  res.committed_bytes = wire;
  return res;
}

U1Backend::PartsOutcome U1Backend::push_parts(SessionState& ctx,
                                              UploadJobId job,
                                              const std::string& mpu,
                                              std::uint64_t offset,
                                              std::uint64_t total, SimTime t) {
  PartsOutcome out;
  std::uint64_t remaining = total - offset;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min(remaining, kMultipartChunkBytes);
    const SimTime arrive =
        t + from_seconds(static_cast<double>(chunk) / ctx.up_bw);
    // A crash/outage hitting this session's process mid-transfer kills
    // the connection; parts already added to the job row survive.
    if (const FaultEvent* cut = crash_cut(ctx, t, arrive)) {
      out.interrupted = true;
      out.t = cut->at;
      return out;
    }
    if (injector_ != nullptr && injector_->s3_request_fails(arrive)) {
      ++stats_.s3_errors;
      out.interrupted = true;
      out.t = s3_latency(arrive);
      return out;
    }
    t = arrive;
    s3_.upload_part(mpu, chunk);
    t = s3_latency(t);
    store_.add_part_to_uploadjob(ctx.session.user, job, chunk, t);
    t = run_rpc(RpcOp::kAddPartToUploadJob, ctx, t);
    out.sent += chunk;
    remaining -= chunk;
  }
  out.ok = true;
  out.t = t;
  return out;
}

Response U1Backend::do_resume_upload(const Request& q) {
  const NodeId node = q.node;
  const ContentId& content = q.content;
  const std::uint64_t size_bytes = q.size_bytes;
  const bool is_update = q.is_update();
  const UploadJobId job_id = q.job;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  const auto target = store_.get_node(ctx.session.user, node);
  TraceRecord partial;
  partial.node = node;
  partial.size_bytes = size_bytes;
  partial.content = content;
  partial.is_update = is_update;
  if (target) {
    partial.volume = target->volume;
    partial.label = symbols_.intern(target->extension);
  }
  emit_storage(ctx, ApiOp::kPutContent, now, partial);

  const auto fail_done = [&](SimTime end, std::uint64_t sent) {
    TraceRecord failed = partial;
    failed.failed = true;
    failed.transferred_bytes = sent;
    emit_storage_done(ctx, ApiOp::kPutContent, now, end, failed);
  };

  if (!target || target->is_dir()) {
    // The node vanished while the client was offline; nothing to resume.
    fail_done(now + kApiOverhead, 0);
    return make_response(q.op, Status::kError, now + kApiOverhead);
  }
  if (write_rejected(ctx, now)) {
    // Transient shard-failover rejection: keep the job, retry later.
    fail_done(now + kApiOverhead, 0);
    Response res =
        make_response(q.op, Status::kInterrupted, now + kApiOverhead);
    res.job = job_id;
    return res;
  }

  // GetUploadJob: does the server still hold our committed parts?
  const auto job = store_.get_uploadjob(ctx.session.user, job_id);
  SimTime t = run_rpc(RpcOp::kGetUploadJob, ctx, now);
  const bool usable = job && job->node == node &&
                      !job->multipart_id.empty() &&
                      s3_.multipart_state(job->multipart_id).has_value();
  if (!usable) {
    // GC reclaimed it (or the S3 multipart is gone): clean any leftover
    // row and tell the client to start over from byte zero.
    if (job) {
      store_.delete_uploadjob(ctx.session.user, job_id);
      t = run_rpc(RpcOp::kDeleteUploadJob, ctx, t);
    }
    fail_done(t, 0);
    return make_response(q.op, Status::kError, t);
  }

  const std::uint64_t offset = job->bytes_received;
  const std::uint64_t total = job->declared_size;
  store_.touch_uploadjob(ctx.session.user, job_id, t);
  t = run_rpc(RpcOp::kTouchUploadJob, ctx, t);

  const PartsOutcome parts =
      push_parts(ctx, job_id, job->multipart_id, offset, total, t);
  t = parts.t;
  bool complete_failed = false;
  if (parts.ok && injector_ != nullptr && injector_->s3_request_fails(t)) {
    ++stats_.s3_errors;
    complete_failed = true;
  }
  stats_.upload_bytes_wire += parts.sent;
  if (!parts.ok || complete_failed) {
    ++stats_.interrupted_uploads;
    fail_done(t, parts.sent);
    Response res = make_response(q.op, Status::kInterrupted, t);
    res.transferred_bytes = parts.sent;
    res.committed_bytes = offset + parts.sent;
    res.job = job_id;
    return res;
  }

  const std::string s3_key = job->content.hex();
  s3_.complete_multipart(job->multipart_id, t);
  t = s3_latency(t);
  const auto dead = store_.make_content(ctx.session.user, node, job->content,
                                        size_bytes, s3_key);
  t = run_rpc(RpcOp::kMakeContent, ctx, t);
  store_.delete_uploadjob(ctx.session.user, job_id);
  t = run_rpc(RpcOp::kDeleteUploadJob, ctx, t);
  if (dead) {
    s3_.remove(dead->s3_key);
    store_.purge_content(dead->id);
  }
  ++stats_.resumed_uploads;
  stats_.upload_bytes_logical += size_bytes;
  TraceRecord done = partial;
  done.transferred_bytes = parts.sent;
  emit_storage_done(ctx, ApiOp::kPutContent, now, t, done);
  publish_change(ctx,
                 is_update ? VolumeEvent::Kind::kNodeUpdated
                           : VolumeEvent::Kind::kNodeCreated,
                 partial.volume, node, t);
  Response res = make_response(q.op, Status::kOk, t);
  res.transferred_bytes = parts.sent;
  res.committed_bytes = total;
  return res;
}

Response U1Backend::do_download(const Request& q) {
  const NodeId node = q.node;
  const SimTime now = q.now;
  auto* ctxp = find_session(q.session);
  if (ctxp == nullptr) return make_response(q.op, Status::kError, now);
  auto& ctx = *ctxp;
  ctx.session.storage_ops++;
  const auto target = store_.get_node(ctx.session.user, node);
  TraceRecord partial;
  partial.node = node;
  if (target) {
    partial.volume = target->volume;
    partial.label = symbols_.intern(target->extension);
    partial.size_bytes = target->size_bytes;
    partial.content = target->content;
  }
  emit_storage(ctx, ApiOp::kGetContent, now, partial);
  SimTime t = run_rpc(RpcOp::kGetNode, ctx, now);
  if (!target || target->is_dir() || target->size_bytes == 0) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kGetContent, now, t, failed);
    return make_response(q.op, Status::kError, t);
  }
  // Single S3 request; the API process streams it to the client (§A).
  if (injector_ != nullptr && injector_->s3_request_fails(t)) {
    ++stats_.s3_errors;
    const SimTime end = s3_latency(t);
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kGetContent, now, end, failed);
    return make_response(q.op, Status::kError, end);
  }
  t = s3_latency(t);
  const SimTime arrive =
      t + from_seconds(static_cast<double>(target->size_bytes) / ctx.down_bw);
  if (const FaultEvent* cut = crash_cut(ctx, t, arrive)) {
    TraceRecord failed = partial;
    failed.failed = true;
    emit_storage_done(ctx, ApiOp::kGetContent, now, cut->at, failed);
    return make_response(q.op, Status::kError, cut->at);
  }
  t = arrive;
  ++stats_.downloads;
  stats_.download_bytes += target->size_bytes;
  TraceRecord done = partial;
  done.transferred_bytes = target->size_bytes;
  emit_storage_done(ctx, ApiOp::kGetContent, now, t, done);
  Response res = make_response(q.op, Status::kOk, t);
  res.transferred_bytes = target->size_bytes;
  return res;
}

Response U1Backend::do_share_volume(const Request& q) {
  store_.share_volume(q.user, q.volume, q.peer, q.now);
  shared_volumes_.insert(q.volume);
  return make_response(q.op, Status::kOk, q.now);
}

void U1Backend::maintenance(SimTime now) {
  // Weekly uploadjob GC (appendix A): collect jobs idle for > 1 week and
  // abort their in-flight S3 multiparts so the parts stop costing money.
  if (now - last_gc_ >= kDay) {
    last_gc_ = now;
    for (const UploadJob& job : store_.gc_uploadjobs(now - kWeek)) {
      if (!job.multipart_id.empty()) s3_.abort_multipart(job.multipart_id);
    }
  }
  // Occasional process migration for load balancing (§3.4).
  if (now - last_migration_ >= 6 * kHour) {
    last_migration_ = now;
    fleet_.migrate_processes(0.05);
  }
}

void U1Backend::admin_purge_user(UserId user, SimTime now) {
  // 1. Delete the fraudulent account and revoke its credentials so any
  //    further connects fail (the paper: engineers "manually handled DDoS
  //    by means of deleting fraudulent users and the content").
  banned_users_.insert(user);
  auth_.revoke_user_tokens(user);
  const auto tok = user_tokens_.find(user);
  if (tok != user_tokens_.end()) {
    token_cache_.erase(tok->second);
    user_tokens_.erase(tok);
  }
  // 2. Kick live sessions. A session that was still mid-handshake when
  //    the operator acted closes right after it opened, never before.
  const auto sess_it = user_sessions_.find(user);
  if (sess_it != user_sessions_.end()) {
    const std::vector<SessionId> open = sess_it->second;
    for (const SessionId sid : open) {
      const SessionState* state = find_session(sid);
      if (state == nullptr) continue;  // already dropped by a fault
      disconnect(sid, std::max(now, state->session.started_at));
    }
  }
  // 3. Delete the distributed content (root-volume children).
  if (store_.has_user(user)) {
    const NodeId root = store_.get_root(user);
    const Shard& shard = store_.shard(store_.shard_of(user));
    for (const NodeId child : shard.children_of(root)) {
      for (const ContentInfo& blob : store_.unlink_node(user, child)) {
        s3_.remove(blob.s3_key);
        store_.purge_content(blob.id);
      }
    }
  }
}

// --- fault injection ---------------------------------------------------------

bool U1Backend::write_rejected(const SessionState& ctx, SimTime now) {
  if (injector_ == nullptr) return false;
  const ShardId s = store_.shard_of(ctx.session.user);
  if (!injector_->shard_write_rejected(s.value, now)) return false;
  ++stats_.write_rejects;
  return true;
}

const FaultEvent* U1Backend::crash_cut(const SessionState& ctx, SimTime from,
                                       SimTime until) const {
  if (injector_ == nullptr) return nullptr;
  const FaultEvent* best = nullptr;
  for (const FaultEvent& ev : injector_->schedule()) {
    if (!ev.begin || ev.at <= from || ev.at > until) continue;
    bool hits = false;
    if (ev.kind == FaultKind::kMachineOutage) {
      hits = ev.machine == ctx.session.api_machine.value;
    } else if (ev.kind == FaultKind::kProcessCrash) {
      const auto it = fault_victims_.find(ev.id);
      hits = it != fault_victims_.end() &&
             it->second == ctx.session.api_process;
    }
    if (hits && (best == nullptr || ev.at < best->at)) best = &ev;
  }
  return best;
}

void U1Backend::set_fault_injector(FaultInjector* injector) {
  injector_ = injector;
  fault_victims_.clear();
  if (injector_ == nullptr) return;
  for (const FaultEvent& ev : injector_->schedule()) {
    if (ev.kind != FaultKind::kProcessCrash || !ev.begin) continue;
    const auto procs = fleet_.live_processes_on(MachineId{ev.machine});
    if (procs.empty()) continue;
    fault_victims_.emplace(ev.id, procs[ev.slot % procs.size()]);
  }
}

void U1Backend::drop_sessions(
    SimTime now, const std::function<bool(const SessionState&)>& pred) {
  std::vector<SessionId> doomed;
  for (const auto& [sid, state] : sessions_) {
    if (pred(state)) doomed.push_back(sid);
  }
  // Hash-map order is not deterministic across layouts; trace order is.
  std::sort(doomed.begin(), doomed.end(),
            [](SessionId a, SessionId b) { return a.value < b.value; });
  for (const SessionId sid : doomed) {
    SessionState& state = sessions_.at(sid);
    state.session.ended_at = now;
    emit_session_event(state.session.api_machine, state.session.api_process,
                       state.session.user, sid, SessionEvent::kDropped, now,
                       now - state.session.started_at);
    fleet_.end_session(state.session.api_machine, state.session.api_process);
    auto& list = user_sessions_[state.session.user];
    list.erase(std::remove(list.begin(), list.end(), sid), list.end());
    sessions_.erase(sid);
    ++stats_.sessions_dropped;
  }
}

void U1Backend::apply_fault(const FaultEvent& event, SimTime now,
                            bool emit_record) {
  switch (event.kind) {
    case FaultKind::kProcessCrash: {
      const auto it = fault_victims_.find(event.id);
      if (it == fault_victims_.end()) break;
      if (event.begin) {
        fleet_.kill_process(it->second);
        const ProcessId victim = it->second;
        drop_sessions(now, [victim](const SessionState& st) {
          return st.session.api_process == victim;
        });
      } else {
        // Respawn at `now` so the slow-start ramp (when configured)
        // re-admits the process gradually instead of flooding it.
        fleet_.respawn_process(it->second, now);
      }
      break;
    }
    case FaultKind::kMachineOutage: {
      const MachineId m{event.machine};
      if (event.begin) {
        fleet_.kill_machine(m);
        drop_sessions(now, [m](const SessionState& st) {
          return st.session.api_machine == m;
        });
      } else {
        fleet_.restore_machine(m, now);
      }
      break;
    }
    case FaultKind::kShardFailover:
    case FaultKind::kS3Brownout:
    case FaultKind::kMqDrop:
    case FaultKind::kAuthBrownout:
      // Window faults act through the injector's inline lookups.
      break;
  }
  if (emit_record) {
    TraceRecord r;
    r.t = now;
    r.type = RecordType::kFault;
    r.label = symbols_.intern(fault_label(event));
    r.machine = MachineId{event.machine};
    if (event.kind == FaultKind::kProcessCrash) {
      const auto it = fault_victims_.find(event.id);
      if (it != fault_victims_.end()) r.process = it->second;
    }
    r.shard = ShardId{event.shard};
    r.duration = event.duration;
    sink_->append(r);
  }
}

}  // namespace u1
