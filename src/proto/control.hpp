// Distributed control plane (DESIGN.md §12): the epoch-barrier messages
// the multi-process coordinator exchanges with its worker processes.
// Frames reuse the envelope's [len:u32][version:u16][op:u8][payload]
// layout — same version, same typed-rejection semantics — but carry the
// control ops (ProtoOp::kEpochBegin..kShutdown) and a much larger frame
// cap: an epoch's serialized dedup logs scale with new-blob volume, not
// with a single storage call. The request/response decoders refuse these
// ops and these decoders refuse request-plane ops, so the two planes
// cannot be confused even on a corrupted stream.
//
// Decoding is strict, exactly like the envelope: every field
// bounds-checked, unknown ops / foreign versions / oversized lengths /
// slack payload bytes rejected with a typed Status. The hostile-input
// battery from PR 7 extends over these frames (tests/proto/
// control_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "proto/envelope.hpp"
#include "util/sim_time.hpp"

namespace u1 {

/// Upper bound on a control frame's `len`. Epoch payloads carry whole
/// serialized dedup op logs and pool deltas, so the request-plane 64KiB
/// cap does not apply; anything past this is a corrupt or hostile peer.
inline constexpr std::uint32_t kMaxControlFrameBytes = 256u * 1024 * 1024;

/// One EpochMailbox posting: lane = destination shard group, value = the
/// mailbox payload (a UserId for purge lanes).
struct MailboxEntry {
  std::uint32_t lane = 0;
  std::uint64_t value = 0;

  bool operator==(const MailboxEntry&) const = default;
};

/// Coordinator -> worker at each barrier: every group's serialized dedup
/// op log and content-pool delta for the finished epoch, in group-index
/// order (the deterministic replay order). `tail` marks the two run-tail
/// barriers, whose blob lists are empty.
struct EpochBeginMsg {
  std::uint64_t seq = 0;
  bool tail = false;
  std::vector<std::vector<std::uint8_t>> dedup_logs;   // one per group
  std::vector<std::vector<std::uint8_t>> pool_deltas;  // one per group

  bool operator==(const EpochBeginMsg&) const = default;
};

/// Coordinator -> worker: the EpochMailbox postings routed to this
/// worker's lanes (AnomalyGuard purges), delivered at the next barrier.
struct MailboxBatchMsg {
  std::uint64_t seq = 0;
  std::vector<MailboxEntry> entries;

  bool operator==(const MailboxBatchMsg&) const = default;
};

/// One AnomalyGuard observation: the minimal projection of a session
/// TraceRecord the guard reads (improve/anomaly_guard.cpp filters on
/// type/session_event and then touches only t and user).
struct GuardFeedEntry {
  SimTime t = 0;
  std::uint64_t user = 0;
  std::uint8_t session_event = 0;  // SessionEvent wire byte

  bool operator==(const GuardFeedEntry&) const = default;
};

/// Worker -> coordinator at each barrier: its local groups' serialized
/// deltas (group order within [first_group, first_group + n)), plus the
/// guard feed extracted from the epoch's merged local stream.
struct EpochDoneMsg {
  std::uint64_t seq = 0;
  bool tail = false;
  std::uint32_t first_group = 0;
  std::vector<std::vector<std::uint8_t>> dedup_logs;   // one per local group
  std::vector<std::vector<std::uint8_t>> pool_deltas;  // one per local group
  std::vector<GuardFeedEntry> feed;

  bool operator==(const EpochDoneMsg&) const = default;
};

/// Worker -> coordinator at end of run: the shard manifest. Counters and
/// timings are positional (the coordinator and worker agree on the
/// layout in sim/distributed.cpp); keeping them generic here keeps the
/// proto layer free of sim types.
struct ChunkMetaMsg {
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> counters;
  std::vector<double> timings;

  bool operator==(const ChunkMetaMsg&) const = default;
};

/// Coordinator -> worker: drain and exit with `code`.
struct ShutdownMsg {
  std::uint32_t code = 0;
  std::string message;

  bool operator==(const ShutdownMsg&) const = default;
};

/// Appends one framed control payload to `out`. `op` must be a control
/// op (asserted); payload bytes come from the encode_* helpers below.
void append_control_frame(std::vector<std::uint8_t>& out, ProtoOp op,
                          const std::vector<std::uint8_t>& payload);

/// Splits the control frame at the front of [data, data+n). On kOk,
/// `op` and `payload` (a view into `data`) are set and `consumed` is
/// the frame size. Protocol errors mirror the envelope decoders:
/// truncation inside a known length consumes the frame, an oversized
/// length prefix consumes 0 (drop the connection).
FrameDecode split_control_frame(const std::uint8_t* data, std::size_t n,
                                ProtoOp& op,
                                std::span<const std::uint8_t>& payload);

// Payload codecs. Decoders return kOk, kBadFrame (truncated/overlong
// field) or kSlackPayload (trailing bytes after all fields).
std::vector<std::uint8_t> encode_epoch_begin(const EpochBeginMsg& m);
Status decode_epoch_begin(std::span<const std::uint8_t> payload,
                          EpochBeginMsg& out);

std::vector<std::uint8_t> encode_mailbox_batch(const MailboxBatchMsg& m);
Status decode_mailbox_batch(std::span<const std::uint8_t> payload,
                            MailboxBatchMsg& out);

std::vector<std::uint8_t> encode_epoch_done(const EpochDoneMsg& m);
Status decode_epoch_done(std::span<const std::uint8_t> payload,
                         EpochDoneMsg& out);

std::vector<std::uint8_t> encode_chunk_meta(const ChunkMetaMsg& m);
Status decode_chunk_meta(std::span<const std::uint8_t> payload,
                         ChunkMetaMsg& out);

std::vector<std::uint8_t> encode_shutdown(const ShutdownMsg& m);
Status decode_shutdown(std::span<const std::uint8_t> payload,
                       ShutdownMsg& out);

}  // namespace u1
