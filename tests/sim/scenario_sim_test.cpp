// Determinism oracle for the canned incident scenarios: every scenario
// in the registry must produce a byte-identical merged trace at 1/2/4/8
// worker threads, and the same trace again with every backend call
// round-tripped through the wire codec (BackendConfig::wire_check — the
// envelope-equivalence harness). A divergence means a cascading-fault
// edge, slow-start ramp or load-shed path consumed RNG or ordered work
// differently under a different engine — the incident library would not
// be replayable.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/scenarios.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

/// The scenario at CI scale: its fault plan plus the backend posture it
/// assumes (slow-start window, per-process session cap).
SimulationConfig scenario_config(const IncidentScenario& sc,
                                 bool wire_check = false) {
  SimulationConfig cfg;
  cfg.users = 200;
  cfg.days = 3;
  cfg.seed = 20140111;
  cfg.faults = parse_fault_plan(sc.plan_text);
  cfg.backend.fleet.slow_start = sc.slow_start;
  cfg.backend.session_cap_per_process = sc.session_cap;
  cfg.backend.wire_check = wire_check;
  return cfg;
}

Sha1Digest trace_sha1(const SimulationConfig& cfg, std::size_t threads,
                      SimulationReport* report = nullptr) {
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, threads);
  const SimulationReport r = sim.run();
  if (report != nullptr) *report = r;
  std::string all;
  for (const TraceRecord& rec : sink.records()) {
    for (const std::string& field : rec.to_csv()) {
      all += field;
      all += ',';
    }
    all += '\n';
  }
  EXPECT_FALSE(all.empty());
  return Sha1::of(all);
}

TEST(ScenarioSimulation, EveryScenarioIdenticalAcrossThreadCounts) {
  for (const IncidentScenario& sc : incident_scenarios()) {
    const std::string name(sc.name);
    SimulationReport oracle_report;
    const Sha1Digest oracle =
        trace_sha1(scenario_config(sc), 1, &oracle_report);
    EXPECT_GT(oracle_report.fault_events, 0u) << name;
    for (const std::size_t threads : {2u, 4u, 8u}) {
      EXPECT_EQ(trace_sha1(scenario_config(sc), threads), oracle)
          << name << " diverged at " << threads << " threads";
    }
  }
}

TEST(ScenarioSimulation, WireCheckedRunMatchesDirectPath) {
  // The envelope-equivalence harness, per scenario: the wire-checked
  // run (every call serialized through the u1d envelope and back) must
  // reproduce the direct-call trace byte for byte.
  for (const IncidentScenario& sc : incident_scenarios()) {
    const std::string name(sc.name);
    const Sha1Digest direct = trace_sha1(scenario_config(sc, false), 2);
    SimulationReport wired_report;
    const Sha1Digest wired =
        trace_sha1(scenario_config(sc, true), 2, &wired_report);
    EXPECT_EQ(wired, direct) << name << " wire-checked trace diverged";
    EXPECT_GT(wired_report.backend.rpcs, 0u) << name;
  }
}

TEST(ScenarioSimulation, DependencyEdgesFireInsideHorizon) {
  // Each scenario's deterministic (p=1) chain materializes: the run
  // observes at least one begin+end pair per certain spec, and the
  // population survives to keep working after the last window.
  for (const IncidentScenario& sc : incident_scenarios()) {
    const std::string name(sc.name);
    std::size_t certain = 0;
    const FaultPlan plan = parse_fault_plan(sc.plan_text);
    for (const FaultSpec& spec : plan.specs)
      if (spec.trigger_prob >= 1.0) ++certain;
    SimulationReport report;
    (void)trace_sha1(scenario_config(sc), 2, &report);
    EXPECT_GE(report.fault_events, 2 * certain) << name;
    EXPECT_GT(report.backend.sessions_opened, 0u) << name;
    EXPECT_GT(report.backend.uploads, 0u) << name;
  }
}

}  // namespace
}  // namespace u1
