// The `.u1b` binary columnar trace format (DESIGN.md §8).
//
// CSV serialization is the single most expensive phase of a month-scale
// run: every record costs ~24 formatted fields, and every re-read costs
// the reverse parse. A TraceRecord is already a 128-byte POD with
// interned labels, so persistence does not need formatting at all — it
// needs a byte layout. One `.u1b` file corresponds to exactly one CSV
// logfile (same per-(machine, process, day) sharding, same
// "production-…" name), and holds the identical records; `u1trace
// convert` round-trips a directory between the two formats
// byte-faithfully in both directions.
//
// Layout (all integers little-endian; varint = LEB128):
//
//   file      := header stripe*
//   header    := magic[8] version:u32 header_bytes:u32 machine:u8 pad:u8
//                process:u16 stripe_count:u32 record_count:u64
//                payload_bytes:u64 xxh64:u64 pad              (64 bytes)
//   stripe    := payload_bytes:u32 record_count:u32
//                type_counts:u32[kRecordTypeCount]           (28 bytes)
//                type_seq:u8[record_count] segment*
//   segment   := one per record type with type_counts[t] > 0, in
//                RecordType order; column-major (see binlog.cpp for the
//                exact column list): varint columns for the integer
//                fields (timestamps zigzag-delta-encoded within the
//                segment), presence bitmap + raw bytes for UUID/SHA-1
//                columns, plain u8 arrays for the enum/flag columns
//
// Records are buffered per file and flushed as a stripe every
// kStripeRecords appends, so writer memory stays bounded no matter how
// long the run is. `machine` and `process` are file constants (the file
// IS one process-day) and live in the header, never per record; `type`
// is a segment constant. The SHA-1 in the header covers every byte after
// the header and is patched in at close, together with the counts.
//
// Symbols: the `label` column stores file-local dictionary ids. The
// dictionary — exactly the strings this one logfile references, in
// first-use order — is written once to a `.u1s` sidecar next to the
// file (magic, version, count, checksum, then length-prefixed strings).
// The reader interns the sidecar strings back into the global
// SymbolTable and rewrites labels to global ids, so decoded records are
// indistinguishable from engine-emitted ones.
//
// The reader memory-maps the file (falling back to a plain read when
// mmap is unavailable) and decodes columns straight out of the mapping —
// no text tokenizing, no number parsing, no per-field strings. Every
// access is bounds-checked against the mapping; hostile inputs (bad
// magic, truncated tails, corrupt checksums, missing sidecars) are
// rejected with counts in ReadStats, never UB.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/logfile.hpp"
#include "trace/record.hpp"
#include "trace/symbols.hpp"

namespace u1 {

/// On-disk trace format selector (U1SIM_TRACE_FORMAT=csv|bin).
enum class TraceFormat : std::uint8_t { kCsv, kBinary };

std::string_view to_string(TraceFormat f) noexcept;
std::optional<TraceFormat> trace_format_from_string(
    std::string_view s) noexcept;
/// U1SIM_TRACE_FORMAT, defaulting to kCsv (the historical format; the
/// full-scale trace SHA-1 contract is pinned to it).
TraceFormat trace_format_from_env();

/// File extensions: logfiles are "<logname>.u1b", the symbol sidecar is
/// "<logname>.u1s".
inline constexpr std::string_view kBinaryLogfileExt = ".u1b";
inline constexpr std::string_view kSymbolSidecarExt = ".u1s";

/// True when the 8 bytes at `p` (n >= 8) are the .u1b file magic.
bool is_binary_logfile_magic(const unsigned char* p, std::size_t n) noexcept;

/// Writes records into per-(machine, process, day) `.u1b` files plus one
/// `.u1s` symbol sidecar each. Same sharding rule — and therefore the
/// same file set — as the CSV LogfileWriter. Records must carry global
/// label ids (every sink-visible record does).
class BinaryLogfileWriter final : public LogfileSink {
 public:
  explicit BinaryLogfileWriter(std::filesystem::path directory);
  ~BinaryLogfileWriter() override;

  void append(const TraceRecord& record) override;
  void append_batch(const TraceRecord* records, std::size_t count) override;
  /// Flushes trailing stripes, patches headers/checksums, writes the
  /// sidecars and closes every file.
  void close() override;

  /// Open files (0 after close()), mirroring LogfileWriter semantics.
  std::size_t files_written() const noexcept override {
    return files_.size();
  }
  std::uint64_t records_written() const noexcept { return records_; }
  /// Bytes handed to the filesystem so far (headers, stripes, sidecars).
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }

  /// Records buffered per file before a stripe is cut. Tests shrink this
  /// to exercise multi-stripe files without bulk data.
  void set_stripe_records(std::size_t n) noexcept {
    stripe_records_ = n < 1 ? 1 : n;
  }

 private:
  struct FileState;

  FileState& file_for(const TraceRecord& record);
  void flush_stripe(FileState& file);
  void finalize(FileState& file);

  std::filesystem::path dir_;
  // Keyed by (machine, process, day) packed into one integer — no
  // logname string is built on the hot path.
  std::unordered_map<std::uint64_t, std::unique_ptr<FileState>> files_;
  std::vector<std::uint8_t> scratch_;  // stripe encode buffer, reused
  std::size_t stripe_records_ = 8192;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Reads one `.u1b` logfile (and its `.u1s` sidecar), appending decoded
/// records — labels rewritten to global symbol ids — to `out`. Integrity
/// failures never throw: they are reported through the returned stats
/// (`malformed` counts records lost to bad magic / version / truncation /
/// checksum / sidecar problems; `checksum_failures` counts files whose
/// payload digest did not match). A truncated tail loses only the
/// stripes it overlaps: intact leading stripes still decode.
ReadStats read_binary_logfile(const std::filesystem::path& file,
                              std::vector<TraceRecord>& out);

/// The writer for `format` behind the common LogfileSink interface.
std::unique_ptr<LogfileSink> make_logfile_writer(
    std::filesystem::path directory, TraceFormat format);

}  // namespace u1
