// Fig. 6: online vs active users per hour.
#include "analysis/users.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  UserActivityAnalyzer users(0, cfg.days * kDay);
  auto sim = run_into(users, cfg);
  users.finalize();

  header("Fig 6", "Online vs active users per hour");
  const auto online = users.online_users_hourly();
  const auto active = users.active_users_hourly();
  std::printf("  %-22s %10s %10s %8s\n", "time", "online", "active",
              "share");
  for (std::size_t i = 0; i < online.size(); i += 6) {
    if (day_index(static_cast<SimTime>(i) * kHour) > 6) break;  // one week
    const double share = online[i] > 0 ? active[i] / online[i] : 0;
    std::printf("  %-22s %10.0f %10.0f %7.1f%%\n",
                format_timestamp(static_cast<SimTime>(i) * kHour).c_str(),
                online[i], active[i], share * 100);
  }
  const auto [lo, hi] = users.active_share_range();
  row("min active share of online users", 0.0349, lo);
  row("max active share of online users", 0.1625, hi);
  note("paper: the storage workload is light compared to the potential of "
       "the online population");
  return 0;
}
