file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04a_dedup.dir/bench_fig04a_dedup.cpp.o"
  "CMakeFiles/bench_fig04a_dedup.dir/bench_fig04a_dedup.cpp.o.d"
  "bench_fig04a_dedup"
  "bench_fig04a_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04a_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
