// Shared harness for the figure/table benches: runs the standard
// month-scale simulation once, streaming records into the caller's
// analyzers, and provides small printing helpers so every bench reports
// "paper vs measured" rows in the same format.
//
// Scale: the real trace covers 1.29M users; the default bench population
// is 8,000 (override with the U1SIM_USERS environment variable). All
// reproduced quantities are ratios, distributions and shapes, which are
// scale-free; absolute totals are reported per-user-normalized alongside.
//
// Engine selection: U1SIM_THREADS (default: hardware concurrency) picks
// the worker count. 1 runs the classic sequential Simulation; >= 2 runs
// the deterministic shard-parallel engine, whose trace is byte-identical
// across thread counts (but is a different engine from the sequential
// Simulation — fix U1SIM_THREADS when comparing runs).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_mem.hpp"
#include "fault/fault_plan.hpp"
#include "fault/scenarios.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"

namespace u1::bench {

inline std::size_t env_users(std::size_t fallback = 8000) {
  if (const char* v = std::getenv("U1SIM_USERS")) {
    const long n = std::atol(v);
    if (n > 10) return static_cast<std::size_t>(n);
  }
  return fallback;
}

inline int env_days(int fallback = 30) {
  if (const char* v = std::getenv("U1SIM_DAYS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return fallback;
}

/// Worker threads: U1SIM_THREADS wins; otherwise `fallback` (0 meaning
/// "ask the hardware").
inline std::size_t env_threads(std::size_t fallback = 0) {
  if (const char* v = std::getenv("U1SIM_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  if (fallback != 0) return fallback;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Fault plan from the U1SIM_FAULTS environment knob: unset/""/"0" =
/// faults off; "1"/"standard" = the standard acceptance plan; a canned
/// incident-scenario name (optionally @-prefixed, e.g. "retry_storm" or
/// "@rolling_restart") = that scenario's plan; anything else = path to a
/// fault-plan file (same grammar as --fault-plan).
inline FaultPlan env_fault_plan() {
  const char* v = std::getenv("U1SIM_FAULTS");
  if (v == nullptr || *v == '\0' || std::string_view(v) == "0") return {};
  if (std::string_view(v) == "1" || std::string_view(v) == "standard")
    return standard_fault_plan();
  std::string_view name(v);
  if (!name.empty() && name.front() == '@') name.remove_prefix(1);
  if (const IncidentScenario* sc = find_incident_scenario(name))
    return parse_fault_plan(sc->plan_text);
  std::ifstream in(v);
  if (!in)
    throw std::runtime_error(std::string("U1SIM_FAULTS: cannot open ") + v);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_fault_plan(text.str());
}

/// Applies a canned scenario to a config: its fault plan plus the
/// backend posture it assumes (slow-start window, per-process cap).
inline void apply_incident_scenario(SimulationConfig& cfg,
                                    const IncidentScenario& sc) {
  cfg.faults = parse_fault_plan(sc.plan_text);
  cfg.backend.fleet.slow_start = sc.slow_start;
  cfg.backend.session_cap_per_process = sc.session_cap;
}

inline SimulationConfig standard_config(std::size_t users, int days,
                                        bool ddos = true) {
  SimulationConfig cfg;
  cfg.users = users;
  cfg.days = days;
  cfg.seed = 20140111;
  cfg.enable_ddos = ddos;
  cfg.faults = env_fault_plan();
  // A scenario name in U1SIM_FAULTS also sets the posture it assumes.
  if (const char* v = std::getenv("U1SIM_FAULTS")) {
    std::string_view name(v);
    if (!name.empty() && name.front() == '@') name.remove_prefix(1);
    if (const IncidentScenario* sc = find_incident_scenario(name)) {
      cfg.backend.fleet.slow_start = sc->slow_start;
      cfg.backend.session_cap_per_process = sc->session_cap;
    }
  }
  return cfg;
}

/// A finished simulation of either engine. Snapshot accessors hide which
/// engine ran: contents() is the global dedup registry, stores() the
/// metadata store(s) holding the population (one per shard group under
/// the parallel engine).
class SimRun {
 public:
  explicit SimRun(std::unique_ptr<Simulation> seq) : seq_(std::move(seq)) {}
  explicit SimRun(std::unique_ptr<ParallelSimulation> par)
      : par_(std::move(par)) {}

  const SimulationReport& report() const noexcept { return report_; }
  std::size_t threads() const noexcept {
    return seq_ ? 1 : par_->threads();
  }

  const ContentRegistry& contents() const {
    return seq_ ? seq_->backend().store().contents() : par_->contents();
  }

  std::vector<const MetadataStore*> stores() const {
    if (seq_) return {&seq_->backend().store()};
    return par_->stores();
  }

  /// The single back-end — sequential engine only (the parallel engine
  /// has one per shard group; use contents()/stores() instead).
  const U1Backend& backend() const {
    if (!seq_)
      throw std::logic_error(
          "SimRun::backend: parallel run has per-group back-ends");
    return seq_->backend();
  }

  SimulationReport run() {
    report_ = seq_ ? seq_->run() : par_->run();
    return report_;
  }

 private:
  std::unique_ptr<Simulation> seq_;
  std::unique_ptr<ParallelSimulation> par_;
  SimulationReport report_;
};

/// Runs the simulation, streaming every record into `sink`; returns the
/// SimRun (whose back-end state outlives the run for snapshots).
/// threads == 0 defers to U1SIM_THREADS / hardware concurrency.
inline std::unique_ptr<SimRun> run_into(TraceSink& sink,
                                        const SimulationConfig& cfg,
                                        std::size_t threads = 0) {
  if (threads == 0) threads = env_threads();
  std::printf("# u1sim | users=%zu days=%d seed=%llu ddos=%s faults=%s "
              "threads=%zu engine=%s\n",
              cfg.users, cfg.days,
              static_cast<unsigned long long>(cfg.seed),
              cfg.enable_ddos ? "on" : "off",
              cfg.faults.empty()
                  ? "off"
                  : (std::to_string(cfg.faults.specs.size()) + "-spec plan")
                        .c_str(),
              threads, threads <= 1 ? "sequential" : "shard-parallel");
  std::unique_ptr<SimRun> run;
  if (threads <= 1) {
    run = std::make_unique<SimRun>(std::make_unique<Simulation>(cfg, sink));
  } else {
    run = std::make_unique<SimRun>(
        std::make_unique<ParallelSimulation>(cfg, sink, threads));
  }
  const SimulationReport report = run->run();
  std::printf("# trace: %llu sessions, %llu uploads, %llu downloads, "
              "%llu rpcs\n",
              static_cast<unsigned long long>(report.backend.sessions_opened),
              static_cast<unsigned long long>(report.backend.uploads),
              static_cast<unsigned long long>(report.backend.downloads),
              static_cast<unsigned long long>(report.backend.rpcs));
  return run;
}

inline void header(const char* figure, const char* title) {
  std::printf("\n================================================="
              "=============\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("==================================================="
              "===========\n");
}

inline void row(const char* metric, double paper, double measured,
                const char* unit = "") {
  std::printf("  %-46s paper=%10.4g   measured=%10.4g %s\n", metric, paper,
              measured, unit);
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

}  // namespace u1::bench
