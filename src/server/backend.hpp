// U1Backend wires the whole datacenter of Fig. 1 together: load balancer,
// API server fleet, RPC workers, sharded metadata store, Amazon S3
// substitute, Canonical auth service and the RabbitMQ notification fabric.
// Client agents call the operation methods; every operation emits trace
// records (storage / storage_done / rpc / session) exactly as the real
// service logged them, and returns the virtual time at which it completed
// so callers can chain requests.
//
// Every operation flows through the protocol envelope (proto/envelope.hpp,
// DESIGN.md §9): the typed methods are thin wrappers that pack a Request
// and hand it to call(), the single dispatch the `u1d` socket server uses
// for frames off the wire — sim mode and server mode share one backend
// implementation and one serialization surface. With
// BackendConfig::wire_check on, call() additionally round-trips every
// Request/Response through the frame codec and verifies field-identical
// decode, so a simulation run doubles as an end-to-end codec proof.
//
// Time model: operations run to completion on the caller's timeline.
// Write RPCs serialize on their shard master (busy-window queueing, which
// produces the short-window shard load variance of Fig. 14); read RPCs hit
// the replica pair and do not queue behind writes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "auth/auth_service.hpp"
#include "auth/token_cache.hpp"
#include "cloudstore/object_store.hpp"
#include "fault/fault_injector.hpp"
#include "mq/message_queue.hpp"
#include "proto/entities.hpp"
#include "proto/envelope.hpp"
#include "server/fleet.hpp"
#include "store/metadata_store.hpp"
#include "store/service_time.hpp"
#include "trace/sink.hpp"
#include "trace/symbols.hpp"

namespace u1 {

struct BackendConfig {
  std::size_t shards = 10;          // paper: 10 master/slave shards
  FleetConfig fleet;                // paper: 6 machines, 8-16 procs each
  double auth_failure_rate = 0.0276;
  std::size_t token_cache_capacity = 65536;

  /// Client wire model: per-session bandwidth is log-normal around these
  /// medians (residential asymmetric links of the 2014 user base).
  double upload_bytes_per_sec_median = 350.0 * 1024;
  double download_bytes_per_sec_median = 1.2 * 1024 * 1024;
  double bandwidth_sigma = 0.8;

  /// One-way latency charged per S3 API interaction.
  double s3_latency_s_median = 0.025;

  /// Feature toggles for the §9 ablations.
  bool enable_dedup = true;          // file-based cross-user dedup (on in U1)
  bool enable_delta_updates = false; // NOT implemented by the U1 client
  double delta_update_fraction = 0.15;  // wire share when deltas are on

  /// Load shedding: a process at this many open sessions makes the
  /// balancer answer "try again" instead of accepting (0 = unlimited,
  /// the historical behavior).
  std::uint64_t session_cap_per_process = 0;

  /// Envelope-codec proof mode: call() round-trips every Request and
  /// Response through the wire frame codec and verifies the decode is
  /// field-identical before/after dispatch (throws std::logic_error on
  /// divergence). The trace must be byte-identical with this on or off —
  /// the equivalence tests assert exactly that.
  bool wire_check = false;

  /// Session-id namespace: ids are base, base+stride, base+2*stride, ...
  /// A multi-backend engine (one back-end per shard group) sets
  /// base = group+1, stride = group count, so session ids stay globally
  /// unique in the merged trace and analyzers keyed by SessionId never
  /// conflate sessions from different groups.
  std::uint64_t session_id_base = 1;
  std::uint64_t session_id_stride = 1;

  std::uint64_t seed = 0xc10ed;
};

struct BackendStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t uploads = 0;
  std::uint64_t downloads = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t upload_bytes_logical = 0;
  std::uint64_t upload_bytes_wire = 0;
  std::uint64_t download_bytes = 0;
  std::uint64_t rpcs = 0;
  std::uint64_t notifications = 0;

  // Degraded-mode accounting (all zero in a fault-free run).
  std::uint64_t sessions_dropped = 0;     // force-closed by crash/outage
  std::uint64_t shed_connects = 0;        // balancer said "try again"
  std::uint64_t interrupted_uploads = 0;  // transfers cut by a fault
  std::uint64_t resumed_uploads = 0;      // finished via resume_upload
  std::uint64_t write_rejects = 0;        // shard failover write rejections
  std::uint64_t s3_errors = 0;            // brownout request failures
  std::uint64_t notifications_dropped = 0;

  /// Aggregation across per-group backends (shard-parallel engine).
  BackendStats& operator+=(const BackendStats& other) noexcept {
    sessions_opened += other.sessions_opened;
    sessions_closed += other.sessions_closed;
    auth_failures += other.auth_failures;
    uploads += other.uploads;
    downloads += other.downloads;
    dedup_hits += other.dedup_hits;
    upload_bytes_logical += other.upload_bytes_logical;
    upload_bytes_wire += other.upload_bytes_wire;
    download_bytes += other.download_bytes;
    rpcs += other.rpcs;
    notifications += other.notifications;
    sessions_dropped += other.sessions_dropped;
    shed_connects += other.shed_connects;
    interrupted_uploads += other.interrupted_uploads;
    resumed_uploads += other.resumed_uploads;
    write_rejects += other.write_rejects;
    s3_errors += other.s3_errors;
    notifications_dropped += other.notifications_dropped;
    return *this;
  }
};

/// Handle returned to a freshly-registered client.
struct UserAccount {
  UserId user;
  VolumeId root_volume;
  NodeId root_dir;
};

class U1Backend {
 public:
  U1Backend(const BackendConfig& config, TraceSink& sink);

  // Non-copyable: owns the datacenter state.
  U1Backend(const U1Backend&) = delete;
  U1Backend& operator=(const U1Backend&) = delete;

  // --- the envelope dispatch --------------------------------------------------
  /// Executes one envelope request — THE operation entry point. Every
  /// typed method below packs a Request and lands here; `u1d` feeds
  /// frames off the wire into the same switch. Unknown ops come back
  /// with Status::kUnknownOp; a dead/foreign session is Status::kError.
  Response call(const Request& request);

  // --- provisioning (out of band, no trace records) -------------------------
  /// Typed convenience over ProtoOp::kRegisterUser: the response carries
  /// the root volume in `volume` and its root directory in `root_dir`.
  UserAccount register_user(UserId user, SimTime now);

  // --- session management (Table 2: Authenticate) ----------------------------
  /// kOk with `session` set, kTryAgain when load-shed (retry with
  /// backoff — not an auth failure), kError on auth failure.
  Response connect(UserId user, SimTime now);
  Response disconnect(SessionId session, SimTime now);
  bool session_open(SessionId session) const;

  // --- metadata operations -----------------------------------------------------
  Response list_volumes(SessionId session, SimTime now);
  Response list_shares(SessionId session, SimTime now);
  Response query_set_caps(SessionId session, SimTime now);
  Response get_delta(SessionId session, VolumeId volume,
                     std::uint64_t since_generation, SimTime now);
  Response rescan_from_scratch(SessionId session, VolumeId volume,
                               SimTime now);

  /// kOk responses carry the fresh node id in `node`.
  Response make_file(SessionId session, VolumeId volume, NodeId parent,
                     std::string_view name_hash, std::string_view extension,
                     SimTime now);
  Response make_dir(SessionId session, VolumeId volume, NodeId parent,
                    std::string_view name_hash, SimTime now);

  Response unlink(SessionId session, NodeId node, SimTime now);
  Response move(SessionId session, NodeId node, NodeId new_parent,
                SimTime now);

  /// kOk responses carry the new volume in `volume`/`root_dir`.
  Response create_udf(SessionId session, SimTime now);
  Response delete_volume(SessionId session, VolumeId volume, SimTime now);

  // --- data operations (appendix A upload FSM) -------------------------------
  /// Uploads `size_bytes` of content with the given SHA-1 to a file node.
  /// is_update marks a PutContent over a node that already had content
  /// (the paper's 10.05%-of-operations / 18.47%-of-traffic updates).
  /// kInterrupted means a fault cut the transfer mid-flight: when `job`
  /// is set the committed parts survive in the uploadjob row and the
  /// client can resume_upload(); a nil job means restart from scratch.
  Response upload(SessionId session, NodeId node, const ContentId& content,
                  std::uint64_t size_bytes, bool is_update, SimTime now);

  /// Re-enters the Fig. 17 uploadjob FSM at the last committed multipart
  /// part (GetUploadJob → TouchUploadJob → remaining AddPart calls →
  /// MakeContent). kError (not kInterrupted) means the job is gone
  /// (GC'd, mismatched or its S3 multipart vanished) and the client must
  /// re-upload from byte zero.
  Response resume_upload(SessionId session, NodeId node,
                         const ContentId& content, std::uint64_t size_bytes,
                         bool is_update, UploadJobId job, SimTime now);

  Response download(SessionId session, NodeId node, SimTime now);

  // --- sharing ------------------------------------------------------------------
  /// Grants another user access to a volume (out-of-band of Table 2's
  /// operation set; sharing in U1 was rare, §6.3).
  Response share_volume(UserId owner, VolumeId volume, UserId to,
                        SimTime now);

  // --- maintenance -----------------------------------------------------------
  /// Hourly/daily housekeeping: uploadjob GC (1-week cutoff) and process
  /// migration; invoked by the simulation loop.
  void maintenance(SimTime now);

  /// Manual DDoS response (§5.4): revoke the abused account's tokens,
  /// close its sessions and delete its content.
  void admin_purge_user(UserId user, SimTime now);

  /// Shard-parallel engine hook: re-points this backend's store at a
  /// shared dedup index (see MetadataStore::set_dedup_proxy).
  void set_dedup_proxy(DedupProxy* proxy) noexcept {
    store_.set_dedup_proxy(proxy);
  }

  /// Shard-parallel worker hook: sheds the setup-replay state a remote
  /// user leaves behind (their metadata node rows and this group's
  /// materialized S3 objects) without disturbing the global dedup
  /// registry or content pool. Workers call this right after replaying
  /// each remote user's bootstrap so the per-process RSS peak tracks the
  /// LOCAL slice instead of the whole cluster; release_remote_groups()
  /// later frees what remains. Never call it for users that will run
  /// in this process.
  void shed_remote_user_state(UserId user) {
    store_.shed_user_namespace(user);
    s3_.shed_objects();
  }

  // --- fault injection -------------------------------------------------------
  /// Arms the backend with a fault injector (nullptr disarms). Crash
  /// victims for the injector's whole schedule are resolved against the
  /// *initial* process layout here, so every engine and thread count
  /// picks identical victims.
  void set_fault_injector(FaultInjector* injector);

  /// Applies one scheduled fault window edge: crash/respawn a process,
  /// take out/restore a machine (dropping the pinned sessions); window
  /// kinds (brownouts, failover, MQ drops) only need the record — their
  /// effect is applied inline by the injector's window lookups.
  /// emit_record=false lets the shard-parallel engine apply state in
  /// every group but trace the incident once.
  void apply_fault(const FaultEvent& event, SimTime now, bool emit_record);

  // --- introspection -----------------------------------------------------------
  const BackendStats& stats() const noexcept { return stats_; }
  const MetadataStore& store() const noexcept { return store_; }
  const ObjectStore& s3() const noexcept { return s3_; }
  const AuthService& auth() const noexcept { return auth_; }
  const MessageQueue& notifications() const noexcept { return mq_; }
  const ServerFleet& fleet() const noexcept { return fleet_; }
  ServiceTimeModel& service_model() noexcept { return service_model_; }
  const BackendConfig& config() const noexcept { return config_; }
  /// Interner for the record label column (`ext`/`fault`). Eager (global
  /// ids) by default; the shard-parallel engine flips it to deferred so
  /// emit paths never touch the global table from a worker thread.
  GroupSymbols& symbols() noexcept { return symbols_; }

 private:
  struct SessionState {
    Session session;
    TokenId token;
    double up_bw = 0;    // bytes/s
    double down_bw = 0;  // bytes/s
  };

  /// The op switch behind call(); the do_* methods hold the actual
  /// operation implementations.
  Response dispatch(const Request& q);
  Response do_register_user(const Request& q);
  Response do_connect(const Request& q);
  Response do_disconnect(const Request& q);
  Response do_simple_meta(const Request& q);  // ListVolumes/Shares/SetCaps
  Response do_get_delta(const Request& q);
  Response do_rescan_from_scratch(const Request& q);
  Response do_make(const Request& q);  // MakeFile/MakeDir
  Response do_unlink(const Request& q);
  Response do_move(const Request& q);
  Response do_create_udf(const Request& q);
  Response do_delete_volume(const Request& q);
  Response do_upload(const Request& q);
  Response do_resume_upload(const Request& q);
  Response do_download(const Request& q);
  Response do_share_volume(const Request& q);

  /// nullptr for unknown or already-closed/dropped sessions; operations
  /// on them fail with Status::kError instead of throwing.
  SessionState* find_session(SessionId id) noexcept;
  /// Runs one DAL RPC: applies shard queueing, emits the rpc record and
  /// returns the completion time.
  SimTime run_rpc(RpcOp op, const SessionState& ctx, SimTime at);
  /// Same, for RPCs that carry no session (auth path).
  SimTime run_rpc_at(RpcOp op, MachineId machine, ProcessId process,
                     UserId user, SessionId session, SimTime at);
  void emit_storage(const SessionState& ctx, ApiOp op, SimTime at,
                    const TraceRecord& partial);
  void emit_storage_done(const SessionState& ctx, ApiOp op, SimTime start,
                         SimTime end, const TraceRecord& partial);
  void emit_session_event(MachineId machine, ProcessId process, UserId user,
                          SessionId session, SessionEvent event, SimTime at,
                          SimTime duration = 0);
  SimTime s3_latency(SimTime at);
  void publish_change(const SessionState& ctx, VolumeEvent::Kind kind,
                      VolumeId volume, NodeId node, SimTime at);
  /// Content id actually registered: uniquified when dedup is disabled so
  /// every upload stores its own blob (ablation support).
  ContentId effective_content(const ContentId& content, NodeId node);

  /// True (and counted) when a shard-failover window rejects this
  /// session's write at `now`.
  bool write_rejected(const SessionState& ctx, SimTime now);
  /// Earliest scheduled crash/outage in (from, until] that would kill
  /// this session's API process; nullptr if the transfer survives.
  const FaultEvent* crash_cut(const SessionState& ctx, SimTime from,
                              SimTime until) const;
  /// Force-closes every live session matching `pred`, ascending id order.
  void drop_sessions(SimTime now,
                     const std::function<bool(const SessionState&)>& pred);
  struct PartsOutcome {
    bool ok = false;
    bool interrupted = false;
    std::uint64_t sent = 0;  // wire bytes committed this attempt
    SimTime t = 0;
  };
  /// Pushes the multipart parts in [offset, total) through S3 and the
  /// uploadjob row, stopping at the first injected cut or S3 error.
  PartsOutcome push_parts(SessionState& ctx, UploadJobId job,
                          const std::string& mpu, std::uint64_t offset,
                          std::uint64_t total, SimTime t);

  BackendConfig config_;
  TraceSink* sink_;
  GroupSymbols symbols_;
  Rng rng_;
  MetadataStore store_;
  ObjectStore s3_;
  AuthService auth_;
  TokenCache token_cache_;
  MessageQueue mq_;
  ServerFleet fleet_;
  ServiceTimeModel service_model_;

  std::unordered_map<SessionId, SessionState> sessions_;
  std::unordered_map<UserId, TokenId> user_tokens_;
  std::unordered_map<UserId, std::vector<SessionId>> user_sessions_;
  std::unordered_set<VolumeId> shared_volumes_;
  std::unordered_set<UserId> banned_users_;  // deleted fraudulent accounts
  std::vector<SimTime> shard_busy_until_;
  std::uint64_t next_session_ = 1;
  std::uint64_t dedup_off_seq_ = 0;
  SimTime last_gc_ = 0;
  SimTime last_migration_ = 0;
  BackendStats stats_;

  FaultInjector* injector_ = nullptr;  // not owned
  /// schedule event id → crash victim, resolved at set_fault_injector.
  std::unordered_map<std::size_t, ProcessId> fault_victims_;
};

}  // namespace u1
