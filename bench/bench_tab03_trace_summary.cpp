// Table 3: summary of the trace. Paper values are for 1.29M users; the
// per-user normalization is the comparable quantity.
#include "analysis/trace_summary.hpp"
#include "bench/bench_util.hpp"
#include "util/strings.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  TraceSummaryAnalyzer summary(cfg.days * kDay);
  auto sim = run_into(summary, cfg);
  const auto s = summary.summary();

  header("Table 3", "Summary of the trace");
  const double users = static_cast<double>(s.unique_users);
  const double paper_users = 1294794.0;
  std::printf("  %-28s %15s %18s\n", "metric", "paper (1.29M users)",
              "measured");
  std::printf("  %-28s %15s %18d\n", "trace duration (days)", "30", s.days);
  std::printf("  %-28s %15s %18llu\n", "unique user IDs", "1294794",
              static_cast<unsigned long long>(s.unique_users));
  std::printf("  %-28s %15s %18llu\n", "unique files", "137.63M",
              static_cast<unsigned long long>(s.unique_files));
  std::printf("  %-28s %15s %18llu\n", "user sessions", "42.5M",
              static_cast<unsigned long long>(s.sessions));
  std::printf("  %-28s %15s %18llu\n", "transfer operations", "194.3M",
              static_cast<unsigned long long>(s.transfer_ops));
  std::printf("  %-28s %15s %18s\n", "upload traffic", "105TB",
              format_bytes(static_cast<double>(s.upload_bytes)).c_str());
  std::printf("  %-28s %15s %18s\n", "download traffic", "120TB",
              format_bytes(static_cast<double>(s.download_bytes)).c_str());

  std::printf("\n  per-user-per-month normalization (shape comparison):\n");
  row("files per user", 137.63e6 / paper_users,
      static_cast<double>(s.unique_files) / users);
  row("sessions per user", 42.5e6 / paper_users,
      static_cast<double>(s.sessions) / users);
  row("transfer ops per user", 194.3e6 / paper_users,
      static_cast<double>(s.transfer_ops) / users);
  row("upload MB per user", 105e12 / paper_users / 1e6,
      static_cast<double>(s.upload_bytes) / users / 1e6);
  row("download MB per user", 120e12 / paper_users / 1e6,
      static_cast<double>(s.download_bytes) / users / 1e6);
  row("download/upload byte ratio", 120.0 / 105.0,
      static_cast<double>(s.download_bytes) /
          static_cast<double>(s.upload_bytes));
  return 0;
}
