// Deduplication analysis (paper §5.3, Fig. 4a): the dedup ratio
// dr = 1 - D_unique / D_total over uploaded data, and the distribution of
// logical copies per unique content hash (long-tailed: 80% of contents
// have a single copy, popular songs have thousands).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"

namespace u1 {

class DedupAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  /// dr = 1 - D_unique/D_total over all uploads seen (paper: 0.171).
  double dedup_ratio() const;

  /// Copies per distinct hash (each >= 1).
  std::vector<double> copies_per_hash() const;

  /// Fraction of distinct hashes with exactly one copy (paper: ~0.8).
  double unique_fraction() const;

  std::uint64_t distinct_hashes() const noexcept { return table_.size(); }
  std::uint64_t upload_ops_seen() const noexcept { return uploads_; }
  std::uint64_t dedup_hits_seen() const noexcept { return hits_; }

 private:
  struct HashInfo {
    std::uint64_t size_bytes = 0;
    std::uint32_t copies = 0;
  };
  std::unordered_map<ContentId, HashInfo> table_;
  std::uint64_t uploads_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t logical_bytes_ = 0;
  std::uint64_t unique_bytes_ = 0;
};

}  // namespace u1
