#include "improve/content_cache.hpp"

#include <stdexcept>

namespace u1 {

ContentCache::ContentCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  if (capacity_bytes == 0)
    throw std::invalid_argument("ContentCache: zero capacity");
}

bool ContentCache::access(const ContentId& id, std::uint64_t size_bytes) {
  const auto it = map_.find(id);
  if (it != map_.end()) {
    ++hits_;
    hit_bytes_ += size_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (size_bytes > capacity_) return false;  // never admit whales
  lru_.push_front(Entry{id, size_bytes});
  map_[id] = lru_.begin();
  used_ += size_bytes;
  while (used_ > capacity_ && !lru_.empty()) {
    used_ -= lru_.back().size;
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  return false;
}

void ContentCache::invalidate(const ContentId& id) {
  const auto it = map_.find(id);
  if (it == map_.end()) return;
  used_ -= it->second->size;
  lru_.erase(it->second);
  map_.erase(it);
}

double ContentCache::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace u1
