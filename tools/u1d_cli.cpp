// u1d — the UbuntuOne back-end as a real daemon. Serves the Table-2
// storage protocol over the DESIGN.md §9 wire envelope on a loopback TCP
// socket; every frame lands in the same U1Backend::call() dispatch the
// in-process simulation uses, so this is the simulated datacenter behind
// an actual service boundary.
//
// Usage:
//   u1d [--listen PORT] [--shards N] [--seed S]
//       [--fault-plan standard|@SCENARIO|FILE] [--fault-seed S]
//       [--wire-check]
//
// Prints "u1d listening on <port>" once ready (PORT 0 = ephemeral, the
// line reports the resolved port — test harnesses parse it). SIGINT or
// SIGTERM drains and exits, dumping a JSON stats blob to stdout.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/scenarios.hpp"
#include "net/server.hpp"
#include "server/backend.hpp"
#include "trace/sink.hpp"

namespace {

u1::U1dServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen PORT] [--shards N] [--seed S]\n"
               "          [--fault-plan standard|@SCENARIO|FILE]\n"
               "          [--fault-seed S] [--wire-check]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace u1;

  NetServerConfig net_cfg;
  BackendConfig backend_cfg;
  std::string fault_plan_arg;
  std::uint64_t fault_seed = 7;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      net_cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      backend_cfg.shards = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      backend_cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      fault_plan_arg = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      fault_seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--wire-check") {
      backend_cfg.wire_check = true;
    } else {
      return usage(argv[0]);
    }
  }

  // Resolve the plan before the backend exists: a canned scenario
  // (@name) also sets the backend posture it assumes — the balancer's
  // slow-start window and the per-process session cap.
  FaultPlan plan;
  if (!fault_plan_arg.empty()) {
    if (fault_plan_arg == "standard") {
      plan = standard_fault_plan();
    } else if (fault_plan_arg.front() == '@') {
      const IncidentScenario* sc =
          find_incident_scenario(std::string_view(fault_plan_arg).substr(1));
      if (sc == nullptr) {
        std::fprintf(stderr, "u1d: unknown scenario %s (known:",
                     fault_plan_arg.c_str());
        for (const IncidentScenario& s : incident_scenarios())
          std::fprintf(stderr, " @%s", std::string(s.name).c_str());
        std::fprintf(stderr, ")\n");
        return 1;
      }
      plan = parse_fault_plan(sc->plan_text);
      backend_cfg.fleet.slow_start = sc->slow_start;
      backend_cfg.session_cap_per_process = sc->session_cap;
    } else {
      std::ifstream in(fault_plan_arg);
      if (!in) {
        std::fprintf(stderr, "u1d: cannot open fault plan %s\n",
                     fault_plan_arg.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      plan = parse_fault_plan(text.str());
    }
  }

  NullSink sink;
  U1Backend backend(backend_cfg, sink);

  // Optional live failover drill: materialize the plan over a 30-day
  // horizon; window faults act through the injector, crash/outage edges
  // (including DAG-triggered ones — the schedule is fully materialized
  // up front) fire as client virtual time passes them.
  FaultSchedule schedule;
  std::unique_ptr<FaultInjector> injector;
  if (!plan.empty()) {
    schedule = build_fault_schedule(plan, 30 * kDay,
                                    backend_cfg.fleet.machines,
                                    backend_cfg.shards, fault_seed);
    injector = std::make_unique<FaultInjector>(schedule, fault_seed ^ 0x99);
    backend.set_fault_injector(injector.get());
  }

  U1dServer server(backend, net_cfg);
  if (!server.start()) {
    std::fprintf(stderr, "u1d: failed to bind 127.0.0.1:%u\n",
                 static_cast<unsigned>(net_cfg.port));
    return 1;
  }
  if (injector) server.arm_faults(&schedule);

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("u1d listening on %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  server.run();

  const NetServerStats& ns = server.stats();
  const BackendStats& bs = backend.stats();
  std::printf(
      "{\"accepted\": %llu, \"closed\": %llu, \"requests\": %llu, "
      "\"responses\": %llu, \"protocol_errors\": %llu, \"bytes_in\": %llu, "
      "\"bytes_out\": %llu, \"faults_applied\": %llu, "
      "\"sessions_opened\": %llu, \"uploads\": %llu, \"downloads\": %llu, "
      "\"rpcs\": %llu}\n",
      static_cast<unsigned long long>(ns.accepted),
      static_cast<unsigned long long>(ns.closed),
      static_cast<unsigned long long>(ns.requests),
      static_cast<unsigned long long>(ns.responses),
      static_cast<unsigned long long>(ns.protocol_errors),
      static_cast<unsigned long long>(ns.bytes_in),
      static_cast<unsigned long long>(ns.bytes_out),
      static_cast<unsigned long long>(ns.faults_applied),
      static_cast<unsigned long long>(bs.sessions_opened),
      static_cast<unsigned long long>(bs.uploads),
      static_cast<unsigned long long>(bs.downloads),
      static_cast<unsigned long long>(bs.rpcs));
  return 0;
}
