// Ablation (§9): file-based cross-user deduplication.
//
// The paper's claim — "a simple optimization like file-based deduplication
// could readily save 17% of the storage costs" — is the counterfactual on
// one fixed workload: D_unique vs D_total over the stored data. That is
// what the first section reports (single run, dedup on, registry books).
// The second section re-runs the same month with the dedup check disabled
// and compares the *wire* traffic (dedup also saves the transfer itself,
// §3.3: "the client does not need to transfer data").
#include "analysis/traffic.hpp"
#include "bench/bench_util.hpp"
#include "trace/sink.hpp"
#include "util/strings.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const std::size_t users = env_users(5000);
  const int days = env_days(14);

  // --- counterfactual storage, one run --------------------------------------
  auto cfg = standard_config(users, days, /*ddos=*/false);
  NullSink sink;
  auto sim = run_into(sink, cfg);
  const auto& contents = sim->contents();
  const double unique = static_cast<double>(contents.unique_bytes());
  const double logical = static_cast<double>(contents.logical_bytes());

  header("Ablation", "File-based cross-user deduplication");
  std::printf("  live data:  unique=%s   logical (no dedup)=%s\n",
              format_bytes(unique).c_str(), format_bytes(logical).c_str());
  row("storage saved by dedup (1 - Du/Dt)", 0.171,
      logical > 0 ? 1.0 - unique / logical : 0.0);
  constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
  std::printf("  monthly S3 bill at $0.03/GB:  dedup=$%.2f  "
              "no-dedup=$%.2f\n",
              unique / kGB * 0.03, logical / kGB * 0.03);

  // --- wire traffic, dedup on vs off ------------------------------------------
  auto wire_of = [&](bool dedup) {
    auto c = standard_config(users, days, /*ddos=*/false);
    c.backend.enable_dedup = dedup;
    TrafficAnalyzer traffic(0, c.days * kDay);
    auto s = run_into(traffic, c);
    return static_cast<double>(traffic.upload_wire_bytes());
  };
  const double wire_on = wire_of(true);
  const double wire_off = wire_of(false);
  std::printf("\n  upload wire traffic:  dedup=%s   no-dedup=%s\n",
              format_bytes(wire_on).c_str(), format_bytes(wire_off).c_str());
  row("upload wire bytes saved by dedup", 0.171, 1.0 - wire_on / wire_off);
  note("paper: dr = 0.171; scaled to U1's ~$20k/month S3 bill that is "
       "~$3.4k/month saved, plus the suppressed transfers");
  return 0;
}
