// Shard-parallel engine throughput + determinism oracle.
//
// Runs the same (users, days, seed) simulation under the parallel engine
// at 1, 2, 4 and 8 worker threads, hashing every emitted trace record in
// stream order. The 1-thread run executes the identical epoch/merge
// machinery inline and is the correctness oracle: all four SHA-1s must
// match, byte for byte, or the engine is broken. In CSV mode the bench
// first runs the multi-process engine at procs x threads cells of
// {2x1, 2x2, 4x1, 1x1} (sim/distributed.hpp): every cell must hash to
// the SAME SHA as the in-process runs, and each cell records its
// per-worker peak RSS — the 4-proc max-worker figure over the 1x1 peak
// is the engine's 1/P memory claim, written to the JSON. Wall-clock, records/sec
// and the per-epoch phase breakdown (compute / merge / flush /
// flush-stall) are written to BENCH_throughput.json at the repo root
// (honest numbers: the file records the machine's hardware concurrency —
// speedups are bounded by the cores actually present, and a single-core
// host is flagged loudly because every thread count then shares one
// core and flat scaling is the *expected* result).
//
// Flags:
//   --repeat N   run each thread count N times; report min and median
//                wall time (min is the steady-state number, median the
//                honest one)
//   --out PATH   write the JSON somewhere else (the perf ctest smoke
//                uses this to avoid clobbering the repo-root artifact)
//
// Environment:
//   U1SIM_TRACE_FORMAT=csv|bin   what the write path serializes. csv
//       (default) hashes the historical CSV row stream — the SHA every
//       engine version must reproduce. bin writes real .u1b files to a
//       scratch directory and hashes the output bytes (sorted by name),
//       the determinism oracle for the binary format; write_s then
//       measures binary serialization.
//   U1SIM_CAL_SCAN_BAND=X        calendar-queue regression band: the run
//       fails (exit 1) if scanned-per-find exceeds X (default 24.0) on
//       any run with enough finds to be meaningful.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "sim/distributed.hpp"
#include "sim/parallel.hpp"
#include "trace/binlog.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace {

/// One multi-process cell: procs worker processes × threads per worker.
struct DistResult {
  std::size_t procs = 0;
  std::size_t threads = 0;
  double wall = 0.0;
  std::uint64_t records = 0;
  std::string trace_sha1;
  std::vector<std::uint64_t> worker_rss_kb;

  std::uint64_t max_worker_rss_kb() const {
    std::uint64_t m = 0;
    for (const std::uint64_t kb : worker_rss_kb) m = std::max(m, kb);
    return m;
  }
};

/// Runs one (procs, threads) cell of the distributed engine, hashing the
/// coordinator-merged CSV row stream. The forked cells MUST run before
/// the parent builds any engine state: a child's ru_maxrss inherits the
/// parent's high-water mark at fork, so a fat parent would hide the 1/P
/// memory drop this bench exists to record.
DistResult run_distributed(const u1::SimulationConfig& cfg, std::size_t procs,
                           std::size_t threads) {
  DistResult out;
  out.procs = procs;
  out.threads = threads;
  u1::Sha1 hasher;
  std::string row;
  u1::CallbackSink sink([&](const u1::TraceRecord& r) {
    ++out.records;
    row.clear();
    r.append_csv_row(row);
    hasher.update(row);
  });
  const auto t0 = std::chrono::steady_clock::now();
  u1::DistributedSimulation sim(cfg, sink, procs, threads);
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.trace_sha1 = hasher.finish().hex();
  out.worker_rss_kb = sim.worker_peak_rss_kb();
  return out;
}

struct RunResult {
  std::size_t threads = 0;
  std::vector<double> walls;  // one per repeat, run order
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  // serialized trace bytes (rows or .u1b files)
  std::string trace_sha1;
  std::size_t flush_depth = 0;  // ring depth K the engine resolved
  u1::ParallelSimulation::EpochPhases phases;  // first repeat
  u1::SimulationReport report;

  double wall_min() const {
    return *std::min_element(walls.begin(), walls.end());
  }
  double wall_median() const {
    std::vector<double> sorted = walls;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
};

/// SHA-1 over every regular file in `dir`, visited in name order: each
/// file's name bytes, then its content bytes. Byte-identical output
/// directories — the binary-format determinism oracle — hash equal.
std::string hash_directory(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file()) paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());
  u1::Sha1 hasher;
  std::vector<char> buf(1 << 20);
  for (const auto& path : paths) {
    hasher.update(std::string_view(path.filename().string()));
    std::ifstream in(path, std::ios::binary);
    while (in) {
      in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
      const auto got = static_cast<std::size_t>(in.gcount());
      if (got == 0) break;
      hasher.update(std::string_view(buf.data(), got));
    }
  }
  return hasher.finish().hex();
}

RunResult run_once(const u1::SimulationConfig& cfg, std::size_t threads,
                   int repeats, u1::TraceFormat format,
                   const std::filesystem::path& scratch_base) {
  RunResult out;
  out.threads = threads;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::string sha;
    if (format == u1::TraceFormat::kCsv) {
      u1::Sha1 hasher;
      // One reused row buffer: append_csv_row produces the same byte
      // stream the old per-field to_csv() loop hashed (every field
      // followed by ',', then '\n') without materializing 24 strings per
      // record — the sink IS the flush hot path being measured.
      std::string row;
      u1::CallbackSink sink([&](const u1::TraceRecord& r) {
        ++records;
        row.clear();
        r.append_csv_row(row);
        bytes += row.size();
        hasher.update(row);
      });
      const auto t0 = std::chrono::steady_clock::now();
      u1::ParallelSimulation sim(cfg, sink, threads);
      const u1::SimulationReport report = sim.run();
      const auto t1 = std::chrono::steady_clock::now();
      out.walls.push_back(std::chrono::duration<double>(t1 - t0).count());
      sha = hasher.finish().hex();
      if (rep == 0) {
        out.flush_depth = sim.flush_depth();
        out.phases = sim.phases();
        out.report = report;
      }
    } else {
      const std::filesystem::path dir =
          scratch_base / ("t" + std::to_string(threads) + "_r" +
                          std::to_string(rep));
      std::filesystem::remove_all(dir);
      u1::BinaryLogfileWriter writer(dir);
      const auto t0 = std::chrono::steady_clock::now();
      u1::ParallelSimulation sim(cfg, writer, threads);
      const u1::SimulationReport report = sim.run();
      writer.close();  // trailing stripes + sidecars belong to the run
      const auto t1 = std::chrono::steady_clock::now();
      out.walls.push_back(std::chrono::duration<double>(t1 - t0).count());
      records = writer.records_written();
      bytes = writer.bytes_written();
      sha = hash_directory(dir);
      std::filesystem::remove_all(dir);
      if (rep == 0) {
        out.flush_depth = sim.flush_depth();
        out.phases = sim.phases();
        out.report = report;
      }
    }
    if (rep == 0) {
      out.records = records;
      out.bytes = bytes;
      out.trace_sha1 = sha;
    } else if (sha != out.trace_sha1 || records != out.records) {
      // Repeats of the same configuration must be bit-identical runs;
      // mark the result broken so the oracle check below fails loudly.
      out.trace_sha1 = "REPEAT-DIVERGED:" + sha;
    }
  }
  return out;
}

void print_phases(const u1::ParallelSimulation::EpochPhases& p) {
  std::printf("    phases: epochs=%llu compute=%.2fs merge=%.2fs "
              "flush=%.2fs write=%.2fs flush_stall=%.2fs ring_stall=%.2fs "
              "plan_rebuilds=%llu\n",
              static_cast<unsigned long long>(p.epochs), p.compute_s,
              p.merge_s, p.flush_s, p.write_s, p.flush_stall_s,
              p.ring_stall_s,
              static_cast<unsigned long long>(p.plan_rebuilds));
  const double per_find = p.cal_finds > 0
                              ? static_cast<double>(p.cal_scanned) /
                                    static_cast<double>(p.cal_finds)
                              : 0.0;
  std::printf("    calendar: rebuilds=%llu finds=%llu scanned_per_find=%.2f\n",
              static_cast<unsigned long long>(p.cal_rebuilds),
              static_cast<unsigned long long>(p.cal_finds), per_find);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace u1;
  using namespace u1::bench;

  int repeats = 1;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--repeat N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  if (out_path.empty()) {
#ifdef U1SIM_REPO_ROOT
    out_path = std::string(U1SIM_REPO_ROOT) + "/BENCH_throughput.json";
#else
    out_path = "BENCH_throughput.json";
#endif
  }

  const auto cfg = standard_config(env_users(), env_days());
  const unsigned hw = std::thread::hardware_concurrency();
  const bool single_core = hw <= 1;
  const TraceFormat format = trace_format_from_env();
  const std::filesystem::path scratch_base =
      std::filesystem::temp_directory_path() /
      ("u1bench_bin_" +
       std::to_string(static_cast<unsigned long long>(
           std::chrono::steady_clock::now().time_since_epoch().count())));
  double cal_band = 24.0;
  if (const char* v = std::getenv("U1SIM_CAL_SCAN_BAND")) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) cal_band = parsed;
  }

  header("Throughput", "Deterministic shard-parallel engine scaling");
  std::printf("  users=%zu days=%d seed=%llu hardware_concurrency=%u "
              "repeats=%d format=%s\n",
              cfg.users, cfg.days,
              static_cast<unsigned long long>(cfg.seed), hw, repeats,
              std::string(to_string(format)).c_str());
  if (single_core) {
    std::printf(
        "\n  *** WARNING: hardware_concurrency=%u — SINGLE-CORE HOST ***\n"
        "  *** All thread counts time-slice one core; flat (~1.0x)    ***\n"
        "  *** scaling is the EXPECTED result here. Only the trace    ***\n"
        "  *** determinism check is meaningful on this machine.       ***\n\n",
        hw);
  }

  // Multi-process cells (CSV only: the cells hash the same row stream
  // the in-process runs hash, so one SHA spans both sections). Forked
  // cells first — see run_distributed — then the inline 1x1 cell, whose
  // worker_rss is this process's peak and the denominator of the 1/P
  // memory claim.
  std::vector<DistResult> dist;
  if (format == u1::TraceFormat::kCsv) {
    const std::pair<std::size_t, std::size_t> cells[] = {
        {2, 1}, {2, 2}, {4, 1}, {1, 1}};
    for (const auto& [procs, threads] : cells) {
      dist.push_back(run_distributed(cfg, procs, threads));
      const DistResult& d = dist.back();
      std::printf("  procs=%zu threads=%zu  wall=%8.2fs  records=%llu  "
                  "max_worker_rss_kb=%llu  sha1=%s\n",
                  d.procs, d.threads, d.wall,
                  static_cast<unsigned long long>(d.records),
                  static_cast<unsigned long long>(d.max_worker_rss_kb()),
                  d.trace_sha1.c_str());
    }
  }
  bool dist_identical = true;
  for (const DistResult& d : dist) {
    if (d.trace_sha1 != dist.front().trace_sha1 ||
        d.records != dist.front().records)
      dist_identical = false;
  }
  double rss_ratio_4p = 0.0;
  if (!dist.empty()) {
    std::printf("  trace byte-identical across process splits: %s\n",
                dist_identical ? "yes" : "NO — DETERMINISM BROKEN");
    // dist.back() is the inline 1x1 cell; the 4-proc cell is the widest.
    const std::uint64_t single = dist.back().max_worker_rss_kb();
    for (const DistResult& d : dist) {
      if (d.procs == 4 && single > 0)
        rss_ratio_4p = static_cast<double>(d.max_worker_rss_kb()) /
                       static_cast<double>(single);
    }
    std::printf("  4-proc max worker RSS / single-process peak: %.3f\n",
                rss_ratio_4p);
  }

  std::vector<RunResult> runs;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    runs.push_back(run_once(cfg, threads, repeats, format, scratch_base));
    const RunResult& r = runs.back();
    std::printf("  threads=%zu  wall_min=%8.2fs  wall_median=%8.2fs  "
                "records=%llu  rec/s=%10.0f  sha1=%s\n",
                r.threads, r.wall_min(), r.wall_median(),
                static_cast<unsigned long long>(r.records),
                static_cast<double>(r.records) / r.wall_min(),
                r.trace_sha1.c_str());
    print_phases(r.phases);
  }

  bool identical = true;
  for (const RunResult& r : runs) {
    if (r.trace_sha1 != runs.front().trace_sha1 ||
        r.records != runs.front().records)
      identical = false;
  }
  // One SHA across BOTH sections: the distributed cells merged the same
  // byte stream the in-process engine emits.
  if (!dist.empty() && (dist.front().trace_sha1 != runs.front().trace_sha1 ||
                        dist.front().records != runs.front().records)) {
    identical = false;
  }
  std::printf("  trace byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  // Calendar-queue regression band: scanned-per-find creeping up means
  // the bucket-width heuristic degraded to linear scans. Only runs with
  // enough finds to average out warm-up are held to the band.
  constexpr std::uint64_t kCalMinFinds = 5000;
  bool cal_ok = true;
  for (const RunResult& r : runs) {
    const auto& p = r.phases;
    if (p.cal_finds < kCalMinFinds) continue;
    const double per_find = static_cast<double>(p.cal_scanned) /
                            static_cast<double>(p.cal_finds);
    if (per_find > cal_band) {
      cal_ok = false;
      std::printf("  *** calendar-queue REGRESSION: threads=%zu "
                  "scanned_per_find=%.2f exceeds band %.2f ***\n",
                  r.threads, per_find, cal_band);
    }
  }
  std::printf("  calendar scanned-per-find within band %.2f: %s\n", cal_band,
              cal_ok ? "yes" : "NO — REGRESSION");

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"shard_parallel_throughput\",\n");
    std::fprintf(f, "  \"users\": %zu,\n", cfg.users);
    std::fprintf(f, "  \"days\": %d,\n", cfg.days);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"format\": \"%s\",\n",
                 std::string(to_string(format)).c_str());
    std::fprintf(f, "  \"cal_scan_band\": %.2f,\n", cal_band);
    std::fprintf(f, "  \"cal_band_ok\": %s,\n", cal_ok ? "true" : "false");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"flush_depth\": %zu,\n",
                 runs.empty() ? std::size_t{0} : runs.front().flush_depth);
    std::fprintf(f, "  \"single_core_host\": %s,\n",
                 single_core ? "true" : "false");
    std::fprintf(f, "  \"flat_scaling_expected\": %s,\n",
                 single_core ? "true" : "false");
    std::fprintf(f, "  \"trace_byte_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"peak_rss_kb\": %llu,\n",
                 static_cast<unsigned long long>(u1::bench::peak_rss_kb()));
    std::fprintf(f, "  \"heap_in_use_kb\": %llu,\n",
                 static_cast<unsigned long long>(u1::bench::heap_in_use_kb()));
    std::fprintf(f, "  \"distributed_trace_identical\": %s,\n",
                 dist_identical ? "true" : "false");
    std::fprintf(f, "  \"rss_ratio_4p_vs_1p\": %.3f,\n", rss_ratio_4p);
    std::fprintf(f, "  \"distributed\": [\n");
    for (std::size_t i = 0; i < dist.size(); ++i) {
      const DistResult& d = dist[i];
      std::fprintf(f,
                   "    {\"procs\": %zu, \"threads\": %zu, "
                   "\"wall_seconds\": %.3f, \"records\": %llu, "
                   "\"trace_sha1\": \"%s\", \"worker_peak_rss_kb\": [",
                   d.procs, d.threads, d.wall,
                   static_cast<unsigned long long>(d.records),
                   d.trace_sha1.c_str());
      for (std::size_t w = 0; w < d.worker_rss_kb.size(); ++w)
        std::fprintf(f, "%s%llu", w > 0 ? ", " : "",
                     static_cast<unsigned long long>(d.worker_rss_kb[w]));
      std::fprintf(f, "]}%s\n", i + 1 < dist.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      const auto& p = r.phases;
      std::fprintf(
          f,
          "    {\"threads\": %zu, \"wall_seconds_min\": %.3f, "
          "\"wall_seconds_median\": %.3f, \"records\": %llu, "
          "\"bytes\": %llu, "
          "\"records_per_sec\": %.0f, \"speedup_vs_1t\": %.3f, "
          "\"trace_sha1\": \"%s\",\n"
          "     \"phases\": {\"epochs\": %llu, \"compute_s\": %.3f, "
          "\"merge_s\": %.3f, \"flush_s\": %.3f, \"write_s\": %.3f, "
          "\"flush_stall_s\": %.3f, \"ring_stall_s\": %.3f, "
          "\"plan_rebuilds\": %llu, \"cal_rebuilds\": %llu, "
          "\"cal_finds\": %llu, \"cal_scanned\": %llu, "
          "\"cal_scanned_per_find\": %.2f}}%s\n",
          r.threads, r.wall_min(), r.wall_median(),
          static_cast<unsigned long long>(r.records),
          static_cast<unsigned long long>(r.bytes),
          static_cast<double>(r.records) / r.wall_min(),
          runs.front().wall_min() / r.wall_min(), r.trace_sha1.c_str(),
          static_cast<unsigned long long>(p.epochs), p.compute_s, p.merge_s,
          p.flush_s, p.write_s, p.flush_stall_s, p.ring_stall_s,
          static_cast<unsigned long long>(p.plan_rebuilds),
          static_cast<unsigned long long>(p.cal_rebuilds),
          static_cast<unsigned long long>(p.cal_finds),
          static_cast<unsigned long long>(p.cal_scanned),
          p.cal_finds > 0 ? static_cast<double>(p.cal_scanned) /
                                static_cast<double>(p.cal_finds)
                          : 0.0,
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", out_path.c_str());
  } else {
    std::printf("  could not open %s for writing\n", out_path.c_str());
  }
  return identical && dist_identical && cal_ok ? 0 : 1;
}
