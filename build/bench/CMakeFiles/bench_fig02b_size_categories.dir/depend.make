# Empty dependencies file for bench_fig02b_size_categories.
# This may be replaced when dependencies are built.
