// DDoS attack model (§5.4). The three attacks observed in the trace
// (Jan 15, Jan 16, Feb 6) shared one user id and its credentials across
// thousands of desktop clients to distribute illegal content — storage
// leeching. Observable signature (Fig. 5/15):
//  - session/auth requests per hour jump 5-15x;
//  - API server activity jumps 4.6x / 245x / 6.7x (attack 2 was by far
//    the largest);
//  - activity collapses within ~1 hour of the manual response (account
//    deletion + content removal).
#pragma once

#include <cstdint>
#include <vector>

#include "proto/ids.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct DdosAttackSpec {
  SimTime start = 0;
  /// How long engineers took to detect + respond (manual in U1).
  SimTime response_delay = 2 * kHour;
  /// Distinct bot clients hammering the shared account.
  std::uint32_t bots = 500;
  /// Per-bot connect attempts per hour while the attack runs.
  double connects_per_hour = 40.0;
  /// Per-bot downloads of the shared content per connection.
  std::uint32_t downloads_per_connection = 3;
  /// Size of the illegally-shared payload.
  std::uint64_t payload_bytes = 350ull * 1024 * 1024;
};

/// The three attacks of the paper, placed on their trace days:
/// Jan 15 (day 4), Jan 16 (day 5, the 245x one) and Feb 6 (day 26),
/// scaled by `bot_scale` (1.0 = defaults suited to a ~10-20k user sim).
std::vector<DdosAttackSpec> paper_attack_schedule(double bot_scale = 1.0);

}  // namespace u1
