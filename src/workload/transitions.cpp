#include "workload/transitions.hpp"

#include <numeric>
#include <stdexcept>

namespace u1 {
namespace {

constexpr std::size_t idx(ClientAction a) {
  return static_cast<std::size_t>(a);
}

}  // namespace

std::string_view to_string(ClientAction a) noexcept {
  switch (a) {
    case ClientAction::kUploadNew: return "upload_new";
    case ClientAction::kUploadUpdate: return "upload_update";
    case ClientAction::kDownload: return "download";
    case ClientAction::kUnlink: return "unlink";
    case ClientAction::kMove: return "move";
    case ClientAction::kMakeDir: return "make_dir";
    case ClientAction::kCreateUdf: return "create_udf";
    case ClientAction::kDeleteVolume: return "delete_volume";
    case ClientAction::kGetDelta: return "get_delta";
  }
  return "unknown";
}

TransitionModel::TransitionModel() {
  auto& m = matrix_;
  // Strong self-transitions on transfers (Fig. 8: repeating a transfer is
  // the most probable move — directory-granularity sync and file editing),
  // Make/Upload mixing, deletions arriving in runs.
  // Rows need not be normalized here; sampling normalizes.
  //                      upN   upd   down  unl   move  mkdir udf   delV  delta
  // Unlinks are nearly as frequent as uploads in the production mix
  // (Fig. 7a); deletions also arrive in runs (folder cleanups).
  m[idx(ClientAction::kUploadNew)]    = {0.38, 0.16, 0.12, 0.09, 0.02, 0.09, 0.01, 0.00, 0.08};
  m[idx(ClientAction::kUploadUpdate)] = {0.10, 0.45, 0.12, 0.12, 0.02, 0.03, 0.00, 0.00, 0.16};
  m[idx(ClientAction::kDownload)]     = {0.13, 0.08, 0.34, 0.13, 0.02, 0.05, 0.01, 0.00, 0.20};
  m[idx(ClientAction::kUnlink)]       = {0.14, 0.06, 0.11, 0.46, 0.02, 0.04, 0.01, 0.02, 0.12};
  m[idx(ClientAction::kMove)]         = {0.15, 0.06, 0.18, 0.10, 0.28, 0.10, 0.01, 0.00, 0.12};
  m[idx(ClientAction::kMakeDir)]      = {0.52, 0.03, 0.10, 0.05, 0.03, 0.17, 0.01, 0.00, 0.09};
  m[idx(ClientAction::kCreateUdf)]    = {0.40, 0.02, 0.10, 0.02, 0.02, 0.30, 0.05, 0.00, 0.09};
  m[idx(ClientAction::kDeleteVolume)] = {0.15, 0.02, 0.15, 0.20, 0.02, 0.10, 0.06, 0.10, 0.20};
  m[idx(ClientAction::kGetDelta)]     = {0.17, 0.08, 0.30, 0.10, 0.03, 0.07, 0.01, 0.00, 0.21};

  // Session-start mix: after the ListVolumes/ListShares handshake users
  // mostly re-sync (delta/download) or resume uploading.
  initial_ = {0.22, 0.05, 0.24, 0.09, 0.02, 0.07, 0.02, 0.01, 0.25};
}

std::size_t TransitionModel::sample_row(
    const std::array<double, kClientActionCount>& row, UserClass user_class,
    Rng& rng) const {
  std::array<double, kClientActionCount> biased = row;
  // Class biases: upload-only users rarely download and vice versa;
  // occasional users skew to light metadata ops.
  switch (user_class) {
    case UserClass::kUploadOnly:
      biased[idx(ClientAction::kDownload)] *= 0.05;
      biased[idx(ClientAction::kUploadNew)] *= 1.6;
      biased[idx(ClientAction::kUploadUpdate)] *= 1.4;
      break;
    case UserClass::kDownloadOnly:
      biased[idx(ClientAction::kUploadNew)] *= 0.05;
      biased[idx(ClientAction::kUploadUpdate)] *= 0.05;
      biased[idx(ClientAction::kDownload)] *= 1.8;
      break;
    case UserClass::kHeavy:
      biased[idx(ClientAction::kUploadUpdate)] *= 1.3;
      break;
    case UserClass::kOccasional:
      biased[idx(ClientAction::kGetDelta)] *= 1.3;
      break;
  }
  const WeightedDiscrete dist(biased);
  return dist.sample(rng);
}

ClientAction TransitionModel::initial(UserClass user_class, Rng& rng) const {
  return static_cast<ClientAction>(sample_row(initial_, user_class, rng));
}

ClientAction TransitionModel::next(ClientAction previous,
                                   UserClass user_class, Rng& rng) const {
  return static_cast<ClientAction>(
      sample_row(matrix_[idx(previous)], user_class, rng));
}

double TransitionModel::probability(ClientAction from, ClientAction to) const {
  const auto& row = matrix_[idx(from)];
  const double total = std::accumulate(row.begin(), row.end(), 0.0);
  if (total <= 0) throw std::logic_error("TransitionModel: empty row");
  return row[idx(to)] / total;
}

}  // namespace u1
