file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_burstiness.dir/bench_fig09_burstiness.cpp.o"
  "CMakeFiles/bench_fig09_burstiness.dir/bench_fig09_burstiness.cpp.o.d"
  "bench_fig09_burstiness"
  "bench_fig09_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
