// Determinism oracle for the shard-parallel engine: the merged trace and
// the aggregated report must be byte-identical for every thread count,
// including the inline 1-thread execution. Any divergence means a
// cross-group dependency leaked out of the epoch/merge protocol.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"

namespace u1 {
namespace {

SimulationConfig small_config(bool auto_guard = false) {
  SimulationConfig cfg;
  cfg.users = 200;
  cfg.days = 3;
  cfg.seed = 20140111;
  cfg.enable_ddos = true;
  cfg.auto_countermeasures = auto_guard;
  return cfg;
}

std::vector<std::string> run_trace(const SimulationConfig& cfg,
                                   std::size_t threads,
                                   SimulationReport* report = nullptr) {
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, threads);
  const SimulationReport r = sim.run();
  if (report != nullptr) *report = r;
  std::vector<std::string> lines;
  lines.reserve(sink.records().size());
  for (const TraceRecord& rec : sink.records()) {
    std::string line;
    for (const std::string& field : rec.to_csv()) {
      line += field;
      line += ',';
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

void expect_reports_equal(const SimulationReport& a,
                          const SimulationReport& b) {
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.agent_wakeups, b.agent_wakeups);
  EXPECT_EQ(a.bootstrap_files, b.bootstrap_files);
  EXPECT_EQ(a.ddos_attacks, b.ddos_attacks);
  EXPECT_EQ(a.auto_purges, b.auto_purges);
  EXPECT_EQ(a.first_auto_response_delay, b.first_auto_response_delay);
  EXPECT_EQ(a.backend.sessions_opened, b.backend.sessions_opened);
  EXPECT_EQ(a.backend.sessions_closed, b.backend.sessions_closed);
  EXPECT_EQ(a.backend.auth_failures, b.backend.auth_failures);
  EXPECT_EQ(a.backend.uploads, b.backend.uploads);
  EXPECT_EQ(a.backend.downloads, b.backend.downloads);
  EXPECT_EQ(a.backend.dedup_hits, b.backend.dedup_hits);
  EXPECT_EQ(a.backend.upload_bytes_logical, b.backend.upload_bytes_logical);
  EXPECT_EQ(a.backend.upload_bytes_wire, b.backend.upload_bytes_wire);
  EXPECT_EQ(a.backend.download_bytes, b.backend.download_bytes);
  EXPECT_EQ(a.backend.rpcs, b.backend.rpcs);
  EXPECT_EQ(a.backend.notifications, b.backend.notifications);
}

TEST(ParallelSimulation, TraceIdenticalAcrossThreadCounts) {
  const auto cfg = small_config();
  SimulationReport r1, r2, r8;
  const auto t1 = run_trace(cfg, 1, &r1);
  const auto t2 = run_trace(cfg, 2, &r2);
  const auto t8 = run_trace(cfg, 8, &r8);

  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i], t2[i]) << "first divergence (2 threads) at row " << i;
    ASSERT_EQ(t1[i], t8[i]) << "first divergence (8 threads) at row " << i;
  }
  expect_reports_equal(r1, r2);
  expect_reports_equal(r1, r8);
}

TEST(ParallelSimulation, AutoGuardIdenticalAcrossThreadCounts) {
  // The AnomalyGuard purge path crosses groups through the inter-epoch
  // mailbox; it must stay deterministic too.
  const auto cfg = small_config(/*auto_guard=*/true);
  SimulationReport r1, r4;
  const auto t1 = run_trace(cfg, 1, &r1);
  const auto t4 = run_trace(cfg, 4, &r4);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i], t4[i]) << "first divergence at row " << i;
  }
  expect_reports_equal(r1, r4);
}

TEST(ParallelSimulation, RepeatedRunsAreIdentical) {
  // Same config + same thread count twice: the engine must be a pure
  // function of the seed (no wall-clock, address, or scheduling leaks).
  const auto cfg = small_config();
  const auto a = run_trace(cfg, 2);
  const auto b = run_trace(cfg, 2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
}

TEST(ParallelSimulation, EpochMergeKeepsRecordsSorted) {
  // Within each merged epoch records are sorted by t; across epoch
  // boundaries only bounded service-time lookahead (storage-done records
  // stamped at t + service) may run ahead, exactly as in the sequential
  // engine. Any larger regression means the merge is broken.
  InMemorySink sink;
  ParallelSimulation sim(small_config(), sink, 2);
  sim.run();
  ASSERT_FALSE(sink.records().empty());
  SimTime prev = sink.records().front().t;
  for (const TraceRecord& r : sink.records()) {
    EXPECT_GE(r.t, prev - kHour) << "record older than one epoch";
    prev = std::max(prev, r.t);
  }
}

TEST(ParallelSimulation, GroupCountMatchesShards) {
  const auto cfg = small_config();
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, 2);
  EXPECT_EQ(sim.threads(), 2u);
  sim.run();
  EXPECT_EQ(sim.group_count(), cfg.backend.shards);
}

TEST(ParallelSimulation, ReportCountersMatchTrace) {
  InMemorySink sink;
  ParallelSimulation sim(small_config(), sink, 2);
  const SimulationReport report = sim.run();
  std::uint64_t opens = 0;
  for (const TraceRecord& r : sink.records()) {
    if (r.type == RecordType::kSession &&
        r.session_event == SessionEvent::kOpen)
      ++opens;
  }
  EXPECT_EQ(report.backend.sessions_opened, opens);
  EXPECT_EQ(report.users, 200u);
}

TEST(ParallelSimulation, StickyPlanRebuildHysteresis) {
  // The sticky scheduler may only repartition when the EMA-smoothed
  // load drift stays past threshold AND at least 12 epochs passed since
  // the last rebuild. On a fixed seed the rebuild count is therefore a
  // pure function of the config: pin it against itself across runs and
  // against the floor-derived ceiling so a future change to the
  // hysteresis shows up here instead of as silent churn.
  const auto cfg = small_config();
  InMemorySink s1, s2;
  ParallelSimulation a(cfg, s1, 4);
  a.set_scheduling(ParallelSimulation::Scheduling::kSticky);
  a.run();
  ParallelSimulation b(cfg, s2, 4);
  b.set_scheduling(ParallelSimulation::Scheduling::kSticky);
  b.run();

  EXPECT_EQ(a.phases().plan_rebuilds, b.phases().plan_rebuilds);
  EXPECT_GE(a.phases().plan_rebuilds, 1u);  // the initial LPT build
  // Floor of 12 epochs between rebuilds bounds the count from above.
  const std::uint64_t epochs = a.phases().epochs;
  EXPECT_LE(a.phases().plan_rebuilds, 1 + epochs / 12);
}

TEST(EventQueue, ReserveAndCapacity) {
  EventQueue<int> q;
  q.reserve(64);
  EXPECT_GE(q.capacity(), 64u);
  for (int i = 0; i < 32; ++i) q.push(SimTime{100 - i}, i);
  EXPECT_GE(q.capacity(), 64u);  // no reallocation below the reservation
  SimTime prev = 0;
  while (!q.empty()) {
    const SimTime t = q.next_time();
    EXPECT_GE(t, prev);
    prev = t;
    q.pop();
  }
}

TEST(EventQueue, PopMovesPayloadOut) {
  EventQueue<std::string> q;
  q.push(SimTime{1}, std::string(128, 'x'));
  const auto ev = q.pop();
  EXPECT_EQ(ev.t, SimTime{1});
  EXPECT_EQ(ev.payload.size(), 128u);
}

}  // namespace
}  // namespace u1
