// Sharded streaming-analytics acceptance bench: runs the full analyzer
// suite (RPC perf, traffic, users, sessions, file types) through the
// in-worker shard fan-out over a NullSink — no trace is materialized —
// and reports wall clock, records/s, peak RSS and the effective flush
// depth. Unless --no-oracle, it then re-runs the exact merged-stream
// path (every analyzer as a TraceSink behind a MultiSink) and measures
// the sketch-vs-exact rank error of every distribution the sharded path
// approximates, at p50/p90/p99. Writes BENCH_analysis.json.
//
// Knobs: U1SIM_USERS / U1SIM_DAYS / U1SIM_THREADS as everywhere;
// U1SIM_ANALYSIS=merged measures the exact path instead (no oracle
// pass — it *is* the oracle). Flags:
//   --out PATH          JSON destination (default repo root)
//   --no-oracle         skip the merged pass (big runs: the merged
//                       path's O(records) state is the thing this bench
//                       exists to avoid)
//   --max-rss-kb N      exit 1 if the measured pass peaks above N KB
//   --max-rank-error F  exit 1 if any p50/p90/p99 rank error exceeds F
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/file_types.hpp"
#include "analysis/rpc_perf.hpp"
#include "analysis/sessions.hpp"
#include "analysis/sharded.hpp"
#include "analysis/traffic.hpp"
#include "analysis/users.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace u1;
using namespace u1::bench;

/// The full ported-analyzer suite over the run window [0, days).
struct Suite {
  Suite(SimTime end)
      : traffic(0, end), users(0, end), sessions(0, end) {}

  RpcPerfAnalyzer rpcs;
  TrafficAnalyzer traffic;
  UserActivityAnalyzer users;
  SessionAnalyzer sessions;
  FileTypeAnalyzer types;
};

struct RankErr {
  double p50 = 0, p90 = 0, p99 = 0;
  double max() const { return std::max({p50, p90, p99}); }
  void fold(double q, double err) {
    if (q == 0.5) p50 = std::max(p50, err);
    if (q == 0.9) p90 = std::max(p90, err);
    if (q == 0.99) p99 = std::max(p99, err);
  }
};

/// Rank error of the sharded path's quantile estimate at q, measured
/// against the exact stream and folded into `acc`. Tie-aware: a value x
/// occupies the whole rank interval [P(X < x), P(X <= x)] in the exact
/// distribution, so the error is the distance from q to that interval
/// (zero when q falls inside it). Without this, heavy-tie streams
/// (session lengths with a mass point near zero, small-integer op
/// counts) would charge the sketch for rank mass no estimator — not
/// even an exact one — can split.
void fold_stream(const std::vector<double>& approx,
                 const std::vector<double>& exact, RankErr& acc,
                 const char* name = "") {
  if (approx.empty() || exact.size() < 1000) return;
  const Ecdf approx_cdf = Ecdf::from_sorted(approx);
  std::vector<double> sorted(exact);
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double x = approx_cdf.quantile(q);
    const double lo =
        static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(), x) -
                            sorted.begin()) /
        n;
    const double hi =
        static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), x) -
                            sorted.begin()) /
        n;
    const double e = q < lo ? lo - q : (q > hi ? q - hi : 0.0);
    if (std::getenv("U1SIM_RANK_DEBUG") && e > 0.002)
      std::fprintf(stderr, "  rank-dbg %-28s q=%.2f n=%zu err=%.4f\n", name,
                   q, exact.size(), e);
    acc.fold(q, e);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool run_oracle = true;
  std::uint64_t max_rss_kb = 0;  // 0 = unchecked
  double max_rank_error = 0;     // 0 = unchecked
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-oracle") == 0) {
      run_oracle = false;
    } else if (std::strcmp(argv[i], "--max-rss-kb") == 0 && i + 1 < argc) {
      max_rss_kb = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-rank-error") == 0 &&
               i + 1 < argc) {
      max_rank_error = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out path] [--no-oracle] [--max-rss-kb n] "
                   "[--max-rank-error f]\n",
                   argv[0]);
      return 2;
    }
  }
  if (out_path.empty())
    out_path = std::string(U1SIM_REPO_ROOT) + "/BENCH_analysis.json";

  const auto cfg = standard_config(env_users(), env_days());
  const std::size_t threads = env_threads();
  const SimTime horizon = static_cast<SimTime>(cfg.days) * kDay;
  const AnalysisMode mode = analysis_mode_from_env();

  header("bench_analysis",
         "sharded streaming analytics: throughput + memory + rank error");
  std::printf("  users=%zu days=%d threads=%zu mode=%s\n", cfg.users,
              cfg.days, threads, to_string(mode));

  // Measured pass. Sharded: analyzers fan out inside the compute
  // workers, the sink is a NullSink, no trace or merge plan exists.
  // Merged: the classic serial TraceSink pass behind the engine.
  Suite suite(horizon);
  double wall_s = 0;
  std::uint64_t records = 0;
  std::size_t effective_depth = 0;
  bool analysis_only = false;
  if (mode == AnalysisMode::kSharded) {
    NullSink null;
    ParallelSimulation sim(cfg, null, threads);
    sim.attach_analyzer(suite.rpcs);
    sim.attach_analyzer(suite.traffic);
    sim.attach_analyzer(suite.users);
    sim.attach_analyzer(suite.sessions);
    sim.attach_analyzer(suite.types);
    const auto t0 = Clock::now();
    sim.run();
    wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    records = sim.records_flushed();
    effective_depth = sim.flush_depth();
    analysis_only = sim.analysis_only();
  } else {
    // Merged measured pass: same shard-parallel engine (its trace is
    // what the sharded shards consume, so the comparison is
    // apples-to-apples), analyzers fed serially by stage B.
    MultiSink fan;
    CountingSink counter;
    fan.add(&suite.rpcs);
    fan.add(&suite.traffic);
    fan.add(&suite.users);
    fan.add(&suite.sessions);
    fan.add(&suite.types);
    fan.add(&counter);
    ParallelSimulation sim(cfg, fan, threads);
    const auto t0 = Clock::now();
    sim.run();
    wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    suite.users.finalize();
    records = counter.total();
    effective_depth = sim.flush_depth();
  }
  // Peak RSS of the measured pass — sampled before the oracle (which
  // deliberately holds O(records) state) can inflate it.
  const std::uint64_t rss_kb = peak_rss_kb();
  const std::uint64_t heap_kb = heap_in_use_kb();

  std::printf("  wall=%.2fs records=%llu (%.0f records/s)\n", wall_s,
              static_cast<unsigned long long>(records),
              wall_s > 0 ? static_cast<double>(records) / wall_s : 0.0);
  std::printf("  peak_rss=%.1f MB heap_in_use=%.1f MB\n",
              static_cast<double>(rss_kb) / 1024.0,
              static_cast<double>(heap_kb) / 1024.0);
  if (mode == AnalysisMode::kSharded)
    std::printf("  flush_depth=%zu (analysis_only=%s, auto-shrunk ring)\n",
                effective_depth, analysis_only ? "yes" : "no");
  std::printf("  activity: %zu users seen, %llu sessions closed, "
              "%llu distinct files\n",
              suite.users.users_seen(),
              static_cast<unsigned long long>(suite.sessions.sessions_closed()),
              static_cast<unsigned long long>(suite.types.distinct_files()));

  // Oracle pass: the exact merged path, rank error per distribution.
  RankErr err;
  double oracle_wall_s = 0;
  bool have_oracle = false;
  if (run_oracle && mode == AnalysisMode::kSharded) {
    // Same engine, same seed, merged sink: the record stream the exact
    // analyzers see is byte-identical to what the shards consumed, so
    // any disagreement is pure sketch error.
    Suite exact(horizon);
    MultiSink fan;
    fan.add(&exact.rpcs);
    fan.add(&exact.traffic);
    fan.add(&exact.users);
    fan.add(&exact.sessions);
    fan.add(&exact.types);
    ParallelSimulation sim(cfg, fan, threads);
    const auto t0 = Clock::now();
    sim.run();
    oracle_wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    exact.users.finalize();
    have_oracle = true;

    for (const RpcOp op : all_rpc_ops()) {
      // Reservoir-exact only below the cap; above it the "oracle" would
      // itself be sampled.
      if (exact.rpcs.count(op) < 1000 || exact.rpcs.count(op) > 100000)
        continue;
      fold_stream(suite.rpcs.service_times(op), exact.rpcs.service_times(op),
                  err, to_string(op).data());
    }
    fold_stream(suite.sessions.session_lengths(),
                exact.sessions.session_lengths(), err, "session_lengths");
    fold_stream(suite.sessions.active_session_lengths(),
                exact.sessions.active_session_lengths(), err,
                "active_session_lengths");
    fold_stream(suite.sessions.ops_per_active_session(),
                exact.sessions.ops_per_active_session(), err,
                "ops_per_active_session");
    fold_stream(suite.types.all_sizes(), exact.types.all_sizes(), err,
                "file_sizes");

    std::printf("  oracle: wall=%.2fs (exact merged pass)\n", oracle_wall_s);
    std::printf("  rank error vs exact: p50=%.4f p90=%.4f p99=%.4f "
                "(max %.4f)\n",
                err.p50, err.p90, err.p99, err.max());
    row("traffic update-op fraction (exact both paths)",
        exact.traffic.update_op_fraction(),
        suite.traffic.update_op_fraction());
    row("active session fraction (exact both paths)",
        exact.sessions.active_session_fraction(),
        suite.sessions.active_session_fraction());
  }

  bool pass = true;
  if (max_rss_kb > 0 && rss_kb > max_rss_kb) {
    std::printf("  FAIL: peak RSS %llu KB exceeds budget %llu KB\n",
                static_cast<unsigned long long>(rss_kb),
                static_cast<unsigned long long>(max_rss_kb));
    pass = false;
  }
  if (max_rank_error > 0 && have_oracle && err.max() > max_rank_error) {
    std::printf("  FAIL: rank error %.4f exceeds budget %.4f\n", err.max(),
                max_rank_error);
    pass = false;
  }

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"sharded_analysis\",\n");
    std::fprintf(f, "  \"users\": %zu,\n", cfg.users);
    std::fprintf(f, "  \"days\": %d,\n", cfg.days);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(f, "  \"threads\": %zu,\n", threads);
    std::fprintf(f, "  \"mode\": \"%s\",\n", to_string(mode));
    std::fprintf(f, "  \"analysis_only\": %s,\n",
                 analysis_only ? "true" : "false");
    std::fprintf(f, "  \"flush_depth\": %zu,\n", effective_depth);
    std::fprintf(f, "  \"wall_s\": %.3f,\n", wall_s);
    std::fprintf(f, "  \"records\": %llu,\n",
                 static_cast<unsigned long long>(records));
    std::fprintf(f, "  \"records_per_sec\": %.0f,\n",
                 wall_s > 0 ? static_cast<double>(records) / wall_s : 0.0);
    std::fprintf(f, "  \"peak_rss_kb\": %llu,\n",
                 static_cast<unsigned long long>(rss_kb));
    std::fprintf(f, "  \"heap_in_use_kb\": %llu,\n",
                 static_cast<unsigned long long>(heap_kb));
    std::fprintf(f, "  \"users_seen\": %zu,\n", suite.users.users_seen());
    std::fprintf(f, "  \"sessions_closed\": %llu,\n",
                 static_cast<unsigned long long>(
                     suite.sessions.sessions_closed()));
    std::fprintf(f, "  \"distinct_files\": %llu,\n",
                 static_cast<unsigned long long>(
                     suite.types.distinct_files()));
    std::fprintf(f, "  \"oracle\": %s,\n", have_oracle ? "true" : "false");
    std::fprintf(f, "  \"oracle_wall_s\": %.3f,\n", oracle_wall_s);
    std::fprintf(f,
                 "  \"rank_error\": {\"p50\": %.5f, \"p90\": %.5f, "
                 "\"p99\": %.5f, \"max\": %.5f},\n",
                 err.p50, err.p90, err.p99, err.max());
    std::fprintf(f, "  \"max_rss_kb\": %llu,\n",
                 static_cast<unsigned long long>(max_rss_kb));
    std::fprintf(f, "  \"max_rank_error\": %.5f,\n", max_rank_error);
    std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return pass ? 0 : 1;
}
