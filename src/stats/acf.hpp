// Sample autocorrelation function. Fig. 2(c) tests whether hourly R/W
// ratios are independent: for an uncorrelated series the sample ACF is
// ~N(0, 1/N) and the 95% confidence band is +/- 2/sqrt(N).
#pragma once

#include <span>
#include <vector>

namespace u1 {

struct AcfResult {
  std::vector<double> acf;       // acf[k] for lag k = 0..max_lag (acf[0]=1)
  double confidence_bound = 0;   // 2/sqrt(N), the 95% band half-width
  /// Number of lags in 1..max_lag whose |acf| exceeds the band — the
  /// paper's "most lags are outside 95% confidence intervals" evidence.
  std::size_t significant_lags = 0;
};

/// Computes the biased sample ACF up to max_lag (inclusive).
/// Throws std::invalid_argument if the series is shorter than 2 or
/// max_lag >= series length.
AcfResult autocorrelation(std::span<const double> series,
                          std::size_t max_lag);

}  // namespace u1
