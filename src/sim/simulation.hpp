// Month-scale simulation runner: builds the user population, bootstraps
// their namespaces, then replays 30 days of diurnal, bursty client
// activity against the simulated U1 back-end, including the paper's three
// DDoS attacks and the manual operator response. Everything the back-end
// observes is emitted to the TraceSink in the U1 logfile shape, ready for
// the analyzers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "server/backend.hpp"
#include "sim/client_agent.hpp"
#include "sim/event_queue.hpp"
#include "improve/anomaly_guard.hpp"
#include "trace/sink.hpp"
#include "workload/ddos.hpp"

namespace u1 {

struct SimulationConfig {
  std::size_t users = 10000;
  int days = 30;  // the paper's window: 2014-01-11 .. 2014-02-10
  BackendConfig backend;
  UserModelParams user_model;
  BurstParams burst;
  DiurnalParams diurnal;
  /// Content duplication probability (drives the 0.171 dedup ratio).
  double content_duplicate_prob = 0.12;
  double content_zipf_s = 0.9;
  /// Mean pre-trace files per bootstrapped user.
  double bootstrap_files_mean = 14.0;
  bool enable_ddos = true;
  /// Bot population scale; 1.0 suits ~10k users.
  double ddos_bot_scale = 1.0;
  /// §9 extension: replace the manual operator response with the
  /// AnomalyGuard automatic countermeasure (detect + purge in-line).
  bool auto_countermeasures = false;
  /// Fault injection: empty plan = faults off (and the fault subsystem
  /// consumes zero randomness — traces are byte-identical to pre-fault
  /// builds). fault_seed 0 derives the stream from `seed`.
  FaultPlan faults;
  std::uint64_t fault_seed = 0;
  std::uint64_t seed = 20140111;
};

/// The RNG stream the fault schedule/injectors derive from.
inline std::uint64_t effective_fault_seed(const SimulationConfig& c) noexcept {
  return c.fault_seed != 0 ? c.fault_seed : (c.seed ^ 0xfa5e17);
}

struct SimulationReport {
  BackendStats backend;
  std::size_t users = 0;
  SimTime horizon = 0;
  std::uint64_t agent_wakeups = 0;
  std::uint64_t bootstrap_files = 0;
  std::uint64_t ddos_attacks = 0;
  /// Scheduled fault window edges (begins + ends) inside the horizon.
  std::uint64_t fault_events = 0;
  /// Automatic countermeasure bookkeeping (auto_countermeasures only).
  std::uint64_t auto_purges = 0;
  SimTime first_auto_response_delay = 0;
};

class Simulation {
 public:
  Simulation(const SimulationConfig& config, TraceSink& sink);

  /// Runs to completion and returns the report. Call once.
  SimulationReport run();

  const U1Backend& backend() const noexcept { return *backend_; }

 private:
  struct Bot {
    std::size_t attack = 0;  // index into attacks_
    SessionId session;
    bool connected = false;
    int failures = 0;
  };

  void bootstrap_phase();
  void schedule_population_start();
  SimTime bot_wake(std::size_t bot_index, SimTime now);
  void launch_attack(std::size_t attack_index, SimTime now);
  void respond_to_attack(std::size_t attack_index, SimTime now);

  struct AttackRuntime {
    DdosAttackSpec spec;
    UserId account;
    NodeId payload_node;
    bool purged = false;
  };

  // Event payload: which actor wants the CPU.
  struct Ev {
    enum class Kind : std::uint8_t {
      kAgent,
      kBot,
      kMaintenance,
      kDdosStart,
      kDdosResponse,
      kFault,  // index into fault_schedule_
    };
    Kind kind;
    std::size_t index = 0;
  };

  SimulationConfig config_;
  MultiSink fan_;
  std::unique_ptr<CallbackSink> guard_tap_;
  std::unique_ptr<AnomalyGuard> guard_;
  std::optional<UserId> pending_purge_;
  Rng rng_;

  // Shared workload machinery (must outlive the agents).
  FileModel file_model_;
  std::unique_ptr<ContentPool> content_pool_;
  UserModel user_model_;
  TransitionModel transition_model_;
  DiurnalModel diurnal_;
  BurstProcess bursts_;

  FaultSchedule fault_schedule_;
  std::unique_ptr<FaultInjector> injector_;

  std::unique_ptr<U1Backend> backend_;
  std::vector<std::unique_ptr<ClientAgent>> agents_;
  std::vector<AttackRuntime> attacks_;
  std::vector<Bot> bots_;
  EventQueue<Ev> queue_;
  SimulationReport report_;
  bool ran_ = false;
};

}  // namespace u1
