file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07c_lorenz_gini.dir/bench_fig07c_lorenz_gini.cpp.o"
  "CMakeFiles/bench_fig07c_lorenz_gini.dir/bench_fig07c_lorenz_gini.cpp.o.d"
  "bench_fig07c_lorenz_gini"
  "bench_fig07c_lorenz_gini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07c_lorenz_gini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
