file(REMOVE_RECURSE
  "CMakeFiles/auth_tests.dir/auth/auth_test.cpp.o"
  "CMakeFiles/auth_tests.dir/auth/auth_test.cpp.o.d"
  "auth_tests"
  "auth_tests.pdb"
  "auth_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
