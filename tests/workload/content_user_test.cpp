#include <gtest/gtest.h>

#include <unordered_map>

#include "workload/content_pool.hpp"
#include "workload/user_model.hpp"

namespace u1 {
namespace {

TEST(ContentPool, FreshDrawsAreUnique) {
  ContentPool pool(0.0, 0.9, 1);  // no duplication
  FileModel files;
  Rng rng(1);
  std::unordered_map<ContentId, int> seen;
  for (int i = 0; i < 5000; ++i) {
    const FileSpec spec = files.sample(rng);
    const ContentDraw draw = pool.draw(spec, rng);
    EXPECT_FALSE(draw.duplicate);
    seen[draw.id]++;
  }
  EXPECT_EQ(seen.size(), 5000u);
}

TEST(ContentPool, DuplicateFractionMatchesPerCategoryProbability) {
  // The pool skews duplication by category (media circulates, code does
  // not); each category's empirical rate must match its configured one.
  ContentPool pool(0.25, 0.9, 2);
  Rng rng(2);
  for (const FileCategory cat :
       {FileCategory::kCode, FileCategory::kAudioVideo,
        FileCategory::kDocs}) {
    ContentPool fresh(0.25, 0.9, static_cast<std::uint64_t>(cat) + 3);
    FileSpec spec;
    spec.category = cat;
    spec.extension = "x";
    spec.size_bytes = 1000;
    int dups = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      if (fresh.draw(spec, rng).duplicate) ++dups;
    }
    EXPECT_NEAR(static_cast<double>(dups) / n,
                fresh.duplicate_prob_for(cat), 0.02)
        << to_string(cat);
  }
}

TEST(ContentPool, DuplicatesKeepOriginalSize) {
  ContentPool pool(0.9, 0.9, 3);
  FileModel files;
  Rng rng(3);
  std::unordered_map<ContentId, std::uint64_t> size_of;
  for (int i = 0; i < 20000; ++i) {
    const FileSpec spec = files.sample(rng);
    const ContentDraw draw = pool.draw(spec, rng);
    const auto it = size_of.find(draw.id);
    if (it != size_of.end()) {
      EXPECT_EQ(it->second, draw.size_bytes);
    } else {
      size_of.emplace(draw.id, draw.size_bytes);
    }
  }
}

TEST(ContentPool, PopularityIsLongTailed) {
  // Fig. 4a: a small number of contents accounts for very many duplicates
  // while most have none.
  ContentPool pool(0.30, 0.9, 4);
  FileModel files;
  Rng rng(4);
  std::unordered_map<ContentId, int> copies;
  for (int i = 0; i < 60000; ++i) {
    const FileSpec spec = files.sample(rng);
    copies[pool.draw(spec, rng).id]++;
  }
  int max_copies = 0;
  int singletons = 0;
  for (const auto& [id, n] : copies) {
    max_copies = std::max(max_copies, n);
    if (n == 1) ++singletons;
  }
  EXPECT_GT(max_copies, 50);  // hot content exists
  EXPECT_GT(static_cast<double>(singletons) / copies.size(), 0.6);
}

TEST(ContentPool, UpdatesAlwaysFresh) {
  ContentPool pool(0.9, 0.9, 5);
  Rng rng(5);
  const ContentDraw a = pool.draw_update(1000, rng);
  const ContentDraw b = pool.draw_update(1000, rng);
  EXPECT_FALSE(a.duplicate);
  EXPECT_FALSE(b.duplicate);
  EXPECT_NE(a.id, b.id);
}

TEST(ContentPool, ValidatesParams) {
  EXPECT_THROW(ContentPool(1.0, 0.9, 1), std::invalid_argument);
  EXPECT_THROW(ContentPool(-0.1, 0.9, 1), std::invalid_argument);
  EXPECT_THROW(ContentPool(0.2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(ContentPool(0.2, 0.0, 1), std::invalid_argument);
}

TEST(UserModel, ClassMixMatchesPaper) {
  UserModel model;
  Rng rng(6);
  std::array<int, kUserClassCount> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    counts[static_cast<std::size_t>(model.sample(rng).user_class)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.8582, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.0722, 0.005);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.0234, 0.005);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.0462, 0.005);
}

TEST(UserModel, UdfAndSharerRates) {
  UserModel model;
  Rng rng(7);
  int with_udf = 0, sharers = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const UserProfile p = model.sample(rng);
    if (p.udf_volumes > 0) ++with_udf;
    if (p.sharer) ++sharers;
  }
  EXPECT_NEAR(with_udf / static_cast<double>(n), 0.58, 0.01);
  EXPECT_NEAR(sharers / static_cast<double>(n), 0.018, 0.004);
}

TEST(UserModel, ActivityIsHeavyTailed) {
  // Effective storage work of a user ~ activity x active-session
  // probability; the top 1% should hold a large chunk of that mass
  // (paper: 1% of users generate 65% of the traffic).
  UserModel model;
  Rng rng(8);
  std::vector<double> work;
  const int n = 100000;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    const UserProfile p = model.sample(rng);
    const double w = p.activity * p.active_session_prob;
    work.push_back(w);
    total += w;
  }
  std::sort(work.begin(), work.end());
  double top1 = 0;
  for (std::size_t i = work.size() - work.size() / 100; i < work.size(); ++i)
    top1 += work[i];
  EXPECT_GT(top1 / total, 0.30);
}

TEST(UserModel, SessionLengthDistributionShape) {
  UserModel model;
  Rng rng(9);
  int under_1s = 0, under_8h = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const SimTime len = model.sample_session_length(rng);
    EXPECT_GT(len, 0);
    if (len < kSecond) ++under_1s;
    if (len < 8 * kHour) ++under_8h;
  }
  // Paper: 32% < 1s, 97% < 8h.
  EXPECT_NEAR(under_1s / static_cast<double>(n), 0.32, 0.02);
  EXPECT_NEAR(under_8h / static_cast<double>(n), 0.97, 0.01);
}

TEST(UserModel, SessionOpsHeavyTail) {
  UserModel model;
  Rng rng(10);
  std::vector<double> ops;
  const int n = 50000;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<double>(
        model.sample_session_ops(UserClass::kHeavy, rng));
    ops.push_back(v);
    total += v;
  }
  std::sort(ops.begin(), ops.end());
  // 80th percentile below ~92 ops, top 20% carrying the bulk (Fig. 16).
  EXPECT_LT(ops[static_cast<std::size_t>(0.8 * n)], 120.0);
  double top20 = 0;
  for (std::size_t i = static_cast<std::size_t>(0.8 * n); i < ops.size();
       ++i)
    top20 += ops[i];
  EXPECT_GT(top20 / total, 0.80);
}

TEST(UserModel, ValidatesParams) {
  UserModelParams p;
  p.p_occasional = 0.5;  // mix no longer sums to 1
  EXPECT_THROW(UserModel{p}, std::invalid_argument);
  UserModelParams q;
  q.activity_alpha = 0.9;
  EXPECT_THROW(UserModel{q}, std::invalid_argument);
}

TEST(UserClass, Names) {
  EXPECT_EQ(to_string(UserClass::kOccasional), "occasional");
  EXPECT_EQ(to_string(UserClass::kHeavy), "heavy");
}

}  // namespace
}  // namespace u1
