// Fig. 3(a): X-after-Write inter-operation time CDFs (WAW / RAW / DAW).
#include "analysis/file_dependencies.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  FileDependencyAnalyzer deps;
  auto sim = run_into(deps, cfg);

  header("Fig 3(a)", "X-after-Write inter-operation times");
  row("WAW share of after-write transitions", 0.44,
      deps.family_share(FileDependency::kWAW));
  row("RAW share", 0.30, deps.family_share(FileDependency::kRAW));
  row("DAW share", 0.26, deps.family_share(FileDependency::kDAW));

  std::printf("\n  CDF of inter-operation times (seconds):\n");
  std::printf("  %-8s %10s %10s %10s\n", "x", "WAW", "RAW", "DAW");
  const std::vector<std::pair<const char*, double>> grid = {
      {"0.1s", 0.1}, {"1s", 1},       {"60s", 60},   {"1h", 3600},
      {"8h", 28800}, {"1d", 86400},   {"1w", 604800}};
  for (const auto dep : {FileDependency::kWAW, FileDependency::kRAW,
                         FileDependency::kDAW}) {
    if (deps.times(dep).empty()) {
      std::printf("  (no %s samples)\n", std::string(to_string(dep)).c_str());
      return 0;
    }
  }
  Ecdf waw{std::vector<double>(deps.times(FileDependency::kWAW))};
  Ecdf raw{std::vector<double>(deps.times(FileDependency::kRAW))};
  Ecdf daw{std::vector<double>(deps.times(FileDependency::kDAW))};
  for (const auto& [label, x] : grid) {
    std::printf("  %-8s %10.3f %10.3f %10.3f\n", label, waw.at(x), raw.at(x),
                daw.at(x));
  }
  row("WAW gaps shorter than 1 hour", 0.80, waw.at(3600.0));
  note("paper: users update text-like files repeatedly within short time "
       "lapses; 80% of WAW times < 1h");
  return 0;
}
