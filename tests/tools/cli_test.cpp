#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "tools/u1trace_cli.hpp"

namespace u1::cli {
namespace {

TEST(Args, ParsesPositionalsFlagsSwitches) {
  const Args args = Args::parse({"dir1", "--users", "500", "--no-ddos",
                                 "dir2"},
                                {"users"}, {"no-ddos"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "dir1");
  EXPECT_EQ(args.int_flag("users"), 500);
  EXPECT_TRUE(args.has_switch("no-ddos"));
  EXPECT_FALSE(args.flag("days").has_value());
}

TEST(Args, RejectsUnknownAndDangling) {
  const Args bad = Args::parse({"--bogus", "x"}, {"users"}, {});
  EXPECT_FALSE(bad.ok());
  const Args dangling = Args::parse({"--users"}, {"users"}, {});
  EXPECT_FALSE(dangling.ok());
}

TEST(Args, NonNumericIntFlag) {
  const Args args = Args::parse({"--users", "abc"}, {"users"}, {});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args.int_flag("users").has_value());
}

TEST(Run, UnknownCommandFails) {
  std::ostringstream out, err;
  EXPECT_NE(run({"frobnicate"}, out, err), 0);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Run, NoArgsShowsUsage) {
  std::ostringstream out, err;
  EXPECT_NE(run({}, out, err), 0);
}

class CliPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("u1trace_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CliPipeline, GenerateSummarizeAnalyzeValidate) {
  std::ostringstream out, err;
  ASSERT_EQ(run({"generate", "--out", dir_, "--users", "120", "--days", "2",
                 "--seed", "7", "--no-ddos"},
                out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("sessions"), std::string::npos);

  std::ostringstream sum_out, sum_err;
  ASSERT_EQ(run({"summarize", dir_}, sum_out, sum_err), 0) << sum_err.str();
  EXPECT_NE(sum_out.str().find("unique users"), std::string::npos);

  for (const char* figure :
       {"traffic", "dedup", "sessions", "users", "ops", "ddos"}) {
    std::ostringstream a_out, a_err;
    EXPECT_EQ(run({"analyze", dir_, "--figure", figure}, a_out, a_err), 0)
        << figure << ": " << a_err.str();
    EXPECT_FALSE(a_out.str().empty()) << figure;
  }

  std::ostringstream v_out, v_err;
  EXPECT_EQ(run({"validate", dir_}, v_out, v_err), 0) << v_err.str();
  EXPECT_NE(v_out.str().find("TRACE SOUND"), std::string::npos)
      << v_out.str();
}

TEST_F(CliPipeline, AnalyzeUnknownFigureFails) {
  std::ostringstream out, err;
  ASSERT_EQ(run({"generate", "--out", dir_, "--users", "50", "--days", "1",
                 "--no-ddos"},
                out, err),
            0);
  std::ostringstream a_out, a_err;
  EXPECT_NE(run({"analyze", dir_, "--figure", "nope"}, a_out, a_err), 0);
}

TEST_F(CliPipeline, GenerateRequiresOut) {
  std::ostringstream out, err;
  EXPECT_NE(run({"generate", "--users", "10"}, out, err), 0);
}

TEST_F(CliPipeline, SummarizeRequiresDir) {
  std::ostringstream out, err;
  EXPECT_NE(run({"summarize"}, out, err), 0);
}

}  // namespace
}  // namespace u1::cli
