# Empty dependencies file for bench_fig15_auth_sessions.
# This may be replaced when dependencies are built.
