# Empty compiler generated dependencies file for u1_improve.
# This may be replaced when dependencies are built.
