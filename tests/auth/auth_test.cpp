#include "auth/auth_service.hpp"
#include "auth/token_cache.hpp"

#include <gtest/gtest.h>

namespace u1 {
namespace {

TEST(AuthService, IssueAndVerify) {
  AuthService auth(1, 0.0);
  const auto token = auth.issue_token(UserId{7}, kHour);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->user, (UserId{7}));
  const auto user = auth.verify_token(token->id, 2 * kHour);
  ASSERT_TRUE(user.has_value());
  EXPECT_EQ(*user, (UserId{7}));
  EXPECT_EQ(auth.stats().issue_requests, 1u);
  EXPECT_EQ(auth.stats().verify_requests, 1u);
  EXPECT_EQ(auth.stats().failures, 0u);
}

TEST(AuthService, UnknownTokenRejected) {
  AuthService auth(2, 0.0);
  Rng rng(3);
  EXPECT_FALSE(auth.verify_token(Uuid::v4(rng), 0).has_value());
  EXPECT_EQ(auth.stats().rejects, 1u);
}

TEST(AuthService, RevocationBlocksVerification) {
  AuthService auth(4, 0.0);
  const auto t1 = auth.issue_token(UserId{1}, 0);
  const auto t2 = auth.issue_token(UserId{1}, 0);
  const auto t3 = auth.issue_token(UserId{2}, 0);
  ASSERT_TRUE(t1 && t2 && t3);
  EXPECT_TRUE(auth.revoke_user_tokens(UserId{1}));
  EXPECT_FALSE(auth.verify_token(t1->id, 1).has_value());
  EXPECT_FALSE(auth.verify_token(t2->id, 1).has_value());
  EXPECT_TRUE(auth.verify_token(t3->id, 1).has_value());
  EXPECT_FALSE(auth.revoke_user_tokens(UserId{1}));  // already revoked
  EXPECT_FALSE(auth.revoke_user_tokens(UserId{99}));
}

TEST(AuthService, FailureRateNearConfigured) {
  // The paper measured 2.76% of auth requests failing.
  AuthService auth(5, 0.0276);
  int failures = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!auth.issue_token(UserId{1}, 0).has_value()) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.0276, 0.003);
  EXPECT_EQ(auth.stats().failures, static_cast<std::uint64_t>(failures));
}

TEST(AuthService, RejectsBadFailureRate) {
  EXPECT_THROW(AuthService(1, -0.1), std::invalid_argument);
  EXPECT_THROW(AuthService(1, 1.0), std::invalid_argument);
}

TEST(TokenCache, HitAndMiss) {
  TokenCache cache(4);
  Rng rng(6);
  const TokenId t = Uuid::v4(rng);
  EXPECT_FALSE(cache.get(t).has_value());
  cache.put(t, UserId{9});
  const auto hit = cache.get(t);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (UserId{9}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(TokenCache, LruEviction) {
  TokenCache cache(2);
  Rng rng(7);
  const TokenId a = Uuid::v4(rng);
  const TokenId b = Uuid::v4(rng);
  const TokenId c = Uuid::v4(rng);
  cache.put(a, UserId{1});
  cache.put(b, UserId{2});
  (void)cache.get(a);   // promote a
  cache.put(c, UserId{3});  // evicts b
  EXPECT_TRUE(cache.get(a).has_value());
  EXPECT_FALSE(cache.get(b).has_value());
  EXPECT_TRUE(cache.get(c).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TokenCache, PutExistingUpdatesValue) {
  TokenCache cache(2);
  Rng rng(8);
  const TokenId t = Uuid::v4(rng);
  cache.put(t, UserId{1});
  cache.put(t, UserId{2});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(t), (UserId{2}));
}

TEST(TokenCache, Erase) {
  TokenCache cache(2);
  Rng rng(9);
  const TokenId t = Uuid::v4(rng);
  cache.put(t, UserId{1});
  cache.erase(t);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(t).has_value());
  cache.erase(t);  // idempotent
}

TEST(TokenCache, RejectsZeroCapacity) {
  EXPECT_THROW(TokenCache(0), std::invalid_argument);
}

TEST(TokenCache, EmptyHitRateZero) {
  TokenCache cache(4);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

}  // namespace
}  // namespace u1
