#include "analysis/sessions.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace u1 {

SessionAnalyzer::SessionAnalyzer(SimTime start, SimTime end)
    : start_(start),
      end_(end),
      auth_(start, end, kHour),
      session_reqs_(start, end, kHour) {}

void SessionAnalyzer::append(const TraceRecord& r) {
  if (r.type == RecordType::kSession) {
    if (r.t >= 0) session_reqs_.add(r.t);
    switch (r.session_event) {
      case SessionEvent::kAuthRequest:
        if (r.t >= 0) {
          auth_.add(r.t);
          ++auth_requests_;
        }
        break;
      case SessionEvent::kAuthFail:
        if (r.t >= 0) ++auth_failures_;
        break;
      case SessionEvent::kOpen:
        live_[r.session] = Live{r.t, 0};
        break;
      case SessionEvent::kDropped:  // crash-closed: still a session end
      case SessionEvent::kClose: {
        const auto it = live_.find(r.session);
        if (it == live_.end()) break;
        if (r.t >= 0) {
          const double len = to_seconds(r.t - it->second.opened);
          lengths_all_.push_back(len);
          if (it->second.storage_ops > 0) {
            lengths_active_.push_back(len);
            ops_active_.push_back(
                static_cast<double>(it->second.storage_ops));
          }
        }
        live_.erase(it);
        break;
      }
      default:
        break;
    }
    return;
  }
  if (r.type == RecordType::kStorageDone && !r.failed &&
      is_storage_op(r.api_op)) {
    const auto it = live_.find(r.session);
    if (it != live_.end()) ++it->second.storage_ops;
  }
}

// Per-group shard: same event handling as append(), but closed-session
// lengths and ops-per-session go into sketches instead of vectors, so a
// shard's footprint stays O(live sessions + sketch) regardless of how
// many sessions the group closes.
class SessionAnalyzer::Shard final : public AnalyzerShard {
 public:
  Shard(SimTime start, SimTime end)
      : auth(start, end, kHour), session_reqs(start, end, kHour) {}

  void consume(const TraceRecord* records, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const TraceRecord& r = records[i];
      if (r.type == RecordType::kSession) {
        if (r.t >= 0) session_reqs.add(r.t);
        switch (r.session_event) {
          case SessionEvent::kAuthRequest:
            if (r.t >= 0) {
              auth.add(r.t);
              ++auth_requests;
            }
            break;
          case SessionEvent::kAuthFail:
            if (r.t >= 0) ++auth_failures;
            break;
          case SessionEvent::kOpen:
            live[r.session] = Live{r.t, 0};
            break;
          case SessionEvent::kDropped:
          case SessionEvent::kClose: {
            const auto it = live.find(r.session);
            if (it == live.end()) break;
            if (r.t >= 0) {
              const double len = to_seconds(r.t - it->second.opened);
              lengths_all.add(len);
              ++closed_all;
              if (it->second.storage_ops > 0) {
                const auto ops =
                    static_cast<double>(it->second.storage_ops);
                lengths_active.add(len);
                ops_active.add(ops);
                ops_lorenz.add(ops);
                ++closed_active;
              }
            }
            live.erase(it);
            break;
          }
          default:
            break;
        }
        continue;
      }
      if (r.type == RecordType::kStorageDone && !r.failed &&
          is_storage_op(r.api_op)) {
        const auto it = live.find(r.session);
        if (it != live.end()) ++it->second.storage_ops;
      }
    }
  }

  TimeBinSeries auth;
  TimeBinSeries session_reqs;
  std::uint64_t auth_requests = 0;
  std::uint64_t auth_failures = 0;
  std::unordered_map<SessionId, Live> live;
  QuantileSketch lengths_all;
  QuantileSketch lengths_active;
  QuantileSketch ops_active;
  BinnedLorenz ops_lorenz;
  std::uint64_t closed_all = 0;
  std::uint64_t closed_active = 0;
};

std::unique_ptr<AnalyzerShard> SessionAnalyzer::make_shard() {
  return std::make_unique<Shard>(start_, end_);
}

void SessionAnalyzer::merge_shard(AnalyzerShard& shard) {
  auto& s = dynamic_cast<Shard&>(shard);
  sharded_ = true;
  auth_.merge(s.auth);
  session_reqs_.merge(s.session_reqs);
  auth_requests_ += s.auth_requests;
  auth_failures_ += s.auth_failures;
  lengths_all_sk_.merge(s.lengths_all);
  lengths_active_sk_.merge(s.lengths_active);
  ops_active_sk_.merge(s.ops_active);
  ops_lorenz_.merge(s.ops_lorenz);
  closed_all_ += s.closed_all;
  closed_active_ += s.closed_active;
}

namespace {

std::vector<double> quantile_grid(const QuantileSketch& sk) {
  if (sk.empty()) return {};
  const auto points =
      static_cast<std::size_t>(std::min<std::uint64_t>(sk.count(), 4001));
  return sk.sorted_sample(points);
}

}  // namespace

void SessionAnalyzer::finish() {
  if (!sharded_) return;
  lengths_all_ = quantile_grid(lengths_all_sk_);
  lengths_active_ = quantile_grid(lengths_active_sk_);
  ops_active_ = quantile_grid(ops_active_sk_);
}

double SessionAnalyzer::auth_failure_fraction() const {
  const std::uint64_t total = auth_requests_;
  return total > 0 ? static_cast<double>(auth_failures_) /
                         static_cast<double>(total)
                   : 0.0;
}

double SessionAnalyzer::monday_weekend_peak_ratio() const {
  std::array<double, 7> peak{};
  for (std::size_t i = 0; i < auth_.bins(); ++i) {
    const int wd = weekday(auth_.bin_start(i));
    peak[static_cast<std::size_t>(wd)] =
        std::max(peak[static_cast<std::size_t>(wd)], auth_.value(i));
  }
  const double weekend = std::max(peak[5], peak[6]);
  return weekend > 0 ? peak[0] / weekend : 0.0;
}

double SessionAnalyzer::active_session_fraction() const {
  if (sharded_) {
    return closed_all_ > 0 ? static_cast<double>(closed_active_) /
                                 static_cast<double>(closed_all_)
                           : 0.0;
  }
  if (lengths_all_.empty()) return 0.0;
  return static_cast<double>(lengths_active_.size()) /
         static_cast<double>(lengths_all_.size());
}

double SessionAnalyzer::fraction_shorter_than(SimTime limit) const {
  const double cutoff = to_seconds(limit);
  if (sharded_) {
    return closed_all_ > 0 ? lengths_all_sk_.rank(cutoff) : 0.0;
  }
  if (lengths_all_.empty()) return 0.0;
  const auto n = std::count_if(lengths_all_.begin(), lengths_all_.end(),
                               [&](double l) { return l < cutoff; });
  return static_cast<double>(n) / static_cast<double>(lengths_all_.size());
}

double SessionAnalyzer::top_sessions_op_share(double top) const {
  if (sharded_) {
    if (closed_active_ == 0 || top <= 0 || top > 1) return 0.0;
    // The merged path sums whole sessions from index floor(n*(1-top)),
    // so "top 1%" of 13 sessions means the single largest session, not
    // 1% of the binned mass. Snap the fraction to the same session
    // count before evaluating the curve, which converges to `top`
    // itself as n grows.
    const double n = static_cast<double>(closed_active_);
    const double k = n - std::floor(n * (1.0 - top));
    return ops_lorenz_.top_share(k / n);
  }
  if (ops_active_.empty() || top <= 0 || top > 1) return 0.0;
  std::vector<double> ops = ops_active_;
  std::sort(ops.begin(), ops.end());
  const double total = std::accumulate(ops.begin(), ops.end(), 0.0);
  if (total <= 0) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      static_cast<double>(ops.size()) * (1.0 - top));
  double top_sum = 0;
  for (std::size_t i = k; i < ops.size(); ++i) top_sum += ops[i];
  return top_sum / total;
}

}  // namespace u1
