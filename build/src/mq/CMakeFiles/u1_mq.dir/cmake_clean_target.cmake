file(REMOVE_RECURSE
  "libu1_mq.a"
)
