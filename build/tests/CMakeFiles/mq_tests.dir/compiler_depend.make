# Empty compiler generated dependencies file for mq_tests.
# This may be replaced when dependencies are built.
