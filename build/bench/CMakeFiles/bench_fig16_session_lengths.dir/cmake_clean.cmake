file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_session_lengths.dir/bench_fig16_session_lengths.cpp.o"
  "CMakeFiles/bench_fig16_session_lengths.dir/bench_fig16_session_lengths.cpp.o.d"
  "bench_fig16_session_lengths"
  "bench_fig16_session_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_session_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
