// User-centric request graph (paper §6.2, Fig. 8): per-session operation
// sequences aggregated into a transition matrix over API operations, with
// global transition probabilities (edge weight = transitions on that edge
// divided by all transitions).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"

namespace u1 {

class TransitionGraphAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  struct Edge {
    ApiOp from;
    ApiOp to;
    std::uint64_t count = 0;
    double global_probability = 0;  // count / total transitions
  };

  /// All edges with non-zero count, heaviest first.
  std::vector<Edge> edges() const;

  /// Conditional probability P(to | from).
  double conditional(ApiOp from, ApiOp to) const;

  /// Self-transition probability of an op, P(op | op).
  double self_loop(ApiOp op) const { return conditional(op, op); }

  std::uint64_t total_transitions() const noexcept { return total_; }

 private:
  std::array<std::array<std::uint64_t, kApiOpCount>, kApiOpCount> matrix_{};
  std::unordered_map<SessionId, ApiOp> last_op_;
  std::uint64_t total_ = 0;
};

}  // namespace u1
