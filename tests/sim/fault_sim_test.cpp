// Determinism oracle for fault injection: with a fault plan armed, the
// merged trace must stay byte-identical for every thread count, the
// sequential engine must complete a faulted run with degraded-mode
// activity on record, and a plan whose windows sit beyond the horizon
// must leave the trace untouched (the fault subsystem consumes no RNG
// outside active windows).
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"

namespace u1 {
namespace {

/// The acceptance plan, rescaled into a 3-day horizon so the small CI
/// run still crosses every fault kind.
FaultPlan scaled_plan() {
  return parse_fault_plan(
      "auth_brownout  t=6h   dur=30m error=0.5\n"
      "process_crash  t=12h  dur=1h  machine=3 slot=1\n"
      "s3_brownout    t=1d   dur=45m error=0.25 slow=4\n"
      "shard_failover t=1d6h dur=30m shard=4 slow=6 reject=0.35\n"
      "mq_drop        t=1d12h dur=1h drop=0.75\n"
      "machine_outage t=2d   dur=40m machine=2\n");
}

SimulationConfig faulted_config() {
  SimulationConfig cfg;
  cfg.users = 200;
  cfg.days = 3;
  cfg.seed = 20140111;
  cfg.faults = scaled_plan();
  return cfg;
}

std::vector<std::string> parallel_trace(const SimulationConfig& cfg,
                                        std::size_t threads,
                                        SimulationReport* report = nullptr) {
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, threads);
  const SimulationReport r = sim.run();
  if (report != nullptr) *report = r;
  std::vector<std::string> lines;
  lines.reserve(sink.records().size());
  for (const TraceRecord& rec : sink.records()) {
    std::string line;
    for (const std::string& field : rec.to_csv()) {
      line += field;
      line += ',';
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

TEST(FaultSimulation, FaultedTraceIdenticalAcrossThreadCounts) {
  const auto cfg = faulted_config();
  SimulationReport r1, r2, r4, r8;
  const auto t1 = parallel_trace(cfg, 1, &r1);
  const auto t2 = parallel_trace(cfg, 2, &r2);
  const auto t4 = parallel_trace(cfg, 4, &r4);
  const auto t8 = parallel_trace(cfg, 8, &r8);

  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t4.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i], t2[i]) << "first divergence (2 threads) at row " << i;
    ASSERT_EQ(t1[i], t4[i]) << "first divergence (4 threads) at row " << i;
    ASSERT_EQ(t1[i], t8[i]) << "first divergence (8 threads) at row " << i;
  }
  // Degraded-mode counters aggregate identically too.
  EXPECT_EQ(r1.fault_events, r2.fault_events);
  EXPECT_EQ(r1.fault_events, r8.fault_events);
  EXPECT_EQ(r1.backend.sessions_dropped, r8.backend.sessions_dropped);
  EXPECT_EQ(r1.backend.interrupted_uploads, r8.backend.interrupted_uploads);
  EXPECT_EQ(r1.backend.resumed_uploads, r8.backend.resumed_uploads);
  EXPECT_EQ(r1.backend.s3_errors, r8.backend.s3_errors);
  EXPECT_EQ(r1.backend.write_rejects, r8.backend.write_rejects);
  EXPECT_EQ(r1.backend.auth_failures, r8.backend.auth_failures);
}

TEST(FaultSimulation, SequentialFaultedRunCompletesWithActivity) {
  const auto cfg = faulted_config();
  InMemorySink sink;
  Simulation sim(cfg, sink);
  const SimulationReport report = sim.run();  // must not throw

  // Six windows, each with a begin and an end edge inside the horizon.
  EXPECT_EQ(report.fault_events, 12u);
  std::uint64_t fault_records = 0;
  for (const TraceRecord& r : sink.records()) {
    if (r.type == RecordType::kFault) ++fault_records;
  }
  EXPECT_EQ(fault_records, 12u);
  // The plan actually bites: some degraded-mode path fired.
  EXPECT_GT(report.backend.sessions_dropped + report.backend.s3_errors +
                report.backend.auth_failures + report.backend.write_rejects +
                report.backend.interrupted_uploads,
            0u);
  // The population survives the faults: clients keep working after the
  // last window closes.
  EXPECT_GT(report.backend.uploads, 0u);
  EXPECT_GT(report.backend.sessions_opened, 0u);
}

TEST(FaultSimulation, FaultSeedSelectsDifferentOutcomes) {
  auto cfg = faulted_config();
  const auto base = parallel_trace(cfg, 2);
  cfg.fault_seed = 777;  // same workload seed, different fault draws
  const auto other = parallel_trace(cfg, 2);
  EXPECT_NE(base, other);
}

TEST(FaultSimulation, OutOfHorizonPlanLeavesTraceUntouched) {
  // Windows beyond the horizon never open; the armed injector must not
  // disturb a single RNG draw, so the trace matches faults-off exactly.
  auto cfg = faulted_config();
  cfg.faults = parse_fault_plan("s3_brownout t=10d dur=1h error=1.0\n");
  SimulationReport faulted_report;
  const auto armed = parallel_trace(cfg, 2, &faulted_report);
  cfg.faults = FaultPlan{};
  const auto off = parallel_trace(cfg, 2);
  EXPECT_EQ(faulted_report.fault_events, 0u);
  ASSERT_EQ(armed.size(), off.size());
  for (std::size_t i = 0; i < armed.size(); ++i) {
    ASSERT_EQ(armed[i], off[i]) << "first divergence at row " << i;
  }
}

}  // namespace
}  // namespace u1
