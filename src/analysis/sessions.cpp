#include "analysis/sessions.hpp"

#include <algorithm>
#include <array>
#include <numeric>

namespace u1 {

SessionAnalyzer::SessionAnalyzer(SimTime start, SimTime end)
    : auth_(start, end, kHour), session_reqs_(start, end, kHour) {}

void SessionAnalyzer::append(const TraceRecord& r) {
  if (r.type == RecordType::kSession) {
    if (r.t >= 0) session_reqs_.add(r.t);
    switch (r.session_event) {
      case SessionEvent::kAuthRequest:
        if (r.t >= 0) {
          auth_.add(r.t);
          ++auth_requests_;
        }
        break;
      case SessionEvent::kAuthFail:
        if (r.t >= 0) ++auth_failures_;
        break;
      case SessionEvent::kOpen:
        live_[r.session] = Live{r.t, 0};
        break;
      case SessionEvent::kDropped:  // crash-closed: still a session end
      case SessionEvent::kClose: {
        const auto it = live_.find(r.session);
        if (it == live_.end()) break;
        if (r.t >= 0) {
          const double len = to_seconds(r.t - it->second.opened);
          lengths_all_.push_back(len);
          if (it->second.storage_ops > 0) {
            lengths_active_.push_back(len);
            ops_active_.push_back(
                static_cast<double>(it->second.storage_ops));
          }
        }
        live_.erase(it);
        break;
      }
      default:
        break;
    }
    return;
  }
  if (r.type == RecordType::kStorageDone && !r.failed &&
      is_storage_op(r.api_op)) {
    const auto it = live_.find(r.session);
    if (it != live_.end()) ++it->second.storage_ops;
  }
}

double SessionAnalyzer::auth_failure_fraction() const {
  const std::uint64_t total = auth_requests_;
  return total > 0 ? static_cast<double>(auth_failures_) /
                         static_cast<double>(total)
                   : 0.0;
}

double SessionAnalyzer::monday_weekend_peak_ratio() const {
  std::array<double, 7> peak{};
  for (std::size_t i = 0; i < auth_.bins(); ++i) {
    const int wd = weekday(auth_.bin_start(i));
    peak[static_cast<std::size_t>(wd)] =
        std::max(peak[static_cast<std::size_t>(wd)], auth_.value(i));
  }
  const double weekend = std::max(peak[5], peak[6]);
  return weekend > 0 ? peak[0] / weekend : 0.0;
}

double SessionAnalyzer::active_session_fraction() const {
  if (lengths_all_.empty()) return 0.0;
  return static_cast<double>(lengths_active_.size()) /
         static_cast<double>(lengths_all_.size());
}

double SessionAnalyzer::fraction_shorter_than(SimTime limit) const {
  if (lengths_all_.empty()) return 0.0;
  const double cutoff = to_seconds(limit);
  const auto n = std::count_if(lengths_all_.begin(), lengths_all_.end(),
                               [&](double l) { return l < cutoff; });
  return static_cast<double>(n) / static_cast<double>(lengths_all_.size());
}

double SessionAnalyzer::top_sessions_op_share(double top) const {
  if (ops_active_.empty() || top <= 0 || top > 1) return 0.0;
  std::vector<double> ops = ops_active_;
  std::sort(ops.begin(), ops.end());
  const double total = std::accumulate(ops.begin(), ops.end(), 0.0);
  if (total <= 0) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      static_cast<double>(ops.size()) * (1.0 - top));
  double top_sum = 0;
  for (std::size_t i = k; i < ops.size(); ++i) top_sum += ops[i];
  return top_sum / total;
}

}  // namespace u1
