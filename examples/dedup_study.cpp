// Dedup study (paper §5.3 + §9): how much storage and wire traffic does
// file-based cross-user deduplication actually save, and how is the
// saving distributed over content popularity? Sweeps the content
// duplication level and compares dedup-on vs dedup-off back-ends.
#include <algorithm>
#include <cstdio>

#include "analysis/dedup.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

namespace {

struct Outcome {
  double dedup_ratio;
  double s3_bytes;
  double bill;
  double unique_fraction;
  double max_copies;
};

Outcome run(double duplicate_prob, bool enable_dedup) {
  using namespace u1;
  SimulationConfig cfg;
  cfg.users = 2000;
  cfg.days = 10;
  cfg.enable_ddos = false;
  cfg.content_duplicate_prob = duplicate_prob;
  cfg.backend.enable_dedup = enable_dedup;
  DedupAnalyzer analyzer;
  Simulation sim(cfg, analyzer);
  sim.run();
  const auto copies = analyzer.copies_per_hash();
  const double max_copies =
      copies.empty() ? 0 : *std::max_element(copies.begin(), copies.end());
  return Outcome{analyzer.dedup_ratio(),
                 static_cast<double>(sim.backend().s3().stored_bytes()),
                 sim.backend().s3().monthly_bill_usd(),
                 analyzer.unique_fraction(), max_copies};
}

}  // namespace

int main() {
  using namespace u1;
  std::printf("=== content duplication sweep (dedup enabled) ===\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "p(dup)", "dedup ratio",
              "unique frac", "max copies", "S3 stored");
  for (const double p : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    const Outcome o = run(p, true);
    std::printf("%-10.2f %12.3f %12.3f %12.0f %12s\n", p, o.dedup_ratio,
                o.unique_fraction, o.max_copies,
                format_bytes(o.s3_bytes).c_str());
  }
  std::printf("\npaper anchor: measured dr = 0.171 with ~80%% of hashes "
              "unique and a long\nduplicates tail (popular songs).\n");

  std::printf("\n=== dedup on vs off at the calibrated duplication level "
              "===\n");
  const Outcome on = run(0.2, true);
  const Outcome off = run(0.2, false);
  std::printf("S3 storage:   on=%s  off=%s  (saving %.1f%%)\n",
              format_bytes(on.s3_bytes).c_str(),
              format_bytes(off.s3_bytes).c_str(),
              100.0 * (1.0 - on.s3_bytes / off.s3_bytes));
  std::printf("monthly bill: on=$%.2f  off=$%.2f\n", on.bill, off.bill);
  std::printf("\npaper: 'a simple optimization like file-based "
              "deduplication could readily\nsave 17%% of the storage "
              "costs' — scaled to U1's ~$20k/month bill, that is\n"
              "~$3.4k/month.\n");
  return 0;
}
