// Strongly-typed identifiers for the protocol entities of §3.1.1. A UserId
// can never be passed where a SessionId is expected; the compiler enforces
// the data model. Node and content identifiers are UUIDs / SHA-1 digests,
// as in the real U1 back-end.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "util/sha1.hpp"
#include "util/uuid.hpp"

namespace u1 {

/// CRTP-free strong integer id: Tag makes each instantiation a distinct
/// type; value 0 is reserved as "invalid".
template <typename Tag>
struct StrongId {
  std::uint64_t value = 0;

  constexpr bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const StrongId&) const = default;
};

using UserId = StrongId<struct UserIdTag>;
using SessionId = StrongId<struct SessionIdTag>;
using MachineId = StrongId<struct MachineIdTag>;
using ProcessId = StrongId<struct ProcessIdTag>;
using ShardId = StrongId<struct ShardIdTag>;

/// Files and directories are "nodes" (paper §3.1.1); ids are back-end
/// generated UUIDs.
using NodeId = Uuid;
/// Containers of nodes: root, user-defined (UDF), or shared.
using VolumeId = Uuid;
/// File contents are content-addressed by their SHA-1 (deduplication key).
using ContentId = Sha1Digest;
/// Server-side multipart upload state (appendix A).
using UploadJobId = Uuid;
/// OAuth token handle.
using TokenId = Uuid;

}  // namespace u1

template <typename Tag>
struct std::hash<u1::StrongId<Tag>> {
  std::size_t operator()(const u1::StrongId<Tag>& id) const noexcept {
    // Mix so that sequential ids spread across shard buckets.
    std::uint64_t x = id.value;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
