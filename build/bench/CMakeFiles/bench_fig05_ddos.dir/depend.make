# Empty dependencies file for bench_fig05_ddos.
# This may be replaced when dependencies are built.
