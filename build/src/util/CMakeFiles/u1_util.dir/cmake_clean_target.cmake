file(REMOVE_RECURSE
  "libu1_util.a"
)
