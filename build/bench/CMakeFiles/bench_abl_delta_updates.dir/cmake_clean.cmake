file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_delta_updates.dir/bench_abl_delta_updates.cpp.o"
  "CMakeFiles/bench_abl_delta_updates.dir/bench_abl_delta_updates.cpp.o.d"
  "bench_abl_delta_updates"
  "bench_abl_delta_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_delta_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
