#include "proto/operations.hpp"

#include <gtest/gtest.h>

#include "proto/ids.hpp"

#include <set>

namespace u1 {
namespace {

TEST(ApiOp, RoundTripStrings) {
  for (const ApiOp op : all_api_ops()) {
    const auto back = api_op_from_string(to_string(op));
    ASSERT_TRUE(back.has_value()) << to_string(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(ApiOp, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const ApiOp op : all_api_ops()) names.insert(to_string(op));
  EXPECT_EQ(names.size(), kApiOpCount);
}

TEST(ApiOp, UnknownNameRejected) {
  EXPECT_FALSE(api_op_from_string("NotAnOp").has_value());
  EXPECT_FALSE(api_op_from_string("").has_value());
}

TEST(ApiOp, DataOpClassification) {
  EXPECT_TRUE(is_data_op(ApiOp::kPutContent));
  EXPECT_TRUE(is_data_op(ApiOp::kGetContent));
  EXPECT_FALSE(is_data_op(ApiOp::kUnlink));
  EXPECT_FALSE(is_data_op(ApiOp::kListVolumes));
}

TEST(ApiOp, StorageOpMatchesPaperActiveDefinition) {
  // Active users "perform data management operations on volumes, such as
  // uploading a file or creating a new directory" (§6.1).
  EXPECT_TRUE(is_storage_op(ApiOp::kPutContent));
  EXPECT_TRUE(is_storage_op(ApiOp::kMake));
  EXPECT_TRUE(is_storage_op(ApiOp::kUnlink));
  EXPECT_TRUE(is_storage_op(ApiOp::kDeleteVolume));
  EXPECT_FALSE(is_storage_op(ApiOp::kListVolumes));
  EXPECT_FALSE(is_storage_op(ApiOp::kOpenSession));
  EXPECT_FALSE(is_storage_op(ApiOp::kGetDelta));
  EXPECT_FALSE(is_storage_op(ApiOp::kAuthenticate));
}

TEST(RpcOp, RoundTripStrings) {
  for (const RpcOp op : all_rpc_ops()) {
    const auto back = rpc_op_from_string(to_string(op));
    ASSERT_TRUE(back.has_value()) << to_string(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(RpcOp, NamesCarryDalPrefix) {
  for (const RpcOp op : all_rpc_ops()) {
    const std::string_view name = to_string(op);
    EXPECT_TRUE(name.starts_with("dal.") || name.starts_with("auth."))
        << name;
  }
}

TEST(RpcOp, PaperCascadeOps) {
  // "cascade operations (delete_volume and get_from_scratch) are the
  // slowest type of RPC" (Fig. 13).
  EXPECT_EQ(rpc_class(RpcOp::kDeleteVolume), RpcClass::kCascade);
  EXPECT_EQ(rpc_class(RpcOp::kGetFromScratch), RpcClass::kCascade);
}

TEST(RpcOp, ReadOpsClassified) {
  EXPECT_EQ(rpc_class(RpcOp::kListVolumes), RpcClass::kRead);
  EXPECT_EQ(rpc_class(RpcOp::kGetNode), RpcClass::kRead);
  EXPECT_EQ(rpc_class(RpcOp::kGetUserIdFromToken), RpcClass::kRead);
  EXPECT_EQ(rpc_class(RpcOp::kGetReusableContent), RpcClass::kRead);
}

TEST(RpcOp, WriteOpsClassified) {
  EXPECT_EQ(rpc_class(RpcOp::kMakeFile), RpcClass::kWrite);
  EXPECT_EQ(rpc_class(RpcOp::kMakeContent), RpcClass::kWrite);
  EXPECT_EQ(rpc_class(RpcOp::kUnlinkNode), RpcClass::kWrite);
  EXPECT_EQ(rpc_class(RpcOp::kTouchUploadJob), RpcClass::kWrite);
}

TEST(RpcOp, ExactlyTwoCascades) {
  int cascades = 0;
  for (const RpcOp op : all_rpc_ops())
    if (rpc_class(op) == RpcClass::kCascade) ++cascades;
  EXPECT_EQ(cascades, 2);
}

TEST(RpcClass, Names) {
  EXPECT_EQ(to_string(RpcClass::kRead), "read");
  EXPECT_EQ(to_string(RpcClass::kWrite), "write");
  EXPECT_EQ(to_string(RpcClass::kCascade), "cascade");
}

TEST(StrongId, DistinctTypesAndValidity) {
  UserId u{5};
  SessionId s{5};
  EXPECT_TRUE(u.valid());
  EXPECT_FALSE(UserId{}.valid());
  // UserId and SessionId are different types; equality only within type.
  EXPECT_EQ(u, (UserId{5}));
  EXPECT_NE(u, (UserId{6}));
  EXPECT_LT((UserId{1}), (UserId{2}));
  (void)s;
}

TEST(StrongId, HashSpreads) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 1; i <= 1000; ++i)
    hashes.insert(std::hash<UserId>{}(UserId{i}));
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace u1
