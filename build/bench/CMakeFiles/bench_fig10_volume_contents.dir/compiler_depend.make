# Empty compiler generated dependencies file for bench_fig10_volume_contents.
# This may be replaced when dependencies are built.
