#include "analysis/traffic.hpp"

#include <algorithm>
#include <array>

namespace u1 {
namespace {

constexpr double MB = 1024.0 * 1024.0;

std::vector<double> paper_size_edges() {
  // The Fig. 2(b) category bounds, in bytes.
  return {0.5 * MB, 1.0 * MB, 5.0 * MB, 25.0 * MB};
}

}  // namespace

TrafficAnalyzer::TrafficAnalyzer(SimTime start, SimTime end)
    : start_(start),
      end_(end),
      up_bytes_(start, end, kHour),
      down_bytes_(start, end, kHour),
      up_ops_hist_(paper_size_edges()),
      down_ops_hist_(paper_size_edges()),
      up_bytes_hist_(paper_size_edges()),
      down_bytes_hist_(paper_size_edges()) {}

void TrafficAnalyzer::append(const TraceRecord& r) {
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
  if (r.api_op == ApiOp::kPutContent) {
    ++upload_ops_;
    upload_bytes_total_ += r.size_bytes;
    upload_wire_bytes_ += r.transferred_bytes;
    up_bytes_.add(r.t, static_cast<double>(r.transferred_bytes));
    const double size = static_cast<double>(r.size_bytes);
    up_ops_hist_.add(size, 1.0);
    up_bytes_hist_.add(size, static_cast<double>(r.transferred_bytes));
    if (r.is_update) {
      ++update_ops_;
      update_wire_bytes_ += r.transferred_bytes;
    }
  } else if (r.api_op == ApiOp::kGetContent) {
    ++download_ops_;
    download_bytes_total_ += r.transferred_bytes;
    down_bytes_.add(r.t, static_cast<double>(r.transferred_bytes));
    const double size = static_cast<double>(r.size_bytes);
    down_ops_hist_.add(size, 1.0);
    down_bytes_hist_.add(size, static_cast<double>(r.transferred_bytes));
  }
}

class TrafficAnalyzer::Shard final : public AnalyzerShard {
 public:
  Shard(SimTime start, SimTime end) : analyzer(start, end) {}

  void consume(const TraceRecord* records, std::size_t count) override {
    analyzer.append_batch(records, count);
  }

  TrafficAnalyzer analyzer;
};

std::unique_ptr<AnalyzerShard> TrafficAnalyzer::make_shard() {
  return std::make_unique<Shard>(start_, end_);
}

void TrafficAnalyzer::merge_shard(AnalyzerShard& shard) {
  absorb(dynamic_cast<Shard&>(shard).analyzer);
}

void TrafficAnalyzer::absorb(const TrafficAnalyzer& other) {
  up_bytes_.merge(other.up_bytes_);
  down_bytes_.merge(other.down_bytes_);
  up_ops_hist_.merge(other.up_ops_hist_);
  down_ops_hist_.merge(other.down_ops_hist_);
  up_bytes_hist_.merge(other.up_bytes_hist_);
  down_bytes_hist_.merge(other.down_bytes_hist_);
  upload_ops_ += other.upload_ops_;
  download_ops_ += other.download_ops_;
  upload_bytes_total_ += other.upload_bytes_total_;
  download_bytes_total_ += other.download_bytes_total_;
  update_ops_ += other.update_ops_;
  update_wire_bytes_ += other.update_wire_bytes_;
  upload_wire_bytes_ += other.upload_wire_bytes_;
}

double TrafficAnalyzer::diurnal_swing() const {
  // Average upload volume per hour-of-day across the window, then compare
  // the busiest against the quietest hour.
  std::array<double, 24> by_hour{};
  std::array<int, 24> days{};
  for (std::size_t i = 0; i < up_bytes_.bins(); ++i) {
    const int h = hour_of_day(up_bytes_.bin_start(i));
    by_hour[static_cast<std::size_t>(h)] += up_bytes_.value(i);
    days[static_cast<std::size_t>(h)]++;
  }
  double lo = 0, hi = 0;
  bool first = true;
  for (int h = 0; h < 24; ++h) {
    if (days[static_cast<std::size_t>(h)] == 0) continue;
    const double v = by_hour[static_cast<std::size_t>(h)] /
                     days[static_cast<std::size_t>(h)];
    if (first) {
      lo = hi = v;
      first = false;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return lo > 0 ? hi / lo : 0.0;
}

std::vector<double> TrafficAnalyzer::rw_ratios_hourly() const {
  std::vector<double> out;
  for (std::size_t i = 0; i < up_bytes_.bins(); ++i) {
    const double up = up_bytes_.value(i);
    const double down = down_bytes_.value(i);
    if (up > 0) out.push_back(down / up);
  }
  return out;
}

BoxplotStats TrafficAnalyzer::rw_boxplot() const {
  return boxplot(rw_ratios_hourly());
}

AcfResult TrafficAnalyzer::rw_acf(std::size_t max_lag) const {
  // ACF over the full hourly series (zero-upload hours contribute ratio 0
  // so the series stays equally spaced, as required for an ACF). At
  // simulation scales the hourly ratio has heavy-tailed outliers (one
  // huge transfer swings an hour by 100x), so the series is winsorized at
  // the 90th percentile before the ACF — a robustness step the original
  // 1.29M-user trace did not need.
  std::vector<double> series;
  series.reserve(up_bytes_.bins());
  for (std::size_t i = 0; i < up_bytes_.bins(); ++i) {
    const double up = up_bytes_.value(i);
    series.push_back(up > 0 ? down_bytes_.value(i) / up : 0.0);
  }
  std::vector<double> sorted = series;
  std::sort(sorted.begin(), sorted.end());
  const double cap = sorted[static_cast<std::size_t>(
      0.90 * static_cast<double>(sorted.size() - 1))];
  for (double& v : series) v = std::min(v, cap);
  max_lag = std::min(max_lag, series.size() > 1 ? series.size() - 1 : 1);
  return autocorrelation(series, max_lag);
}

double TrafficAnalyzer::update_op_fraction() const {
  return upload_ops_ > 0
             ? static_cast<double>(update_ops_) /
                   static_cast<double>(upload_ops_)
             : 0.0;
}

double TrafficAnalyzer::update_traffic_fraction() const {
  return upload_wire_bytes_ > 0
             ? static_cast<double>(update_wire_bytes_) /
                   static_cast<double>(upload_wire_bytes_)
             : 0.0;
}

}  // namespace u1
