// RabbitMQ substitute (§3.4.2): U1 API servers publish change events to a
// queue; every *other* subscribed API server consumes them and pushes
// notifications to its connected clients over their persistent TCP
// connections. When both affected clients hang off the same API process
// the event short-circuits and never reaches the queue (paper footnote 4)
// — the publish() contract below encodes exactly that.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "proto/ids.hpp"
#include "util/sim_time.hpp"

namespace u1 {

/// A change event fanned out between API servers.
struct VolumeEvent {
  enum class Kind : std::uint8_t {
    kNodeCreated,
    kNodeUpdated,
    kNodeDeleted,
    kVolumeDeleted,
    kShareGranted,
  };
  Kind kind = Kind::kNodeUpdated;
  UserId affected_user;     // whose replica must react
  VolumeId volume;
  NodeId node;              // nil for volume-level events
  ProcessId origin_process; // API process that performed the change
  SimTime at = 0;
};

/// Subscriber callback: invoked once per delivered event.
using EventHandler = std::function<void(const VolumeEvent&)>;

class MessageQueue {
 public:
  /// Subscribes an API process; returns a subscription handle.
  std::size_t subscribe(ProcessId process, EventHandler handler);
  void unsubscribe(std::size_t handle);

  /// Fan-out to every subscriber except the origin process (which already
  /// notified its local clients directly). Returns the number of
  /// deliveries performed.
  std::size_t publish(const VolumeEvent& event);

  std::uint64_t published() const noexcept { return published_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::size_t subscriber_count() const noexcept;

 private:
  struct Subscriber {
    std::size_t handle = 0;
    ProcessId process;
    EventHandler handler;
    bool active = false;
  };
  std::vector<Subscriber> subscribers_;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::size_t next_handle_ = 1;
};

}  // namespace u1
