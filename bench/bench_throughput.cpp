// Shard-parallel engine throughput + determinism oracle.
//
// Runs the same (users, days, seed) simulation under the parallel engine
// at 1, 2, 4 and 8 worker threads, hashing every emitted trace record in
// stream order. The 1-thread run executes the identical epoch/merge
// machinery inline and is the correctness oracle: all four SHA-1s must
// match, byte for byte, or the engine is broken. Wall-clock and
// records/sec per thread count are written to BENCH_throughput.json at
// the repo root (honest numbers: the file records the machine's hardware
// concurrency — speedups are bounded by the cores actually present).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "sim/parallel.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace {

struct RunResult {
  std::size_t threads = 0;
  double wall_seconds = 0;
  std::uint64_t records = 0;
  std::string trace_sha1;
  u1::SimulationReport report;
};

RunResult run_once(const u1::SimulationConfig& cfg, std::size_t threads) {
  u1::Sha1 hasher;
  std::uint64_t records = 0;
  u1::CallbackSink sink([&](const u1::TraceRecord& r) {
    ++records;
    for (const std::string& field : r.to_csv()) {
      hasher.update(field);
      hasher.update(",");
    }
    hasher.update("\n");
  });

  RunResult out;
  out.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  u1::ParallelSimulation sim(cfg, sink, threads);
  out.report = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.records = records;
  out.trace_sha1 = hasher.finish().hex();
  return out;
}

}  // namespace

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  const unsigned hw = std::thread::hardware_concurrency();

  header("Throughput", "Deterministic shard-parallel engine scaling");
  std::printf("  users=%zu days=%d seed=%llu hardware_concurrency=%u\n",
              cfg.users, cfg.days,
              static_cast<unsigned long long>(cfg.seed), hw);

  std::vector<RunResult> runs;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    runs.push_back(run_once(cfg, threads));
    const RunResult& r = runs.back();
    std::printf("  threads=%zu  wall=%8.2fs  records=%llu  rec/s=%10.0f  "
                "sha1=%s\n",
                r.threads, r.wall_seconds,
                static_cast<unsigned long long>(r.records),
                static_cast<double>(r.records) / r.wall_seconds,
                r.trace_sha1.c_str());
  }

  bool identical = true;
  for (const RunResult& r : runs) {
    if (r.trace_sha1 != runs.front().trace_sha1 ||
        r.records != runs.front().records)
      identical = false;
  }
  std::printf("  trace byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

#ifdef U1SIM_REPO_ROOT
  const std::string path = std::string(U1SIM_REPO_ROOT) +
                           "/BENCH_throughput.json";
#else
  const std::string path = "BENCH_throughput.json";
#endif
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"shard_parallel_throughput\",\n");
    std::fprintf(f, "  \"users\": %zu,\n", cfg.users);
    std::fprintf(f, "  \"days\": %d,\n", cfg.days);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"trace_byte_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"wall_seconds\": %.3f, "
                   "\"records\": %llu, \"records_per_sec\": %.0f, "
                   "\"speedup_vs_1t\": %.3f, \"trace_sha1\": \"%s\"}%s\n",
                   r.threads, r.wall_seconds,
                   static_cast<unsigned long long>(r.records),
                   static_cast<double>(r.records) / r.wall_seconds,
                   runs.front().wall_seconds / r.wall_seconds,
                   r.trace_sha1.c_str(),
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", path.c_str());
  } else {
    std::printf("  could not open %s for writing\n", path.c_str());
  }
  return identical ? 0 : 1;
}
