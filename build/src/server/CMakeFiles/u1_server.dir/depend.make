# Empty dependencies file for u1_server.
# This may be replaced when dependencies are built.
