// Quickstart: a 60-second tour of the u1sim public API.
//
//  1. Stand up the simulated U1 back-end (Fig. 1 of the paper).
//  2. Act as a desktop client: authenticate, create files, upload,
//     download, watch dedup do its thing.
//  3. Run a small population simulation and analyze its trace.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "analysis/trace_summary.hpp"
#include "server/backend.hpp"
#include "sim/simulation.hpp"
#include "util/sha1.hpp"
#include "util/strings.hpp"

int main() {
  using namespace u1;

  std::printf("== 1. One client against the simulated U1 back-end ==\n");
  BackendConfig config;
  config.auth_failure_rate = 0.0;  // keep the demo deterministic
  InMemorySink trace;
  U1Backend backend(config, trace);

  // Provision a user; the store creates the account and its root volume.
  const UserAccount alice = backend.register_user(UserId{1}, 0);

  // Authenticate and open a session (the paper's Table 2 flow).
  const auto session = backend.connect(UserId{1}, kMinute);
  std::printf("connected: session=%llu after %s\n",
              static_cast<unsigned long long>(session.session.value),
              format_duration(session.end - kMinute).c_str());

  // "touch" + upload a song (Make precedes PutContent).
  const auto make = backend.make_file(session.session, alice.root_volume,
                                      alice.root_dir, "a1b2c3d4", "mp3",
                                      session.end);
  const ContentId song = Sha1::of("99 red balloons");
  const auto upload = backend.upload(session.session, make.node, song,
                                     4 << 20, /*is_update=*/false, make.end);
  std::printf("uploaded 4MB in %s (dedup=%s)\n",
              format_duration(upload.end - make.end).c_str(),
              upload.deduplicated() ? "yes" : "no");

  // A second copy of the same song: file-based cross-user dedup kicks in.
  const auto make2 = backend.make_file(session.session, alice.root_volume,
                                       alice.root_dir, "e5f6a7b8", "mp3",
                                       upload.end);
  const auto dup = backend.upload(session.session, make2.node, song, 4 << 20,
                                  false, make2.end);
  std::printf("second copy transferred %llu bytes (dedup=%s) in %s\n",
              static_cast<unsigned long long>(dup.transferred_bytes),
              dup.deduplicated() ? "yes" : "no",
              format_duration(dup.end - make2.end).c_str());

  const auto download =
      backend.download(session.session, make.node, dup.end + kMinute);
  std::printf("downloaded it back: %s in %s\n",
              format_bytes(static_cast<double>(download.transferred_bytes))
                  .c_str(),
              format_duration(download.end - dup.end - kMinute).c_str());
  backend.disconnect(session.session, download.end);
  std::printf("back-end emitted %zu trace records; S3 now stores %s\n\n",
              trace.records().size(),
              format_bytes(static_cast<double>(
                  backend.s3().stored_bytes())).c_str());

  std::printf("== 2. A two-day, 500-user simulation ==\n");
  SimulationConfig sim_cfg;
  sim_cfg.users = 500;
  sim_cfg.days = 2;
  sim_cfg.enable_ddos = false;
  TraceSummaryAnalyzer summary(sim_cfg.days * kDay);
  Simulation sim(sim_cfg, summary);
  const SimulationReport report = sim.run();

  const auto s = summary.summary();
  std::printf("simulated %zu users: %llu sessions, %llu transfer ops, "
              "up=%s down=%s\n",
              report.users,
              static_cast<unsigned long long>(s.sessions),
              static_cast<unsigned long long>(s.transfer_ops),
              format_bytes(static_cast<double>(s.upload_bytes)).c_str(),
              format_bytes(static_cast<double>(s.download_bytes)).c_str());
  std::printf("back-end dedup ratio so far: %.3f (paper: 0.171)\n",
              sim.backend().store().contents().dedup_ratio());
  std::printf("\nNext: run the figure benches in build/bench/ to reproduce "
              "the paper's evaluation.\n");
  return 0;
}
