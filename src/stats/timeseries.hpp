// Time-binned accumulation: almost every time-series figure in the paper
// (traffic GB/h, requests/h, users/h, shard load/min) is a reduction of
// timestamped events into fixed-width wall-clock bins.
#pragma once

#include <cstdint>
#include <vector>

#include "util/sim_time.hpp"

namespace u1 {

/// Accumulates (time, weight) samples into fixed-width bins covering
/// [start, end). Bins are created eagerly so that silent hours show up as
/// zeros (important for diurnal plots and ACF computations).
class TimeBinSeries {
 public:
  TimeBinSeries(SimTime start, SimTime end, SimTime bin_width);

  /// Adds weight at time t; out-of-range samples are dropped (counted).
  void add(SimTime t, double weight = 1.0) noexcept;

  /// Element-wise addition of another series over the identical binning
  /// (throws std::invalid_argument otherwise) — merging per-shard series
  /// built from disjoint substreams yields exactly the series of the
  /// combined stream.
  void merge(const TimeBinSeries& other);

  std::size_t bins() const noexcept { return values_.size(); }
  double value(std::size_t i) const;
  SimTime bin_start(std::size_t i) const;
  SimTime bin_width() const noexcept { return width_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  const std::vector<double>& values() const noexcept { return values_; }

  /// Index of the bin containing t, or npos if out of range.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t bin_of(SimTime t) const noexcept;

 private:
  SimTime start_;
  SimTime width_;
  std::vector<double> values_;
  std::uint64_t dropped_ = 0;
};

/// Counts *distinct* entities per time bin (e.g. online users per hour,
/// Fig. 6): an entity id contributes at most once per bin.
class DistinctPerBin {
 public:
  DistinctPerBin(SimTime start, SimTime end, SimTime bin_width);

  void add(SimTime t, std::uint64_t entity_id);
  /// Marks the entity present over the whole closed interval [a, b]
  /// (e.g. a session that spans several hours is online in each of them).
  void add_interval(SimTime a, SimTime b, std::uint64_t entity_id);

  /// Per-bin union with another accumulator over the identical binning
  /// (throws std::invalid_argument otherwise). Exact: distinct counts of
  /// the union of the two entity streams.
  void merge(const DistinctPerBin& other);

  std::size_t bins() const noexcept;
  double count(std::size_t i) const;
  std::vector<double> counts() const;
  SimTime bin_start(std::size_t i) const;

 private:
  SimTime start_;
  SimTime width_;
  // Per bin: last entity recorded (fast path for bursts) + a hash set.
  std::vector<std::vector<std::uint64_t>> seen_;  // sorted on demand
  mutable std::vector<bool> dirty_;
  void dedup(std::size_t i) const;
};

}  // namespace u1
