// Fault injection + recovery acceptance bench, in two modes.
//
// Legacy mode (no --scenario): runs the standard fault plan (one auth
// brownout, process crash, S3 brownout, shard failover, MQ drop storm
// and machine outage inside one week) against a 2,000-user population
// under the shard-parallel engine at 1, 2, 4 and 8 worker threads. The
// 1-thread run is the determinism oracle: the merged trace must stay
// byte-identical with faults ON at every thread count. The trace is
// simultaneously fed to the FaultRecoveryAnalyzer, and the availability
// / retry-amplification / time-to-recover picture is written to
// BENCH_fault.json at the repo root.
//
// Chaos mode (--scenario <name>|all): replays canned incident scenarios
// (cascading fault DAGs from src/fault/scenarios.cpp) at the reference
// scale (1,000 users x 3 days), asserts the merged trace is
// byte-identical across thread counts, and enforces each scenario's
// expected-impact band: minimum availability, maximum retry
// amplification, maximum per-window time-to-recover. Any band violation
// exits nonzero — this is the chaos-CI gate. The fault seed is
// randomized (and logged) unless pinned with --fault-seed, so CI walks
// the seed space over time while every failure stays reproducible.
//
//   bench_fault_recovery [--scenario <name>|all] [--fault-seed S]
//                        [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/fault_recovery.hpp"
#include "bench/bench_util.hpp"
#include "fault/scenarios.hpp"
#include "sim/parallel.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace {

struct RunResult {
  std::size_t threads = 0;
  double wall_seconds = 0;
  std::uint64_t records = 0;
  std::string trace_sha1;
  u1::SimulationReport report;
  u1::FaultRecoveryAnalyzer recovery;
};

std::unique_ptr<RunResult> run_once(const u1::SimulationConfig& cfg,
                                    std::size_t threads) {
  auto out = std::make_unique<RunResult>();
  u1::Sha1 hasher;
  u1::CallbackSink sink([&](const u1::TraceRecord& r) {
    ++out->records;
    for (const std::string& field : r.to_csv()) {
      hasher.update(field);
      hasher.update(",");
    }
    hasher.update("\n");
    out->recovery.append(r);
  });

  out->threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  u1::ParallelSimulation sim(cfg, sink, threads);
  out->report = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  out->wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out->trace_sha1 = hasher.finish().hex();
  return out;
}

/// One scenario's verdict: measured metrics plus every band violation,
/// phrased the way the CI log should show it.
struct ScenarioVerdict {
  std::string name;
  std::string trace_sha1;
  bool identical = true;
  double availability = 0;
  double retry_amplification = 0;
  double worst_ttr_s = 0;  // -1 when some window never recovered
  std::uint64_t fault_edges = 0;
  std::uint64_t sessions_dropped = 0;
  std::uint64_t shed_connects = 0;
  std::vector<std::string> violations;
  std::vector<u1::FaultWindowStats> windows;
  std::vector<std::unique_ptr<RunResult>> runs;
};

ScenarioVerdict run_scenario(const u1::IncidentScenario& sc,
                             std::uint64_t fault_seed) {
  using namespace u1;
  using namespace u1::bench;
  ScenarioVerdict v;
  v.name = std::string(sc.name);

  auto cfg = standard_config(env_users(1000), env_days(3));
  apply_incident_scenario(cfg, sc);
  cfg.fault_seed = fault_seed;

  std::printf("\n--- scenario %s — %s\n", v.name.c_str(),
              std::string(sc.title).c_str());
  std::printf("  %s\n", std::string(sc.narrative).c_str());
  std::printf("  users=%zu days=%d seed=%llu fault_seed=%llu specs=%zu "
              "slow_start=%.0fs cap=%llu\n",
              cfg.users, cfg.days,
              static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(fault_seed),
              cfg.faults.specs.size(), to_seconds(sc.slow_start),
              static_cast<unsigned long long>(sc.session_cap));

  for (const std::size_t threads : {1, 4}) {
    v.runs.push_back(run_once(cfg, threads));
    const RunResult& r = *v.runs.back();
    std::printf("  threads=%zu  wall=%8.2fs  records=%llu  sha1=%s\n",
                r.threads, r.wall_seconds,
                static_cast<unsigned long long>(r.records),
                r.trace_sha1.c_str());
  }
  for (const auto& r : v.runs)
    if (r->trace_sha1 != v.runs.front()->trace_sha1) v.identical = false;
  v.trace_sha1 = v.runs.front()->trace_sha1;
  if (!v.identical)
    v.violations.push_back("trace SHA-1 differs across thread counts");

  const FaultRecoveryAnalyzer& fr = v.runs.front()->recovery;
  v.availability = fr.availability();
  v.retry_amplification = fr.retry_amplification();
  v.fault_edges = fr.fault_edges();
  v.sessions_dropped = fr.sessions_dropped();
  v.shed_connects = fr.shed_connects();
  v.windows = fr.windows();
  for (const FaultWindowStats& w : v.windows) {
    const double ttr =
        w.time_to_recover < 0 ? -1.0 : to_seconds(w.time_to_recover);
    if (ttr < 0) {
      v.worst_ttr_s = -1.0;
    } else if (v.worst_ttr_s >= 0 && ttr > v.worst_ttr_s) {
      v.worst_ttr_s = ttr;
    }
  }

  char buf[160];
  const ScenarioBand& band = sc.band;
  if (v.availability < band.min_availability) {
    std::snprintf(buf, sizeof buf, "availability %.4f < band min %.4f",
                  v.availability, band.min_availability);
    v.violations.push_back(buf);
  }
  if (v.retry_amplification > band.max_retry_amplification) {
    std::snprintf(buf, sizeof buf,
                  "retry_amplification %.3f > band max %.3f",
                  v.retry_amplification, band.max_retry_amplification);
    v.violations.push_back(buf);
  }
  for (const FaultWindowStats& w : v.windows) {
    const double ttr =
        w.time_to_recover < 0 ? -1.0 : to_seconds(w.time_to_recover);
    if (ttr < 0) {
      std::snprintf(buf, sizeof buf, "window %s never recovered",
                    w.label.c_str());
      v.violations.push_back(buf);
    } else if (ttr > band.max_time_to_recover_s) {
      std::snprintf(buf, sizeof buf,
                    "window %s time-to-recover %.1fs > band max %.1fs",
                    w.label.c_str(), ttr, band.max_time_to_recover_s);
      v.violations.push_back(buf);
    }
  }

  std::printf("  fault edges applied: %llu\n",
              static_cast<unsigned long long>(v.fault_edges));
  std::printf("  availability=%.4f (band >= %.4f)  "
              "retry_amplification=%.3f (band <= %.3f)\n",
              v.availability, band.min_availability, v.retry_amplification,
              band.max_retry_amplification);
  for (const FaultWindowStats& w : v.windows)
    std::printf("  %-26s begin=%8.0fs dur=%6.0fs failed_ops=%6llu "
                "recover=%+.1fs\n",
                w.label.c_str(), to_seconds(w.begin),
                to_seconds(w.end - w.begin),
                static_cast<unsigned long long>(w.failed_ops_during),
                w.time_to_recover < 0 ? -1.0 : to_seconds(w.time_to_recover));
  if (v.violations.empty()) {
    std::printf("  band: PASS\n");
  } else {
    for (const std::string& viol : v.violations)
      std::printf("  band: FAIL — %s\n", viol.c_str());
  }
  return v;
}

void write_windows(FILE* f, const std::vector<u1::FaultWindowStats>& windows,
                   const char* indent) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const u1::FaultWindowStats& w = windows[i];
    std::fprintf(f,
                 "%s{\"label\": \"%s\", \"begin_s\": %.0f, "
                 "\"duration_s\": %.0f, \"failed_ops\": %llu, "
                 "\"time_to_recover_s\": %.3f}%s\n",
                 indent, w.label.c_str(), u1::to_seconds(w.begin),
                 u1::to_seconds(w.end - w.begin),
                 static_cast<unsigned long long>(w.failed_ops_during),
                 w.time_to_recover < 0 ? -1.0
                                       : u1::to_seconds(w.time_to_recover),
                 i + 1 < windows.size() ? "," : "");
  }
}

void write_runs(FILE* f,
                const std::vector<std::unique_ptr<RunResult>>& runs,
                const char* indent) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& rr = *runs[i];
    std::fprintf(f,
                 "%s{\"threads\": %zu, \"wall_seconds\": %.3f, "
                 "\"records\": %llu, \"trace_sha1\": \"%s\"}%s\n",
                 indent, rr.threads, rr.wall_seconds,
                 static_cast<unsigned long long>(rr.records),
                 rr.trace_sha1.c_str(), i + 1 < runs.size() ? "," : "");
  }
}

std::string default_out_path() {
#ifdef U1SIM_REPO_ROOT
  return std::string(U1SIM_REPO_ROOT) + "/BENCH_fault.json";
#else
  return "BENCH_fault.json";
#endif
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario NAME|all] [--fault-seed S] "
               "[--out PATH]\n",
               argv0);
  return 2;
}

int run_chaos_mode(const std::string& which, std::uint64_t fault_seed,
                   bool seed_pinned, const std::string& out_path) {
  using namespace u1;
  using namespace u1::bench;

  header("Chaos CI", "Canned incident scenarios vs expected-impact bands");
  std::printf("  fault_seed=%llu (%s)\n",
              static_cast<unsigned long long>(fault_seed),
              seed_pinned ? "pinned via --fault-seed"
                          : "randomized — rerun with --fault-seed to "
                            "reproduce");

  std::vector<const IncidentScenario*> selected;
  if (which == "all") {
    for (const IncidentScenario& sc : incident_scenarios())
      selected.push_back(&sc);
  } else {
    const IncidentScenario* sc = find_incident_scenario(which);
    if (sc == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s' (known:", which.c_str());
      for (const IncidentScenario& s : incident_scenarios())
        std::fprintf(stderr, " %s", std::string(s.name).c_str());
      std::fprintf(stderr, " all)\n");
      return 2;
    }
    selected.push_back(sc);
  }

  std::vector<ScenarioVerdict> verdicts;
  for (const IncidentScenario* sc : selected)
    verdicts.push_back(run_scenario(*sc, fault_seed));

  bool all_pass = true;
  std::printf("\n  %-28s %-12s %-6s\n", "scenario", "trace", "band");
  for (const ScenarioVerdict& v : verdicts) {
    if (!v.violations.empty()) all_pass = false;
    std::printf("  %-28s %-12s %s\n", v.name.c_str(),
                v.identical ? "identical" : "DIVERGED",
                v.violations.empty() ? "PASS" : "FAIL");
  }

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault_recovery_chaos\",\n");
    std::fprintf(f, "  \"fault_seed\": %llu,\n",
                 static_cast<unsigned long long>(fault_seed));
    std::fprintf(f, "  \"fault_seed_pinned\": %s,\n",
                 seed_pinned ? "true" : "false");
    std::fprintf(f, "  \"all_bands_pass\": %s,\n",
                 all_pass ? "true" : "false");
    std::fprintf(f, "  \"peak_rss_kb\": %llu,\n",
                 static_cast<unsigned long long>(u1::bench::peak_rss_kb()));
    std::fprintf(f, "  \"heap_in_use_kb\": %llu,\n",
                 static_cast<unsigned long long>(u1::bench::heap_in_use_kb()));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const ScenarioVerdict& v = verdicts[i];
      const IncidentScenario* sc = find_incident_scenario(v.name);
      std::fprintf(f, "    {\n");
      std::fprintf(f, "      \"name\": \"%s\",\n", v.name.c_str());
      std::fprintf(f, "      \"trace_byte_identical\": %s,\n",
                   v.identical ? "true" : "false");
      std::fprintf(f, "      \"trace_sha1\": \"%s\",\n",
                   v.trace_sha1.c_str());
      std::fprintf(f, "      \"fault_edges\": %llu,\n",
                   static_cast<unsigned long long>(v.fault_edges));
      std::fprintf(f, "      \"availability\": %.6f,\n", v.availability);
      std::fprintf(f, "      \"retry_amplification\": %.4f,\n",
                   v.retry_amplification);
      std::fprintf(f, "      \"worst_time_to_recover_s\": %.3f,\n",
                   v.worst_ttr_s);
      std::fprintf(f, "      \"sessions_dropped\": %llu,\n",
                   static_cast<unsigned long long>(v.sessions_dropped));
      std::fprintf(f, "      \"shed_connects\": %llu,\n",
                   static_cast<unsigned long long>(v.shed_connects));
      std::fprintf(f,
                   "      \"band\": {\"min_availability\": %.4f, "
                   "\"max_retry_amplification\": %.4f, "
                   "\"max_time_to_recover_s\": %.1f},\n",
                   sc->band.min_availability,
                   sc->band.max_retry_amplification,
                   sc->band.max_time_to_recover_s);
      std::fprintf(f, "      \"violations\": [");
      for (std::size_t j = 0; j < v.violations.size(); ++j)
        std::fprintf(f, "%s\"%s\"", j == 0 ? "" : ", ",
                     v.violations[j].c_str());
      std::fprintf(f, "],\n");
      std::fprintf(f, "      \"windows\": [\n");
      write_windows(f, v.windows, "        ");
      std::fprintf(f, "      ],\n");
      std::fprintf(f, "      \"runs\": [\n");
      write_runs(f, v.runs, "        ");
      std::fprintf(f, "      ]\n");
      std::fprintf(f, "    }%s\n", i + 1 < verdicts.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", out_path.c_str());
  } else {
    std::printf("  could not open %s for writing\n", out_path.c_str());
  }

  if (!all_pass)
    std::printf("\n  CHAOS GATE FAILED — reproduce with --fault-seed %llu\n",
                static_cast<unsigned long long>(fault_seed));
  return all_pass ? 0 : 1;
}

int run_legacy_mode(const std::string& out_path) {
  using namespace u1;
  using namespace u1::bench;
  auto cfg = standard_config(env_users(2000), env_days(7));
  if (cfg.faults.empty()) cfg.faults = standard_fault_plan();
  const std::uint64_t fault_seed = effective_fault_seed(cfg);

  header("Fault recovery", "Standard fault plan: availability & recovery");
  std::printf("  users=%zu days=%d seed=%llu fault_seed=%llu "
              "fault_specs=%zu\n",
              cfg.users, cfg.days,
              static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(fault_seed),
              cfg.faults.specs.size());

  std::vector<std::unique_ptr<RunResult>> runs;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    runs.push_back(run_once(cfg, threads));
    const RunResult& r = *runs.back();
    std::printf("  threads=%zu  wall=%8.2fs  records=%llu  sha1=%s\n",
                r.threads, r.wall_seconds,
                static_cast<unsigned long long>(r.records),
                r.trace_sha1.c_str());
  }

  bool identical = true;
  for (const auto& r : runs) {
    if (r->trace_sha1 != runs.front()->trace_sha1 ||
        r->records != runs.front()->records)
      identical = false;
  }
  std::printf("  faulted trace byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  const RunResult& r = *runs.front();  // the 1-thread oracle
  const FaultRecoveryAnalyzer& fr = r.recovery;
  std::printf("  fault edges applied: %llu (scheduled: %llu)\n",
              static_cast<unsigned long long>(fr.fault_edges()),
              static_cast<unsigned long long>(r.report.fault_events));
  std::printf("  availability=%.4f  retry_amplification=%.3f\n",
              fr.availability(), fr.retry_amplification());
  std::printf("  sessions dropped=%llu  load-shed connects=%llu  "
              "interrupted uploads=%llu  resumed=%llu\n",
              static_cast<unsigned long long>(fr.sessions_dropped()),
              static_cast<unsigned long long>(fr.shed_connects()),
              static_cast<unsigned long long>(
                  r.report.backend.interrupted_uploads),
              static_cast<unsigned long long>(
                  r.report.backend.resumed_uploads));
  for (const FaultWindowStats& w : fr.windows()) {
    std::printf("  %-24s begin=%7.0fs dur=%6.0fs failed_ops=%6llu "
                "recover=%+.1fs\n",
                w.label.c_str(), to_seconds(w.begin),
                to_seconds(w.end - w.begin),
                static_cast<unsigned long long>(w.failed_ops_during),
                w.time_to_recover < 0 ? -1.0 : to_seconds(w.time_to_recover));
  }

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault_recovery\",\n");
    std::fprintf(f, "  \"users\": %zu,\n", cfg.users);
    std::fprintf(f, "  \"days\": %d,\n", cfg.days);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(f, "  \"fault_seed\": %llu,\n",
                 static_cast<unsigned long long>(fault_seed));
    std::fprintf(f, "  \"fault_specs\": %zu,\n", cfg.faults.specs.size());
    std::fprintf(f, "  \"trace_byte_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"fault_edges\": %llu,\n",
                 static_cast<unsigned long long>(fr.fault_edges()));
    std::fprintf(f, "  \"availability\": %.6f,\n", fr.availability());
    std::fprintf(f, "  \"retry_amplification\": %.4f,\n",
                 fr.retry_amplification());
    std::fprintf(f, "  \"sessions_dropped\": %llu,\n",
                 static_cast<unsigned long long>(fr.sessions_dropped()));
    std::fprintf(f, "  \"shed_connects\": %llu,\n",
                 static_cast<unsigned long long>(fr.shed_connects()));
    std::fprintf(f, "  \"interrupted_uploads\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.report.backend.interrupted_uploads));
    std::fprintf(f, "  \"resumed_uploads\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.report.backend.resumed_uploads));
    std::fprintf(f, "  \"windows\": [\n");
    write_windows(f, fr.windows(), "    ");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"runs\": [\n");
    write_runs(f, runs, "    ");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", out_path.c_str());
  } else {
    std::printf("  could not open %s for writing\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string out_path = default_out_path();
  std::uint64_t fault_seed = 0;
  bool seed_pinned = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      scenario = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      fault_seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
      seed_pinned = true;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  if (scenario.empty()) return run_legacy_mode(out_path);

  if (!seed_pinned || fault_seed == 0) {
    // Randomized-but-logged: walk the seed space across CI runs while
    // keeping every failure reproducible from the log line.
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    fault_seed =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(now).count()) |
        1;  // fault_seed 0 means "derive from sim seed" — never emit it
  }
  return run_chaos_mode(scenario, fault_seed, seed_pinned, out_path);
}
