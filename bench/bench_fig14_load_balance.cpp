// Fig. 14: load balancing across API servers (per hour) and metadata
// store shards (per minute): mean +/- stddev bars.
#include "analysis/load_balance.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  LoadBalanceAnalyzer load(0, cfg.days * kDay, cfg.backend.fleet.machines,
                           cfg.backend.shards);
  auto sim = run_into(load, cfg);

  header("Fig 14", "Load balancing of API servers and shards");
  std::printf("  API machines, requests/hour (first 48h):\n");
  std::printf("  %-8s %12s %12s %8s\n", "hour", "mean", "stddev", "cv");
  const auto api = load.api_load_hourly();
  for (std::size_t h = 0; h < std::min<std::size_t>(48, api.size()); h += 4) {
    std::printf("  %-8zu %12.1f %12.1f %8.2f\n", h, api[h].mean,
                api[h].stddev,
                api[h].mean > 0 ? api[h].stddev / api[h].mean : 0.0);
  }
  std::printf("\n  metadata shards, requests/minute (first hour):\n");
  std::printf("  %-8s %12s %12s %8s\n", "minute", "mean", "stddev", "cv");
  const auto shards = load.shard_load_minutely();
  for (std::size_t m = 600; m < std::min<std::size_t>(660, shards.size());
       m += 10) {
    std::printf("  %-8zu %12.2f %12.2f %8.2f\n", m, shards[m].mean,
                shards[m].stddev,
                shards[m].mean > 0 ? shards[m].stddev / shards[m].mean
                                   : 0.0);
  }
  std::printf("\n");
  row("short-window API cv (stddev/mean)", 0.35, load.api_short_term_cv());
  row("short-window shard cv", 0.8, load.shard_short_term_cv());
  row("long-term shard cv (paper: 4.9%)", 0.049,
      load.shard_long_term_cv());
  row("long-term API cv", 0.1, load.api_long_term_cv());
  note("paper: load variance across servers is high in short windows "
       "(uneven users, asymmetric op costs, bursty arrivals) but the "
       "balance is adequate in the long term; absolute long-term cv "
       "shrinks with population size");
  return 0;
}
