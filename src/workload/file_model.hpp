// File population model calibrated to §5.3 of the paper:
//  - 90% of files are smaller than 1MB (Fig. 4b inner plot);
//  - per-extension size distributions are very disparate (Fig. 4b):
//    compressed/media files are large, code/doc files are small;
//  - by count, Code is the most numerous category while Audio/Video
//    dominates storage share (Fig. 4c);
//  - the paper classifies the 55 most popular extensions into 7 categories.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace u1 {

enum class FileCategory : std::uint8_t {
  kPics,
  kCode,
  kDocs,
  kAudioVideo,
  kBinary,
  kCompressed,
  kOther,
};
inline constexpr std::size_t kFileCategoryCount = 7;

std::string_view to_string(FileCategory c) noexcept;

/// Category of an extension ("jpg" -> kPics); kOther for unknown ones.
FileCategory category_of(std::string_view extension) noexcept;

/// A sampled file: what a desktop client is about to create/upload.
struct FileSpec {
  std::string extension;       // lowercase, no dot
  FileCategory category = FileCategory::kOther;
  std::uint64_t size_bytes = 0;
  /// Text-like files (code, docs) are edited repeatedly; media files are
  /// written once. Drives WAW behavior and the update share of traffic.
  double update_affinity = 0.0;
};

class FileModel {
 public:
  /// Per-extension calibration entry (public so the catalog can live in a
  /// translation-unit-local table and tests can inspect the scheme).
  struct ExtensionParams {
    std::string_view extension;
    FileCategory category;
    double popularity;       // relative file-count weight (Fig. 4c)
    double median_bytes;     // log-normal body
    double sigma;
    double max_bytes;        // physical cap
    double update_affinity;  // probability weight of WAW behavior
  };

  FileModel();

  /// Draws extension + size from the calibrated per-extension models.
  FileSpec sample(Rng& rng) const;

  /// Draws a new size for an *update* of a file: same extension, size
  /// perturbed a little (metadata edits barely change file size).
  std::uint64_t sample_update_size(const FileSpec& original, Rng& rng) const;

  /// The extensions the model knows (for tests and Fig. 4b).
  std::span<const std::string_view> known_extensions() const noexcept;

 private:
  static std::span<const ExtensionParams> catalog() noexcept;

  WeightedDiscrete popularity_;
};

}  // namespace u1
