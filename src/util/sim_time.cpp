#include "util/sim_time.hpp"

#include <array>
#include <cstdio>

namespace u1 {
namespace {

struct CalendarDate {
  int year;
  int month;  // 1..12
  int day;    // 1..31
};

bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

/// Walk forward from the trace epoch (2014-01-11).
CalendarDate date_of(SimTime t) {
  CalendarDate d{2014, 1, 11};
  int remaining = day_index(t);
  while (remaining > 0) {
    ++d.day;
    if (d.day > days_in_month(d.year, d.month)) {
      d.day = 1;
      ++d.month;
      if (d.month > 12) {
        d.month = 1;
        ++d.year;
      }
    }
    --remaining;
  }
  return d;
}

}  // namespace

std::string trace_date(SimTime t) {
  const CalendarDate d = date_of(t);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d", d.year, d.month, d.day);
  return buf;
}

std::string format_timestamp(SimTime t) {
  const CalendarDate d = date_of(t);
  const SimTime within = t % kDay;
  const int h = static_cast<int>(within / kHour);
  const int m = static_cast<int>((within % kHour) / kMinute);
  const int s = static_cast<int>((within % kMinute) / kSecond);
  const int ms = static_cast<int>((within % kSecond) / kMillisecond);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d", d.year,
                d.month, d.day, h, m, s, ms);
  return buf;
}

std::string format_duration(SimTime t) {
  char buf[32];
  const double s = to_seconds(t);
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  } else if (s < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1fm", s / 60.0);
  } else if (s < 2.0 * 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.1fh", s / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fd", s / 86400.0);
  }
  return buf;
}

}  // namespace u1
