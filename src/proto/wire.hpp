// Shared low-level wire primitives for the length-prefixed binary
// protocol: little-endian fixed-width writers, LEB128 varints, zigzag
// transforms for signed SimTime, and the bounds-checked payload Cursor.
// Both the request/response envelope (envelope.cpp) and the distributed
// control plane (control.cpp) encode with exactly these idioms so a
// frame is a frame regardless of which plane it belongs to.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace u1::wire {

inline void put_le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint16_t get_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Bounds-checked payload reader; `ok` goes false on any overrun and
/// every accessor returns a zero value afterwards.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (ok) {
      if (p == end || shift > 63) {
        ok = false;
        return 0;
      }
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    return 0;
  }

  std::uint8_t u8() {
    if (!ok || p == end) {
      ok = false;
      return 0;
    }
    return *p++;
  }

  const std::uint8_t* take(std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return nullptr;
    }
    const std::uint8_t* r = p;
    p += n;
    return r;
  }
};

inline void put_raw(std::vector<std::uint8_t>& out, const std::uint8_t* p,
                    std::size_t n) {
  out.insert(out.end(), p, p + n);
}

inline void put_short_string(std::vector<std::uint8_t>& out,
                             std::string_view s) {
  out.push_back(static_cast<std::uint8_t>(s.size()));
  put_raw(out, reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

}  // namespace u1::wire
