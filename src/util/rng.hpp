// Deterministic random-number generation and the distributions used by the
// workload models: every stochastic choice in u1sim flows through this file
// so that a (seed, config) pair fully determines a simulation run.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace u1 {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator; used to give each simulated
  /// user / component its own stream so event ordering cannot perturb
  /// another component's randomness.
  Rng fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// ---------------------------------------------------------------------------
// Distributions. Each is a small value type: construct once, sample many.
// ---------------------------------------------------------------------------

/// Exponential with rate lambda (mean 1/lambda).
class ExponentialDist {
 public:
  explicit ExponentialDist(double lambda);
  double sample(Rng& rng) const noexcept;
  double mean() const noexcept { return 1.0 / lambda_; }

 private:
  double lambda_;
};

/// Pareto (type I) with shape alpha and scale x_min:
///   P(X > x) = (x_min / x)^alpha for x >= x_min.
/// The paper fits user inter-operation times to P(x) ~ x^-alpha with
/// 1 < alpha < 2 (Fig. 9), i.e. finite mean, infinite variance — the
/// signature of bursty behavior.
class ParetoDist {
 public:
  ParetoDist(double alpha, double x_min);
  double sample(Rng& rng) const noexcept;
  double alpha() const noexcept { return alpha_; }
  double x_min() const noexcept { return x_min_; }

 private:
  double alpha_;
  double x_min_;
};

/// Pareto truncated to [x_min, x_max]; used for file sizes where physical
/// bounds exist (a .jpg is not 10TB).
class BoundedParetoDist {
 public:
  BoundedParetoDist(double alpha, double x_min, double x_max);
  double sample(Rng& rng) const noexcept;

 private:
  double alpha_;
  double x_min_;
  double x_max_;
};

/// Log-normal: body of RPC service times and most file-size models.
class LogNormalDist {
 public:
  /// mu/sigma are the parameters of the underlying normal (of ln X).
  LogNormalDist(double mu, double sigma);
  /// Construct from the median and the multiplicative spread
  /// (sigma of ln X), which is how service-time models are calibrated.
  static LogNormalDist from_median(double median, double sigma);
  double sample(Rng& rng) const noexcept;
  double median() const noexcept { return std::exp(mu_); }

 private:
  double mu_;
  double sigma_;
};

/// Zipf over ranks 1..n with exponent s: P(rank k) ~ k^-s.
/// Used for content popularity (duplicates-per-hash, Fig. 4a) and the
/// downloads-per-file tail (Fig. 3b inner plot).
class ZipfDist {
 public:
  ZipfDist(std::size_t n, double s);
  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const noexcept;
  std::size_t n() const noexcept { return n_; }

 private:
  std::size_t n_;
  double s_;
  std::vector<double> cdf_;  // cumulative, normalized
};

/// Discrete distribution over a fixed set of weighted alternatives; used for
/// operation mixes, extension popularity and the client transition graph.
class WeightedDiscrete {
 public:
  explicit WeightedDiscrete(std::span<const double> weights);
  /// Returns an index in [0, weights.size()).
  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }
  /// Normalized probability of alternative i.
  double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // cumulative, normalized
};

}  // namespace u1
