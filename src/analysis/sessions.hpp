// Session & authentication analysis (paper §7.3, Fig. 15/16): auth and
// session-management request time-series, auth failure fraction, session
// length distribution (97% < 8h, 32% < 1s), active vs cold sessions
// (5.57% active) and storage operations per active session (80% <= 92 ops,
// top 20% of sessions = 96.7% of ops).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/sharded.hpp"
#include "stats/sketch.hpp"
#include "stats/timeseries.hpp"
#include "trace/sink.hpp"

namespace u1 {

class SessionAnalyzer final : public TraceSink, public ShardedAnalyzer {
 public:
  SessionAnalyzer(SimTime start, SimTime end);

  void append(const TraceRecord& record) override;

  // ShardedAnalyzer: a session's open/close/storage records all live in
  // one shard group, so the live-session map partitions exactly. The
  // time-series and auth counters merge exactly; closed-session length
  // and ops-per-session distributions merge as QuantileSketch /
  // BinnedLorenz state (rank error <= the sketch bound, ~0.6% at k=512),
  // so the sharded path never materializes a per-session vector.
  // finish() renders the sketches into the vector accessors as
  // sorted quantile grids.
  std::unique_ptr<AnalyzerShard> make_shard() override;
  void merge_shard(AnalyzerShard& shard) override;
  void finish() override;

  // --- Fig. 15 ---------------------------------------------------------------
  const TimeBinSeries& auth_requests_hourly() const noexcept {
    return auth_;
  }
  const TimeBinSeries& session_requests_hourly() const noexcept {
    return session_reqs_;
  }
  /// Fraction of auth requests that failed (paper: 2.76%).
  double auth_failure_fraction() const;
  /// Average weekday-vs-weekend peak difference (paper: Monday max ~15%
  /// above weekends).
  double monday_weekend_peak_ratio() const;

  // --- Fig. 16 ---------------------------------------------------------------
  /// Lengths (seconds) of sessions closed inside the window. On the
  /// sharded path this is a sorted quantile grid (capped at ~4k points)
  /// rendered by finish(), not the raw per-session list.
  const std::vector<double>& session_lengths() const noexcept {
    return lengths_all_;
  }
  const std::vector<double>& active_session_lengths() const noexcept {
    return lengths_active_;
  }
  /// Storage ops per *active* session.
  const std::vector<double>& ops_per_active_session() const noexcept {
    return ops_active_;
  }
  /// Share of sessions that issued >= 1 storage op (paper: 5.57%).
  double active_session_fraction() const;
  double fraction_shorter_than(SimTime limit) const;
  /// Share of all storage ops carried by the busiest `top` fraction of
  /// active sessions (paper: top 20% -> 96.7%).
  double top_sessions_op_share(double top) const;

  std::uint64_t sessions_closed() const noexcept {
    return sharded_ ? closed_all_
                    : static_cast<std::uint64_t>(lengths_all_.size());
  }

 private:
  class Shard;

  struct Live {
    SimTime opened = 0;
    std::uint64_t storage_ops = 0;
  };

  SimTime start_;
  SimTime end_;
  TimeBinSeries auth_;
  TimeBinSeries session_reqs_;
  std::uint64_t auth_requests_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::unordered_map<SessionId, Live> live_;
  std::vector<double> lengths_all_;
  std::vector<double> lengths_active_;
  std::vector<double> ops_active_;

  // Sharded-path state (populated by merge_shard; rendered by finish()).
  bool sharded_ = false;
  QuantileSketch lengths_all_sk_;
  QuantileSketch lengths_active_sk_;
  QuantileSketch ops_active_sk_;
  BinnedLorenz ops_lorenz_;
  std::uint64_t closed_all_ = 0;
  std::uint64_t closed_active_ = 0;
};

}  // namespace u1
