// Fig. 7(a): total number of user operations per API type.
#include "analysis/op_mix.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  OpMixAnalyzer mix;
  auto sim = run_into(mix, cfg);

  header("Fig 7(a)", "Number of user operations per type");
  std::printf("  %-20s %14s %12s\n", "operation", "count", "share");
  const double total = static_cast<double>(mix.total_api_ops()) +
                       static_cast<double>(mix.open_sessions()) +
                       static_cast<double>(mix.close_sessions());
  for (const auto& [op, count] : mix.ranked()) {
    std::printf("  %-20s %14llu %11.2f%%\n",
                std::string(to_string(op)).c_str(),
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) / total);
  }
  std::printf("  %-20s %14llu %11.2f%%\n", "OpenSession",
              static_cast<unsigned long long>(mix.open_sessions()),
              100.0 * static_cast<double>(mix.open_sessions()) / total);
  std::printf("  %-20s %14llu %11.2f%%\n", "CloseSession",
              static_cast<unsigned long long>(mix.close_sessions()),
              100.0 * static_cast<double>(mix.close_sessions()) / total);
  row("data-management ops dominate (bool)", 1.0,
      mix.data_ops_dominate() ? 1.0 : 0.0);
  note("paper: download, upload and deletion of files are the most "
       "frequent operations; the protocol imposes little session "
       "overhead because idle clients do not poll");
  return 0;
}
