// Property-style parameterized sweeps over the stochastic substrates:
// every distribution must verify its defining invariants across a grid of
// parameters and seeds, not just at one calibration point.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "stats/ecdf.hpp"
#include "stats/powerlaw.hpp"
#include "util/rng.hpp"

namespace u1 {
namespace {

// ---------------------------------------------------------------------------
// Pareto: the fitted tail exponent must recover the generating alpha for
// any (alpha, x_min) in the paper's regime.
// ---------------------------------------------------------------------------
struct ParetoCase {
  double alpha;
  double x_min;
};

class ParetoRecovery : public ::testing::TestWithParam<ParetoCase> {};

TEST_P(ParetoRecovery, HillEstimatorRecoversAlpha) {
  const auto [alpha, x_min] = GetParam();
  Rng rng(static_cast<std::uint64_t>(alpha * 1000 + x_min));
  ParetoDist d(alpha, x_min);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(d.sample(rng));
  EXPECT_NEAR(hill_alpha(xs, x_min), alpha, 0.06 * alpha);
}

TEST_P(ParetoRecovery, SurvivalFunctionMatches) {
  const auto [alpha, x_min] = GetParam();
  Rng rng(static_cast<std::uint64_t>(alpha * 777 + x_min));
  ParetoDist d(alpha, x_min);
  int above = 0;
  const int n = 60000;
  const double x = 3.0 * x_min;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) > x) ++above;
  const double expected = std::pow(x_min / x, alpha);
  EXPECT_NEAR(static_cast<double>(above) / n, expected, 0.012);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRegime, ParetoRecovery,
    ::testing::Values(ParetoCase{1.1, 1.0}, ParetoCase{1.44, 19.51},
                      ParetoCase{1.54, 41.37}, ParetoCase{1.9, 5.0},
                      ParetoCase{2.5, 100.0}));

// ---------------------------------------------------------------------------
// Log-normal: median invariance across (median, sigma).
// ---------------------------------------------------------------------------
struct LogNormalCase {
  double median;
  double sigma;
};

class LogNormalMedian : public ::testing::TestWithParam<LogNormalCase> {};

TEST_P(LogNormalMedian, EmpiricalMedianMatches) {
  const auto [median, sigma] = GetParam();
  Rng rng(static_cast<std::uint64_t>(median * 31 + sigma * 7));
  const auto d = LogNormalDist::from_median(median, sigma);
  std::vector<double> xs;
  for (int i = 0; i < 60000; ++i) xs.push_back(d.sample(rng));
  Ecdf e(std::move(xs));
  EXPECT_NEAR(e.quantile(0.5) / median, 1.0, 0.05);
  EXPECT_GT(e.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LogNormalMedian,
    ::testing::Values(LogNormalCase{0.002, 0.5}, LogNormalCase{1.0, 1.0},
                      LogNormalCase{350 * 1024.0, 0.8},
                      LogNormalCase{4.2e6, 0.7}, LogNormalCase{8.0, 2.0}));

// ---------------------------------------------------------------------------
// Exponential: memorylessness P(X > s+t | X > s) = P(X > t).
// ---------------------------------------------------------------------------
class ExponentialMemoryless : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMemoryless, Holds) {
  const double lambda = GetParam();
  Rng rng(static_cast<std::uint64_t>(lambda * 1e4));
  ExponentialDist d(lambda);
  const double s = 1.0 / lambda;
  const double t = 0.5 / lambda;
  int beyond_s = 0, beyond_st = 0, beyond_t = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    if (x > s) ++beyond_s;
    if (x > s + t) ++beyond_st;
    if (x > t) ++beyond_t;
  }
  ASSERT_GT(beyond_s, 1000);
  const double conditional =
      static_cast<double>(beyond_st) / static_cast<double>(beyond_s);
  const double unconditional = static_cast<double>(beyond_t) / n;
  EXPECT_NEAR(conditional, unconditional, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialMemoryless,
                         ::testing::Values(0.01, 0.5, 2.0, 140.0));

// ---------------------------------------------------------------------------
// Zipf: rank probabilities decay as k^-s for any (n, s).
// ---------------------------------------------------------------------------
struct ZipfCase {
  std::size_t n;
  double s;
};

class ZipfShape : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfShape, HeadToTailRatio) {
  const auto [n, s] = GetParam();
  Rng rng(n * 131 + static_cast<std::uint64_t>(s * 17));
  ZipfDist d(n, s);
  std::vector<int> counts(n + 1, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) counts[d.sample(rng)]++;
  // P(1)/P(4) should be ~4^s.
  ASSERT_GT(counts[4], 100);
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[4]);
  EXPECT_NEAR(ratio, std::pow(4.0, s), 0.25 * std::pow(4.0, s));
}

INSTANTIATE_TEST_SUITE_P(Grid, ZipfShape,
                         ::testing::Values(ZipfCase{50, 0.7},
                                           ZipfCase{100, 1.0},
                                           ZipfCase{1000, 1.2}));

// ---------------------------------------------------------------------------
// Rng determinism and stream independence across seeds.
// ---------------------------------------------------------------------------
class RngSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeeds, DeterministicAndUniform) {
  const std::uint64_t seed = GetParam();
  Rng a(seed), b(seed);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t va = a.next();
    ASSERT_EQ(va, b.next());
    sum += static_cast<double>(va >> 11) * 0x1.0p-53;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST_P(RngSeeds, ForkDecorrelates) {
  Rng parent(GetParam());
  Rng child = parent.fork();
  // Correlation between the two streams should be negligible.
  double sum_xy = 0, sum_x = 0, sum_y = 0, sum_x2 = 0, sum_y2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = parent.uniform();
    const double y = child.uniform();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double vx = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double vy = sum_y2 / n - (sum_y / n) * (sum_y / n);
  EXPECT_LT(std::abs(cov / std::sqrt(vx * vy)), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeeds,
                         ::testing::Values(1ull, 42ull, 20140111ull,
                                           0xdeadbeefull));

}  // namespace
}  // namespace u1
