// Epoch trace merging: turns the per-group epoch chunks into the single
// deterministic stream the sinks and analyzers see.
//
// Contract (the total order every engine build must reproduce): ascending
// timestamp; ties break by group index, then by within-group emission
// order. That is exactly what the original concat-in-group-order +
// stable_sort-by-timestamp produced, but a k-way merge over per-group
// sorted chunks is O(N log G) instead of O(N log N) — and the per-chunk
// sorts can run off the simulation's critical path (the flusher thread),
// while the chunks are nearly sorted to begin with (only bounded
// service-time lookahead runs ahead of the event clock).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "trace/record.hpp"

namespace u1 {

/// Stable-sorts one group's epoch chunk by timestamp, preserving the
/// emission order of equal-timestamp records. The common case — an
/// already-sorted chunk — costs one is_sorted scan and no moves.
inline void sort_trace_chunk(std::vector<TraceRecord>& chunk) {
  const auto by_time = [](const TraceRecord& a, const TraceRecord& b) {
    return a.t < b.t;
  };
  if (!std::is_sorted(chunk.begin(), chunk.end(), by_time))
    std::stable_sort(chunk.begin(), chunk.end(), by_time);
}

/// K-way merge over per-group chunks, each individually stable-sorted by
/// timestamp (see sort_trace_chunk). Calls emit(record) once per record
/// in the contract order above. The chunks are left in place (sorted);
/// the caller recycles their capacity.
template <typename Emit>
void merge_trace_chunks(std::vector<std::vector<TraceRecord>>& chunks,
                        Emit&& emit) {
  struct Head {
    SimTime t;
    std::size_t group;
  };
  // Min-heap on (t, group): equal timestamps pop lowest group first, and
  // within one group the cursor preserves emission order — together the
  // (t, group, emission) total order of the old stable_sort.
  const auto later = [](const Head& a, const Head& b) noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.group > b.group;
  };
  std::vector<Head> heads;
  std::vector<std::size_t> cursor(chunks.size(), 0);
  heads.reserve(chunks.size());
  for (std::size_t g = 0; g < chunks.size(); ++g)
    if (!chunks[g].empty()) heads.push_back(Head{chunks[g].front().t, g});
  std::make_heap(heads.begin(), heads.end(), later);
  while (!heads.empty()) {
    std::pop_heap(heads.begin(), heads.end(), later);
    const std::size_t g = heads.back().group;
    heads.pop_back();
    emit(chunks[g][cursor[g]]);
    if (++cursor[g] < chunks[g].size()) {
      heads.push_back(Head{chunks[g][cursor[g]].t, g});
      std::push_heap(heads.begin(), heads.end(), later);
    }
  }
}

}  // namespace u1
