# Empty compiler generated dependencies file for bench_fig07c_lorenz_gini.
# This may be replaced when dependencies are built.
