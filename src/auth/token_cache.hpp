// Per-API-server token cache (§3.4.1): "During the session, the token of
// that client is cached to avoid overloading the authentication service."
// A bounded LRU keyed by token id.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "proto/ids.hpp"

namespace u1 {

class TokenCache {
 public:
  explicit TokenCache(std::size_t capacity = 4096);

  /// Returns the cached user for a token, promoting it to most-recent.
  std::optional<UserId> get(const TokenId& token);

  void put(const TokenId& token, UserId user);

  /// Drops one token (e.g. on session close or revocation).
  void erase(const TokenId& token);

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  double hit_rate() const noexcept;

 private:
  struct Entry {
    TokenId token;
    UserId user;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<TokenId, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace u1
