// UUIDs for protocol entities. The U1 back-end assigns UUIDs to node
// objects and their contents (paper §3.1.1); we generate version-4 UUIDs
// from the simulation's deterministic RNG.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace u1 {

struct Uuid {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Uuid&) const = default;

  bool is_nil() const noexcept;

  /// Canonical 8-4-4-4-12 lowercase hex form.
  std::string str() const;

  /// First 8 bytes as an integer; used as a hash key.
  std::uint64_t prefix64() const noexcept;

  /// Random (version 4) UUID drawn from the given generator.
  static Uuid v4(Rng& rng) noexcept;

  /// The all-zero UUID.
  static Uuid nil() noexcept { return Uuid{}; }

  /// Parse the canonical form; throws std::invalid_argument on bad input.
  static Uuid parse(const std::string& text);
};

}  // namespace u1

template <>
struct std::hash<u1::Uuid> {
  std::size_t operator()(const u1::Uuid& u) const noexcept {
    return static_cast<std::size_t>(u.prefix64());
  }
};
