# Empty dependencies file for bench_fig16_session_lengths.
# This may be replaced when dependencies are built.
