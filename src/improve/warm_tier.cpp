#include "improve/warm_tier.hpp"

#include <stdexcept>

namespace u1 {

WarmTierManager::WarmTierManager(const WarmTierConfig& config)
    : config_(config) {
  if (config.demote_after <= 0 || config.hot_usd_per_gb_month < 0 ||
      config.cold_usd_per_gb_month < 0 || config.cold_read_penalty < 0)
    throw std::invalid_argument("WarmTierConfig: invalid");
}

void WarmTierManager::on_store(const ContentId& id, std::uint64_t size_bytes,
                               SimTime now) {
  auto [it, inserted] = blobs_.try_emplace(id);
  if (!inserted) {
    // Overwrite: adjust the books for the old size/tier first.
    if (it->second.tier == StorageTier::kHot) {
      hot_bytes_ -= it->second.size;
    } else {
      cold_bytes_ -= it->second.size;
    }
  }
  it->second.size = size_bytes;
  it->second.last_access = now;
  it->second.tier = StorageTier::kHot;
  hot_bytes_ += size_bytes;
}

SimTime WarmTierManager::on_read(const ContentId& id, SimTime now) {
  const auto it = blobs_.find(id);
  if (it == blobs_.end())
    throw std::out_of_range("WarmTierManager::on_read: unknown blob");
  it->second.last_access = now;
  if (it->second.tier == StorageTier::kHot) return 0;
  // Cold hit: promote and pay the retrieval penalty.
  ++cold_reads_;
  it->second.tier = StorageTier::kHot;
  cold_bytes_ -= it->second.size;
  hot_bytes_ += it->second.size;
  return config_.cold_read_penalty;
}

void WarmTierManager::on_delete(const ContentId& id) {
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) return;
  if (it->second.tier == StorageTier::kHot) {
    hot_bytes_ -= it->second.size;
  } else {
    cold_bytes_ -= it->second.size;
  }
  blobs_.erase(it);
}

std::size_t WarmTierManager::sweep(SimTime now) {
  std::size_t demoted = 0;
  for (auto& [id, blob] : blobs_) {
    if (blob.tier == StorageTier::kHot &&
        now - blob.last_access >= config_.demote_after) {
      blob.tier = StorageTier::kCold;
      hot_bytes_ -= blob.size;
      cold_bytes_ += blob.size;
      ++demoted;
    }
  }
  return demoted;
}

StorageTier WarmTierManager::tier_of(const ContentId& id) const {
  const auto it = blobs_.find(id);
  if (it == blobs_.end())
    throw std::out_of_range("WarmTierManager::tier_of: unknown blob");
  return it->second.tier;
}

double WarmTierManager::monthly_bill_usd() const noexcept {
  constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
  return static_cast<double>(hot_bytes_) / kGB *
             config_.hot_usd_per_gb_month +
         static_cast<double>(cold_bytes_) / kGB *
             config_.cold_usd_per_gb_month;
}

double WarmTierManager::monthly_bill_all_hot_usd() const noexcept {
  constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
  return static_cast<double>(hot_bytes_ + cold_bytes_) / kGB *
         config_.hot_usd_per_gb_month;
}

}  // namespace u1
