# CMake generated Testfile for 
# Source directory: /root/repo/src/cloudstore
# Build directory: /root/repo/build/src/cloudstore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
