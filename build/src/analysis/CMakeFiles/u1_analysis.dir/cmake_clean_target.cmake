file(REMOVE_RECURSE
  "libu1_analysis.a"
)
