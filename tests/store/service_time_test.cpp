#include "store/service_time.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/ecdf.hpp"

namespace u1 {
namespace {

std::vector<double> sample_seconds(const ServiceTimeModel& model, RpcOp op,
                                   int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(to_seconds(model.sample(op, rng)));
  return out;
}

TEST(ServiceTimeModel, MedianRoughlyCalibrated) {
  ServiceTimeModel model;
  for (const RpcOp op : all_rpc_ops()) {
    const auto xs = sample_seconds(model, op, 20000, 11);
    Ecdf e(xs);
    const double target = to_seconds(model.median(op));
    // The tail mixture shifts the overall median slightly upward; accept
    // a factor-1.5 envelope.
    EXPECT_GT(e.quantile(0.5), target * 0.6) << to_string(op);
    EXPECT_LT(e.quantile(0.5), target * 1.6) << to_string(op);
  }
}

TEST(ServiceTimeModel, ClassOrderingMatchesFig13) {
  ServiceTimeModel model;
  // Reads < writes < cascades, by an order of magnitude at the extremes.
  const auto read = sample_seconds(model, RpcOp::kListVolumes, 20000, 3);
  const auto write = sample_seconds(model, RpcOp::kMakeContent, 20000, 4);
  const auto cascade = sample_seconds(model, RpcOp::kDeleteVolume, 20000, 5);
  const double m_read = Ecdf(read).quantile(0.5);
  const double m_write = Ecdf(write).quantile(0.5);
  const double m_cascade = Ecdf(cascade).quantile(0.5);
  EXPECT_LT(m_read, m_write);
  EXPECT_LT(m_write, m_cascade);
  EXPECT_GT(m_cascade / m_read, 10.0);
}

TEST(ServiceTimeModel, LongTailPresent) {
  // The paper: "from 7% to 22% of RPC service times are very far from the
  // median". Count samples beyond 8x median.
  ServiceTimeModel model;
  for (const RpcOp op : {RpcOp::kListVolumes, RpcOp::kMakeFile,
                         RpcOp::kDeleteVolume}) {
    const auto xs = sample_seconds(model, op, 50000, 17);
    const double median = Ecdf(xs).quantile(0.5);
    const double far = static_cast<double>(
                           std::count_if(xs.begin(), xs.end(),
                                         [&](double x) {
                                           return x > 8.0 * median;
                                         })) /
                       static_cast<double>(xs.size());
    EXPECT_GE(far, 0.05) << to_string(op);
    EXPECT_LE(far, 0.25) << to_string(op);
  }
}

TEST(ServiceTimeModel, BoundsRespected) {
  ServiceTimeModel model;
  Rng rng(23);
  for (int i = 0; i < 50000; ++i) {
    const SimTime t = model.sample(RpcOp::kGetNode, rng);
    EXPECT_GE(t, from_seconds(1e-4));
    EXPECT_LE(t, from_seconds(100.0));
  }
}

TEST(ServiceTimeModel, SetParamsOverrides) {
  ServiceTimeModel model;
  ServiceTimeParams p;
  p.median_s = 1.0;
  p.sigma = 0.1;
  p.tail_prob = 0.0;
  model.set_params(RpcOp::kGetNode, p);
  const auto xs = sample_seconds(model, RpcOp::kGetNode, 5000, 29);
  EXPECT_NEAR(Ecdf(xs).quantile(0.5), 1.0, 0.05);
}

TEST(ServiceTimeModel, SetParamsValidates) {
  ServiceTimeModel model;
  ServiceTimeParams p;
  p.median_s = -1;
  EXPECT_THROW(model.set_params(RpcOp::kGetNode, p), std::invalid_argument);
  p = ServiceTimeParams{};
  p.tail_prob = 1.5;
  EXPECT_THROW(model.set_params(RpcOp::kGetNode, p), std::invalid_argument);
  p = ServiceTimeParams{};
  p.tail_scale = 0.5;
  EXPECT_THROW(model.set_params(RpcOp::kGetNode, p), std::invalid_argument);
}

TEST(ServiceTimeModel, DeterministicGivenSeed) {
  ServiceTimeModel model;
  Rng a(31), b(31);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(model.sample(RpcOp::kMove, a), model.sample(RpcOp::kMove, b));
}

}  // namespace
}  // namespace u1
