// Ablation (§5.2): server-side caching of hot content. The short RAR
// times and the long tail of reads-per-file suggest a cache would absorb
// many S3 reads; this bench replays the download stream through LRU
// caches of increasing size.
#include <list>
#include <unordered_map>

#include "bench/bench_util.hpp"
#include "trace/sink.hpp"
#include "util/strings.hpp"

namespace {

/// Byte-capacity LRU over content ids.
class ContentLru {
 public:
  explicit ContentLru(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  bool access(const u1::ContentId& id, std::uint64_t bytes) {
    const auto it = map_.find(id);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    lru_.emplace_front(id, bytes);
    map_[id] = lru_.begin();
    used_ += bytes;
    while (used_ > capacity_ && !lru_.empty()) {
      used_ -= lru_.back().second;
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
    return false;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<std::pair<u1::ContentId, std::uint64_t>> lru_;
  std::unordered_map<u1::ContentId,
                     decltype(lru_)::iterator>
      map_;
};

}  // namespace

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(5000), env_days(14));

  constexpr std::uint64_t GB = 1024ull * 1024 * 1024;
  std::vector<std::uint64_t> capacities = {1 * GB, 4 * GB, 16 * GB,
                                           64 * GB, 256 * GB};
  std::vector<ContentLru> caches;
  for (const auto c : capacities) caches.emplace_back(c);
  std::vector<std::uint64_t> hits(capacities.size(), 0);
  std::vector<std::uint64_t> hit_bytes(capacities.size(), 0);
  std::uint64_t downloads = 0, download_bytes = 0;

  CallbackSink sink([&](const TraceRecord& r) {
    if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
    if (r.api_op != ApiOp::kGetContent) return;
    if (r.content == ContentId{}) return;
    ++downloads;
    download_bytes += r.transferred_bytes;
    for (std::size_t i = 0; i < caches.size(); ++i) {
      if (caches[i].access(r.content, r.size_bytes)) {
        ++hits[i];
        hit_bytes[i] += r.transferred_bytes;
      }
    }
  });
  auto sim = run_into(sink, cfg);

  header("Ablation", "Server-side LRU cache over the download stream");
  std::printf("  downloads: %llu (%s)\n",
              static_cast<unsigned long long>(downloads),
              format_bytes(static_cast<double>(download_bytes)).c_str());
  std::printf("  %-12s %12s %14s\n", "cache size", "hit ratio",
              "bytes served");
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    std::printf("  %-12s %11.1f%% %14s\n",
                format_bytes(static_cast<double>(capacities[i])).c_str(),
                downloads > 0
                    ? 100.0 * static_cast<double>(hits[i]) /
                          static_cast<double>(downloads)
                    : 0.0,
                format_bytes(static_cast<double>(hit_bytes[i])).c_str());
  }
  note("paper: RAR times are short and reads-per-file long-tailed -> "
       "server-side caching (e.g. Memcached) would cut S3 reads and "
       "operational costs");
  return 0;
}
