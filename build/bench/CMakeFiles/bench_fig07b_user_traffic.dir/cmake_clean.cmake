file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07b_user_traffic.dir/bench_fig07b_user_traffic.cpp.o"
  "CMakeFiles/bench_fig07b_user_traffic.dir/bench_fig07b_user_traffic.cpp.o.d"
  "bench_fig07b_user_traffic"
  "bench_fig07b_user_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07b_user_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
