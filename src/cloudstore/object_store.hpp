// Simulated Amazon S3 (us-east): the data store U1 outsources file
// contents to (§3.4). Exposes exactly the API surface the U1 back-end
// uses — simple put/get/delete plus the multipart upload protocol that
// drives the uploadjob state machine of appendix A. Objects carry sizes,
// not payloads: the paper's analyses never look inside file contents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct StoredObject {
  std::string key;
  std::uint64_t size_bytes = 0;
  SimTime stored_at = 0;
};

/// An in-flight multipart upload (S3-side state).
struct MultipartUpload {
  std::string upload_id;
  std::string key;
  std::uint32_t parts = 0;
  std::uint64_t bytes = 0;
  SimTime initiated_at = 0;
};

/// S3's multipart API requires every part except the last to be at least
/// 5MB; the U1 client uses exactly 5MB chunks (appendix A).
inline constexpr std::uint64_t kMultipartChunkBytes = 5ull * 1024 * 1024;

class ObjectStore {
 public:
  ObjectStore() = default;

  // --- simple objects -----------------------------------------------------
  /// Stores (or overwrites) an object.
  void put(const std::string& key, std::uint64_t size_bytes, SimTime now);
  std::optional<StoredObject> get(const std::string& key) const;
  /// Returns false if the key did not exist.
  bool remove(const std::string& key);
  bool exists(const std::string& key) const;

  // --- multipart upload (appendix A) ---------------------------------------
  /// InitiateMultipartUpload: returns the upload id.
  std::string initiate_multipart(const std::string& key, SimTime now);
  /// UploadPart: false for unknown upload ids or zero-sized parts. Bad
  /// requests are service errors the caller retries or aborts — never a
  /// crash (an injected fault can race an upload with its own teardown).
  bool upload_part(const std::string& upload_id, std::uint64_t part_bytes);
  /// CompleteMultipartUpload: materializes the object; nullopt for
  /// unknown ids or uploads with no parts.
  std::optional<StoredObject> complete_multipart(const std::string& upload_id,
                                                 SimTime now);
  /// AbortMultipartUpload: discards state; false if id unknown.
  bool abort_multipart(const std::string& upload_id);
  std::optional<MultipartUpload> multipart_state(
      const std::string& upload_id) const;

  /// Drops all materialized objects while keeping the byte/op counters
  /// and any in-flight multipart uploads. Worker processes of the
  /// distributed engine call this for remote groups during setup replay:
  /// those objects are write-only there (downloads only happen inside
  /// the trace window, which remote groups never run locally), so the
  /// map is pure RSS dead weight. object_count() reads 0 afterwards.
  void shed_objects() {
    objects_.clear();
    objects_.rehash(0);
  }

  // --- accounting -----------------------------------------------------------
  std::size_t object_count() const noexcept { return objects_.size(); }
  std::uint64_t stored_bytes() const noexcept { return stored_bytes_; }
  std::size_t open_multiparts() const noexcept { return multiparts_.size(); }
  std::uint64_t put_count() const noexcept { return puts_; }
  std::uint64_t get_count() const noexcept { return gets_; }
  std::uint64_t delete_count() const noexcept { return deletes_; }

  /// Monthly storage bill at S3's (2014) ~$0.03/GB-month — the paper
  /// notes U1's ≈ $20k monthly S3 bill as a motivation for dedup.
  double monthly_bill_usd(double usd_per_gb_month = 0.03) const noexcept;

 private:
  std::unordered_map<std::string, StoredObject> objects_;
  std::unordered_map<std::string, MultipartUpload> multiparts_;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t puts_ = 0;
  mutable std::uint64_t gets_ = 0;
  std::uint64_t deletes_ = 0;
  std::uint64_t next_upload_seq_ = 1;
};

}  // namespace u1
