# Empty compiler generated dependencies file for u1_store.
# This may be replaced when dependencies are built.
