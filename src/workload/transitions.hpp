// Client operation transition model (Fig. 8). The paper's user-centric
// request graph shows strong self-transitions on transfers (a client that
// uploads tends to keep uploading — directory-granularity sync), the
// regular session-start flow Authenticate -> ListVolumes -> ListShares,
// and the Make -> Upload pairing. This Markov chain generates per-user
// operation sequences with those properties; class-specific biases skew
// upload-only users toward uploads etc.
#pragma once

#include <array>

#include "proto/operations.hpp"
#include "util/rng.hpp"
#include "workload/user_model.hpp"

namespace u1 {

/// The storage operations the chain walks over. Session management and
/// Make are generated implicitly (Make always precedes a new-file upload;
/// list operations happen at session start).
enum class ClientAction : std::uint8_t {
  kUploadNew,     // Make + PutContent of a fresh file
  kUploadUpdate,  // PutContent over an existing node (new hash)
  kDownload,      // GetContent of an existing file
  kUnlink,        // delete a file or directory
  kMove,          // reorganize
  kMakeDir,       // create a directory (sync of a new folder)
  kCreateUdf,     // add a user-defined volume
  kDeleteVolume,  // drop a UDF
  kGetDelta,      // explicit re-sync
};
inline constexpr std::size_t kClientActionCount = 9;

std::string_view to_string(ClientAction a) noexcept;

class TransitionModel {
 public:
  TransitionModel();

  /// First storage action of a session.
  ClientAction initial(UserClass user_class, Rng& rng) const;

  /// Next action given the previous one (row-stochastic chain), with the
  /// user-class bias applied.
  ClientAction next(ClientAction previous, UserClass user_class,
                    Rng& rng) const;

  /// Raw transition probability (before class bias), for tests and for
  /// printing the Fig. 8 edge weights.
  double probability(ClientAction from, ClientAction to) const;

 private:
  /// row = from, column = to.
  std::array<std::array<double, kClientActionCount>, kClientActionCount>
      matrix_{};
  std::array<double, kClientActionCount> initial_{};

  std::size_t sample_row(const std::array<double, kClientActionCount>& row,
                         UserClass user_class, Rng& rng) const;
};

}  // namespace u1
