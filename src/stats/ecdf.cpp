#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace u1 {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

Ecdf Ecdf::from_sorted(std::vector<double> sorted_sample) {
  if (sorted_sample.empty())
    throw std::invalid_argument("Ecdf::from_sorted: empty sample");
  if (!std::is_sorted(sorted_sample.begin(), sorted_sample.end()))
    throw std::invalid_argument("Ecdf::from_sorted: sample not sorted");
  Ecdf out;
  out.sorted_ = std::move(sorted_sample);
  return out;
}

double Ecdf::at(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::domain_error("Ecdf::quantile: q not in [0,1]");
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<double> Ecdf::evaluate(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back(at(x));
  return out;
}

std::vector<std::pair<double, double>> Ecdf::ccdf_points() const {
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(sorted_.size());
  std::size_t i = 0;
  while (i < sorted_.size()) {
    std::size_t j = i;
    while (j < sorted_.size() && sorted_[j] == sorted_[i]) ++j;
    // P(X > x) with x = sorted_[i]: fraction of points strictly above.
    out.emplace_back(sorted_[i], static_cast<double>(sorted_.size() - j) / n);
    i = j;
  }
  return out;
}

std::vector<double> log_space(double lo, double hi, std::size_t n) {
  if (lo <= 0 || hi <= lo || n < 2)
    throw std::invalid_argument("log_space: need 0 < lo < hi, n >= 2");
  std::vector<double> out;
  out.reserve(n);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(std::pow(10.0, llo + f * (lhi - llo)));
  }
  return out;
}

std::vector<double> lin_space(double lo, double hi, std::size_t n) {
  if (hi <= lo || n < 2)
    throw std::invalid_argument("lin_space: need lo < hi, n >= 2");
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(lo + f * (hi - lo));
  }
  return out;
}

}  // namespace u1
