# Empty dependencies file for u1_trace.
# This may be replaced when dependencies are built.
