# Empty compiler generated dependencies file for bench_fig12_rpc_cdfs.
# This may be replaced when dependencies are built.
