// Volume contents and sharing (paper §6.3, Fig. 10/11). These are
// end-of-trace *state* analyses (the paper inspected the metadata store),
// so this analyzer snapshots a MetadataStore rather than streaming the
// trace.
#pragma once

#include <cstdint>
#include <vector>

#include "store/metadata_store.hpp"

namespace u1 {

struct VolumeContentStats {
  /// Per-volume (file count, directory count) pairs — Fig. 10 scatter.
  std::vector<std::pair<double, double>> files_dirs;
  double pearson_files_dirs = 0;  // paper: 0.998
  double volumes_with_file_share = 0;    // >= 1 file (paper: >60%)
  double volumes_with_dir_share = 0;     // >= 1 subdir (paper: 32%)
  double volumes_over_1000_files = 0;    // share (paper: ~5%)
};

struct VolumeOwnershipStats {
  /// Per-user UDF volume counts (only users with >= 0 UDFs; all users).
  std::vector<double> udfs_per_user;
  std::vector<double> shares_per_user;
  double users_with_udf = 0;     // share (paper: 58%)
  double users_with_share = 0;   // share (paper: 1.8%)
};

/// Walks the store and derives the Fig. 10 statistics.
VolumeContentStats analyze_volume_contents(const MetadataStore& store);

/// Multi-store variant for the shard-parallel engine: one store per shard
/// group, walked in order (ParallelSimulation::stores()).
VolumeContentStats analyze_volume_contents(
    const std::vector<const MetadataStore*>& stores);

/// Walks the store and derives the Fig. 11 statistics over `users` user
/// ids 1..users (the simulation's population).
VolumeOwnershipStats analyze_volume_ownership(const MetadataStore& store,
                                              std::uint64_t users);

/// Multi-store variant: a user's UDF volumes and incoming share grants
/// live in their home group's store; ghost registrations in other groups
/// contribute only an (ignored) root volume, so summing across stores is
/// exact for both per-user counts.
VolumeOwnershipStats analyze_volume_ownership(
    const std::vector<const MetadataStore*>& stores, std::uint64_t users);

}  // namespace u1
