# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for month_in_the_life.
