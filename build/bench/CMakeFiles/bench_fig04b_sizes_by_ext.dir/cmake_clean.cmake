file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04b_sizes_by_ext.dir/bench_fig04b_sizes_by_ext.cpp.o"
  "CMakeFiles/bench_fig04b_sizes_by_ext.dir/bench_fig04b_sizes_by_ext.cpp.o.d"
  "bench_fig04b_sizes_by_ext"
  "bench_fig04b_sizes_by_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04b_sizes_by_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
