// Lorenz curve and Gini coefficient — Fig. 7(c) reports Gini ≈ 0.8966
// (download) and 0.8943 (upload) over active users, i.e. 1% of users
// account for 65.6% of U1's traffic.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace u1 {

struct LorenzCurve {
  /// Points (population share, cumulative value share), both in [0,1],
  /// starting at (0,0) and ending at (1,1).
  std::vector<std::pair<double, double>> points;
  double gini = 0.0;

  /// Cumulative value share owned by the *top* `top_fraction` of the
  /// population (e.g. top_fraction = 0.01 for the paper's "1% of users
  /// generate 65% of the traffic").
  double top_share(double top_fraction) const;
};

/// Builds the Lorenz curve of non-negative values (users' traffic, ...).
/// Zero-valued members count as population. Throws on empty input or any
/// negative value.
LorenzCurve lorenz(std::span<const double> values);

/// Gini coefficient alone (same contract as lorenz()).
double gini(std::span<const double> values);

}  // namespace u1
