// Fig. 2(b): fraction of transferred data and of storage operations per
// file-size category (<0.5, 0.5-1, 1-5, 5-25, >25 MB).
#include "analysis/traffic.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  TrafficAnalyzer traffic(0, cfg.days * kDay);
  auto sim = run_into(traffic, cfg);

  header("Fig 2(b)", "Traffic vs file size category");
  std::printf("  %-12s %10s %10s %10s %10s\n", "category", "up ops",
              "down ops", "up bytes", "down bytes");
  const auto& uo = traffic.upload_ops_by_size();
  const auto& dn = traffic.download_ops_by_size();
  const auto& ub = traffic.upload_bytes_by_size();
  const auto& db = traffic.download_bytes_by_size();
  for (std::size_t b = 0; b < uo.bins(); ++b) {
    std::printf("  %-12s %10.3f %10.3f %10.3f %10.3f\n",
                uo.label(b).c_str(), uo.fraction(b), dn.fraction(b),
                ub.fraction(b), db.fraction(b));
  }
  std::printf("\n  headline comparisons:\n");
  row("upload ops on files < 0.5MB", 0.843, uo.fraction(0));
  row("download ops on files < 0.5MB", 0.890, dn.fraction(0));
  row("upload bytes from files > 25MB", 0.793, ub.fraction(4));
  row("download bytes from files > 25MB", 0.882, db.fraction(4));
  note("paper: small files dominate operations; a few large files carry "
       "most traffic");
  return 0;
}
