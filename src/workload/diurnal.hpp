// Diurnal and weekly activity modulation (§5.1, §7.3):
//  - hourly upload volume swings ~10x between night and mid-day (Fig. 2a);
//  - desktop clients auto-start with the machine, so connections follow
//    working habits; Mondays peak ~15% above weekends (Fig. 15);
//  - the R/W ratio decays roughly linearly from 6am to 3pm: users download
//    (sync down) when they start the client and upload as they work.
#pragma once

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct DiurnalParams {
  double night_floor = 0.10;   // activity at 4am relative to the peak
  double weekend_factor = 0.80;
  double monday_factor = 1.15;
  /// Morning download bias: max extra download probability at 6am,
  /// decaying linearly to 0 by 15:00 (drives the Fig. 2c R/W pattern).
  double morning_download_boost = 0.45;
};

class DiurnalModel {
 public:
  explicit DiurnalModel(const DiurnalParams& params = {});

  /// Relative activity intensity in (0, ~1.2]; peaks around 14:00 local.
  double intensity(SimTime t) const noexcept;

  /// Extra probability mass shifted from uploads to downloads at time t,
  /// in [0, morning_download_boost].
  double download_bias(SimTime t) const noexcept;

  /// Samples the next arrival of a rate-`per_day` daily process thinned
  /// by the diurnal intensity (non-homogeneous Poisson via thinning).
  SimTime next_arrival(SimTime now, double per_day, Rng& rng) const;

  const DiurnalParams& params() const noexcept { return params_; }

 private:
  DiurnalParams params_;
};

}  // namespace u1
