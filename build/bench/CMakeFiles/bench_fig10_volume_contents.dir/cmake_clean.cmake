file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_volume_contents.dir/bench_fig10_volume_contents.cpp.o"
  "CMakeFiles/bench_fig10_volume_contents.dir/bench_fig10_volume_contents.cpp.o.d"
  "bench_fig10_volume_contents"
  "bench_fig10_volume_contents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_volume_contents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
