
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/acf.cpp" "src/stats/CMakeFiles/u1_stats.dir/acf.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/acf.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/u1_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/u1_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/gini.cpp" "src/stats/CMakeFiles/u1_stats.dir/gini.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/gini.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/u1_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/powerlaw.cpp" "src/stats/CMakeFiles/u1_stats.dir/powerlaw.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/powerlaw.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/u1_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/u1_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/u1_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
