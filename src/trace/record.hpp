// The trace record format (§4). The U1 dataset is a merge of per-process
// CSV logfiles with four request types:
//   session      — session management (auth request/ok/fail, open, close)
//   storage      — an API operation arriving at an API server
//   storage_done — its completion (carries the duration)
//   rpc          — the DAL call it translated into (carries shard + time)
// Our simulated back-end emits exactly this shape so that the analyzers
// are written as they would be for the real dataset.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "proto/entities.hpp"
#include "proto/ids.hpp"
#include "proto/operations.hpp"
#include "util/sim_time.hpp"

namespace u1 {

enum class RecordType : std::uint8_t {
  kSession,
  kStorage,
  kStorageDone,
  kRpc,
  kFault,  // fault-injection window begin/end (operator's incident log)
};

std::string_view to_string(RecordType t) noexcept;
std::optional<RecordType> record_type_from_string(std::string_view s) noexcept;

enum class SessionEvent : std::uint8_t {
  kNone,
  kAuthRequest,  // API server asked the auth service to verify/issue
  kAuthOk,
  kAuthFail,
  kOpen,     // session established
  kClose,    // session ended by a client disconnect
  kDropped,  // session force-closed (process crash / machine outage)
  kTryAgain, // load-shed: balancer had no process with capacity
};

std::string_view to_string(SessionEvent e) noexcept;
std::optional<SessionEvent> session_event_from_string(
    std::string_view s) noexcept;

/// One log line. Fields not applicable to the record type are left at
/// their zero values and serialize to empty CSV cells.
struct TraceRecord {
  SimTime t = 0;
  RecordType type = RecordType::kStorage;
  MachineId machine;
  ProcessId process;
  UserId user;
  SessionId session;

  // type == kSession
  SessionEvent session_event = SessionEvent::kNone;

  // type == kStorage / kStorageDone
  ApiOp api_op = ApiOp::kListVolumes;
  NodeId node;
  NodeId parent;  // parent directory (set on Make records)
  VolumeId volume;
  std::uint64_t size_bytes = 0;         // logical file size
  std::uint64_t transferred_bytes = 0;  // wire bytes (0 on dedup hit)
  ContentId content;                    // SHA-1 (files only)
  std::string extension;                // lowercase, no dot
  bool is_update = false;       // upload of an existing node w/ new content
  bool is_dir = false;
  bool deduplicated = false;    // upload satisfied by get_reusable_content
  bool failed = false;
  SimTime duration = 0;  // kStorageDone only: end-to-end op time

  // type == kRpc
  RpcOp rpc_op = RpcOp::kListVolumes;
  ShardId shard;
  SimTime service_time = 0;

  // type == kFault: "<kind>#<window-id>:begin|end" (see fault_label);
  // machine/shard carry the target, duration the window length.
  std::string fault;

  /// The logfile this record belongs to, e.g.
  /// "production-whitecurrant-23-20140128" (paper §4).
  std::string logname() const;

  /// CSV row (fixed column order, see kCsvHeader).
  std::vector<std::string> to_csv() const;
  /// Parses a row; std::nullopt for malformed rows (the paper reports ~1%
  /// of trace lines failed to parse — the reader counts, not crashes).
  static std::optional<TraceRecord> from_csv(
      const std::vector<std::string>& fields);

  static const std::vector<std::string>& csv_header();
};

/// Machine names used in lognames. The production fleet had 6 API/RPC
/// machines; we keep Canonical's fruit-flavored naming style.
std::string_view machine_name(MachineId id) noexcept;

}  // namespace u1
