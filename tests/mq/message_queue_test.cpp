#include "mq/message_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace u1 {
namespace {

VolumeEvent make_event(std::uint64_t origin) {
  VolumeEvent e;
  e.kind = VolumeEvent::Kind::kNodeUpdated;
  e.affected_user = UserId{10};
  e.origin_process = ProcessId{origin};
  e.at = kHour;
  return e;
}

TEST(MessageQueue, FanOutSkipsOrigin) {
  MessageQueue mq;
  std::vector<std::uint64_t> received;
  mq.subscribe(ProcessId{1}, [&](const VolumeEvent&) { received.push_back(1); });
  mq.subscribe(ProcessId{2}, [&](const VolumeEvent&) { received.push_back(2); });
  mq.subscribe(ProcessId{3}, [&](const VolumeEvent&) { received.push_back(3); });

  const std::size_t n = mq.publish(make_event(2));
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], 1u);
  EXPECT_EQ(received[1], 3u);
  EXPECT_EQ(mq.published(), 1u);
  EXPECT_EQ(mq.delivered(), 2u);
}

TEST(MessageQueue, UnsubscribeStopsDelivery) {
  MessageQueue mq;
  int count = 0;
  const std::size_t h =
      mq.subscribe(ProcessId{1}, [&](const VolumeEvent&) { ++count; });
  mq.publish(make_event(9));
  EXPECT_EQ(count, 1);
  mq.unsubscribe(h);
  mq.publish(make_event(9));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(mq.subscriber_count(), 0u);
}

TEST(MessageQueue, UnsubscribeUnknownThrows) {
  MessageQueue mq;
  EXPECT_THROW(mq.unsubscribe(123), std::out_of_range);
}

TEST(MessageQueue, EmptyHandlerRejected) {
  MessageQueue mq;
  EXPECT_THROW(mq.subscribe(ProcessId{1}, EventHandler{}),
               std::invalid_argument);
}

TEST(MessageQueue, EventPayloadDelivered) {
  MessageQueue mq;
  VolumeEvent got;
  mq.subscribe(ProcessId{1}, [&](const VolumeEvent& e) { got = e; });
  VolumeEvent sent = make_event(5);
  sent.kind = VolumeEvent::Kind::kShareGranted;
  mq.publish(sent);
  EXPECT_EQ(got.kind, VolumeEvent::Kind::kShareGranted);
  EXPECT_EQ(got.affected_user, (UserId{10}));
  EXPECT_EQ(got.at, kHour);
}

TEST(MessageQueue, NoSubscribersIsFine) {
  MessageQueue mq;
  EXPECT_EQ(mq.publish(make_event(1)), 0u);
}

TEST(MessageQueue, SameProcessShortCircuit) {
  // Footnote 4: if both clients are on the same API process the event
  // never reaches the queue. Modeled as publish returning 0 deliveries
  // when the only subscriber is the origin.
  MessageQueue mq;
  int count = 0;
  mq.subscribe(ProcessId{1}, [&](const VolumeEvent&) { ++count; });
  EXPECT_EQ(mq.publish(make_event(1)), 0u);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace u1
