file(REMOVE_RECURSE
  "libu1trace_cli.a"
)
