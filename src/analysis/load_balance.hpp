// Load balancing analysis (paper §7.2, Fig. 14): requests across API
// server machines per hour and across metadata store shards per minute —
// mean and standard deviation per time bin, plus the long-term imbalance
// (the paper: shard stddev only 4.9% of the mean over the whole trace,
// but large in short windows).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/summary.hpp"
#include "stats/timeseries.hpp"
#include "trace/sink.hpp"

namespace u1 {

class LoadBalanceAnalyzer final : public TraceSink {
 public:
  LoadBalanceAnalyzer(SimTime start, SimTime end, std::size_t machines = 6,
                      std::size_t shards = 10);

  void append(const TraceRecord& record) override;

  struct BinLoad {
    double mean = 0;
    double stddev = 0;
  };
  /// Per-hour load across API machines (the Fig. 14 top panel).
  std::vector<BinLoad> api_load_hourly() const;
  /// Per-minute load across shards (the Fig. 14 bottom panel).
  std::vector<BinLoad> shard_load_minutely() const;

  /// Average short-window coefficient of variation (stddev/mean) across
  /// non-empty bins — the "high variance across servers" statement.
  double api_short_term_cv() const;
  double shard_short_term_cv() const;

  /// Long-term imbalance: stddev/mean of total per-shard counts over the
  /// whole window (paper: 0.049).
  double shard_long_term_cv() const;
  double api_long_term_cv() const;

 private:
  std::vector<BinLoad> bin_loads(const std::vector<TimeBinSeries>& series)
      const;
  double short_term_cv(const std::vector<TimeBinSeries>& series) const;
  double long_term_cv(const std::vector<TimeBinSeries>& series) const;

  std::vector<TimeBinSeries> api_;    // one hourly series per machine
  std::vector<TimeBinSeries> shard_;  // one minutely series per shard
};

}  // namespace u1
