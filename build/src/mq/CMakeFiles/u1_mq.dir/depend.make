# Empty dependencies file for u1_mq.
# This may be replaced when dependencies are built.
