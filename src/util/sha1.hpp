// SHA-1, implemented from scratch (FIPS 180-1). The U1 desktop client sends
// the SHA-1 of a file before uploading so the back-end can deduplicate at
// file granularity (paper §3.3); our simulated clients do the same over
// synthetic content identifiers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace u1 {

/// A 160-bit SHA-1 digest.
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  auto operator<=>(const Sha1Digest&) const = default;

  /// Lowercase hex, 40 chars — the wire format used in U1 log records
  /// ("sha1:<hex>").
  std::string hex() const;

  /// First 8 bytes as an integer; handy as a hash-table key.
  std::uint64_t prefix64() const noexcept;
};

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;
  /// Finalizes and returns the digest; the hasher must be reset() before
  /// reuse.
  Sha1Digest finish() noexcept;

  /// One-shot convenience.
  static Sha1Digest of(std::string_view data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5];
  std::uint64_t length_bits_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

}  // namespace u1

template <>
struct std::hash<u1::Sha1Digest> {
  std::size_t operator()(const u1::Sha1Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
