# Empty compiler generated dependencies file for u1_analysis.
# This may be replaced when dependencies are built.
