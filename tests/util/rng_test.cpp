#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace u1 {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(3);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    buckets[v]++;
  }
  for (const int c : buckets) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child stream should not simply replay the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LE(same, 1);
}

TEST(ExponentialDist, MeanMatchesRate) {
  Rng rng(13);
  ExponentialDist d(0.5);  // mean 2
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(ExponentialDist, RejectsBadRate) {
  EXPECT_THROW(ExponentialDist(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDist(-1.0), std::invalid_argument);
}

TEST(ParetoDist, SamplesAboveXmin) {
  Rng rng(17);
  ParetoDist d(1.5, 10.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 10.0);
}

TEST(ParetoDist, TailIndexRecoverable) {
  // Empirical check: for Pareto(alpha), P(X > 2 x_min) = 2^-alpha.
  Rng rng(19);
  ParetoDist d(1.5, 1.0);
  const int n = 200000;
  int above = 0;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) > 2.0) ++above;
  EXPECT_NEAR(static_cast<double>(above) / n, std::pow(2.0, -1.5), 0.01);
}

TEST(ParetoDist, RejectsBadParams) {
  EXPECT_THROW(ParetoDist(0, 1), std::invalid_argument);
  EXPECT_THROW(ParetoDist(1, 0), std::invalid_argument);
}

TEST(BoundedParetoDist, StaysWithinBounds) {
  Rng rng(23);
  BoundedParetoDist d(1.2, 1.0, 100.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedParetoDist, RejectsInvertedBounds) {
  EXPECT_THROW(BoundedParetoDist(1.0, 5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDist(1.0, 5.0, 1.0), std::invalid_argument);
}

TEST(LogNormalDist, MedianMatches) {
  Rng rng(29);
  const auto d = LogNormalDist::from_median(8.0, 1.0);
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(d.sample(rng));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 8.0, 0.3);
}

TEST(LogNormalDist, AllPositive) {
  Rng rng(31);
  LogNormalDist d(0.0, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.sample(rng), 0.0);
}

TEST(ZipfDist, RankOneMostPopular) {
  Rng rng(37);
  ZipfDist d(100, 1.0);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) counts[d.sample(rng)]++;
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfDist, RanksWithinRange) {
  Rng rng(41);
  ZipfDist d(10, 1.5);
  for (int i = 0; i < 10000; ++i) {
    const auto r = d.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 10u);
  }
}

TEST(WeightedDiscrete, MatchesWeights) {
  Rng rng(43);
  const std::array<double, 3> w = {1.0, 2.0, 7.0};
  WeightedDiscrete d(w);
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[d.sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(WeightedDiscrete, ProbabilityAccessor) {
  const std::array<double, 4> w = {2.0, 0.0, 3.0, 5.0};
  WeightedDiscrete d(w);
  EXPECT_DOUBLE_EQ(d.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(d.probability(1), 0.0);
  EXPECT_DOUBLE_EQ(d.probability(2), 0.3);
  EXPECT_DOUBLE_EQ(d.probability(3), 0.5);
  EXPECT_THROW(d.probability(4), std::out_of_range);
}

TEST(WeightedDiscrete, ZeroWeightNeverSampled) {
  Rng rng(47);
  const std::array<double, 3> w = {1.0, 0.0, 1.0};
  WeightedDiscrete d(w);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(d.sample(rng), 1u);
}

TEST(WeightedDiscrete, RejectsDegenerateInputs) {
  const std::vector<double> empty;
  EXPECT_THROW(WeightedDiscrete{empty}, std::invalid_argument);
  const std::array<double, 2> neg = {1.0, -0.5};
  EXPECT_THROW(WeightedDiscrete{neg}, std::invalid_argument);
  const std::array<double, 2> zeros = {0.0, 0.0};
  EXPECT_THROW(WeightedDiscrete{zeros}, std::invalid_argument);
}

}  // namespace
}  // namespace u1
