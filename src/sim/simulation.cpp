#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/sha1.hpp"

namespace u1 {

Simulation::Simulation(const SimulationConfig& config, TraceSink& sink)
    : config_(config),
      rng_(config.seed),
      content_pool_(std::make_unique<ContentPool>(
          config.content_duplicate_prob, config.content_zipf_s,
          config.seed ^ 0xb10b)),
      user_model_(config.user_model),
      diurnal_(config.diurnal),
      bursts_(config.burst) {
  if (config.users == 0 || config.days <= 0)
    throw std::invalid_argument("SimulationConfig: users/days must be > 0");
  queue_.set_impl(engine_queue_impl());  // U1SIM_QUEUE=heap|calendar
  fan_.add(&sink);
  if (config.auto_countermeasures) {
    // Tap the record stream into the anomaly guard; purges are deferred
    // to the event loop (never re-entrantly inside a back-end call).
    guard_ = std::make_unique<AnomalyGuard>();
    guard_tap_ = std::make_unique<CallbackSink>([this](const TraceRecord& r) {
      if (pending_purge_.has_value() || r.t < 0) return;
      if (const auto culprit = guard_->observe(r)) pending_purge_ = culprit;
    });
    fan_.add(guard_tap_.get());
  }
  BackendConfig backend_cfg = config.backend;
  backend_cfg.seed = config.seed ^ 0xbac9;
  backend_ = std::make_unique<U1Backend>(backend_cfg, fan_);

  if (!config.faults.empty()) {
    const std::uint64_t fseed = effective_fault_seed(config);
    fault_schedule_ = build_fault_schedule(
        config.faults, static_cast<SimTime>(config.days) * kDay,
        backend_cfg.fleet.machines, backend_cfg.shards, fseed);
    injector_ = std::make_unique<FaultInjector>(fault_schedule_,
                                                fseed ^ 0x1f4a7);
    backend_->set_fault_injector(injector_.get());
  }
}

void Simulation::bootstrap_phase() {
  // Pre-trace history: users join with existing namespaces so day 1 is
  // not a cold start. Runs in the day before the trace window; analyzers
  // window on [0, horizon) and ignore it.
  WorkloadContext ctx;
  ctx.files = &file_model_;
  ctx.contents = content_pool_.get();
  ctx.users = &user_model_;
  ctx.transitions = &transition_model_;
  ctx.diurnal = &diurnal_;
  ctx.bursts = &bursts_;

  agents_.reserve(config_.users);
  for (std::size_t i = 0; i < config_.users; ++i) {
    const UserId uid{i + 1};
    const UserProfile profile = user_model_.sample(rng_);
    const UserAccount account = backend_->register_user(uid, -kDay);
    agents_.push_back(std::make_unique<ClientAgent>(uid, profile, account,
                                                    ctx, rng_.fork()));
  }

  // Sharing relationships (1.8% of users): owner shares the root volume
  // with a random peer.
  for (std::size_t i = 0; i < config_.users; ++i) {
    if (!agents_[i]->profile().sharer || config_.users < 2) continue;
    std::size_t peer = rng_.below(config_.users);
    if (peer == i) peer = (peer + 1) % config_.users;
    backend_->share_volume(UserId{i + 1},
                           backend_->store()
                               .shard(backend_->store().shard_of(UserId{i + 1}))
                               .list_volumes(UserId{i + 1})
                               .front()
                               .id,
                           UserId{peer + 1}, -kDay);
  }

  // Seed namespaces. Heavier users arrive with more history.
  for (std::size_t i = 0; i < config_.users; ++i) {
    auto& agent = *agents_[i];
    double mean = config_.bootstrap_files_mean;
    switch (agent.profile().user_class) {
      case UserClass::kOccasional: mean *= 0.4; break;
      case UserClass::kUploadOnly: mean *= 2.0; break;
      case UserClass::kDownloadOnly: mean *= 1.5; break;
      case UserClass::kHeavy: mean *= 4.0; break;
    }
    // Geometric-ish draw with heavy upper tail for loaded volumes
    // (Fig. 10: ~5% of volumes hold more than 1,000 files).
    double n = -mean * std::log(1.0 - rng_.uniform());
    if (rng_.chance(0.025)) n *= 40.0;
    const auto files = static_cast<std::size_t>(std::min(n, 4000.0));
    // Start well before the trace window: large namespaces take hours of
    // virtual time to upload and must not bleed into t >= 0.
    const SimTime when =
        -4 * kDay + static_cast<SimTime>(rng_.below(
                        static_cast<std::uint64_t>(2 * kDay)));
    agent.bootstrap(*backend_, when, files);
    report_.bootstrap_files += files;
  }
}

void Simulation::schedule_population_start() {
  // One pending event per agent plus maintenance/attack extras; sizing the
  // heap up front avoids the doubling reallocations during startup.
  queue_.reserve(agents_.size() + 16);
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const SimTime first = diurnal_.next_arrival(
        0, agents_[i]->profile().sessions_per_day, rng_);
    queue_.push(first, Ev{Ev::Kind::kAgent, i});
  }
  queue_.push(kHour, Ev{Ev::Kind::kMaintenance, 0});
  for (std::size_t i = 0; i < fault_schedule_.size(); ++i) {
    // End events past the horizon never fire; the run is over anyway.
    queue_.push(fault_schedule_[i].at, Ev{Ev::Kind::kFault, i});
  }
  if (config_.enable_ddos) {
    // Bot fleets scale with the simulated population so the relative
    // spike magnitudes stay comparable at any simulation size.
    const double population_scale =
        static_cast<double>(config_.users) / 10000.0;
    const auto schedule =
        paper_attack_schedule(config_.ddos_bot_scale * population_scale);
    for (std::size_t a = 0; a < schedule.size(); ++a) {
      AttackRuntime rt;
      rt.spec = schedule[a];
      attacks_.push_back(rt);
      queue_.push(schedule[a].start, Ev{Ev::Kind::kDdosStart, a});
    }
  }
}

void Simulation::launch_attack(std::size_t attack_index, SimTime now) {
  AttackRuntime& attack = attacks_[attack_index];
  ++report_.ddos_attacks;
  // The abused account: a fresh registration distributing one payload.
  const UserId account{1000000 + attack_index};
  attack.account = account;
  const UserAccount acc = backend_->register_user(account, now);
  const auto conn = backend_->connect(account, now);
  if (conn.ok()) {
    const auto mk = backend_->make_file(conn.session, acc.root_volume,
                                        acc.root_dir, "payload", "avi",
                                        conn.end);
    SimTime t = mk.end;
    if (mk.ok()) {
      t = backend_->upload(conn.session, mk.node,
                           Sha1::of("ddos-payload-" +
                                    std::to_string(attack_index)),
                           attack.spec.payload_bytes, false, mk.end)
              .end;
      attack.payload_node = mk.node;
    }
    backend_->disconnect(conn.session, t + kMinute);
  }
  // Unleash the bots, arrivals spread over the first half hour.
  const std::size_t first_bot = bots_.size();
  for (std::uint32_t b = 0; b < attack.spec.bots; ++b) {
    Bot bot;
    bot.attack = attack_index;
    bots_.push_back(bot);
    const SimTime arrive =
        now + static_cast<SimTime>(rng_.below(30ull * kMinute));
    queue_.push(arrive, Ev{Ev::Kind::kBot, first_bot + b});
  }
  // Manual response after the detection delay (§5.4) — unless the
  // automatic countermeasure is on duty.
  if (!config_.auto_countermeasures) {
    queue_.push(now + attack.spec.response_delay,
                Ev{Ev::Kind::kDdosResponse, attack_index});
  }
}

void Simulation::respond_to_attack(std::size_t attack_index, SimTime now) {
  AttackRuntime& attack = attacks_[attack_index];
  attack.purged = true;
  backend_->admin_purge_user(attack.account, now);
}

SimTime Simulation::bot_wake(std::size_t bot_index, SimTime now) {
  Bot& bot = bots_[bot_index];
  const AttackRuntime& attack = attacks_[bot.attack];

  if (bot.connected && !backend_->session_open(bot.session)) {
    // The operator response force-closed this bot's session.
    bot.connected = false;
    return now + from_seconds(rng_.uniform(30.0, 120.0));
  }
  if (bot.connected) {
    // Leech: re-download the payload a few times, then disconnect.
    for (std::uint32_t d = 0; d < attack.spec.downloads_per_connection; ++d) {
      if (attack.payload_node.is_nil()) break;
      const auto res = backend_->download(bot.session, attack.payload_node,
                                          now);
      now = res.end;
      if (!res.ok()) break;
    }
    backend_->disconnect(bot.session, now);
    bot.connected = false;
    // Next connection attempt.
    const double gap_s = 3600.0 / attack.spec.connects_per_hour *
                         rng_.uniform(0.5, 1.5);
    return now + from_seconds(gap_s);
  }

  // Try to connect with the shared credentials.
  const auto conn = backend_->connect(attack.account, now);
  if (!conn.ok()) {
    ++bot.failures;
    if (attack.purged && bot.failures > 2) return 0;  // give up
    return conn.end + from_seconds(rng_.uniform(30.0, 300.0));
  }
  bot.failures = 0;
  bot.connected = true;
  bot.session = conn.session;
  return conn.end + from_seconds(rng_.uniform(1.0, 20.0));
}

SimulationReport Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run: already ran");
  ran_ = true;

  bootstrap_phase();
  schedule_population_start();

  const SimTime horizon = static_cast<SimTime>(config_.days) * kDay;
  while (!queue_.empty() && queue_.next_time() < horizon) {
    const auto event = queue_.pop();
    const SimTime now = event.t;
    switch (event.payload.kind) {
      case Ev::Kind::kAgent: {
        ++report_.agent_wakeups;
        const SimTime next =
            agents_[event.payload.index]->on_wake(*backend_, now);
        if (next > now) queue_.push(next, event.payload);
        break;
      }
      case Ev::Kind::kBot: {
        const SimTime next = bot_wake(event.payload.index, now);
        if (next > now) queue_.push(next, event.payload);
        break;
      }
      case Ev::Kind::kMaintenance:
        backend_->maintenance(now);
        queue_.push(now + kHour, event.payload);
        break;
      case Ev::Kind::kDdosStart:
        launch_attack(event.payload.index, now);
        break;
      case Ev::Kind::kDdosResponse:
        respond_to_attack(event.payload.index, now);
        break;
      case Ev::Kind::kFault:
        backend_->apply_fault(fault_schedule_[event.payload.index], now,
                              /*emit_record=*/true);
        ++report_.fault_events;
        break;
    }
    if (pending_purge_.has_value()) {
      const UserId culprit = *pending_purge_;
      pending_purge_.reset();
      backend_->admin_purge_user(culprit, now);
      ++report_.auto_purges;
      for (std::size_t a = 0; a < attacks_.size(); ++a) {
        if (attacks_[a].account == culprit && !attacks_[a].purged) {
          attacks_[a].purged = true;
          if (report_.first_auto_response_delay == 0)
            report_.first_auto_response_delay = now - attacks_[a].spec.start;
        }
      }
    }
  }

  report_.backend = backend_->stats();
  report_.users = config_.users;
  report_.horizon = horizon;
  return report_;
}

}  // namespace u1
