# Empty compiler generated dependencies file for month_in_the_life.
# This may be replaced when dependencies are built.
