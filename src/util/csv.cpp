#include "util/csv.hpp"

#include <istream>
#include <ostream>

namespace u1 {
namespace {

bool needs_quoting(std::string_view field, char delim) {
  for (const char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_->put(delim_);
    const std::string& f = fields[i];
    if (needs_quoting(f, delim_)) {
      out_->put('"');
      for (const char c : f) {
        if (c == '"') out_->put('"');
        out_->put(c);
      }
      out_->put('"');
    } else {
      out_->write(f.data(), static_cast<std::streamsize>(f.size()));
    }
  }
  out_->put('\n');
}

bool parse_csv_line(std::string_view line, char delim,
                    std::vector<std::string>& fields) {
  fields.clear();
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && current.empty()) {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) return false;  // unterminated quote
  fields.push_back(std::move(current));
  return true;
}

bool CsvReader::next(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++rows_;
    if (parse_csv_line(line, delim_, fields)) return true;
    ++errors_;
  }
  return false;
}

}  // namespace u1
