// The API/RPC server fleet (§3.4): 6 racked machines running 8-16 API/RPC
// processes each, fronted by an HAProxy load balancer. Processes are more
// numerous than machines and migrate between them for load balancing; a
// session starts on the least-loaded machine and stays pinned to its
// process until it ends (§4).
#pragma once

#include <cstdint>
#include <vector>

#include "proto/ids.hpp"
#include "util/rng.hpp"

namespace u1 {

struct FleetConfig {
  std::size_t machines = 6;
  std::size_t processes_per_machine = 12;  // paper: 8-16
};

class ServerFleet {
 public:
  explicit ServerFleet(const FleetConfig& config, std::uint64_t seed);

  std::size_t machine_count() const noexcept { return machines_; }
  std::size_t process_count() const noexcept {
    return process_machine_.size();
  }

  /// Machine currently hosting a process.
  MachineId machine_of(ProcessId process) const;

  /// Load-balancer placement: least-loaded machine (fewest open sessions),
  /// then a uniformly random process on it. Records the session.
  struct Placement {
    MachineId machine;
    ProcessId process;
  };
  Placement place_session();

  /// Releases a session slot previously granted by place_session().
  void end_session(MachineId machine);

  std::uint64_t open_sessions(MachineId machine) const;
  std::uint64_t total_open_sessions() const noexcept;

  /// Migrates roughly `fraction` of processes to new machines — the
  /// paper's dynamic process<->machine mapping ("they can migrate between
  /// servers to balance load"). Sessions already pinned keep their
  /// (machine, process) identity; only future placements see the change.
  /// Returns how many processes moved.
  std::size_t migrate_processes(double fraction);

 private:
  std::size_t machines_;
  std::vector<MachineId> process_machine_;   // index = process id - 1
  std::vector<std::vector<ProcessId>> machine_processes_;
  std::vector<std::uint64_t> open_sessions_;
  Rng rng_;
};

}  // namespace u1
