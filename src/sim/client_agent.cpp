#include "sim/client_agent.hpp"

#include <algorithm>
#include <cmath>

namespace u1 {
namespace {

/// Short client-side pause between handshake steps.
constexpr SimTime kThinkTime = 200 * kMillisecond;

std::string random_name_hash(Rng& rng) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (char& c : out) c = kHex[rng.below(16)];
  return out;
}

}  // namespace

ClientAgent::ClientAgent(UserId user, UserProfile profile, UserAccount account,
                         WorkloadContext ctx, Rng rng)
    : user_(user),
      profile_(profile),
      account_(account),
      ctx_(ctx),
      rng_(rng) {
  volumes_.push_back(VolRec{account.root_volume, account.root_dir, false});
}

SimTime ClientAgent::schedule_reconnect(SimTime now) {
  return ctx_.diurnal->next_arrival(now, profile_.sessions_per_day, rng_);
}

SimTime ClientAgent::on_wake(U1Backend& backend, SimTime now) {
  if (connected_ && !backend.session_open(session_)) {
    // The server dropped us (process crash / machine outage): reconnect
    // after a short capped-exponential pause with seeded jitter.
    connected_ = false;
    ++reconnect_failures_;
    const double backoff_s =
        std::min(600.0, 5.0 * std::pow(2.0, reconnect_failures_ - 1) *
                            rng_.uniform(0.5, 1.5));
    return now + from_seconds(backoff_s);
  }
  if (!connected_) return connect_and_handshake(backend, now);

  // Connected: either keep working, idle out, or disconnect.
  if (now >= session_ends_) {
    backend.disconnect(session_, now);
    connected_ = false;
    return schedule_reconnect(now);
  }
  if (pending_.active) {
    // Finish the interrupted upload before anything else; retries do not
    // consume the session's op budget (they are the same logical op).
    const SimTime done = retry_pending_upload(backend, now);
    const SimTime next = done + ctx_.bursts->next_gap(rng_);
    return std::min(next, std::max(done, session_ends_));
  }
  if (ops_left_ == 0) {
    // Budget exhausted: idle (connection stays open) until session end.
    return session_ends_;
  }
  last_batch_extra_ = 0;
  const SimTime done = perform_action(backend, now);
  const std::uint64_t spent = 1 + last_batch_extra_;
  ops_left_ -= std::min(ops_left_, spent);
  const SimTime next = done + ctx_.bursts->next_gap(rng_);
  return std::min(next, std::max(done, session_ends_));
}

SimTime ClientAgent::connect_and_handshake(U1Backend& backend, SimTime now) {
  const auto conn = backend.connect(user_, now);
  if (!conn.ok()) {
    if (conn.try_again()) {
      // Load-shed by the balancer: come back sooner than after an auth
      // failure, still with capped-exponential jittered backoff.
      ++reconnect_failures_;
      const double backoff_s =
          std::min(300.0, 3.0 * std::pow(2.0, reconnect_failures_ - 1) *
                              rng_.uniform(0.5, 1.5));
      return conn.end + from_seconds(backoff_s);
    }
    ++consecutive_auth_failures_;
    // Exponential backoff, capped at ~4h; transient auth failures are
    // retried quickly by the client daemon.
    const double backoff_s = std::min(
        14400.0, 60.0 * std::pow(2.0, consecutive_auth_failures_ - 1) *
                     rng_.uniform(0.5, 1.5));
    return conn.end + from_seconds(backoff_s);
  }
  consecutive_auth_failures_ = 0;
  reconnect_failures_ = 0;
  connected_ = true;
  session_ = conn.session;

  // Session handshake: caps negotiation + volume listing (Fig. 8's
  // Authenticate -> ListVolumes -> ListShares flow).
  SimTime t = conn.end;
  t = backend.query_set_caps(session_, t).end + kThinkTime / 4;
  t = backend.list_volumes(session_, t).end + kThinkTime / 4;
  if (rng_.chance(0.85)) t = backend.list_shares(session_, t).end;
  // Re-sync some volumes via generations; occasionally a client has lost
  // its local metadata and rescans a volume from scratch (the cascade RPC
  // of Fig. 12c/13).
  for (const VolRec& vol : volumes_) {
    if (rng_.chance(0.02)) {
      t = backend.rescan_from_scratch(session_, vol.id, t + kThinkTime / 4)
              .end;
    } else if (rng_.chance(0.65)) {
      t = backend.get_delta(session_, vol.id, 0, t + kThinkTime / 4).end;
    }
  }

  // Cold or active session? (paper: only 5.57% of sessions are active.)
  // The per-user activity multiplier concentrates storage work on the
  // heavy tail of the population (1% of users -> 65% of traffic).
  const double p_active = std::min(
      0.65, profile_.active_session_prob * std::max(0.25, profile_.activity));
  const bool active = rng_.chance(p_active);
  SimTime length = ctx_.users->sample_session_length(rng_);
  if (active) {
    // Active sessions are much longer than cold ones (§7.3).
    length = std::max(length, ctx_.users->sample_session_length(rng_));
    length = std::max(length, ctx_.users->sample_session_length(rng_));
    length = std::max(length, from_seconds(600.0));
    ops_left_ = ctx_.users->sample_session_ops(profile_.user_class, rng_);
    // A very large budget needs a session long enough to drain it (the
    // heavy tail of ops/session, Fig. 16 inner plot). The mean inter-op
    // gap of the burst process is ~25s.
    const SimTime needed = from_seconds(
        std::min(4.0 * 86400.0, static_cast<double>(ops_left_) * 25.0));
    length = std::max(length, needed);
    prev_action_ = ctx_.transitions->initial(profile_.user_class, rng_);
  } else {
    ops_left_ = 0;
  }
  // Even a NAT-killed connection lives until its in-flight handshake
  // operations finish — the close record must not precede them.
  session_ends_ = std::max(now + length, t);

  if (ops_left_ > 0 || pending_.active) {
    const SimTime first = t + ctx_.bursts->next_gap(rng_) / 4;
    return std::min(first, session_ends_);
  }
  return session_ends_;
}

SimTime ClientAgent::retry_pending_upload(U1Backend& backend, SimTime now) {
  ++pending_.attempts;
  Response up;
  if (!pending_.job.is_nil()) {
    // Re-enter the uploadjob FSM at the last committed part.
    up = backend.resume_upload(session_, pending_.node, pending_.content,
                               pending_.size, pending_.is_update,
                               pending_.job, now);
    if (!up.ok() && !up.interrupted()) {
      // The job is gone (GC'd / invalid): from-scratch re-upload.
      pending_.job = UploadJobId{};
      up = backend.upload(session_, pending_.node, pending_.content,
                          pending_.size, pending_.is_update, up.end);
    }
  } else {
    up = backend.upload(session_, pending_.node, pending_.content,
                        pending_.size, pending_.is_update, now);
  }
  if (up.ok()) {
    apply_upload_success(pending_.node, pending_.content, pending_.size);
    pending_ = PendingUpload{};
    return up.end;
  }
  if (up.interrupted() && pending_.attempts < kMaxUploadAttempts) {
    pending_.job = up.job;  // refreshed, or nil for single-shot retries
    return up.end;
  }
  // Permanent failure (node gone) or attempts exhausted: give up; a
  // leftover uploadjob parks until the weekly GC reclaims it.
  pending_ = PendingUpload{};
  return up.end;
}

void ClientAgent::note_interrupted_upload(const Response& up,
                                          NodeId node,
                                          const ContentId& content,
                                          std::uint64_t size, bool is_update) {
  if (!up.interrupted() || pending_.active) return;
  pending_.active = true;
  pending_.node = node;
  pending_.content = content;
  pending_.size = size;
  pending_.is_update = is_update;
  pending_.job = up.job;
  pending_.attempts = 1;
}

void ClientAgent::apply_upload_success(NodeId node, const ContentId& content,
                                       std::uint64_t size) {
  for (auto it = files_.rbegin(); it != files_.rend(); ++it) {
    if (it->node == node) {
      it->has_content = true;
      it->content = content;
      it->size = size;
      return;
    }
  }
}

SimTime ClientAgent::perform_action(U1Backend& backend, SimTime now) {
  // Morning download bias (§5.1): clients that start with the work day
  // sync down first, shifting the R/W ratio; decays linearly to 15:00.
  // Upload-only users never sync down (their class definition).
  if (profile_.user_class != UserClass::kUploadOnly && !files_.empty() &&
      rng_.chance(ctx_.diurnal->download_bias(now))) {
    prev_action_ = ClientAction::kDownload;
    return act_download(backend, now);
  }
  prev_action_ =
      ctx_.transitions->next(prev_action_, profile_.user_class, rng_);
  switch (prev_action_) {
    case ClientAction::kUploadNew: return act_upload_new(backend, now);
    case ClientAction::kUploadUpdate: return act_upload_update(backend, now);
    case ClientAction::kDownload: return act_download(backend, now);
    case ClientAction::kUnlink: return act_unlink(backend, now);
    case ClientAction::kMove: return act_move(backend, now);
    case ClientAction::kMakeDir: return act_make_dir(backend, now);
    case ClientAction::kCreateUdf: return act_create_udf(backend, now);
    case ClientAction::kDeleteVolume: return act_delete_volume(backend, now);
    case ClientAction::kGetDelta: return act_get_delta(backend, now);
  }
  return act_get_delta(backend, now);
}

const ClientAgent::VolRec& ClientAgent::pick_volume(Rng& rng) const {
  // The root volume dominates day-to-day use.
  if (volumes_.size() == 1 || rng.chance(0.7)) return volumes_.front();
  return volumes_[1 + rng.below(volumes_.size() - 1)];
}

NodeId ClientAgent::pick_parent(const VolRec& vol, Rng& rng) const {
  if (dirs_.empty() || rng.chance(0.5)) return vol.root;
  // Try a few times to find a directory in this volume.
  for (int i = 0; i < 4; ++i) {
    const DirRec& d = dirs_[rng.below(dirs_.size())];
    if (d.volume == vol.id) return d.node;
  }
  return vol.root;
}

std::size_t ClientAgent::pick_file(bool prefer_recent, Rng& rng) const {
  if (files_.empty()) return npos;
  if (prefer_recent && rng.chance(0.6)) {
    // One of the ~12 most recently created files (directory-granularity
    // sync touches what was just written).
    const std::size_t window = std::min<std::size_t>(12, files_.size());
    return files_.size() - 1 - rng.below(window);
  }
  return rng.below(files_.size());
}

void ClientAgent::remember_download(NodeId node) {
  last_download_ = node;
  for (const NodeId& n : recent_downloads_) {
    if (n == node) return;
  }
  recent_downloads_.push_back(node);
  if (recent_downloads_.size() > 12)
    recent_downloads_.erase(recent_downloads_.begin());
}

NodeId ClientAgent::take_recent_download() {
  while (!recent_downloads_.empty()) {
    const NodeId node = recent_downloads_.back();
    recent_downloads_.pop_back();
    for (const FileRec& f : files_) {
      if (f.node == node) return node;
    }
  }
  return NodeId{};
}

SimTime ClientAgent::act_upload_new(U1Backend& backend, SimTime now) {
  const VolRec& vol = pick_volume(rng_);
  const NodeId parent = pick_parent(vol, rng_);
  // Directory-granularity sync (§6.2): dropping a folder into a synced
  // volume uploads a batch of files back to back — the Make...Make,
  // Upload...Upload runs behind the heavy self-edges of Fig. 8.
  std::size_t batch = 1;
  if (rng_.chance(0.25)) batch = 2 + rng_.below(6);
  // A folder sync spends budget proportional to its size.
  last_batch_extra_ = batch - 1;

  std::vector<std::pair<NodeId, ContentDraw>> staged;
  SimTime t = now;
  for (std::size_t i = 0; i < batch; ++i) {
    FileSpec spec = ctx_.files->sample(rng_);
    const ContentDraw content = ctx_.contents->draw(spec, rng_);
    const auto mk = backend.make_file(session_, vol.id, parent,
                                      random_name_hash(rng_),
                                      spec.extension, t);
    t = mk.end;
    if (!mk.ok()) continue;
    FileRec rec;
    rec.node = mk.node;
    rec.volume = vol.id;
    rec.parent = parent;
    rec.extension = spec.extension;
    rec.category = spec.category;
    rec.content = content.id;
    rec.size = content.size_bytes;
    rec.update_affinity = spec.update_affinity;
    rec.has_content = false;
    files_.push_back(std::move(rec));
    staged.emplace_back(mk.node, content);
  }
  for (const auto& [node, content] : staged) {
    const auto up = backend.upload(session_, node, content.id,
                                   content.size_bytes, false, t);
    t = up.end;
    if (up.ok()) {
      // The staged records are at the tail of files_.
      for (auto it = files_.rbegin(); it != files_.rend(); ++it) {
        if (it->node == node) {
          it->has_content = true;
          break;
        }
      }
    } else {
      note_interrupted_upload(up, node, content.id, content.size_bytes,
                              false);
    }
  }
  return t;
}

SimTime ClientAgent::act_upload_update(U1Backend& backend, SimTime now) {
  // Prefer files that are edited often (code, docs) and concentrate on
  // the handful touched most recently — editing sessions revisit the same
  // file repeatedly (the WAW dominance of Fig. 3a).
  std::size_t idx = npos;
  if (!recent_downloads_.empty() && rng_.chance(0.45)) {
    // Read-then-edit: open a document, change it, save (WAR).
    const NodeId recent =
        recent_downloads_[rng_.below(recent_downloads_.size())];
    for (std::size_t i = files_.size(); i-- > 0;) {
      if (files_[i].node == recent && files_[i].has_content) {
        idx = i;
        break;
      }
    }
  }
  for (int attempt = 0; attempt < 4 && idx == npos; ++attempt) {
    std::size_t cand = npos;
    if (!files_.empty()) {
      const std::size_t window = std::min<std::size_t>(4, files_.size());
      cand = rng_.chance(0.75)
                 ? files_.size() - 1 - rng_.below(window)
                 : pick_file(true, rng_);
    }
    if (cand == npos) break;
    if (files_[cand].has_content &&
        rng_.chance(std::max(0.15, files_[cand].update_affinity)))
      idx = cand;
  }
  if (idx == npos) {
    // Nothing worth editing: behave like a fresh upload.
    return act_upload_new(backend, now);
  }
  FileRec& rec = files_[idx];
  // A third of "writes" to existing files carry unchanged bytes — the
  // client re-uploads after an mtime touch or a rescan; the server sees
  // the same hash (dedup hit, zero wire traffic) and it is NOT an update
  // in the paper's sense ("distinct hash/size").
  if (rng_.chance(0.5) && !(rec.content == ContentId{})) {
    const auto up = backend.upload(session_, rec.node, rec.content, rec.size,
                                   /*is_update=*/false, now);
    if (!up.ok())
      note_interrupted_upload(up, rec.node, rec.content, rec.size, false);
    return up.end;
  }
  FileSpec spec;
  spec.extension = rec.extension;
  spec.category = rec.category;
  spec.size_bytes = rec.size;
  const std::uint64_t new_size = ctx_.files->sample_update_size(spec, rng_);
  const ContentDraw content = ctx_.contents->draw_update(new_size, rng_);
  const auto up = backend.upload(session_, rec.node, content.id, new_size,
                                 /*is_update=*/true, now);
  if (up.ok()) {
    rec.size = new_size;
    rec.content = content.id;
  } else {
    note_interrupted_upload(up, rec.node, content.id, new_size, true);
  }
  return up.end;
}

SimTime ClientAgent::act_download(U1Backend& backend, SimTime now) {
  // Downloads skew to small files even more than uploads (Fig. 2b: 89%
  // of download ops touch files < 0.5MB) while the occasional large
  // download still dominates download *bytes* (88% from >25MB files):
  // mostly pick small files, but 15% of the time pick anything.
  std::size_t idx = npos;
  if (rng_.chance(0.10)) {
    // Fetch of a big item (movie, backup archive): size-weighted pick —
    // rare in ops, dominant in bytes (Fig. 2b). Weighted reservoir scan.
    double cum = 0;
    for (std::size_t i = 0; i < files_.size(); ++i) {
      if (!files_[i].has_content || files_[i].size == 0) continue;
      cum += static_cast<double>(files_[i].size);
      if (rng_.uniform() < static_cast<double>(files_[i].size) / cum)
        idx = i;
    }
  } else {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::size_t cand = pick_file(false, rng_);
      if (cand == npos || !files_[cand].has_content) continue;
      idx = cand;
      if (files_[cand].size < 512 * 1024) break;
    }
  }
  if (idx == npos) return act_get_delta(backend, now);
  remember_download(files_[idx].node);
  return backend.download(session_, files_[idx].node, now).end;
}

SimTime ClientAgent::act_unlink(U1Backend& backend, SimTime now) {
  // Occasionally remove a whole directory (cascade); usually one file.
  if (!dirs_.empty() && rng_.chance(0.14)) {
    const std::size_t di = rng_.below(dirs_.size());
    const NodeId dir = dirs_[di].node;
    const auto res = backend.unlink(session_, dir, now);
    forget_dir(dir);
    return res.end;
  }
  std::size_t idx = npos;
  if (rng_.chance(0.75)) {
    // Read-then-delete: cleaning up something inspected earlier (DAR).
    const NodeId recent = take_recent_download();
    if (!recent.is_nil()) {
      for (std::size_t i = files_.size(); i-- > 0;) {
        if (files_[i].node == recent) {
          idx = i;
          break;
        }
      }
    }
  }
  if (idx == npos) idx = pick_file(true, rng_);
  if (idx == npos) return act_get_delta(backend, now);
  const NodeId node = files_[idx].node;
  if (node == last_download_) last_download_ = NodeId{};
  const auto res = backend.unlink(session_, node, now);
  files_.erase(files_.begin() + static_cast<std::ptrdiff_t>(idx));
  return res.end;
}

SimTime ClientAgent::act_move(U1Backend& backend, SimTime now) {
  const std::size_t idx = pick_file(false, rng_);
  if (idx == npos) return act_get_delta(backend, now);
  FileRec& rec = files_[idx];
  // Find a destination directory in the same volume.
  NodeId dest;
  const VolRec* vol = nullptr;
  for (const VolRec& v : volumes_) {
    if (v.id == rec.volume) {
      vol = &v;
      break;
    }
  }
  if (vol == nullptr) return act_get_delta(backend, now);
  dest = pick_parent(*vol, rng_);
  if (dest == rec.parent) dest = vol->root;
  if (dest == rec.parent) return act_get_delta(backend, now);
  const auto res = backend.move(session_, rec.node, dest, now);
  if (res.ok()) rec.parent = dest;
  return res.end;
}

SimTime ClientAgent::act_make_dir(U1Backend& backend, SimTime now) {
  const VolRec& vol = pick_volume(rng_);
  const auto mk = backend.make_dir(session_, vol.id, vol.root,
                                   random_name_hash(rng_), now);
  if (mk.ok()) dirs_.push_back(DirRec{mk.node, vol.id});
  return mk.end;
}

SimTime ClientAgent::act_create_udf(U1Backend& backend, SimTime now) {
  const std::size_t udfs = volumes_.size() - 1;
  if (udfs >= profile_.udf_volumes) return act_make_dir(backend, now);
  const auto res = backend.create_udf(session_, now);
  if (res.ok()) volumes_.push_back(VolRec{res.volume, res.root_dir, true});
  return res.end;
}

SimTime ClientAgent::act_delete_volume(U1Backend& backend, SimTime now) {
  // Only UDFs can be deleted, and users rarely do it.
  std::vector<std::size_t> udf_indices;
  for (std::size_t i = 1; i < volumes_.size(); ++i)
    if (volumes_[i].is_udf) udf_indices.push_back(i);
  if (udf_indices.empty() || !rng_.chance(0.5))
    return act_unlink(backend, now);
  const std::size_t vi = udf_indices[rng_.below(udf_indices.size())];
  const VolumeId vol = volumes_[vi].id;
  const auto res = backend.delete_volume(session_, vol, now);
  forget_volume(vol);
  return res.end;
}

SimTime ClientAgent::act_get_delta(U1Backend& backend, SimTime now) {
  const VolRec& vol = pick_volume(rng_);
  return backend.get_delta(session_, vol.id, 0, now).end;
}

void ClientAgent::forget_dir(NodeId dir) {
  files_.erase(std::remove_if(files_.begin(), files_.end(),
                              [&](const FileRec& f) {
                                return f.parent == dir;
                              }),
               files_.end());
  dirs_.erase(std::remove_if(dirs_.begin(), dirs_.end(),
                             [&](const DirRec& d) { return d.node == dir; }),
              dirs_.end());
}

void ClientAgent::forget_volume(VolumeId volume) {
  files_.erase(std::remove_if(files_.begin(), files_.end(),
                              [&](const FileRec& f) {
                                return f.volume == volume;
                              }),
               files_.end());
  dirs_.erase(std::remove_if(dirs_.begin(), dirs_.end(),
                             [&](const DirRec& d) {
                               return d.volume == volume;
                             }),
              dirs_.end());
  volumes_.erase(std::remove_if(volumes_.begin(), volumes_.end(),
                                [&](const VolRec& v) {
                                  return v.id == volume;
                                }),
                 volumes_.end());
}

void ClientAgent::bootstrap(U1Backend& backend, SimTime now, std::size_t n) {
  if (n == 0 && profile_.udf_volumes == 0) return;
  const auto conn = backend.connect(user_, now);
  if (!conn.ok()) return;
  connected_ = true;
  session_ = conn.session;
  SimTime t = conn.end;
  // Pre-existing UDFs for users who have them.
  const std::uint32_t pre_udfs =
      std::min<std::uint32_t>(profile_.udf_volumes, 3);
  for (std::uint32_t i = 0; i < pre_udfs; ++i) {
    const auto res = backend.create_udf(session_, t);
    if (res.ok()) volumes_.push_back(VolRec{res.volume, res.root_dir, true});
    t = res.end;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (t >= -2 * kHour) break;  // never bleed into the trace window
    if (rng_.chance(0.15)) t = act_make_dir(backend, t);
    t = act_upload_new(backend, t);
  }
  backend.disconnect(session_, std::min(t, -kHour));
  connected_ = false;
}

}  // namespace u1
