// Fig. 16: session length CDF (all vs active sessions) and storage
// operations per active session.
#include "analysis/sessions.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  SessionAnalyzer sessions(0, cfg.days * kDay);
  auto sim = run_into(sessions, cfg);

  header("Fig 16", "Session lengths and storage operations per session");
  row("sessions shorter than 1 second", 0.32,
      sessions.fraction_shorter_than(kSecond));
  row("sessions shorter than 8 hours", 0.97,
      sessions.fraction_shorter_than(8 * kHour));
  row("active sessions (>=1 storage op)", 0.0557,
      sessions.active_session_fraction());

  Ecdf all{std::vector<double>(sessions.session_lengths())};
  std::printf("\n  session length CDF (seconds):\n");
  std::printf("  %-8s %10s", "x", "all");
  const bool have_active = sessions.active_session_lengths().size() > 10;
  if (have_active) std::printf(" %10s", "active");
  std::printf("\n");
  Ecdf active = have_active
                    ? Ecdf{std::vector<double>(
                          sessions.active_session_lengths())}
                    : all;
  for (const auto& [label, x] :
       std::vector<std::pair<const char*, double>>{
           {"0.01s", 0.01}, {"1s", 1},      {"60s", 60},  {"1h", 3600},
           {"8h", 28800},   {"1d", 86400},  {"1w", 604800}}) {
    std::printf("  %-8s %10.3f", label, all.at(x));
    if (have_active) std::printf(" %10.3f", active.at(x));
    std::printf("\n");
  }

  if (!sessions.ops_per_active_session().empty()) {
    Ecdf ops{std::vector<double>(sessions.ops_per_active_session())};
    std::printf("\n  storage ops per active session:\n");
    row("80th percentile (paper: <= 92 ops)", 92.0, ops.quantile(0.8));
    row("ops carried by busiest 20% of sessions", 0.967,
        sessions.top_sessions_op_share(0.2));
  }
  note("paper: domestic working habits dominate; NAT/firewalls force many "
       "sub-second reconnects; cold sessions waste server connections");
  return 0;
}
