// Integration: run one mid-size simulation and check that every analyzer
// reproduces the paper's qualitative findings on the synthetic trace.
// The simulation runs once per test binary (SetUpTestSuite) and its
// records are replayed into each analyzer under test.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/burstiness.hpp"
#include "analysis/ddos_detect.hpp"
#include "analysis/dedup.hpp"
#include "analysis/file_dependencies.hpp"
#include "analysis/file_types.hpp"
#include "analysis/findings.hpp"
#include "analysis/load_balance.hpp"
#include "analysis/node_lifetime.hpp"
#include "analysis/op_mix.hpp"
#include "analysis/rpc_perf.hpp"
#include "analysis/sessions.hpp"
#include "analysis/trace_summary.hpp"
#include "analysis/traffic.hpp"
#include "analysis/transition_graph.hpp"
#include "analysis/users.hpp"
#include "analysis/volumes.hpp"
#include "sim/simulation.hpp"
#include "stats/ecdf.hpp"
#include "stats/summary.hpp"

namespace u1 {
namespace {

class AnalysisIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sink_ = new InMemorySink();
    SimulationConfig cfg;
    cfg.users = 4000;
    cfg.days = 14;  // covers both January attacks
    cfg.seed = 1234;
    cfg.bootstrap_files_mean = 8.0;
    cfg.enable_ddos = true;
    cfg.ddos_bot_scale = 1.0;  // auto-scaled by population inside the sim
    sim_ = new Simulation(cfg, *sink_);
    sim_->run();
    horizon_ = cfg.days * kDay;
  }

  static void TearDownTestSuite() {
    delete sim_;
    delete sink_;
    sim_ = nullptr;
    sink_ = nullptr;
  }

  template <typename Analyzer>
  static void replay(Analyzer& a) {
    for (const TraceRecord& r : sink_->records()) a.append(r);
  }

  static InMemorySink* sink_;
  static Simulation* sim_;
  static SimTime horizon_;
};

InMemorySink* AnalysisIntegration::sink_ = nullptr;
Simulation* AnalysisIntegration::sim_ = nullptr;
SimTime AnalysisIntegration::horizon_ = 0;

TEST_F(AnalysisIntegration, Fig2aTrafficDiurnalSwing) {
  TrafficAnalyzer traffic(0, horizon_);
  replay(traffic);
  EXPECT_GT(traffic.upload_ops(), 1000u);
  // Paper: up to 10x day/night swing; accept anything clearly diurnal.
  EXPECT_GT(traffic.diurnal_swing(), 3.0);
}

TEST_F(AnalysisIntegration, Fig2bSizeCategories) {
  TrafficAnalyzer traffic(0, horizon_);
  replay(traffic);
  // Most operations involve small files, most bytes involve large files.
  const auto& ops = traffic.upload_ops_by_size();
  const auto& bytes = traffic.upload_bytes_by_size();
  EXPECT_GT(ops.fraction(0), 0.6);    // <0.5MB ops dominate (paper 84.3%)
  EXPECT_GT(bytes.fraction(4), 0.3);  // >25MB bytes dominate (paper 79.3%)
  EXPECT_LT(bytes.fraction(0), 0.25);
}

TEST_F(AnalysisIntegration, Fig2cRwRatioPattern) {
  TrafficAnalyzer traffic(0, horizon_);
  replay(traffic);
  const auto box = traffic.rw_boxplot();
  // Slightly read-dominated workload around 1 (paper median 1.14).
  EXPECT_GT(box.median, 0.4);
  EXPECT_LT(box.median, 3.0);
  // R/W ratios are NOT independent: the ACF has significant structure
  // with daily periodicity (positive lag-24 correlation).
  const auto acf = traffic.rw_acf(100);
  EXPECT_GT(acf.significant_lags, 5u);
  EXPECT_GT(acf.acf[24], acf.confidence_bound);
}

TEST_F(AnalysisIntegration, Fig2UpdateShares) {
  TrafficAnalyzer traffic(0, horizon_);
  replay(traffic);
  // Paper: 10.05% of uploads are updates carrying 18.47% of traffic.
  EXPECT_GT(traffic.update_op_fraction(), 0.03);
  EXPECT_LT(traffic.update_op_fraction(), 0.30);
  EXPECT_GT(traffic.update_traffic_fraction(), 0.02);
}

TEST_F(AnalysisIntegration, Fig3DependenciesShape) {
  FileDependencyAnalyzer deps;
  replay(deps);
  // WAW dominates the after-write family (paper: 44%).
  EXPECT_GT(deps.family_share(FileDependency::kWAW),
            deps.family_share(FileDependency::kDAW));
  // RAR dominates the after-read family (paper: 66%).
  EXPECT_GT(deps.family_share(FileDependency::kRAR),
            deps.family_share(FileDependency::kWAR));
  // 80% of WAW gaps under an hour would need exact calibration; check
  // the majority are short (bursty editing).
  Ecdf waw{std::vector<double>(deps.times(FileDependency::kWAW))};
  EXPECT_GT(waw.at(3600.0), 0.5);
  // Downloads-per-file has a tail.
  const auto downloads = deps.downloads_per_file();
  ASSERT_FALSE(downloads.empty());
  Ecdf dl{std::vector<double>(downloads)};
  EXPECT_GT(dl.max(), 5.0);
}

TEST_F(AnalysisIntegration, Fig3cLifetimes) {
  NodeLifetimeAnalyzer life;
  replay(life);
  ASSERT_GT(life.files_created(), 500u);
  const double within_month = life.file_deleted_fraction(30 * kDay);
  // Paper: 28.9% of new files deleted within the month. Accept a band.
  EXPECT_GT(within_month, 0.05);
  EXPECT_LT(within_month, 0.6);
  // Deletions shortly after creation exist (paper: 17.1% within 8h).
  EXPECT_GT(life.file_deleted_fraction(8 * kHour), 0.01);
}

TEST_F(AnalysisIntegration, Fig4aDedup) {
  DedupAnalyzer dedup;
  replay(dedup);
  // Paper: dr = 0.171, ~80% of hashes unique.
  EXPECT_GT(dedup.dedup_ratio(), 0.08);
  EXPECT_LT(dedup.dedup_ratio(), 0.30);
  EXPECT_GT(dedup.unique_fraction(), 0.6);
  // Long tail: some hash has many copies.
  const auto copies = dedup.copies_per_hash();
  Ecdf c{std::vector<double>(copies)};
  EXPECT_GT(c.max(), 10.0);
}

TEST_F(AnalysisIntegration, Fig4bSizes) {
  FileTypeAnalyzer types;
  replay(types);
  // Paper: 90% of files < 1MB.
  EXPECT_GT(types.fraction_below(1024.0 * 1024.0), 0.8);
  // mp3 files are much bigger than code files.
  const auto mp3 = types.sizes_of("mp3");
  const auto py = types.sizes_of("py");
  if (mp3.size() > 20 && py.size() > 20) {
    EXPECT_GT(median_of(mp3), 20.0 * median_of(py));
  }
}

TEST_F(AnalysisIntegration, Fig4cCategoryShares) {
  FileTypeAnalyzer types;
  replay(types);
  const auto shares = types.category_shares();
  double code_files = 0, av_files = 0, av_storage = 0, code_storage = 0;
  for (const auto& s : shares) {
    if (s.category == FileCategory::kCode) {
      code_files = s.file_share;
      code_storage = s.storage_share;
    }
    if (s.category == FileCategory::kAudioVideo) {
      av_files = s.file_share;
      av_storage = s.storage_share;
    }
  }
  // Code: many files, little storage. Audio/Video: few files, much storage.
  EXPECT_GT(code_files, av_files);
  EXPECT_GT(av_storage, code_storage);
}

TEST_F(AnalysisIntegration, Fig5DdosDetection) {
  DdosAnalyzer ddos(0, horizon_);
  replay(ddos);
  const auto attacks = ddos.detect();
  // Jan 15 + Jan 16 fall inside the 14-day window.
  EXPECT_GE(ddos.attack_days(), 2u);
  ASSERT_GE(attacks.size(), 1u);
  // The session/auth spike is in the paper's 5-15x ballpark.
  double max_mult = 0;
  for (const auto& a : attacks) max_mult = std::max(max_mult, a.peak_multiplier);
  EXPECT_GT(max_mult, 4.0);
}

TEST_F(AnalysisIntegration, Fig6OnlineVsActive) {
  UserActivityAnalyzer users(0, horizon_);
  replay(users);
  users.finalize();
  const auto online = users.online_users_hourly();
  const auto active = users.active_users_hourly();
  double online_peak = 0, active_peak = 0;
  for (const double v : online) online_peak = std::max(online_peak, v);
  for (const double v : active) active_peak = std::max(active_peak, v);
  EXPECT_GT(online_peak, 0);
  // Online users clearly outnumber active ones (paper: 3.5%-16%).
  EXPECT_GT(online_peak, 3.0 * active_peak);
}

TEST_F(AnalysisIntegration, Fig7TrafficSkew) {
  UserActivityAnalyzer users(0, horizon_);
  replay(users);
  users.finalize();
  // Paper: Gini ~0.89; minority of users transfer anything at all.
  EXPECT_GT(users.upload_lorenz().gini, 0.7);
  EXPECT_GT(users.download_lorenz().gini, 0.7);
  EXPECT_LT(users.downloaders_fraction(), 0.6);
  EXPECT_GT(users.top_traffic_share(0.01), 0.2);
  const auto classes = users.classify_users();
  // Occasional users dominate (paper: 85.8%).
  EXPECT_GT(classes.occasional, 0.5);
  EXPECT_NEAR(classes.occasional + classes.upload_only +
                  classes.download_only + classes.heavy,
              1.0, 1e-9);
}

TEST_F(AnalysisIntegration, Fig7aOpMix) {
  OpMixAnalyzer mix;
  replay(mix);
  EXPECT_TRUE(mix.data_ops_dominate());
  EXPECT_GT(mix.count(ApiOp::kGetContent), 0u);
  EXPECT_GT(mix.count(ApiOp::kPutContent), 0u);
  EXPECT_GT(mix.open_sessions(), 1000u);
}

TEST_F(AnalysisIntegration, Fig8Transitions) {
  TransitionGraphAnalyzer graph;
  replay(graph);
  EXPECT_GT(graph.total_transitions(), 1000u);
  // Transfers repeat: a transfer is most likely followed by a transfer.
  const double down_down = graph.self_loop(ApiOp::kGetContent);
  EXPECT_GT(down_down, 0.25);
  const auto edges = graph.edges();
  ASSERT_FALSE(edges.empty());
  EXPECT_GE(edges.front().global_probability, 0.02);
}

TEST_F(AnalysisIntegration, Fig9Burstiness) {
  BurstinessAnalyzer bursts;
  replay(bursts);
  ASSERT_GT(bursts.upload_gaps().size(), 500u);
  // Far from Poisson.
  EXPECT_GT(bursts.upload_cv2(), 3.0);
  const auto fit = bursts.upload_fit();
  EXPECT_GT(fit.alpha, 1.0);
  EXPECT_LT(fit.alpha, 2.6);
}

TEST_F(AnalysisIntegration, Fig10VolumeContents) {
  const auto stats = analyze_volume_contents(sim_->backend().store());
  ASSERT_GT(stats.files_dirs.size(), 500u);
  // Strong files/dirs correlation (paper: 0.998).
  EXPECT_GT(stats.pearson_files_dirs, 0.5);
  EXPECT_GT(stats.volumes_with_file_share, 0.3);
}

TEST_F(AnalysisIntegration, Fig11Ownership) {
  const auto stats = analyze_volume_ownership(sim_->backend().store(), 1200);
  // Paper: 58% of users have UDFs; 1.8% have shares.
  EXPECT_GT(stats.users_with_udf, 0.35);
  EXPECT_LT(stats.users_with_udf, 0.8);
  EXPECT_LT(stats.users_with_share, 0.1);
}

TEST_F(AnalysisIntegration, Fig12RpcTails) {
  RpcPerfAnalyzer rpcs;
  replay(rpcs);
  for (const RpcOp op : {RpcOp::kMakeFile, RpcOp::kGetUserIdFromToken}) {
    ASSERT_GT(rpcs.count(op), 100u) << to_string(op);
    const double tail = rpcs.tail_fraction(op);
    EXPECT_GT(tail, 0.03) << to_string(op);
    EXPECT_LT(tail, 0.3) << to_string(op);
  }
}

TEST_F(AnalysisIntegration, Fig13Scatter) {
  RpcPerfAnalyzer rpcs;
  replay(rpcs);
  const auto scatter = rpcs.scatter();
  ASSERT_GT(scatter.size(), 8u);
  double read_median = 0, cascade_median = 0;
  for (const auto& p : scatter) {
    if (p.op == RpcOp::kListVolumes) read_median = p.median_s;
    if (p.op == RpcOp::kDeleteVolume) cascade_median = p.median_s;
  }
  ASSERT_GT(read_median, 0);
  // Cascades are more than an order of magnitude slower than fast reads.
  EXPECT_GT(cascade_median, 10.0 * read_median);
}

TEST_F(AnalysisIntegration, Fig14LoadBalance) {
  LoadBalanceAnalyzer load(0, horizon_);
  replay(load);
  // Short-window shard imbalance far exceeds the long-term one.
  EXPECT_GT(load.shard_short_term_cv(), load.shard_long_term_cv());
  // Absolute long-term imbalance shrinks with population; at 1200 users
  // the heavy-tailed per-user activity leaves visible imbalance.
  EXPECT_LT(load.shard_long_term_cv(), 0.9);
  EXPECT_GT(load.api_short_term_cv(), 0.0);
}

TEST_F(AnalysisIntegration, Fig15AuthActivity) {
  SessionAnalyzer sessions(0, horizon_);
  replay(sessions);
  // Paper: 2.76% auth failures.
  EXPECT_GT(sessions.auth_failure_fraction(), 0.005);
  EXPECT_LT(sessions.auth_failure_fraction(), 0.15);
}

TEST_F(AnalysisIntegration, Fig16Sessions) {
  SessionAnalyzer sessions(0, horizon_);
  replay(sessions);
  ASSERT_GT(sessions.sessions_closed(), 1000u);
  // Paper: 32% < 1s, 97% < 8h, 5.57% active.
  EXPECT_GT(sessions.fraction_shorter_than(kSecond), 0.15);
  EXPECT_GT(sessions.fraction_shorter_than(8 * kHour), 0.85);
  EXPECT_LT(sessions.active_session_fraction(), 0.3);
  // Ops/session heavy tail: top 20% of active sessions carry the bulk.
  EXPECT_GT(sessions.top_sessions_op_share(0.2), 0.6);
}

TEST_F(AnalysisIntegration, Table3Summary) {
  TraceSummaryAnalyzer summary(horizon_);
  replay(summary);
  const auto s = summary.summary();
  EXPECT_EQ(s.days, 14);
  EXPECT_GT(s.unique_users, 1000u);
  EXPECT_GT(s.unique_files, 1000u);
  EXPECT_GT(s.sessions, 1000u);
  EXPECT_GT(s.transfer_ops, 1000u);
  EXPECT_GT(s.upload_bytes, 0u);
  EXPECT_GT(s.download_bytes, 0u);
}

TEST_F(AnalysisIntegration, Table1Findings) {
  TrafficAnalyzer traffic(0, horizon_);
  FileTypeAnalyzer types;
  DedupAnalyzer dedup;
  DdosAnalyzer ddos(0, horizon_);
  UserActivityAnalyzer users(0, horizon_);
  BurstinessAnalyzer bursts;
  RpcPerfAnalyzer rpcs;
  LoadBalanceAnalyzer load(0, horizon_);
  SessionAnalyzer sessions(0, horizon_);
  for (const TraceRecord& r : sink_->records()) {
    traffic.append(r);
    types.append(r);
    dedup.append(r);
    ddos.append(r);
    users.append(r);
    bursts.append(r);
    rpcs.append(r);
    load.append(r);
    sessions.append(r);
  }
  users.finalize();
  const auto findings = extract_findings(types, traffic, dedup, ddos, users,
                                         bursts, rpcs, load, sessions);
  ASSERT_EQ(findings.size(), 10u);
  int holds = 0;
  for (const auto& f : findings) {
    if (f.shape_holds) ++holds;
  }
  // At this small scale every qualitative finding should reproduce; allow
  // one marginal miss.
  EXPECT_GE(holds, 9) << [&] {
    std::string misses;
    for (const auto& f : findings)
      if (!f.shape_holds) misses += f.id + " ";
    return misses;
  }();
}

}  // namespace
}  // namespace u1
