file(REMOVE_RECURSE
  "CMakeFiles/u1trace.dir/u1trace_main.cpp.o"
  "CMakeFiles/u1trace.dir/u1trace_main.cpp.o.d"
  "u1trace"
  "u1trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
