# Empty compiler generated dependencies file for bench_fig02a_traffic_timeseries.
# This may be replaced when dependencies are built.
