#include "store/shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {
namespace {

void swap_remove(std::vector<NodeId>& v, const NodeId& id) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == id) {
      v[i] = v.back();
      v.pop_back();
      return;
    }
  }
}

}  // namespace

Volume& Shard::create_user(UserId user, SimTime now, Rng& rng) {
  if (users_.contains(user))
    throw std::logic_error("Shard::create_user: user already exists");
  users_.emplace(user, User{user, now});

  Volume vol;
  vol.id = Uuid::v4(rng);
  vol.owner = user;
  vol.kind = VolumeKind::kRoot;
  vol.created_at = now;

  Node root;
  root.id = Uuid::v4(rng);
  root.volume = vol.id;
  root.parent = Uuid::nil();
  root.kind = NodeKind::kDirectory;
  root.owner = user;
  root.created_at = now;
  vol.root_dir = root.id;

  nodes_.emplace(root.id, root);
  nodes_by_volume_[vol.id].push_back(root.id);
  children_[root.id];  // materialize empty child list
  auto [it, _] = volumes_.emplace(vol.id, vol);
  volumes_by_user_[user].push_back(vol.id);
  return it->second;
}

bool Shard::has_user(UserId user) const noexcept {
  return users_.contains(user);
}

std::optional<User> Shard::get_user(UserId user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return std::nullopt;
  return it->second;
}

Volume& Shard::create_udf(UserId user, SimTime now, Rng& rng) {
  if (!users_.contains(user))
    throw std::out_of_range("Shard::create_udf: unknown user");
  Volume vol;
  vol.id = Uuid::v4(rng);
  vol.owner = user;
  vol.kind = VolumeKind::kUdf;
  vol.created_at = now;

  Node root;
  root.id = Uuid::v4(rng);
  root.volume = vol.id;
  root.parent = Uuid::nil();
  root.kind = NodeKind::kDirectory;
  root.owner = user;
  root.created_at = now;
  vol.root_dir = root.id;

  nodes_.emplace(root.id, root);
  nodes_by_volume_[vol.id].push_back(root.id);
  children_[root.id];
  auto [it, _] = volumes_.emplace(vol.id, vol);
  volumes_by_user_[user].push_back(vol.id);
  return it->second;
}

std::vector<Volume> Shard::list_volumes(UserId user) const {
  std::vector<Volume> out;
  const auto it = volumes_by_user_.find(user);
  if (it == volumes_by_user_.end()) return out;
  out.reserve(it->second.size());
  for (const VolumeId& vid : it->second) {
    const auto vit = volumes_.find(vid);
    if (vit != volumes_.end()) out.push_back(vit->second);
  }
  return out;
}

const Volume* Shard::find_volume(VolumeId id) const {
  const auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : &it->second;
}

Volume* Shard::find_volume(VolumeId id) {
  const auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : &it->second;
}

Volume& Shard::root_volume(UserId user) {
  const auto it = volumes_by_user_.find(user);
  if (it == volumes_by_user_.end() || it->second.empty())
    throw std::out_of_range("Shard::root_volume: unknown user");
  // The root volume is always the first created.
  return volumes_.at(it->second.front());
}

void Shard::collect_subtree(NodeId id, std::vector<NodeId>& out) const {
  out.push_back(id);
  const auto it = children_.find(id);
  if (it == children_.end()) return;
  for (const NodeId& child : it->second) collect_subtree(child, out);
}

std::vector<ContentId> Shard::delete_volume(VolumeId id) {
  const auto vit = volumes_.find(id);
  if (vit == volumes_.end())
    throw std::out_of_range("Shard::delete_volume: unknown volume");
  if (vit->second.kind == VolumeKind::kRoot)
    throw std::invalid_argument("Shard::delete_volume: cannot delete root");

  std::vector<NodeId> subtree;
  collect_subtree(vit->second.root_dir, subtree);
  std::vector<ContentId> released;
  for (const NodeId& nid : subtree) {
    const auto nit = nodes_.find(nid);
    if (nit == nodes_.end()) continue;
    if (nit->second.kind == NodeKind::kFile &&
        !(nit->second.content == ContentId{}))
      released.push_back(nit->second.content);
    children_.erase(nid);
    nodes_.erase(nit);
  }
  nodes_by_volume_.erase(id);
  auto& user_vols = volumes_by_user_[vit->second.owner];
  user_vols.erase(std::remove(user_vols.begin(), user_vols.end(), id),
                  user_vols.end());
  remove_grants_for_volume(id);
  volumes_.erase(vit);
  return released;
}

void Shard::shed_user_namespace(UserId user) {
  const auto vols = volumes_by_user_.find(user);
  if (vols == volumes_by_user_.end()) return;
  for (const VolumeId& vol : vols->second) {
    const auto it = nodes_by_volume_.find(vol);
    if (it == nodes_by_volume_.end()) continue;
    // Straight row surgery: no dedup release, no generation bumps — the
    // registry must end up byte-identical to an engine that kept the rows.
    for (const NodeId& nid : it->second) {
      nodes_.erase(nid);
      children_.erase(nid);
    }
    nodes_by_volume_.erase(it);
  }
}

Node& Shard::make_node(UserId user, VolumeId volume, NodeId parent,
                       NodeKind kind, std::string name_hash,
                       std::string extension, SimTime now, Rng& rng) {
  const auto vit = volumes_.find(volume);
  if (vit == volumes_.end())
    throw std::out_of_range("Shard::make_node: unknown volume");
  const auto pit = nodes_.find(parent);
  if (pit == nodes_.end())
    throw std::out_of_range("Shard::make_node: unknown parent");
  if (pit->second.kind != NodeKind::kDirectory)
    throw std::invalid_argument("Shard::make_node: parent is not a dir");
  if (pit->second.volume != volume)
    throw std::invalid_argument("Shard::make_node: parent in other volume");

  Node node;
  node.id = Uuid::v4(rng);
  node.volume = volume;
  node.parent = parent;
  node.kind = kind;
  node.owner = user;
  node.name_hash = std::move(name_hash);  // unique per node — never interned
  node.extension = intern_extension(std::move(extension));
  node.created_at = now;
  node.generation = ++vit->second.generation;

  auto [it, _] = nodes_.emplace(node.id, std::move(node));
  auto& vol_index = nodes_by_volume_[volume];
  if (vol_index.capacity() == 0) vol_index.reserve(16);
  vol_index.push_back(it->first);
  auto& siblings = children_[parent];
  if (siblings.capacity() == 0) siblings.reserve(8);
  siblings.push_back(it->first);
  if (kind == NodeKind::kDirectory) children_[it->first];
  return it->second;
}

const std::string& Shard::intern_extension(std::string s) {
  return *extensions_.emplace(std::move(s)).first;
}

const Node* Shard::find_node(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Node* Shard::find_node(NodeId id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<NodeId> Shard::children_of(NodeId dir) const {
  const auto it = children_.find(dir);
  return it == children_.end() ? std::vector<NodeId>{} : it->second;
}

std::vector<ContentId> Shard::unlink_node(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end())
    throw std::out_of_range("Shard::unlink_node: unknown node");
  if (it->second.parent.is_nil())
    throw std::invalid_argument("Shard::unlink_node: cannot unlink a volume root");

  // Bump the volume generation so deltas notice the removal.
  const auto vit = volumes_.find(it->second.volume);
  if (vit != volumes_.end()) ++vit->second.generation;

  std::vector<NodeId> subtree;
  collect_subtree(id, subtree);

  // Detach from parent's child list.
  auto& siblings = children_[it->second.parent];
  siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                 siblings.end());

  std::vector<ContentId> released;
  auto& vol_index = nodes_by_volume_[it->second.volume];
  for (const NodeId& nid : subtree) {
    const auto nit = nodes_.find(nid);
    if (nit == nodes_.end()) continue;
    if (nit->second.kind == NodeKind::kFile &&
        !(nit->second.content == ContentId{}))
      released.push_back(nit->second.content);
    children_.erase(nid);
    nodes_.erase(nit);
    swap_remove(vol_index, nid);
  }
  return released;
}

void Shard::move_node(NodeId id, NodeId new_parent) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end())
    throw std::out_of_range("Shard::move_node: unknown node");
  const auto pit = nodes_.find(new_parent);
  if (pit == nodes_.end())
    throw std::out_of_range("Shard::move_node: unknown parent");
  if (pit->second.kind != NodeKind::kDirectory)
    throw std::invalid_argument("Shard::move_node: parent is not a dir");
  if (pit->second.volume != it->second.volume)
    throw std::invalid_argument("Shard::move_node: cross-volume move");
  if (id == new_parent)
    throw std::invalid_argument("Shard::move_node: node into itself");
  // Reject moving a directory under its own subtree.
  for (NodeId cursor = new_parent; !cursor.is_nil();) {
    if (cursor == id)
      throw std::invalid_argument("Shard::move_node: into own subtree");
    const auto cit = nodes_.find(cursor);
    if (cit == nodes_.end()) break;
    cursor = cit->second.parent;
  }

  auto& old_siblings = children_[it->second.parent];
  old_siblings.erase(std::remove(old_siblings.begin(), old_siblings.end(), id),
                     old_siblings.end());
  it->second.parent = new_parent;
  children_[new_parent].push_back(id);
  bump_generation(it->second);
}

ContentId Shard::set_node_content(NodeId id, const ContentId& content,
                                  std::uint64_t size_bytes) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end())
    throw std::out_of_range("Shard::set_node_content: unknown node");
  if (it->second.kind != NodeKind::kFile)
    throw std::invalid_argument("Shard::set_node_content: not a file");
  const ContentId previous = it->second.content;
  it->second.content = content;
  it->second.size_bytes = size_bytes;
  bump_generation(it->second);
  return previous;
}

std::vector<Node> Shard::get_delta(VolumeId volume,
                                   std::uint64_t since_generation) const {
  std::vector<Node> out;
  const auto vit = nodes_by_volume_.find(volume);
  if (vit == nodes_by_volume_.end()) return out;
  for (const NodeId& nid : vit->second) {
    const auto nit = nodes_.find(nid);
    if (nit != nodes_.end() && nit->second.generation > since_generation)
      out.push_back(nit->second);
  }
  return out;
}

std::vector<Node> Shard::get_from_scratch(VolumeId volume) const {
  std::vector<Node> out;
  const auto vit = nodes_by_volume_.find(volume);
  if (vit == nodes_by_volume_.end()) return out;
  out.reserve(vit->second.size());
  for (const NodeId& nid : vit->second) {
    const auto nit = nodes_.find(nid);
    if (nit != nodes_.end()) out.push_back(nit->second);
  }
  return out;
}

UploadJob& Shard::make_uploadjob(UserId user, NodeId node,
                                 const ContentId& content,
                                 std::uint64_t declared_size, SimTime now,
                                 Rng& rng) {
  UploadJob job;
  job.id = Uuid::v4(rng);
  job.user = user;
  job.node = node;
  job.content = content;
  job.declared_size = declared_size;
  job.created_at = now;
  job.last_touched = now;
  auto [it, _] = uploadjobs_.emplace(job.id, std::move(job));
  return it->second;
}

UploadJob* Shard::find_uploadjob(UploadJobId id) {
  const auto it = uploadjobs_.find(id);
  return it == uploadjobs_.end() ? nullptr : &it->second;
}

void Shard::delete_uploadjob(UploadJobId id) {
  if (uploadjobs_.erase(id) == 0)
    throw std::out_of_range("Shard::delete_uploadjob: unknown job");
}

std::vector<UploadJobId> Shard::stale_uploadjobs(SimTime cutoff) const {
  std::vector<UploadJobId> out;
  for (const auto& [jid, job] : uploadjobs_)
    if (job.last_touched < cutoff) out.push_back(jid);
  return out;
}

void Shard::add_share_grant(const ShareGrant& grant) {
  grants_[grant.shared_to].push_back(grant);
}

std::vector<ShareGrant> Shard::share_grants(UserId user) const {
  const auto it = grants_.find(user);
  return it == grants_.end() ? std::vector<ShareGrant>{} : it->second;
}

void Shard::remove_grants_for_volume(VolumeId volume) {
  for (auto& [user, grants] : grants_) {
    grants.erase(std::remove_if(grants.begin(), grants.end(),
                                [&](const ShareGrant& g) {
                                  return g.volume == volume;
                                }),
                 grants.end());
  }
}

std::pair<std::size_t, std::size_t> Shard::count_nodes(
    VolumeId volume) const {
  std::size_t files = 0, dirs = 0;
  const auto it = nodes_by_volume_.find(volume);
  if (it == nodes_by_volume_.end()) return {0, 0};
  const Volume* vol = find_volume(volume);
  for (const NodeId& nid : it->second) {
    const auto nit = nodes_.find(nid);
    if (nit == nodes_.end()) continue;
    if (vol != nullptr && nid == vol->root_dir) continue;  // implicit root
    if (nit->second.kind == NodeKind::kDirectory) {
      ++dirs;
    } else {
      ++files;
    }
  }
  return {files, dirs};
}

void Shard::bump_generation(Node& node) {
  const auto vit = volumes_.find(node.volume);
  if (vit == volumes_.end()) return;
  node.generation = ++vit->second.generation;
}

}  // namespace u1
