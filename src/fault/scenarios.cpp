#include "fault/scenarios.hpp"

#include <stdexcept>
#include <string>

namespace u1 {
namespace {

// Scenario scripts live here as plan text (the same grammar users write)
// so the registry doubles as documentation and the parser is exercised
// on every load. Timelines fit inside a 3-day horizon — the chaos-CI
// reference run — with every window ending well before the horizon so
// time-to-recover is always observable.
//
// Bands were calibrated by sweeping fault seeds at the reference scale
// (1,000 users × 3 days, bench_fault_recovery --scenario) and leaving
// roughly 2× margin on the worst observation; they are meant to catch
// regressions in the recovery paths (a stampeded failback, a retry loop
// without backoff), not to pin exact values.

const std::vector<IncidentScenario>& registry() {
  static const std::vector<IncidentScenario> scenarios = {
      {
          "regional_outage_failback",
          "Regional outage with slow-start failback",
          "A rack power event takes machine 2 dark and, through the "
          "shared uplink, browns out the regional S3 endpoint moments "
          "later. Every session pinned to the machine drops at once and "
          "reconnects elsewhere. When power returns the machine rejoins "
          "with zero open sessions; the balancer's slow-start ramp "
          "re-admits it gradually instead of stampeding the cold "
          "processes — except one process that flaps during warm-up.",
          "machine_outage id=outage t=1d10h dur=40m machine=2\n"
          "s3_brownout   after=outage on=begin p=1 delay=2m dur=30m "
          "error=0.2 slow=3\n"
          "process_crash after=outage on=end p=1 delay=5m dur=15m "
          "machine=2 slot=3\n",
          15 * kMinute,
          0,
          {0.995, 1.10, 900.0},
      },
      {
          "retry_storm",
          "S3 brownout feeding a retry storm over the session cap",
          "An S3 brownout inflates upload latencies and error rates; "
          "clients retry with capped-exponential backoff, and the "
          "amplified connection load pushes API processes over the "
          "per-process session cap. The balancer sheds (try-again) while "
          "two overloaded processes crash outright mid-window. Recovery "
          "depends on backoff spreading the retries and the slow-start "
          "ramp protecting the respawned processes.",
          "s3_brownout   id=storm t=1d11h dur=1h error=0.45 slow=6\n"
          "process_crash after=storm on=begin p=1 delay=20m dur=30m "
          "machine=4 slot=2\n"
          "process_crash after=storm on=begin p=0.7 delay=35m dur=25m "
          "machine=5 slot=1\n",
          10 * kMinute,
          90,
          {0.99, 1.10, 900.0},
      },
      {
          "cache_stampede",
          "Token-cache flush stampeding auth and the metadata shards",
          "A token-cache flush forces every new session through the SSO "
          "backend, which browns out under the herd. Sessions that do "
          "get through arrive with cold metadata caches, driving two "
          "shard masters into failover (inflated service times, rejected "
          "writes). As the auth window lifts, the notification fabric "
          "sheds a fraction of publishes while its queues drain.",
          "auth_brownout  id=stampede t=12h dur=30m error=0.6\n"
          "shard_failover after=stampede on=begin p=1 delay=10m dur=45m "
          "shard=1 slow=8 reject=0.3\n"
          "shard_failover after=stampede on=begin p=0.6 delay=15m dur=30m "
          "shard=3 slow=4 reject=0.15\n"
          "mq_drop        after=stampede on=end p=1 dur=20m drop=0.5\n",
          0,
          0,
          {0.995, 1.10, 900.0},
      },
      {
          "rolling_restart",
          "Maintenance rolling a restart across the fleet",
          "Planned maintenance restarts one process per machine, one "
          "machine at a time, each wave starting a few minutes after the "
          "previous one finishes. Sessions on the restarting process "
          "drop and re-place; the slow-start ramp re-admits each "
          "respawned process gradually. The availability dip should be "
          "barely measurable — this scenario is the control that chaos "
          "CI stays honest at the quiet end of the band.",
          "process_crash id=r1 t=1d12h dur=12m machine=1 slot=0\n"
          "process_crash id=r2 after=r1 on=end p=1 delay=3m dur=12m "
          "machine=2 slot=0\n"
          "process_crash id=r3 after=r2 on=end p=1 delay=3m dur=12m "
          "machine=3 slot=0\n"
          "process_crash id=r4 after=r3 on=end p=1 delay=3m dur=12m "
          "machine=4 slot=0\n"
          "process_crash id=r5 after=r4 on=end p=1 delay=3m dur=12m "
          "machine=5 slot=0\n"
          "process_crash id=r6 after=r5 on=end p=1 delay=3m dur=12m "
          "machine=6 slot=0\n",
          10 * kMinute,
          0,
          {0.998, 1.05, 600.0},
      },
  };
  return scenarios;
}

}  // namespace

const std::vector<IncidentScenario>& incident_scenarios() {
  return registry();
}

const IncidentScenario* find_incident_scenario(std::string_view name) {
  for (const IncidentScenario& sc : registry())
    if (sc.name == name) return &sc;
  return nullptr;
}

FaultPlan incident_plan(std::string_view name) {
  const IncidentScenario* sc = find_incident_scenario(name);
  if (sc == nullptr) {
    std::string known;
    for (const IncidentScenario& s : registry()) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    throw std::invalid_argument("unknown incident scenario '" +
                                std::string(name) + "' (known: " + known +
                                ")");
  }
  return parse_fault_plan(sc->plan_text);
}

}  // namespace u1
