// Deterministic shard-parallel simulation engine.
//
// The sequential Simulation runs every client against one global event
// queue; at 10k+ users the queue and the single timeline are the
// bottleneck. ParallelSimulation partitions the population into G shard
// groups (G = backend.shards, same user-id hash the metadata router
// uses), gives each group its own complete back-end, event queue, forked
// RNG stream and trace buffer, and advances all groups over bounded time
// epochs of one simulated hour:
//
//   epoch e:   workers run their assigned groups up to (e+1)*1h, while
//              the flusher thread merges + emits epoch e-1's trace
//   barrier:   (sequential, O(new blobs + commands)) join the flusher,
//              merge dedup op logs in group order, absorb content-pool
//              views, drain the inter-epoch mailbox, freeze the epoch's
//              trace chunks and hand them to the flusher
//
// The barrier's serial section is deliberately tiny: the expensive trace
// work happens off the critical path in a two-stage flush pipeline over
// a ring of K in-flight epoch slots (K = U1SIM_FLUSH_DEPTH, default 2):
//
//   stage A (flusher thread + small sort pool): per-group chunk sorts in
//     parallel, symbol remap (group-local -> global label ids), the
//     k-way index merge producing the (group, offset) permutation, and
//     the AnomalyGuard scan over that permutation. Stage A of epoch e is
//     ALWAYS joined at barrier e+1 — for every K and every thread count
//     — so guard purges keep the exact pre-ring delivery schedule
//     (timestamp (e+2)*1h).
//
//   stage B (writer thread): walks the permutation and hands records to
//     the sink, strictly FIFO in epoch order. Writes may lag up to K
//     epochs behind the barrier; the coordinator only stalls when every
//     ring slot is still being written (ring_stall_s). K=1 reproduces
//     the old one-epoch-deep flusher's synchronization exactly.
//
// Merge input is frozen at the barrier, so the flushed stream is a
// deterministic function of the per-group chunks regardless of what the
// workers are computing concurrently, and the write order (epoch FIFO,
// contract order within an epoch) is independent of K. The trace is
// byte-identical for every thread count and every flush depth.
//
// Workers no longer claim groups from a shared counter: a sticky,
// cost-weighted plan (weights = the previous epoch's per-group event
// counts, which are seed-deterministic) binds each group to one worker
// so its backend/queue/agents stay hot in that worker's cache, and is
// rebuilt (LPT greedy) only when the EMA-smoothed load imbalance stays
// past 25% AND at least 12 epochs have passed since the last rebuild —
// one bursty epoch cannot thrash the plan (rebuild count pinned by
// tests/sim/parallel_sim_test.cpp on a fixed seed).
// U1SIM_PIN=1 additionally pins worker i to core i. The plan never
// affects the trace — groups are isolated during an epoch — only the
// wall clock; tests assert trace equality between sticky and counter
// scheduling and across thread counts.
//
// Everything a worker touches during an epoch is group-private or frozen
// (models are const and take the caller's RNG; the shared dedup registry
// and content pool are epoch-frozen behind per-group overlays). The merge
// at each barrier is a deterministic function of the per-group streams —
// replayed in fixed group order — so the emitted trace and the final
// report are byte-identical for ANY worker-thread count, including one.
// The single-threaded run (threads <= 1 executes groups inline, in order,
// with the same pipeline schedule) is therefore the correctness oracle
// for every parallel run.
//
// Cross-group traffic and its cost:
//  - share grants (~1.8% of users): resolved at setup by ghost-registering
//    the owner in the recipient's group back-end (sequential, pre-trace);
//  - global dedup: bounded staleness — a blob first seen by group A in
//    epoch e dedups for other groups from e+1 (at most 1 simulated hour);
//  - DDoS bot fleets: an attack's abused account pins the whole attack
//    (launch, bots, manual response) to one group — single-account traffic
//    is single-shard by construction;
//  - AnomalyGuard purges: detected on the merged stream by the flusher,
//    posted to a bounded MPSC mailbox (EpochMailbox), and delivered in
//    group-index order at the next barrier.
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/sharded.hpp"
#include "improve/anomaly_guard.hpp"
#include "proto/control.hpp"
#include "server/backend.hpp"
#include "sim/client_agent.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"
#include "sim/trace_merge.hpp"
#include "store/dedup_overlay.hpp"
#include "trace/sink.hpp"
#include "trace/symbols.hpp"
#include "workload/ddos.hpp"

namespace u1 {

/// Distributed worker hooks (DESIGN.md §12, sim/distributed.cpp): an
/// engine in worker mode hands its epoch-barrier traffic to a peer
/// instead of merging in-process. The peer ships the local groups'
/// serialized dedup logs / pool deltas / guard feed to the coordinator
/// and returns the cluster-wide replay set, so every process's global
/// replicas stay byte-identical; stage B hands finished trace chunks to
/// write_chunk (a local shard stream) instead of the sink.
class EpochPeer {
 public:
  struct BarrierIn {
    /// EVERY group's serialized state for the finished epoch, in
    /// group-index order — the deterministic replay order. Empty lists
    /// on the two run-tail barriers.
    std::vector<std::vector<std::uint8_t>> dedup_logs;
    std::vector<std::vector<std::uint8_t>> pool_deltas;
    /// AnomalyGuard purges routed to this worker's groups
    /// (lane = global group index, value = culprit UserId).
    std::vector<MailboxEntry> purges;
  };

  virtual ~EpochPeer() = default;

  /// One barrier round trip. `tail` marks the two run-tail exchanges
  /// (no dedup/pool deltas, feed only). Blocking; called with the flush
  /// pipeline joined, so the feed covers every record scanned so far.
  virtual BarrierIn exchange(
      std::uint64_t seq, bool tail,
      std::vector<std::vector<std::uint8_t>> dedup_logs,
      std::vector<std::vector<std::uint8_t>> pool_deltas,
      std::vector<GuardFeedEntry> feed) = 0;

  /// Stage-B replacement: persists one chunk's local-group segments
  /// ([first_group, first_group + group_count) of `chunks`; sorted,
  /// labels already remapped to this process's global table).
  /// `new_symbols[g]` lists the (this-process global id, string) pairs
  /// group g published at this chunk's barrier — exactly the symbols the
  /// in-process engine would have interned at that point, so the
  /// coordinator can replay the global-table growth in (chunk, group)
  /// order and reproduce the oracle's symbol ids bit for bit. Called on
  /// the writer thread, FIFO in epoch order.
  virtual void write_chunk(
      const std::vector<std::vector<TraceRecord>>& chunks,
      const std::vector<std::vector<std::pair<Symbol, std::string>>>&
          new_symbols,
      std::size_t first_group, std::size_t group_count) = 0;
};

class ParallelSimulation {
 public:
  /// How workers pick up groups each epoch.
  enum class Scheduling : std::uint8_t {
    kSticky,   // static cost-weighted plan, cache-affine (default)
    kCounter,  // legacy shared atomic counter (perf baseline / tests)
  };

  /// Wall-clock decomposition of the epoch pipeline, accumulated over
  /// the whole run. With the pipelined flush ring, flush_s (stage A) and
  /// write_s (stage B) overlap compute_s; the serial fraction per epoch
  /// is merge_s plus whatever the compute could not hide (flush_stall_s
  /// waiting on stage A, ring_stall_s waiting for a free write slot).
  struct EpochPhases {
    std::uint64_t epochs = 0;
    double compute_s = 0;      // parallel group execution
    double merge_s = 0;        // serial barrier work (dedup/pool/mailbox)
    double flush_s = 0;        // stage A: sorts + remap + merge plan + guard
    double write_s = 0;        // stage B: sink writes (FIFO, up to K behind)
    double flush_stall_s = 0;  // barrier wait on the previous stage A
    double ring_stall_s = 0;   // barrier wait for a free ring slot
    std::uint64_t plan_rebuilds = 0;  // sticky-scheduler LPT repartitions
    /// Calendar-queue bucket statistics, aggregated over every group
    /// queue at the end of the run (all zero under U1SIM_QUEUE=heap).
    /// scanned/finds is the average events inspected per pop — a
    /// degenerate bucket width shows up here long before it shows up in
    /// wall clock.
    std::uint64_t cal_rebuilds = 0;
    std::uint64_t cal_finds = 0;
    std::uint64_t cal_scanned = 0;
  };

  /// threads == 0 resolves to std::thread::hardware_concurrency().
  /// threads <= 1 runs the same epoch/merge machinery inline — the
  /// deterministic oracle every multi-threaded run must match.
  ParallelSimulation(const SimulationConfig& config, TraceSink& sink,
                     std::size_t threads = 0);
  ~ParallelSimulation();

  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  /// Runs to completion and returns the report. Call once.
  SimulationReport run();

  std::size_t group_count() const noexcept { return groups_.size(); }
  std::size_t threads() const noexcept { return threads_; }

  /// Scheduling/queue overrides; call before run(). Defaults come from
  /// the environment (U1SIM_SCHED=sticky|counter, U1SIM_QUEUE=
  /// calendar|heap) and neither choice can change the trace.
  void set_scheduling(Scheduling s) noexcept { scheduling_ = s; }
  Scheduling scheduling() const noexcept { return scheduling_; }
  void set_queue_impl(QueueImpl impl) noexcept { queue_impl_ = impl; }

  /// Registers a sharded analyzer (call before run()). Every shard
  /// group gets a private AnalyzerShard fed that group's records during
  /// stage A — sorted, labels already global — on the flush-pipeline
  /// threads, overlapping the next epoch's compute. At the end of run()
  /// the shards fold back via merge_shard() in group-index order and
  /// finish() is called, so the analyzer's results are bit-identical
  /// for every thread count. The analyzer must outlive run().
  void attach_analyzer(ShardedAnalyzer& analyzer);

  /// True when the sink is a NullSink: trace materialization is skipped
  /// (no merge plan unless the guard needs it, flush ring auto-shrinks
  /// to depth 1) and only attached analyzers consume the records.
  bool analysis_only() const noexcept { return analysis_only_; }

  /// Distributed worker mode (DESIGN.md §12): this process runs only the
  /// shard groups [first_group, first_group + group_count). The full
  /// deterministic setup — registration, share grants, live-mode
  /// bootstrap, population scheduling — still replays for EVERY group so
  /// the master RNG stream is identical in every process; the remote
  /// groups' heavy state (backend, agents, queue events) is then freed.
  /// Epoch barriers go through `peer` (which must outlive run());
  /// AnomalyGuard detection moves to the coordinator, this engine only
  /// extracts the observation feed. Call before run().
  void enable_worker_mode(EpochPeer& peer, std::size_t first_group,
                          std::size_t group_count);
  bool worker_mode() const noexcept { return peer_ != nullptr; }

  /// Records handed to the flush pipeline (and thus to every attached
  /// analyzer), including bootstrap history. For bench records/s.
  std::uint64_t records_flushed() const noexcept { return records_flushed_; }

  /// Where first_auto_response_delay was recorded: the (barrier seq,
  /// group) of the first purge that hit a live attack, ~0/~0 when none
  /// did. Purge delivery order is (barrier, group, post order), so the
  /// distributed coordinator picks the lexicographically first origin
  /// across workers to reproduce the in-process "first response" value.
  std::uint64_t first_purge_barrier() const noexcept {
    return first_purge_barrier_;
  }
  std::uint64_t first_purge_group() const noexcept {
    return first_purge_group_;
  }

  /// Flush-ring depth K: how many epochs of sink writes may be in
  /// flight behind the barrier. Call before run(). Default comes from
  /// U1SIM_FLUSH_DEPTH (clamped to [1, 8], default 2, or 1 in
  /// analysis-only mode); the trace is byte-identical for every K.
  void set_flush_depth(std::size_t k) noexcept {
    flush_depth_ = k < 1 ? 1 : (k > 8 ? 8 : k);
  }
  std::size_t flush_depth() const noexcept { return flush_depth_; }

  /// Per-phase wall-clock breakdown of the finished run.
  const EpochPhases& phases() const noexcept { return phases_; }

  /// Per-group back-end (post-run introspection).
  const U1Backend& backend(std::size_t group) const;
  /// All per-group metadata stores; analysis overloads aggregate these.
  std::vector<const MetadataStore*> stores() const;

  /// Deterministic per-group load estimate for the distributed
  /// coordinator's slice planner: replays exactly the master-RNG draws
  /// of register_population / grant_shares / bootstrap_phase (profile
  /// sample + agent fork per user, one peer draw per sharer, the
  /// three bootstrap-size draws) and returns, per group, the realized
  /// bootstrap file count plus an activity term for trace-window
  /// growth. Any drift between this replay and the real setup sequence
  /// only degrades slice *balance* — the merged trace is bit-identical
  /// for every contiguous split, so correctness never depends on it.
  static std::vector<double> estimate_group_setup_weights(
      const SimulationConfig& config);
  /// The merged global dedup registry (what contents() was on Simulation).
  const ContentRegistry& contents() const noexcept;
  /// Blobs whose last references were dropped by different groups within
  /// one epoch (GC'd at the merge, invisible to any single group).
  std::uint64_t cross_group_dead_blobs() const noexcept {
    return cross_group_dead_blobs_;
  }

 private:
  struct Bot {
    std::size_t attack = 0;  // global attack index
    SessionId session;
    bool connected = false;
    int failures = 0;
  };

  struct AttackRuntime {
    DdosAttackSpec spec;
    UserId account;
    NodeId payload_node;
    std::size_t group = 0;
    bool purged = false;
  };

  struct Ev {
    enum class Kind : std::uint8_t {
      kAgent,        // index: group-local agent
      kBot,          // index: group-local bot
      kMaintenance,  // hourly housekeeping on this group's back-end
      kDdosStart,    // index: global attack
      kDdosResponse, // index: global attack (manual response path)
      kFault,        // index: into fault_schedule_ (delivered to EVERY group)
    };
    Kind kind;
    std::size_t index = 0;
  };

  struct Group {
    std::unique_ptr<U1Backend> backend;
    std::unique_ptr<ContentPoolView> pool_view;
    /// Per-group fault stream, forked from the schedule seed so the
    /// in-window probabilistic draws are group-local (thread-invariant).
    std::unique_ptr<FaultInjector> injector;
    std::vector<std::unique_ptr<ClientAgent>> agents;
    std::vector<Bot> bots;
    EventQueue<Ev> queue;
    Rng rng;
    InMemorySink trace;
    /// One shard per attached analyzer (same index as analyzers_), fed
    /// by prep_chunk on whichever pipeline thread owns the chunk.
    std::vector<std::unique_ptr<AnalyzerShard>> shards;
    /// Events executed in the current epoch — the (seed-deterministic)
    /// cost weight the sticky scheduler plans the next epoch with.
    std::uint64_t epoch_events = 0;
    std::uint64_t agent_wakeups = 0;
    std::uint64_t ddos_attacks = 0;
  };

  std::size_t group_of(UserId user) const noexcept;
  void build_groups();
  void register_population();
  void grant_shares();
  void bootstrap_phase();
  void schedule_population_start();
  void run_group_epoch(std::size_t group, SimTime limit);

  // Persistent worker pool (threads_ >= 2): workers park on the start
  // barrier between epochs, execute their planned groups during an
  // epoch, and meet the coordinator on the done barrier — the epoch
  // barrier of the design.
  void start_workers(std::size_t n);
  void stop_workers();
  void worker_loop(std::size_t id);
  void run_epoch_pooled(SimTime limit);
  /// (Re)builds the sticky group->worker plan when the EMA-smoothed
  /// cost-weighted load imbalance stays above 25% and the 12-epoch
  /// rebuild floor has elapsed (LPT greedy, deterministic). Called
  /// between barriers, workers parked.
  void prepare_epoch_plan(std::size_t workers);
  /// Sequential barrier work: join stage A, dedup/pool merge, purge
  /// delivery, symbol publication, slot hand-off. The trace heavy
  /// lifting lives in run_stage_a/run_stage_b on the pipeline threads.
  void merge_epoch(SimTime epoch_end);

  /// One in-flight epoch of trace output. Lifecycle:
  ///   kFree  -> coordinator publishes symbols, snapshots the per-group
  ///             local->global maps and swaps the trace chunks in
  ///   kStageA-> flusher sorts/remaps/plans/guard-scans (joined at the
  ///             next barrier)
  ///   kStageB-> writer walks the plan into the sink, then frees the
  ///             slot (chunk capacity recycles K-deep)
  struct FlushSlot {
    enum class State : std::uint8_t { kFree, kStageA, kStageB };
    State state = State::kFree;
    std::vector<std::vector<TraceRecord>> chunks;  // per group
    std::vector<std::vector<Symbol>> sym_map;      // local -> global ids
    std::vector<MergeRef> plan;                    // merged permutation
    /// Worker mode only: per group, the symbols published at this
    /// chunk's barrier (global id in THIS process, string) — shipped to
    /// the peer so the coordinator can replay the table growth.
    std::vector<std::vector<std::pair<Symbol, std::string>>> new_syms;
  };

  // Flush ring machinery. Runs on flusher_/writer_ when pooled, inline
  // otherwise — the observable order (chunk E scanned before purges of
  // E deliver at barrier E+1; sink writes FIFO by epoch) is identical
  // either way and for every K.
  void start_flush_pipeline();
  void stop_flush_pipeline();
  /// Next ring slot (round-robin); blocks until its writes finish
  /// (ring_stall_s). Inline mode never waits — slots are always free.
  FlushSlot& acquire_slot();
  /// Publishes every group's new symbols into the global table in
  /// group-index order (deterministic ids), snapshots the mappings and
  /// swaps the group trace buffers into the slot. Workers must be
  /// parked.
  void fill_slot(FlushSlot& slot);
  void submit_flush(FlushSlot& slot);
  /// Blocks until no stage A is in flight (purges all posted).
  void join_flusher();
  /// Blocks until the writer has drained every slot (run tail only).
  void drain_writer();
  void flusher_loop();
  void writer_loop();
  void sort_worker_loop();
  void run_stage_a(FlushSlot& slot);
  void run_stage_b(FlushSlot& slot);
  /// Stage A per-group work: stable sort + label remap of one chunk.
  void prep_chunk(FlushSlot& slot, std::size_t group);
  [[noreturn]] void rethrow_flush_error();
  /// Drains the purge mailbox in group-index order, applying each purge
  /// at `when`.
  void deliver_purges(SimTime when);

  // Worker-mode plumbing (enable_worker_mode; no-ops otherwise).
  bool group_local(std::size_t g) const noexcept {
    return peer_ == nullptr ||
           (g >= local_first_ && g < local_first_ + local_count_);
  }
  /// Frees the heavy per-group state of every non-local group after the
  /// deterministic setup replay, and records the local set in
  /// active_groups_.
  void release_remote_groups();
  /// One peer barrier: extract local dedup logs / pool deltas (skipped
  /// on tail barriers), ship them plus the guard feed, replay the
  /// returned cluster-wide set in group order and post routed purges.
  void exchange_barrier(bool tail);

  SimTime bot_wake(Group& grp, std::size_t bot_index, SimTime now);
  void launch_attack(Group& grp, std::size_t attack_index, SimTime now);
  void respond_to_attack(std::size_t attack_index, SimTime now);

  SimulationConfig config_;
  TraceSink* sink_;
  std::size_t threads_;
  Rng rng_;  // master stream: sequential setup only

  /// In-worker analyzer fan-out (attach_analyzer), attachment order.
  std::vector<ShardedAnalyzer*> analyzers_;
  bool analysis_only_ = false;  // sink is a NullSink
  std::uint64_t records_flushed_ = 0;

  Scheduling scheduling_ = Scheduling::kSticky;
  QueueImpl queue_impl_ = QueueImpl::kCalendar;
  bool pin_workers_ = false;  // U1SIM_PIN

  // Shared, frozen-during-epoch workload machinery.
  FileModel file_model_;
  std::unique_ptr<ContentPool> content_pool_;
  UserModel user_model_;
  TransitionModel transition_model_;
  DiurnalModel diurnal_;
  BurstProcess bursts_;

  /// One schedule, shared by all groups; every group applies every event
  /// to its own back-end (group 0 alone emits the kFault trace records).
  FaultSchedule fault_schedule_;

  std::unique_ptr<SharedDedup> shared_dedup_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<AttackRuntime> attacks_;
  std::unique_ptr<AnomalyGuard> guard_;

  /// Where each uid lives: (group, group-local agent index), uid-1 keyed.
  struct HomeRef {
    std::size_t group = 0;
    std::size_t index = 0;
  };
  std::vector<HomeRef> home_;
  std::vector<VolumeId> root_volume_;  // uid-1 keyed, for share grants

  // Worker pool state.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> epoch_start_;
  std::unique_ptr<std::barrier<>> epoch_done_;
  std::atomic<std::size_t> next_group_{0};  // kCounter scheduling only
  std::atomic<bool> stop_{false};
  SimTime epoch_limit_ = 0;
  std::exception_ptr worker_error_;
  std::mutex worker_error_mu_;
  /// Sticky plan: plan_[worker] = ordered groups it runs each epoch.
  std::vector<std::vector<std::size_t>> plan_;
  /// Rebuild hysteresis: EMA-smoothed load drift plus a floor on epochs
  /// between LPT repartitions, so one bursty epoch (or a small
  /// persistent wobble) cannot thrash the cache-affine plan.
  double plan_drift_ema_ = 0.0;
  std::uint64_t plan_epochs_since_rebuild_ = 0;

  // Distributed worker mode (enable_worker_mode).
  EpochPeer* peer_ = nullptr;
  std::size_t local_first_ = 0;
  std::size_t local_count_ = 0;
  /// Collect the AnomalyGuard observation feed in stage A (worker mode
  /// with countermeasures on; detection itself runs on the coordinator).
  bool collect_feed_ = false;
  std::vector<GuardFeedEntry> feed_buf_;
  std::uint64_t barrier_seq_ = 0;
  /// Reusable swap buffer for shedding remote groups' bootstrap trace
  /// records per user (bootstrap_phase); bounces capacity between sheds
  /// so the hot path never reallocates.
  std::vector<TraceRecord> shed_scratch_;
  /// Groups this process simulates, ascending. Identity when not in
  /// worker mode; every epoch loop iterates this, not groups_.
  std::vector<std::size_t> active_groups_;

  // Flush-ring state. Slot ownership hands off under flush_mu_:
  // coordinator (fill, while kFree) -> flusher (stage A: chunks,
  // sym_map, plan, guard, purge posts, flush_s) -> writer (stage B:
  // sink, write_s) -> free. At most one stage A is in flight by
  // construction (joined every barrier); the writer drains a FIFO of up
  // to K epochs. Slots live behind unique_ptr so queued pointers stay
  // stable.
  std::size_t flush_depth_ = 2;  // K, from U1SIM_FLUSH_DEPTH
  std::vector<std::unique_ptr<FlushSlot>> slots_;
  std::size_t slot_cursor_ = 0;  // round-robin acquire order
  std::thread flusher_;
  std::thread writer_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  FlushSlot* stage_a_slot_ = nullptr;
  std::deque<FlushSlot*> write_queue_;
  bool flusher_stop_ = false;
  bool writer_stop_ = false;
  std::exception_ptr flush_error_;

  // Stage-A sort pool: a few helpers that parallelize the per-group
  // chunk sorts/remaps inside one stage A. Purely a wall-clock lever —
  // each helper owns whole chunks, so the merged stream is unaffected.
  std::vector<std::thread> sort_workers_;
  std::mutex sort_mu_;
  std::condition_variable sort_cv_;
  std::uint64_t sort_gen_ = 0;         // bumped to start a round
  FlushSlot* sort_slot_ = nullptr;
  std::atomic<std::size_t> sort_next_{0};
  std::size_t sort_remaining_ = 0;     // groups not yet prepped
  bool sort_stop_ = false;
  /// Cross-group purge commands: posted by the guard scan (lane = the
  /// culprit's home group), drained at the barrier in group-index order.
  EpochMailbox<UserId> purge_mail_;
  /// Per-group dedup of pending purges (the old O(n^2) std::find over
  /// the mailbox, replaced); cleared at every delivery.
  std::vector<std::unordered_set<UserId>> purge_seen_;

  EpochPhases phases_;
  SimulationReport report_;
  std::uint64_t cross_group_dead_blobs_ = 0;
  std::uint64_t first_purge_barrier_ = ~0ull;
  std::uint64_t first_purge_group_ = ~0ull;
  bool ran_ = false;
};

}  // namespace u1
