// Fig. 10: files vs directories per volume (scatter + per-volume CDFs).
#include "analysis/volumes.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"
#include "trace/sink.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  NullSink sink;  // state-based figure: the trace itself is not needed
  auto sim = run_into(sink, cfg);

  header("Fig 10", "Files and directories per volume (end-of-trace state)");
  const auto stats = analyze_volume_contents(sim->stores());
  row("Pearson correlation files vs dirs", 0.998, stats.pearson_files_dirs);
  row("volumes with at least one file", 0.60, stats.volumes_with_file_share);
  row("volumes with at least one dir", 0.32, stats.volumes_with_dir_share);
  row("volumes with > 1000 files", 0.05, stats.volumes_over_1000_files);

  std::vector<double> files, dirs;
  for (const auto& [f, d] : stats.files_dirs) {
    files.push_back(f);
    dirs.push_back(d);
  }
  Ecdf fe{std::move(files)};
  Ecdf de{std::move(dirs)};
  std::printf("\n  files/dirs per volume CDF:\n");
  std::printf("  %-8s %10s %10s\n", "x", "files", "dirs");
  for (const double x : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    std::printf("  %-8.0f %10.3f %10.3f\n", x, fe.at(x), de.at(x));
  }
  return 0;
}
