file(REMOVE_RECURSE
  "CMakeFiles/u1_store.dir/content_registry.cpp.o"
  "CMakeFiles/u1_store.dir/content_registry.cpp.o.d"
  "CMakeFiles/u1_store.dir/metadata_store.cpp.o"
  "CMakeFiles/u1_store.dir/metadata_store.cpp.o.d"
  "CMakeFiles/u1_store.dir/service_time.cpp.o"
  "CMakeFiles/u1_store.dir/service_time.cpp.o.d"
  "CMakeFiles/u1_store.dir/shard.cpp.o"
  "CMakeFiles/u1_store.dir/shard.cpp.o.d"
  "libu1_store.a"
  "libu1_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
