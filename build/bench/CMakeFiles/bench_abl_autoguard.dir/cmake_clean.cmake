file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_autoguard.dir/bench_abl_autoguard.cpp.o"
  "CMakeFiles/bench_abl_autoguard.dir/bench_abl_autoguard.cpp.o.d"
  "bench_abl_autoguard"
  "bench_abl_autoguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_autoguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
