// Content popularity model behind the dedup analysis (Fig. 4a):
//  - the measured dedup ratio is 0.171;
//  - ~80% of unique contents have no duplicates at all;
//  - the duplicates-per-hash distribution has a long tail (popular songs
//    shared by thousands of logical files).
// When a simulated client "creates a file", the pool decides whether the
// content is globally fresh or a copy of something already in circulation
// (the same .mp3 uploaded by another user).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "proto/ids.hpp"
#include "util/rng.hpp"
#include "workload/file_model.hpp"

namespace u1 {

struct ContentDraw {
  ContentId id;
  std::uint64_t size_bytes = 0;
  bool duplicate = false;  // true when the pool reused circulating content
};

class ContentPoolView;

class ContentPool {
 public:
  /// duplicate_prob: baseline probability a new file's content is a copy
  /// of an already-circulating blob of the same category; per-category
  /// multipliers skew duplication toward media and packages (popular
  /// songs, shared archives), which is what makes the *byte-weighted*
  /// dedup ratio reach the paper's 0.171 while ~80% of hashes stay
  /// unique. zipf_s in (0,1) shapes how popularity concentrates on the
  /// head (bigger -> heavier).
  explicit ContentPool(double duplicate_prob = 0.20, double zipf_s = 0.9,
                       std::uint64_t seed = 0xc0de);
  virtual ~ContentPool() = default;

  /// Effective duplicate probability for a category.
  double duplicate_prob_for(FileCategory category) const noexcept;

  /// Draws content for a fresh file of the given spec.
  virtual ContentDraw draw(const FileSpec& spec, Rng& rng);

  /// Draws content for an *update*: always fresh bytes (an edit produces
  /// a new hash), sized by the caller.
  virtual ContentDraw draw_update(std::uint64_t new_size, Rng& rng);

  /// Epoch merge for the shard-parallel engine: moves the view's pending
  /// circulating entries into this (global) pool and folds the view's draw
  /// counters into the aggregate stats. Call only between epochs, in fixed
  /// group order.
  void absorb(ContentPoolView& view);

  /// Byte-level absorb for the distributed engine: applies a serialized
  /// delta (ContentPoolView::extract_delta from another process) with
  /// absorb()'s exact semantics, so every process's pool replica stays
  /// identical when all groups' deltas are applied in group order.
  /// Trusted channel; throws std::runtime_error on a malformed blob.
  void absorb_delta(std::span<const std::uint8_t> bytes);

  std::size_t circulating(FileCategory category) const;
  std::uint64_t unique_drawn() const noexcept {
    return unique_seq_ + absorbed_unique_;
  }
  std::uint64_t duplicates_drawn() const noexcept {
    return duplicates_ + absorbed_duplicates_;
  }

 private:
  friend class ContentPoolView;

  struct Circulating {
    ContentId id;
    std::uint64_t size_bytes;
  };

  ContentId fresh_id();

  double duplicate_prob_;
  double zipf_s_;
  std::uint64_t salt_;
  std::uint64_t unique_seq_ = 0;
  std::uint64_t duplicates_ = 0;
  /// Draws performed through now-absorbed epoch views (stats only; never
  /// feeds fresh_id, so absorbing cannot perturb this pool's id stream).
  std::uint64_t absorbed_unique_ = 0;
  std::uint64_t absorbed_duplicates_ = 0;
  /// Per-category circulating contents, insertion-ordered; popularity is
  /// rank-based over this order (early contents accumulate more copies —
  /// preferential attachment, which yields the long tail of Fig. 4a).
  std::vector<Circulating> by_category_[kFileCategoryCount];
};

/// One shard group's epoch-scoped view of a shared ContentPool. Duplicate
/// draws rank over (frozen global entries) + (this view's own fresh entries
/// this epoch); fresh ids come from the view's group-distinct salt so
/// concurrent views can never mint colliding ContentIds. The engine calls
/// ContentPool::absorb at each epoch barrier, in group order, making the
/// merged pool a deterministic function of the per-group streams.
class ContentPoolView final : public ContentPool {
 public:
  /// `salt` must be distinct per view and distinct from the global pool's
  /// seed (the engine derives it from config.seed and the group index).
  ContentPoolView(const ContentPool& global, std::uint64_t salt);

  ContentDraw draw(const FileSpec& spec, Rng& rng) override;
  ContentDraw draw_update(std::uint64_t new_size, Rng& rng) override;

  /// Live mode (sequential setup only): forwards every draw straight to
  /// `live`, mutating it — full cross-group dedup during bootstrap. Pass
  /// nullptr before the parallel run starts to freeze the global pool and
  /// switch to the epoch-overlay behavior above.
  void set_live(ContentPool* live) noexcept { live_ = live; }

  /// The worker-side half of ContentPool::absorb for the distributed
  /// engine: serializes this view's pending circulating entries and draw
  /// counter deltas, clears the pending state and marks the counters
  /// reported — exactly the state transition absorb() applies to the
  /// view. Format: per category varint count + entries (id:20B raw,
  /// size:varint), then varint unique/duplicate deltas.
  std::vector<std::uint8_t> extract_delta();

 private:
  friend class ContentPool;  // absorb drains pending entries and counters

  const ContentPool* global_;
  ContentPool* live_ = nullptr;
  std::uint64_t reported_unique_ = 0;
  std::uint64_t reported_duplicates_ = 0;
};

}  // namespace u1
