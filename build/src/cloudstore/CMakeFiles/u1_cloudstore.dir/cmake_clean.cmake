file(REMOVE_RECURSE
  "CMakeFiles/u1_cloudstore.dir/object_store.cpp.o"
  "CMakeFiles/u1_cloudstore.dir/object_store.cpp.o.d"
  "libu1_cloudstore.a"
  "libu1_cloudstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_cloudstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
