#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace u1 {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleValueZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 100);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Boxplot, FiveNumberSummary) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto b = boxplot(v);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 5);
  EXPECT_DOUBLE_EQ(b.max, 9);
  EXPECT_DOUBLE_EQ(b.q1, 3);
  EXPECT_DOUBLE_EQ(b.q3, 7);
  EXPECT_DOUBLE_EQ(b.mean, 5);
  EXPECT_DOUBLE_EQ(b.iqr(), 4);
}

TEST(Boxplot, RejectsEmpty) {
  EXPECT_THROW(boxplot(std::vector<double>{}), std::invalid_argument);
}

TEST(Boxplot, UnsortedInput) {
  const std::vector<double> v = {9, 1, 5, 3, 7};
  const auto b = boxplot(v);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.max, 9);
  EXPECT_DOUBLE_EQ(b.median, 5);
}

TEST(MeanMedian, Helpers) {
  const std::vector<double> v = {1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(mean_of(v), 4.0);
  EXPECT_DOUBLE_EQ(median_of(v), 2.5);
  EXPECT_THROW(mean_of(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(median_of(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
}  // namespace u1
