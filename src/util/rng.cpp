#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace u1 {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

ExponentialDist::ExponentialDist(double lambda) : lambda_(lambda) {
  if (lambda <= 0) throw std::invalid_argument("ExponentialDist: lambda <= 0");
}

double ExponentialDist::sample(Rng& rng) const noexcept {
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log(1.0 - rng.uniform()) / lambda_;
}

ParetoDist::ParetoDist(double alpha, double x_min)
    : alpha_(alpha), x_min_(x_min) {
  if (alpha <= 0) throw std::invalid_argument("ParetoDist: alpha <= 0");
  if (x_min <= 0) throw std::invalid_argument("ParetoDist: x_min <= 0");
}

double ParetoDist::sample(Rng& rng) const noexcept {
  return x_min_ / std::pow(1.0 - rng.uniform(), 1.0 / alpha_);
}

BoundedParetoDist::BoundedParetoDist(double alpha, double x_min, double x_max)
    : alpha_(alpha), x_min_(x_min), x_max_(x_max) {
  if (alpha <= 0) throw std::invalid_argument("BoundedParetoDist: alpha <= 0");
  if (x_min <= 0 || x_max <= x_min)
    throw std::invalid_argument("BoundedParetoDist: need 0 < x_min < x_max");
}

double BoundedParetoDist::sample(Rng& rng) const noexcept {
  // Inverse CDF of the truncated Pareto.
  const double u = rng.uniform();
  const double la = std::pow(x_min_, alpha_);
  const double ha = std::pow(x_max_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

LogNormalDist::LogNormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0) throw std::invalid_argument("LogNormalDist: sigma <= 0");
}

LogNormalDist LogNormalDist::from_median(double median, double sigma) {
  if (median <= 0)
    throw std::invalid_argument("LogNormalDist: median <= 0");
  return LogNormalDist(std::log(median), sigma);
}

double LogNormalDist::sample(Rng& rng) const noexcept {
  // Box-Muller; one normal variate per call keeps the type stateless.
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu_ + sigma_ * z);
}

ZipfDist::ZipfDist(std::size_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDist: n == 0");
  if (s <= 0) throw std::invalid_argument("ZipfDist: s <= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDist::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

WeightedDiscrete::WeightedDiscrete(std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("WeightedDiscrete: no weights");
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0)
      throw std::invalid_argument("WeightedDiscrete: negative weight");
    acc += weights[i];
    cdf_[i] = acc;
  }
  if (acc <= 0) throw std::invalid_argument("WeightedDiscrete: zero total");
  for (auto& c : cdf_) c /= acc;
}

std::size_t WeightedDiscrete::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double WeightedDiscrete::probability(std::size_t i) const {
  if (i >= cdf_.size())
    throw std::out_of_range("WeightedDiscrete::probability");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace u1
